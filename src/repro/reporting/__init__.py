"""Paper-style table formatting shared by the benchmark harnesses."""

from repro.reporting.tables import Table, format_si

__all__ = ["Table", "format_si"]
