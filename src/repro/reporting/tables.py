"""Tiny ASCII table builder for benchmark output.

Each benchmark prints the same rows its paper table/figure reports, so
EXPERIMENTS.md can be filled by copy-paste.  Keep it dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_si(x: float, digits: int = 2) -> str:
    """Format a number in the paper's scientific style: 1.32E+09."""
    return f"{x:.{digits}E}"


class Table:
    """Column-aligned ASCII table with a title."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = []
        for v in values:
            if isinstance(v, float):
                if v != 0 and (abs(v) >= 1e5 or abs(v) < 1e-3):
                    row.append(format_si(v))
                else:
                    row.append(f"{v:.2f}")
            else:
                row.append(str(v))
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.columns)}"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells):
            return " | ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

        sep = "-+-".join("-" * w for w in widths)
        out = [self.title, line(self.columns), sep]
        out.extend(line(r) for r in self.rows)
        return "\n".join(out)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()
