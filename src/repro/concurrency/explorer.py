"""Deterministic schedule explorer for the two-phase commit protocol.

Drives the coroutine state machines of :mod:`repro.concurrency.model`
under a deterministic scheduler, two ways:

- **Seeded random interleavings** (:func:`run_random_schedule`): each
  seed fixes the per-thread op mix and every scheduling decision, so a
  failure replays exactly from its seed.
- **Targeted adversarial schedules** (:func:`run_adversarial_case`):
  scripted ``(thread, until-label)`` phases that force the historically
  dangerous interleavings by name — validate-then-invalidate, the
  epoch-ABA slot recycle, double remove, and the shared-allocation
  race that reintroducing the old global commit lock removal *without*
  per-thread arenas would produce.

Every run ends with a quiescent check (partition invariant +
sequential replay of the commit log) and a lock-leak check; any
:class:`~repro.concurrency.model.Violation` fails the run and carries
the trace tail for replay.  Rolled-back ops are retried a bounded
number of times and then drained *solo*; an op that still rolls back
with no other thread running is itself a violation (livelock).

CLI (used by the CI ``concurrency`` job)::

    python -m repro.concurrency.explorer --seeds 10000 --adversarial
    python -m repro.concurrency.explorer --adversarial \
        --variant shared-alloc --expect-violations   # negative control

Exit status is 0 when the outcome matches the expectation (zero
violations normally; at least one under ``--expect-violations``).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple

from repro.concurrency.model import (
    ProtocolModel,
    Violation,
    make_op,
    OpOutcome,
)

_MAX_RETRIES = 3        # contention retries before an op is deferred
_PHASE_STEP_CAP = 500   # steps one adversarial phase may take
_RANDOM_STEP_CAP = 5000  # steps the random phase may take


@dataclass
class RunResult:
    """Outcome of one scheduled run (one seed or one adversarial case)."""

    name: str
    steps: int
    committed: int
    rollbacks: int
    noops: int
    violations: List[Violation]
    trace: List[str] = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe_failure(self, tail: int = 40) -> str:
        lines = [f"run {self.name}: {len(self.violations)} violation(s)"]
        lines += [f"  {v}" for v in self.violations]
        lines.append(f"  trace tail ({min(tail, len(self.trace))} of "
                     f"{len(self.trace)} steps):")
        lines += [f"    {t}" for t in self.trace[-tail:]]
        return "\n".join(lines)


@dataclass
class AdversarialCase:
    """A scripted schedule: run ``thread`` until it yields ``label``."""

    name: str
    description: str
    thread_ops: Sequence[Sequence[Tuple[str, int]]]
    schedule: Sequence[Tuple[int, str]]
    initial_sites: Tuple[int, ...] = (0, 4, 8)


@dataclass
class ExploreResult:
    """Aggregate of an explorer invocation."""

    runs: int
    committed: int
    rollbacks: int
    variant: str
    failures: List[RunResult]
    elapsed: float

    @property
    def n_violations(self) -> int:
        return sum(len(r.violations) for r in self.failures)


class _ThreadState:
    __slots__ = ("tid", "queue", "gen", "out", "opdesc", "cur")

    def __init__(self, tid: int,
                 ops: Sequence[Tuple[str, int]]) -> None:
        self.tid = tid
        # queue entries: (kind, arg, retries-so-far)
        self.queue: Deque[Tuple[str, int, int]] = deque(
            (k, a, 0) for k, a in ops)
        self.gen = None
        self.out: Optional[OpOutcome] = None
        self.opdesc = ""
        self.cur: Optional[Tuple[str, int, int]] = None

    @property
    def runnable(self) -> bool:
        return self.gen is not None or bool(self.queue)


class _Scheduler:
    """Advances thread state machines one yield at a time."""

    def __init__(self, model: ProtocolModel,
                 thread_ops: Sequence[Sequence[Tuple[str, int]]]) -> None:
        self.model = model
        self.threads = [_ThreadState(tid, ops)
                        for tid, ops in enumerate(thread_ops)]
        self.trace: List[str] = []
        self.deferred: List[Tuple[int, str, int]] = []
        self.committed = 0
        self.rollbacks = 0
        self.noops = 0

    # -- single-step machinery -----------------------------------------
    def _start_next(self, ts: _ThreadState) -> bool:
        if not ts.queue:
            return False
        kind, arg, tries = ts.queue.popleft()
        ts.out = OpOutcome()
        ts.gen = make_op(self.model, ts.tid, kind, arg, ts.out)
        ts.opdesc = f"{kind}({arg})" + (f"#retry{tries}" if tries else "")
        ts.cur = (kind, arg, tries)
        return True

    def advance(self, ts: _ThreadState) -> Optional[str]:
        """One step of ``ts``; returns the yielded label, None if op ended."""
        if ts.gen is None and not self._start_next(ts):
            return None
        self.model.step += 1
        try:
            label = next(ts.gen)
        except StopIteration:
            label = None
        if label is None:
            status = ts.out.status
            self.trace.append(
                f"{self.model.step:5d} t{ts.tid} {ts.opdesc} -> {status}")
            self._finish(ts, status)
        else:
            self.trace.append(
                f"{self.model.step:5d} t{ts.tid} {ts.opdesc} {label}")
        return label

    def _finish(self, ts: _ThreadState, status: str) -> None:
        kind, arg, tries = ts.cur
        ts.gen = None
        ts.cur = None
        if status == "committed":
            self.committed += 1
        elif status == "noop":
            self.noops += 1
        else:
            self.rollbacks += 1
            if tries + 1 < _MAX_RETRIES:
                ts.queue.appendleft((kind, arg, tries + 1))
            else:
                self.deferred.append((ts.tid, kind, arg))

    # -- drain / final checks ------------------------------------------
    def drain_solo(self) -> None:
        """Finish every remaining op with no interleaving.

        Solo there is no contention and no invalidation window, so a
        rollback here means the op can never make progress: livelock.
        """
        model = self.model
        for ts in self.threads:
            # Rollbacks re-queue through _finish until the retry cap
            # moves them to `deferred`, which is flagged below.
            while ts.runnable:
                self.advance(ts)
        for tid, kind, arg in self.deferred:
            done = False
            for _attempt in range(2):
                out = OpOutcome()
                gen = make_op(model, tid, kind, arg, out)
                for label in gen:
                    model.step += 1
                    self.trace.append(
                        f"{model.step:5d} t{tid} {kind}({arg})"
                        f"[solo] {label}")
                if out.status == "committed":
                    self.committed += 1
                    done = True
                    break
                if out.status == "noop":
                    self.noops += 1
                    done = True
                    break
                self.rollbacks += 1
            if not done:
                model._flag(
                    "livelock",
                    f"t{tid} {kind}({arg}) rolls back with no other "
                    f"thread running")
        self.deferred.clear()

    def finalize(self) -> None:
        model = self.model
        if model.locks:
            model._flag("deadlock",
                        f"locks leaked at quiescence: {model.locks}")
        for t in model.shared_free + [s for a in model.arenas
                                      for s in a.free]:
            if model.slots[t].arc is not None:
                model._flag("double-free",
                            f"live slot {t} ({model.slots[t].arc}) "
                            f"sits on a free list")
        model.check_quiescent()


def _result(name: str, sched: _Scheduler) -> RunResult:
    return RunResult(
        name=name,
        steps=sched.model.step,
        committed=sched.committed,
        rollbacks=sched.rollbacks,
        noops=sched.noops,
        violations=list(sched.model.violations),
        trace=sched.trace,
    )


# ----------------------------------------------------------------------
# random interleavings
# ----------------------------------------------------------------------
def run_random_schedule(seed: int, variant: str = "arenas",
                        n_threads: int = 2, n_ops: int = 8,
                        n_pos: int = 12) -> RunResult:
    """One fully deterministic run: ``seed`` fixes ops AND schedule."""
    rng = random.Random(seed)
    model = ProtocolModel(n_pos=n_pos, n_threads=n_threads,
                          variant=variant)
    thread_ops = []
    for _tid in range(n_threads):
        ops = []
        for _ in range(n_ops):
            if rng.random() < 0.6:
                ops.append(("insert", rng.randrange(n_pos)))
            else:
                ops.append(("remove", rng.randrange(n_pos)))
        thread_ops.append(ops)
    sched = _Scheduler(model, thread_ops)
    while model.step < _RANDOM_STEP_CAP:
        runnable = [ts for ts in sched.threads if ts.runnable]
        if not runnable:
            break
        sched.advance(rng.choice(runnable))
    sched.drain_solo()
    sched.finalize()
    return _result(f"seed={seed}", sched)


# ----------------------------------------------------------------------
# adversarial corpus
# ----------------------------------------------------------------------
def adversarial_corpus() -> List[AdversarialCase]:
    """The targeted schedules; every one is a proven-dangerous shape."""
    return [
        AdversarialCase(
            name="lock-then-invalidate",
            description=("T1 removes the cavity T0 has locked; the "
                         "vertex locks must force T1 to roll back"),
            thread_ops=[[("insert", 2)], [("remove", 4)]],
            schedule=[(0, "locked"), (1, "done"), (0, "done")],
        ),
        AdversarialCase(
            name="validate-then-invalidate",
            description=("T1 retriangulates between T0's validate and "
                         "commit; only the locks stand in the way"),
            thread_ops=[[("insert", 2)], [("remove", 4)]],
            schedule=[(0, "validated"), (1, "done"), (0, "done")],
        ),
        AdversarialCase(
            name="epoch-aba",
            description=("T1 kills and recycles T0's recorded slot "
                         "between read and validate; the epoch bump is "
                         "the only thing that exposes the swap"),
            thread_ops=[[("insert", 2)],
                        [("remove", 4), ("insert", 4)]],
            schedule=[(0, "read"), (1, "done"), (1, "done"),
                      (0, "done")],
        ),
        AdversarialCase(
            name="double-remove",
            description=("both threads remove the same site; exactly "
                         "one may win, the other must roll back or "
                         "noop"),
            thread_ops=[[("remove", 4)], [("remove", 4)]],
            schedule=[(0, "locked"), (1, "done"), (0, "done"),
                      (1, "done")],
        ),
        AdversarialCase(
            name="duplicate-insert",
            description=("both threads insert the same site; the "
                         "aliveness re-check under locks must turn the "
                         "loser into a noop"),
            thread_ops=[[("insert", 2)], [("insert", 2)]],
            schedule=[(0, "validated"), (1, "done"), (0, "done")],
        ),
        AdversarialCase(
            name="alloc-race",
            description=("two disjoint-cavity commits allocate "
                         "concurrently; without per-thread arenas the "
                         "shared free-list/tail claim is a lost-update "
                         "machine"),
            thread_ops=[[("insert", 1)], [("insert", 7)]],
            schedule=[(0, "validated"), (1, "validated"),
                      (0, "alloc-read"), (1, "done"), (0, "done")],
            initial_sites=(0, 3, 6, 9),
        ),
        AdversarialCase(
            name="free-then-refill",
            description=("T0 frees cavity slots while T1's insert is "
                         "mid-allocation; recycled ids must never "
                         "collide with a concurrent claim"),
            thread_ops=[[("remove", 4)], [("insert", 10)]],
            schedule=[(1, "validated"), (0, "done"), (1, "done")],
        ),
    ]


def run_adversarial_case(case: AdversarialCase,
                         variant: str = "arenas") -> RunResult:
    """Run one scripted schedule, then drain solo and check invariants.

    A phase ``(tid, label)`` advances thread ``tid`` until it yields
    ``label`` or runs out of work; a label the variant never emits
    (e.g. ``alloc-read`` under arenas) simply runs the thread to
    completion, so every case is valid for every variant.
    """
    model = ProtocolModel(n_threads=len(case.thread_ops),
                          variant=variant,
                          initial_sites=case.initial_sites)
    sched = _Scheduler(model, case.thread_ops)
    for tid, until in case.schedule:
        ts = sched.threads[tid]
        for _ in range(_PHASE_STEP_CAP):
            if not ts.runnable:
                break
            label = sched.advance(ts)
            if label == until:
                break
            # "done" = the op actually completed (locks released in
            # its finally), which advance() reports as label None
            # with the generator cleared.
            if label is None and ts.gen is None and until == "done":
                break
        else:
            model._flag("livelock",
                        f"phase (t{tid}, {until!r}) exceeded "
                        f"{_PHASE_STEP_CAP} steps")
    sched.drain_solo()
    sched.finalize()
    return _result(f"adversarial:{case.name}", sched)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def explore(seeds: int = 1000, adversarial: bool = True,
            variant: str = "arenas", n_threads: int = 2,
            n_ops: int = 8) -> ExploreResult:
    """Run the full corpus: ``seeds`` random runs + adversarial cases."""
    t0 = time.perf_counter()
    failures: List[RunResult] = []
    committed = rollbacks = runs = 0
    if adversarial:
        for case in adversarial_corpus():
            r = run_adversarial_case(case, variant=variant)
            runs += 1
            committed += r.committed
            rollbacks += r.rollbacks
            if not r.ok:
                failures.append(r)
    for seed in range(seeds):
        r = run_random_schedule(seed, variant=variant,
                                n_threads=n_threads, n_ops=n_ops)
        runs += 1
        committed += r.committed
        rollbacks += r.rollbacks
        if not r.ok:
            failures.append(r)
    return ExploreResult(
        runs=runs,
        committed=committed,
        rollbacks=rollbacks,
        variant=variant,
        failures=failures,
        elapsed=time.perf_counter() - t0,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.concurrency.explorer",
        description="deterministic schedule explorer for the "
                    "two-phase commit protocol")
    ap.add_argument("--seeds", type=int, default=1000,
                    help="number of seeded random interleavings")
    ap.add_argument("--adversarial", action="store_true",
                    help="also run the targeted adversarial corpus")
    ap.add_argument("--variant", default="arenas",
                    help="protocol variant (arenas | shared-alloc | "
                         "no-epoch-bump | no-locks)")
    ap.add_argument("--threads", type=int, default=2)
    ap.add_argument("--ops", type=int, default=8,
                    help="ops per thread per random run")
    ap.add_argument("--expect-violations", action="store_true",
                    help="negative-control mode: exit 0 only if the "
                         "corpus DOES catch at least one violation")
    ap.add_argument("--max-reports", type=int, default=3,
                    help="failing runs to print in full")
    args = ap.parse_args(argv)

    res = explore(seeds=args.seeds, adversarial=args.adversarial,
                  variant=args.variant, n_threads=args.threads,
                  n_ops=args.ops)
    print(f"explorer: variant={res.variant} runs={res.runs} "
          f"committed={res.committed} rollbacks={res.rollbacks} "
          f"violations={res.n_violations} "
          f"({len(res.failures)} failing runs) "
          f"in {res.elapsed:.2f}s")
    for r in res.failures[:args.max_reports]:
        print(r.describe_failure())
    if len(res.failures) > args.max_reports:
        print(f"... and {len(res.failures) - args.max_reports} more "
              f"failing runs")

    if args.expect_violations:
        if res.n_violations:
            print("negative control OK: the corpus caught the bug")
            return 0
        print("negative control FAILED: buggy variant ran clean")
        return 1
    return 1 if res.failures else 0


if __name__ == "__main__":
    sys.exit(main())
