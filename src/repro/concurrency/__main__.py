"""``python -m repro.concurrency`` — run the schedule explorer CLI."""

import sys

from repro.concurrency.explorer import main

sys.exit(main())
