"""Protocol model for the two-phase speculative commit path.

The real triangulation is far too large to schedule exhaustively, so
the protocol is modeled on a miniature structure with the same shape:
a ring of ``n_pos`` integer positions, some of which are alive *sites*
(vertices).  Live *cells* (the tet stand-ins) are the arcs between
ring-adjacent alive sites, stored in epoch-stamped slots recycled
through free lists — the live cells partition the ring at every
quiescent point, which is the model's topology invariant.

Two operations mirror the kernel's two-phase insert/remove:

- ``insert(p)``: optimistic scan finds the arc ``(a, b)`` containing
  position ``p`` (recording the slot's epoch), locks ``a`` and ``b``
  (the new site ``p`` is *not* locked, exactly like ``vnew`` in the
  real kernel), re-validates the recorded ``(slot, epoch)`` pair,
  allocates two slots, bumps their epochs *before* writing the rows
  ``(a, p)``/``(p, b)``, kills the old slot, releases.
- ``remove(s)``: optimistic scan finds the two arcs meeting at ``s``,
  locks ``a, s, b``, validates both pairs, allocates one slot for the
  merged arc ``(a, b)``, kills both cavity slots, frees the site.

Every shared-memory access sits behind a ``yield`` (a *step*), so the
scheduler in :mod:`repro.concurrency.explorer` can interleave threads
at the granularity where real races live.

Slot allocation goes through per-thread arenas (private free list +
a chunk of fresh slots claimed from the shared tail in one atomic
step), mirroring :class:`repro.delaunay.mesh.ThreadAllocArena`.
``variant`` selects deliberately broken protocols used as negative
controls:

- ``"shared-alloc"`` — the global-lock-removal-*without*-arenas bug:
  slots come from the shared free list / shared tail with a yield
  between the read and the write of the pop, so two threads can
  allocate the same slot (exactly what dropping ``_commit_lock``
  without private arenas would do).
- ``"no-epoch-bump"`` — slot recycling does not bump the epoch, so a
  stale optimistic read survives validation.
- ``"no-locks"`` — the lock phase is skipped entirely
  (validate-then-invalidate races commit on top of each other).

The model self-checks continuously (double alloc, double free, kill of
a dead slot) and at quiescence (partition invariant + sequential
replay of the commit log), reporting :class:`Violation` instead of
raising so the explorer can attach the schedule trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

VARIANTS = ("arenas", "shared-alloc", "no-epoch-bump", "no-locks")

_CHUNK = 4  # fresh slots claimed per arena refill (small: forces reuse)


@dataclass
class Violation:
    """A detected protocol failure."""

    kind: str          # "double-alloc" | "double-free" | "lost-update" |
    #                    "partition" | "replay" | "deadlock" | "livelock"
    detail: str
    step: int          # global step index at detection time

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[step {self.step}] {self.kind}: {self.detail}"


class _Slot:
    __slots__ = ("arc", "epoch")

    def __init__(self) -> None:
        self.arc: Optional[Tuple[int, int]] = None  # None = dead row
        self.epoch = -1  # first allocation bumps to 0, like the mesh


class _Arena:
    __slots__ = ("free", "cursor", "end")

    def __init__(self) -> None:
        self.free: List[int] = []
        self.cursor = 0
        self.end = 0


class ProtocolModel:
    """Shared state + invariant checking for one scheduled run."""

    def __init__(self, n_pos: int = 12, n_threads: int = 2,
                 variant: str = "arenas",
                 initial_sites: Tuple[int, ...] = (0, 4, 8)) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}")
        self.n_pos = n_pos
        self.variant = variant
        self.slots: List[_Slot] = [_Slot() for _ in range(64)]
        self.top = 0                      # shared fresh-slot tail
        self.shared_free: List[int] = []  # shared slot free list
        self.locks: Dict[int, int] = {}   # site -> owning thread
        self.site_alive = [False] * n_pos
        self.arenas = [_Arena() for _ in range(n_threads)]
        self.violations: List[Violation] = []
        self.step = 0                     # advanced by the scheduler
        self.commit_log: List[dict] = []
        # (slot, epoch) -> committed creation; kills must hit live pairs
        self._live_pairs: Dict[int, int] = {}
        self.initial_cells: List[Tuple[int, int]] = []
        for s in initial_sites:
            self.site_alive[s] = True
        sites = sorted(initial_sites)
        for i, a in enumerate(sites):
            b = sites[(i + 1) % len(sites)]
            t = self._bootstrap_slot()
            self.slots[t].arc = (a, b)
            self.slots[t].epoch = 0
            self._live_pairs[t] = 0
            self.initial_cells.append((a, b))

    # -- bootstrap ------------------------------------------------------
    def _bootstrap_slot(self) -> int:
        t = self.top
        self.top = t + 1
        return t

    # -- invariant hooks ------------------------------------------------
    def _flag(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(kind, detail, self.step))

    def note_alloc(self, t: int, tid: int) -> None:
        if self.slots[t].arc is not None:
            self._flag("double-alloc",
                       f"thread {tid} allocated live slot {t} "
                       f"(arc {self.slots[t].arc})")

    def note_free_slot(self, t: int, tid: int) -> None:
        on_free = t in self.shared_free or any(
            t in a.free for a in self.arenas)
        if on_free:
            self._flag("double-free",
                       f"thread {tid} freed slot {t} twice")

    def note_kill(self, t: int, expected_arc: Tuple[int, int],
                  tid: int) -> None:
        slot = self.slots[t]
        if slot.arc is None:
            self._flag("lost-update",
                       f"thread {tid} killed already-dead slot {t}")
        elif slot.arc != expected_arc:
            self._flag("lost-update",
                       f"thread {tid} killed slot {t} holding "
                       f"{slot.arc}, expected {expected_arc}")

    def note_free_site(self, s: int, tid: int) -> None:
        if not self.site_alive[s]:
            self._flag("double-free",
                       f"thread {tid} freed dead site {s}")

    # -- final checks ---------------------------------------------------
    def live_cells(self) -> List[Tuple[int, int]]:
        return sorted(s.arc for s in self.slots if s.arc is not None)

    def check_quiescent(self) -> None:
        """Partition + replay invariants; call when no op is in flight."""
        cells = self.live_cells()
        sites = sorted(p for p in range(self.n_pos) if self.site_alive[p])
        lefts = sorted(c[0] for c in cells)
        rights = sorted(c[1] for c in cells)
        if not (lefts == sites and rights == sites):
            self._flag("partition",
                       f"cells {cells} do not partition ring over "
                       f"sites {sites}")
        # Sequential replay of the commit log must reproduce the final
        # cell multiset: any lost update diverges here even if the
        # structural check above happens to pass.
        state = sorted(self.initial_cells)
        for rec in self.commit_log:
            for arc in rec["killed"]:
                if arc in state:
                    state.remove(arc)
                else:
                    self._flag("replay",
                               f"op {rec['op']} killed {arc} absent from "
                               f"sequential replay state")
            state.extend(rec["created"])
        if sorted(state) != cells:
            self._flag("replay",
                       f"replay produced {sorted(state)}, live cells are "
                       f"{cells}")

    # -- allocation (the tentpole under test) ---------------------------
    def alloc_slot(self, tid: int) -> Iterator[Tuple[str, Optional[int]]]:
        """Allocate one slot; yields steps, final yield carries the id.

        Generator protocol: every yielded item is ``(label, None)``
        except the last, which is ``("alloced", t)``.
        """
        if self.variant == "shared-alloc":
            # Buggy: shared structures without the commit lock.  The
            # read and the write of the pop are separate steps, so two
            # threads can pop the same slot / claim the same tail id.
            if self.shared_free:
                t = self.shared_free[-1]     # read
                yield ("alloc-read", None)
                if self.shared_free and self.shared_free[-1] == t:
                    self.shared_free.pop()   # write, possibly stale
            else:
                t = self.top                 # read
                yield ("alloc-read", None)
                self.top = t + 1             # write, possibly stale
                self._ensure_capacity(t)
            self.note_alloc(t, tid)
            yield ("alloced", t)
            return
        arena = self.arenas[tid]
        if arena.free:
            t = arena.free.pop()
        else:
            if arena.cursor >= arena.end:
                # Chunk refill: one atomic bump under the allocator
                # lock (single step — the short lock is kept).
                yield ("chunk-claim", None)
                arena.cursor = self.top
                self.top = arena.end = self.top + _CHUNK
                self._ensure_capacity(arena.end)
            t = arena.cursor
            arena.cursor += 1
        self.note_alloc(t, tid)
        yield ("alloced", t)

    def _ensure_capacity(self, need: int) -> None:
        while need >= len(self.slots):
            self.slots.extend(_Slot() for _ in range(len(self.slots)))

    def free_slot(self, t: int, tid: int) -> None:
        self.note_free_slot(t, tid)
        if self.variant == "shared-alloc":
            self.shared_free.append(t)
        else:
            self.arenas[tid].free.append(t)

    def write_slot(self, t: int, arc: Tuple[int, int], tid: int) -> None:
        slot = self.slots[t]
        if self.variant != "no-epoch-bump":
            slot.epoch += 1
        slot.arc = arc
        self._live_pairs[t] = slot.epoch

    def kill_slot(self, t: int, expected_arc: Tuple[int, int],
                  tid: int) -> None:
        self.note_kill(t, expected_arc, tid)
        self.slots[t].arc = None
        self._live_pairs.pop(t, None)

    # -- locks ----------------------------------------------------------
    def try_lock(self, site: int, tid: int) -> bool:
        owner = self.locks.setdefault(site, tid)
        return owner == tid

    def release_locks(self, held: List[int], tid: int) -> None:
        for site in held:
            if self.locks.get(site) == tid:
                del self.locks[site]
        held.clear()


# ----------------------------------------------------------------------
# operations as yield-point state machines
# ----------------------------------------------------------------------
class OpOutcome:
    """Mutable result cell shared between an op generator and its driver."""

    __slots__ = ("status",)

    def __init__(self) -> None:
        self.status = "pending"  # -> "committed" | "rollback" | "noop"


def _scan_arc_containing(model: ProtocolModel, p: int):
    """Optimistic scan: the live arc whose half-open span contains ``p``."""
    n = model.n_pos
    for t in range(model.top):
        arc = model.slots[t].arc
        if arc is None:
            continue
        a, b = arc
        span = (b - a) % n or n
        if (p - a) % n < span and p != a:
            return t, arc, model.slots[t].epoch
    return None


def insert_op(model: ProtocolModel, tid: int, p: int,
              out: OpOutcome) -> Iterator[str]:
    """Two-phase insert of site ``p``; yields a label per atomic step."""
    held: List[int] = []
    try:
        # ---- optimistic read (no locks); the "read" step completes
        # with the (slot, epoch) pair recorded ----
        if model.site_alive[p]:
            out.status = "noop"  # duplicate site: nothing to do
            return
        found = _scan_arc_containing(model, p)
        if found is None:
            out.status = "rollback"
            return
        t0, (a, b), e0 = found
        yield "read"
        # ---- lock phase (p itself is NOT locked, like vnew) ----
        if model.variant != "no-locks":
            for site in (a, b):
                yield "lock"
                if not model.try_lock(site, tid):
                    out.status = "rollback"
                    return
                held.append(site)
        yield "locked"
        # ---- validate (epoch + liveness, like the real kernel: the
        # row content is NOT re-read — the epoch is the ABA guard) ----
        slot = model.slots[t0]
        if slot.epoch != e0 or slot.arc is None or model.site_alive[p]:
            out.status = "rollback"
            return
        yield "validated"
        # ---- allocate (arena fast path / shared-alloc bug) ----
        new_ids = []
        for _ in range(2):
            alloc = model.alloc_slot(tid)
            for label, value in alloc:
                if label == "alloced":
                    new_ids.append(value)
                else:
                    yield label
        yield "alloced"
        # ---- commit: epoch-bump + row writes, then the kill ----
        model.site_alive[p] = True
        yield "site-live"
        model.write_slot(new_ids[0], (a, p), tid)
        yield "write"
        model.write_slot(new_ids[1], (p, b), tid)
        yield "write"
        model.kill_slot(t0, (a, b), tid)
        yield "kill"
        model.free_slot(t0, tid)
        yield "freed"
        model.commit_log.append({
            "op": f"t{tid}:insert({p})",
            "killed": [(a, b)],
            "created": [(a, p), (p, b)],
        })
        out.status = "committed"
    finally:
        model.release_locks(held, tid)


def remove_op(model: ProtocolModel, tid: int, s: int,
              out: OpOutcome) -> Iterator[str]:
    """Two-phase removal of site ``s``; merges its two arcs."""
    held: List[int] = []
    try:
        if not model.site_alive[s] or sum(model.site_alive) <= 1:
            out.status = "noop"
            return
        left = right = None
        for t in range(model.top):
            arc = model.slots[t].arc
            if arc is None:
                continue
            if arc[1] == s:
                left = (t, arc, model.slots[t].epoch)
            elif arc[0] == s:
                right = (t, arc, model.slots[t].epoch)
        if left is None or right is None:
            out.status = "rollback"
            return
        tl, (a, _), el = left
        tr, (_, b), er = right
        if a == s or b == s:
            out.status = "noop"  # last sites standing; keep >= 2 alive
            return
        yield "read"
        if model.variant != "no-locks":
            for site in (a, s, b):
                yield "lock"
                if not model.try_lock(site, tid):
                    out.status = "rollback"
                    return
                held.append(site)
        yield "locked"
        sl, sr = model.slots[tl], model.slots[tr]
        if (sl.epoch != el or sl.arc is None
                or sr.epoch != er or sr.arc is None
                or not model.site_alive[s]):
            out.status = "rollback"
            return
        yield "validated"
        alloc = model.alloc_slot(tid)
        new_id = None
        for label, value in alloc:
            if label == "alloced":
                new_id = value
            else:
                yield label
        yield "alloced"
        model.write_slot(new_id, (a, b), tid)
        yield "write"
        model.kill_slot(tl, (a, s), tid)
        yield "kill"
        model.free_slot(tl, tid)
        yield "freed"
        model.kill_slot(tr, (s, b), tid)
        yield "kill"
        model.free_slot(tr, tid)
        yield "freed"
        model.note_free_site(s, tid)
        model.site_alive[s] = False
        yield "site-dead"
        model.commit_log.append({
            "op": f"t{tid}:remove({s})",
            "killed": [(a, s), (s, b)],
            "created": [(a, b)],
        })
        out.status = "committed"
    finally:
        model.release_locks(held, tid)


def make_op(model: ProtocolModel, tid: int, kind: str, arg: int,
            out: OpOutcome) -> Iterator[str]:
    if kind == "insert":
        return insert_op(model, tid, arg, out)
    if kind == "remove":
        return remove_op(model, tid, arg, out)
    raise ValueError(f"unknown op kind {kind!r}")
