"""Deterministic schedule exploration for the speculative mesh protocol.

``repro.concurrency`` proves out lock-protocol changes (per-thread
commit arenas, two-phase insert/remove) by exhaustively *scheduling*
them rather than stress-testing and hoping: the protocol is modeled as
coroutine state machines with a yield at every shared-memory step, and
a deterministic scheduler drives seeded random interleavings plus
targeted adversarial schedules, failing on deadlock, lost update,
double free/alloc, or a topology-invariant violation.

- :mod:`repro.concurrency.model` — the protocol model: a ring of sites
  whose live cells are the arcs between them (a 1D stand-in for the
  tetrahedral mesh) mutated by two-phase insert/remove operations with
  per-thread allocation arenas, plus deliberately buggy protocol
  variants used as negative controls.
- :mod:`repro.concurrency.explorer` — the scheduler, the schedule
  corpus (random + adversarial), trace recording, and the CLI
  (``python -m repro.concurrency.explorer``).
"""

from repro.concurrency.explorer import (  # noqa: F401
    AdversarialCase,
    ExploreResult,
    RunResult,
    adversarial_corpus,
    explore,
    run_adversarial_case,
    run_random_schedule,
)
from repro.concurrency.model import (  # noqa: F401
    ProtocolModel,
    Violation,
)
