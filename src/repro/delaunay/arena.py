"""Named shared-memory arenas for zero-copy mesh storage across processes.

A :class:`SharedArena` is a family of ``multiprocessing.shared_memory``
segments under one *arena name*:

* the **manifest** segment (the arena name itself) holds a small
  segment table — ``tag -> (segment name, shape, dtype, fill)`` — plus
  a generation counter, serialized as length-prefixed JSON;
* each **column** lives in its own data segment (``<name>-s<k>``) and
  is exposed as a numpy ndarray view over the mapped buffer.

The segment table is the growth handshake: shared-memory segments
cannot be resized in place, so :meth:`realloc` allocates a fresh
segment, copies the old rows, publishes the new entry in the manifest
(bumping the generation), and unlinks the old segment immediately — the
old mapping stays valid for any array views still alive in this
process, but the *name* is gone, so a crashed process can never leak
it.  A peer that wants the current columns re-reads the manifest (one
small read) and re-attaches whatever segments changed; in the meshing
service the re-read is synchronized by the worker's completion message,
so attachers never race a writer.

:class:`~repro.delaunay.mesh.MeshArrays` allocates its SoA columns
through an arena when one is ambient (:func:`arena_scope`), which is
how worker processes mesh directly into shared memory: the numpy views
are ordinary aligned C-contiguous arrays, so the C accelerator binds
its per-call pointers to the mapped buffers exactly as it does for
heap-backed arrays — per process, per segment generation.

Lifecycle discipline (and why there are no leaks):

* the *creator* (a worker process) allocates and writes;
* the *owner* (the service, in the parent process) attaches after the
  worker's completion handshake, copies what it needs, then calls
  :meth:`unlink_all`;
* if the creator dies mid-job, the owner calls :func:`reclaim`, which
  unlinks every segment listed in the manifest **and** sweeps
  ``/dev/shm`` for stragglers matching the arena's name (covers a
  crash between "segment created" and "manifest published").

Segments are explicitly *unregistered* from Python's
``resource_tracker``: the tracker assumes exactly one owner per
segment and double-unlinks (with warnings) under our create-in-child /
reclaim-in-parent split.  Ownership here is managed by the service, not
the tracker.
"""

from __future__ import annotations

import contextlib
import json
import struct
import threading
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None
    resource_tracker = None

#: Every arena segment name starts with this; leak checks and the
#: /dev/shm sweep key on it.
ARENA_PREFIX = "repro-arena-"

_MANIFEST_CAP = 1 << 16  # 64 KiB of JSON: hundreds of columns, plenty
_HEADER = struct.Struct("<QQ")  # (payload length, generation)


class ArenaError(RuntimeError):
    """Shared-memory arena creation/attach/consistency failure."""


def available() -> bool:
    """True iff named shared memory actually works on this host
    (probes with a real segment; /dev/shm may be absent or full)."""
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    _untrack(probe)
    try:
        probe.close()
        _unlink(probe)
    except OSError:  # pragma: no cover - probe cleanup is best-effort
        pass
    return True


def _untrack(shm) -> None:
    """Opt this segment out of resource_tracker auto-cleanup; the
    arena owner unlinks explicitly (see module docstring)."""
    if resource_tracker is None:  # pragma: no cover
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _unlink(shm) -> None:
    """Unlink a segment we untracked: re-register first so the
    tracker's UNREGISTER sent by ``unlink()`` finds its entry instead
    of logging a KeyError traceback."""
    if resource_tracker is not None:
        try:
            resource_tracker.register(shm._name, "shared_memory")
        except Exception:  # pragma: no cover
            pass
    shm.unlink()


def _open(name: str, size: int = 0, create: bool = False):
    shm = shared_memory.SharedMemory(
        name=name, create=create, size=size if create else 0
    )
    _untrack(shm)
    return shm


class _Column:
    __slots__ = ("tag", "seg", "shm", "array", "shape", "dtype", "fill")

    def __init__(self, tag, seg, shm, array, shape, dtype, fill):
        self.tag = tag
        self.seg = seg
        self.shm = shm
        self.array = array
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.fill = fill


class SharedArena:
    """One named family of shared-memory segments (see module docstring).

    Create with :meth:`create` in the writing process, :meth:`attach`
    in a reader.  Not thread-safe for concurrent writers (the meshing
    worker is single-threaded per job); attach-after-handshake is safe.
    """

    def __init__(self, name: str, manifest, *, owner: bool):
        self.name = name
        self._manifest = manifest
        self._owner = owner
        self._columns: Dict[str, _Column] = {}
        self._retired: list = []  # unlinked-but-mapped old generations
        self._gen = 0
        self._next_seg = 0
        self._next_mesh = 0
        self._closed = False

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, name: str) -> "SharedArena":
        if shared_memory is None:
            raise ArenaError("multiprocessing.shared_memory unavailable")
        if not name.startswith(ARENA_PREFIX):
            raise ArenaError(f"arena name must start with {ARENA_PREFIX!r}")
        try:
            manifest = _open(name, _MANIFEST_CAP, create=True)
        except FileExistsError:
            raise ArenaError(f"arena {name!r} already exists") from None
        except (OSError, ValueError) as exc:
            raise ArenaError(f"cannot create arena {name!r}: {exc}") from None
        arena = cls(name, manifest, owner=True)
        arena._publish()
        return arena

    @classmethod
    def attach(cls, name: str) -> "SharedArena":
        if shared_memory is None:
            raise ArenaError("multiprocessing.shared_memory unavailable")
        try:
            manifest = _open(name)
        except (OSError, ValueError) as exc:
            raise ArenaError(f"cannot attach arena {name!r}: {exc}") from None
        arena = cls(name, manifest, owner=False)
        arena.refresh()
        return arena

    # -- manifest (the segment table) ----------------------------------
    def table(self) -> Dict[str, dict]:
        """Current segment table, ``tag -> column description``."""
        return {
            tag: {
                "seg": col.seg,
                "shape": list(col.shape),
                "dtype": col.dtype.str,
                "fill": col.fill,
            }
            for tag, col in self._columns.items()
        }

    def _publish(self) -> None:
        """Write the segment table into the manifest segment."""
        self._gen += 1
        payload = json.dumps({
            "v": 1,
            "gen": self._gen,
            "next_seg": self._next_seg,
            "columns": self.table(),
        }).encode("utf-8")
        if len(payload) > _MANIFEST_CAP - _HEADER.size:
            raise ArenaError("segment table exceeds manifest capacity")
        buf = self._manifest.buf
        # Payload first, then the header that makes it visible: a reader
        # (or reclaim) that wins a race sees either the old table or the
        # new one, never a torn payload.
        buf[_HEADER.size:_HEADER.size + len(payload)] = payload
        buf[:_HEADER.size] = _HEADER.pack(len(payload), self._gen)

    @staticmethod
    def _read_manifest(manifest) -> dict:
        buf = manifest.buf
        length, gen = _HEADER.unpack_from(buf, 0)
        if length == 0 or length > _MANIFEST_CAP - _HEADER.size:
            raise ArenaError("manifest empty or corrupt")
        doc = json.loads(bytes(buf[_HEADER.size:_HEADER.size + length]))
        if doc.get("gen") != gen:
            raise ArenaError("manifest generation mismatch (torn write)")
        return doc

    def refresh(self) -> None:
        """Re-read the segment table and (re-)map changed segments —
        the attacher's half of the growth handshake."""
        doc = self._read_manifest(self._manifest)
        self._gen = int(doc.get("gen", 0))
        self._next_seg = int(doc.get("next_seg", 0))
        fresh: Dict[str, _Column] = {}
        for tag, entry in doc["columns"].items():
            old = self._columns.get(tag)
            if old is not None and old.seg == entry["seg"]:
                fresh[tag] = old
                continue
            shm = _open(entry["seg"])
            shape = tuple(entry["shape"])
            dtype = np.dtype(entry["dtype"])
            array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
            fresh[tag] = _Column(tag, entry["seg"], shm, array,
                                 shape, dtype, entry.get("fill"))
        retired = [c for t, c in self._columns.items()
                   if t not in fresh or fresh[t] is not c]
        self._retired.extend(retired)
        self._columns = fresh

    # -- allocation ----------------------------------------------------
    def _new_segment(self, nbytes: int):
        seg = f"{self.name}-s{self._next_seg}"
        self._next_seg += 1
        try:
            return seg, _open(seg, max(1, nbytes), create=True)
        except (OSError, ValueError) as exc:
            raise ArenaError(
                f"cannot allocate {nbytes} bytes for {seg!r}: {exc}"
            ) from None

    def alloc(self, tag: str, shape: Tuple[int, ...], dtype,
              fill=None) -> np.ndarray:
        """New shared column ``tag``; returns the ndarray view."""
        if tag in self._columns:
            raise ArenaError(f"column {tag!r} already allocated")
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        seg, shm = self._new_segment(nbytes)
        array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        if fill is not None:
            array[...] = fill
        # Segments arrive zero-filled (ftruncate), so fill=None == zeros.
        self._columns[tag] = _Column(tag, seg, shm, array, shape, dtype,
                                     fill)
        self._publish()
        return array

    def realloc(self, tag: str, shape: Tuple[int, ...]) -> np.ndarray:
        """Grow column ``tag`` to ``shape``: fresh segment, rows copied,
        extension filled, manifest republished, old segment unlinked."""
        col = self._columns.get(tag)
        if col is None:
            raise ArenaError(f"column {tag!r} not allocated")
        dtype = col.dtype
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        seg, shm = self._new_segment(nbytes)
        array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        if col.fill is not None:
            array[...] = col.fill
        n = min(shape[0], col.shape[0])
        array[:n] = col.array[:n]
        self._columns[tag] = _Column(tag, seg, shm, array, shape, dtype,
                                     col.fill)
        self._publish()
        # The old name dies now (no leak window); the mapping survives
        # for any live views and is dropped at close().
        try:
            _unlink(col.shm)
        except OSError:
            pass
        self._retired.append(col)
        return array

    def get(self, tag: str) -> np.ndarray:
        """The current ndarray view of column ``tag`` (attach side)."""
        col = self._columns.get(tag)
        if col is None:
            raise ArenaError(f"no column {tag!r} in arena {self.name!r}")
        return col.array

    def tags(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    def new_mesh_id(self) -> int:
        """Distinct namespace id per MeshArrays sharing this arena."""
        mid = self._next_mesh
        self._next_mesh += 1
        return mid

    @property
    def nbytes(self) -> int:
        return sum(
            int(np.prod(c.shape, dtype=np.int64)) * c.dtype.itemsize
            for c in self._columns.values()
        )

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mappings (does not remove the segments).

        Columns whose ndarray views are still referenced elsewhere keep
        their mapping alive (``BufferError`` is swallowed); the memory
        goes when the views die or the process exits.
        """
        if self._closed:
            return
        self._closed = True
        for col in list(self._columns.values()) + self._retired:
            col.array = None
            with contextlib.suppress(BufferError, OSError):
                col.shm.close()
        with contextlib.suppress(BufferError, OSError):
            self._manifest.close()

    def unlink_all(self) -> None:
        """Remove every segment of this arena from the system."""
        for col in list(self._columns.values()):
            with contextlib.suppress(OSError):
                _unlink(col.shm)
        with contextlib.suppress(OSError):
            _unlink(self._manifest)
        self.close()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def reclaim(name: str) -> int:
    """Best-effort removal of every segment of arena ``name``.

    Safe to call on a live, dead, or never-created arena; used by the
    service when a worker process crashes or is killed mid-job.
    Returns the number of segments unlinked.
    """
    if shared_memory is None:
        return 0
    removed = 0
    segs = []
    try:
        manifest = _open(name)
    except (OSError, ValueError):
        manifest = None
    if manifest is not None:
        try:
            doc = SharedArena._read_manifest(manifest)
            segs = [e["seg"] for e in doc.get("columns", {}).values()]
        except (ArenaError, Exception):
            segs = []
    for seg in segs:
        try:
            shm = _open(seg)
        except (OSError, ValueError):
            continue
        with contextlib.suppress(OSError):
            _unlink(shm)
            removed += 1
        with contextlib.suppress(BufferError, OSError):
            shm.close()
    if manifest is not None:
        with contextlib.suppress(OSError):
            _unlink(manifest)
            removed += 1
        with contextlib.suppress(BufferError, OSError):
            manifest.close()
    # Sweep stragglers: segments created after the last manifest publish
    # (crash inside alloc/realloc) are reachable only by name pattern.
    removed += _sweep(name + "-s")
    return removed


def sweep(prefix: str) -> int:
    """Unlink every shared-memory segment whose name starts with
    ``prefix`` (Linux ``/dev/shm`` only).  The process pool calls this
    at shutdown with its own pid-scoped prefix as a final backstop."""
    return _sweep(prefix)


def _sweep(prefix: str) -> int:
    """Unlink /dev/shm entries starting with ``prefix`` (Linux only)."""
    import os

    removed = 0
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return 0
    for entry in entries:
        if not entry.startswith(prefix):
            continue
        try:
            shm = _open(entry)
        except (OSError, ValueError):
            continue
        with contextlib.suppress(OSError):
            _unlink(shm)
            removed += 1
        with contextlib.suppress(BufferError, OSError):
            shm.close()
    return removed


def orphaned(prefix: str = ARENA_PREFIX) -> list:
    """Names of shared-memory segments currently matching ``prefix``
    (leak checks in tests; Linux ``/dev/shm`` only, else empty)."""
    import os

    try:
        return sorted(e for e in os.listdir("/dev/shm")
                      if e.startswith(prefix))
    except OSError:
        return []


# ---------------------------------------------------------------------------
# ambient arena: how MeshArrays finds its allocator
# ---------------------------------------------------------------------------

_ambient = threading.local()


def current_arena() -> Optional[SharedArena]:
    """The arena new :class:`MeshArrays` instances allocate from, if
    one is in scope on this thread."""
    return getattr(_ambient, "arena", None)


@contextlib.contextmanager
def arena_scope(arena: Optional[SharedArena]) -> Iterator[None]:
    """Make ``arena`` ambient for MeshArrays built in this block."""
    prev = getattr(_ambient, "arena", None)
    _ambient.arena = arena
    try:
        yield
    finally:
        _ambient.arena = prev


__all__ = [
    "ARENA_PREFIX",
    "ArenaError",
    "SharedArena",
    "arena_scope",
    "available",
    "current_arena",
    "orphaned",
    "reclaim",
    "sweep",
]
