"""Low-level tetrahedral mesh storage with face-to-face adjacency.

Storage layout (struct-of-arrays, free-list recycled):

* ``points[v]``          – vertex coordinates as a 3-tuple of floats.
* ``timestamps[v]``      – global insertion counter, used by vertex
                           removal to replay link vertices in insertion
                           order (paper Section 4.2).
* ``alive_vertex[v]``    – False once a vertex has been removed.
* ``tet_verts[t]``       – 4-tuple of vertex ids (positively oriented)
                           or ``None`` for dead/recycled slots.
* ``tet_adj[t]``         – list of 4 neighbor tet ids; ``tet_adj[t][i]``
                           is the tet sharing the face opposite local
                           vertex ``i``; ``HULL`` (-1) on the hull.
* ``v2t[v]``             – one live incident tet per vertex (point-location
                           and ball-collection anchor).

All tetrahedra are stored positively oriented (``orient3d > 0``), which
the in-sphere predicate requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

HULL = -1  # adjacency marker: face on the convex hull (virtual box surface)
DEAD = -2  # adjacency marker used transiently for invalidated slots

Point = Tuple[float, float, float]


@dataclass(frozen=True)
class Tet:
    """Immutable view of a tetrahedron handed to callers."""

    id: int
    verts: Tuple[int, int, int, int]


class MeshArrays:
    """Growable struct-of-arrays store for vertices and tetrahedra."""

    __slots__ = (
        "points",
        "timestamps",
        "alive_vertex",
        "tet_verts",
        "tet_adj",
        "tet_epoch",
        "v2t",
        "_free_tets",
        "_free_verts",
        "_clock",
        "n_live_tets",
    )

    def __init__(self) -> None:
        self.points: List[Point] = []
        self.timestamps: List[int] = []
        self.alive_vertex: List[bool] = []
        self.tet_verts: List[Optional[Tuple[int, int, int, int]]] = []
        self.tet_adj: List[List[int]] = []
        # Epoch counter per slot: bumps every time the slot is reused, so
        # stale references (e.g. Poor Element List entries) can detect
        # that "their" tet died even if the id was recycled.
        self.tet_epoch: List[int] = []
        self.v2t: List[int] = []
        self._free_tets: List[int] = []
        self._free_verts: List[int] = []
        self._clock = 0
        self.n_live_tets = 0

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(self, p: Sequence[float]) -> int:
        """Store a new vertex and stamp it with the insertion clock."""
        self._clock += 1
        pt = (float(p[0]), float(p[1]), float(p[2]))
        if self._free_verts:
            v = self._free_verts.pop()
            self.points[v] = pt
            self.timestamps[v] = self._clock
            self.alive_vertex[v] = True
            self.v2t[v] = HULL
        else:
            v = len(self.points)
            self.points.append(pt)
            self.timestamps.append(self._clock)
            self.alive_vertex.append(True)
            self.v2t.append(HULL)
        return v

    def kill_vertex(self, v: int) -> None:
        self.alive_vertex[v] = False
        self.v2t[v] = DEAD
        self._free_verts.append(v)

    @property
    def n_vertices(self) -> int:
        return len(self.points) - len(self._free_verts)

    # ------------------------------------------------------------------
    # tetrahedra
    # ------------------------------------------------------------------
    def add_tet(self, verts: Tuple[int, int, int, int]) -> int:
        """Allocate a tet slot; adjacency starts as four HULL markers."""
        if self._free_tets:
            t = self._free_tets.pop()
            self.tet_verts[t] = verts
            self.tet_epoch[t] += 1
            adj = self.tet_adj[t]
            adj[0] = adj[1] = adj[2] = adj[3] = HULL
        else:
            t = len(self.tet_verts)
            self.tet_verts.append(verts)
            self.tet_adj.append([HULL, HULL, HULL, HULL])
            self.tet_epoch.append(0)
        for v in verts:
            self.v2t[v] = t
        self.n_live_tets += 1
        return t

    def kill_tet(self, t: int) -> None:
        self.tet_verts[t] = None
        self._free_tets.append(t)
        self.n_live_tets -= 1

    def is_live(self, t: int) -> bool:
        return 0 <= t < len(self.tet_verts) and self.tet_verts[t] is not None

    def live_tets(self) -> Iterator[int]:
        """Iterate ids of all live tetrahedra."""
        tv = self.tet_verts
        for t in range(len(tv)):
            if tv[t] is not None:
                yield t

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    def face_opposite(self, t: int, i: int) -> Tuple[int, int, int]:
        """Vertex ids of the face of ``t`` opposite local vertex ``i``."""
        a, b, c, d = self.tet_verts[t]
        if i == 0:
            return (b, c, d)
        if i == 1:
            return (a, c, d)
        if i == 2:
            return (a, b, d)
        return (a, b, c)

    def local_index(self, t: int, v: int) -> int:
        """Local index (0..3) of global vertex ``v`` inside tet ``t``."""
        verts = self.tet_verts[t]
        for i in range(4):
            if verts[i] == v:
                return i
        raise ValueError(f"vertex {v} not in tet {t} {verts}")

    def neighbor_index(self, t: int, nbr: int) -> int:
        """Local face index of ``t`` across which ``nbr`` lies."""
        adj = self.tet_adj[t]
        for i in range(4):
            if adj[i] == nbr:
                return i
        raise ValueError(f"tet {nbr} is not a neighbor of {t}")

    def set_mutual_adjacency(self, t1: int, i1: int, t2: int, i2: int) -> None:
        self.tet_adj[t1][i1] = t2
        self.tet_adj[t2][i2] = t1

    def incident_tets(self, v: int) -> List[int]:
        """All live tets incident to vertex ``v`` (breadth-first from v2t)."""
        seed = self.v2t[v]
        if seed < 0 or not self.is_live(seed):
            seed = self._find_incident_slow(v)
            if seed is None:
                return []
        out = [seed]
        seen = {seed}
        stack = [seed]
        while stack:
            t = stack.pop()
            verts = self.tet_verts[t]
            adj = self.tet_adj[t]
            for i in range(4):
                nbr = adj[i]
                if nbr < 0 or nbr in seen:
                    continue
                # The face shared with nbr is opposite local vertex i; it
                # contains v iff v is not the opposite vertex.
                if verts[i] == v:
                    continue
                nverts = self.tet_verts[nbr]
                if nverts is None or v not in nverts:
                    continue
                seen.add(nbr)
                out.append(nbr)
                stack.append(nbr)
        return out

    def _find_incident_slow(self, v: int) -> Optional[int]:
        for t in self.live_tets():
            if v in self.tet_verts[t]:
                self.v2t[v] = t
                return t
        return None
