"""Low-level tetrahedral mesh storage with face-to-face adjacency.

Storage layout (struct-of-arrays, free-list recycled).  The NumPy
arrays are the *only* authority for tet connectivity since the mirror
retirement: every consumer — the Python kernel, the vectorized batch
predicates and the C accelerator — reads ``tet_verts_arr``/``tet_adj``
directly (``row.tolist()`` turns a row into native ints once per tet,
which is what the scalar hot paths index with).

* ``coords``             – ``(capacity, 3) float64`` vertex coordinates.
* ``points[v]``          – the same coordinates as a 3-tuple of floats
                           (scalar mirror; identical bit patterns —
                           kept because pulling ``np.float64`` scalars
                           out of an ndarray is 2-5x slower than native
                           float arithmetic).
* ``timestamps[v]``      – global insertion counter, used by vertex
                           removal to replay link vertices in insertion
                           order (paper Section 4.2).
* ``alive_vertex[v]``    – False once a vertex has been removed.
* ``tet_verts_arr``      – ``(capacity, 4) int32`` vertex ids per tet;
                           ``-1`` rows for dead/recycled slots.
* ``tet_adj``            – ``(capacity, 4) int32``; ``tet_adj[t][i]`` is
                           the tet sharing the face opposite local
                           vertex ``i``; ``HULL`` (-1) on the hull.
* ``tet_top``            – one past the highest slot ever allocated
                           (the array tail; dead slots below it are on
                           the free list).
* ``tet_cc[t]``          – cached circumsphere entry for the filtered
                           in-sphere fast path (see
                           :func:`repro.geometry.predicates.circumsphere_entry`);
                           ``None`` until first use, ``()`` for
                           degenerate tets.
* ``v2t``                – ``int32`` array: one live incident tet per
                           vertex (point-location and ball-collection
                           anchor); ``HULL`` before the first incidence,
                           ``DEAD`` after vertex removal.

``tet_verts`` survives only as a read-only compatibility *view*
(``mesh.tet_verts[t]`` -> 4-tuple or ``None``) for tests and cold
paths; it materializes tuples on demand instead of mirroring state.

All tetrahedra are stored positively oriented (``orient3d > 0``), which
the in-sphere predicate requires.  Growth doubles the NumPy capacity, so
long-lived references to ``coords``/``tet_verts_arr``/``tet_adj``/``v2t``
must be re-fetched from the mesh after any allocation (all in-tree
callers hold them for at most one operation).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.delaunay.arena import current_arena

HULL = -1  # adjacency marker: face on the convex hull (virtual box surface)
DEAD = -2  # adjacency marker used transiently for invalidated slots

Point = Tuple[float, float, float]

_INIT_V_CAP = 256
_INIT_T_CAP = 1024

# Per-thread allocation arena chunk sizes.  Tet chunks are claimed from
# the shared tail under the allocator lock; larger chunks mean fewer
# trips to that lock, smaller chunks waste fewer slots at merge time.
_TET_CHUNK = 256
_VERT_CHUNK = 64


class _ResizeGate:
    """Shared/exclusive gate between commits and array growth.

    Committing threads enter in *shared* mode (a counter bump under a
    condition variable) for the duration of one commit; array growth —
    which **replaces** the NumPy arrays, so a commit writing through a
    stale pointer with the GIL released would be lost — takes the gate
    in *exclusive* mode and drains every in-flight commit first.

    Exclusive entry is only ever taken while holding the mesh's
    allocator lock (chunk-refill slow path), so writers never race each
    other; commits must pre-claim capacity *before* entering the shared
    section or they would deadlock against their own refill.
    """

    __slots__ = ("_cond", "_readers", "_writers")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers = 0

    def acquire_shared(self) -> None:
        cond = self._cond
        with cond:
            while self._writers:
                cond.wait()
            self._readers += 1

    def release_shared(self) -> None:
        cond = self._cond
        with cond:
            self._readers -= 1
            if not self._readers:
                cond.notify_all()

    @contextmanager
    def exclusive(self):
        cond = self._cond
        with cond:
            self._writers += 1
            while self._readers:
                cond.wait()
        try:
            yield
        finally:
            with cond:
                self._writers -= 1
                cond.notify_all()


class ThreadAllocArena:
    """Private allocation state for one worker thread.

    Holds a per-thread slice of the free lists plus a reserved range of
    fresh slots (``[cursor, chunk_end)``) claimed from the shared tail
    in chunks, so commits allocate and recycle slots without touching
    any shared structure on the fast path.  ``live_delta`` batches
    ``n_live_tets`` updates; it is flushed under the allocator lock at
    every chunk refill and at merge time.
    """

    __slots__ = (
        "tid", "free_tets", "free_verts",
        "tet_cursor", "tet_chunk_end",
        "vert_cursor", "vert_chunk_end",
        "live_delta",
    )

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.free_tets: List[int] = []
        self.free_verts: List[int] = []
        self.tet_cursor = 0
        self.tet_chunk_end = 0
        self.vert_cursor = 0
        self.vert_chunk_end = 0
        self.live_delta = 0

    def peek_vertex_id(self) -> int:
        """Id the next :meth:`MeshArrays.add_vertex` call will return."""
        if self.free_verts:
            return self.free_verts[-1]
        return self.vert_cursor


@dataclass(frozen=True)
class Tet:
    """Immutable view of a tetrahedron handed to callers."""

    id: int
    verts: Tuple[int, int, int, int]


class _TetVertsView:
    """Read-only tuple view over ``tet_verts_arr`` (compat shim).

    Indexing returns the historical mirror's value: a 4-tuple of native
    ints for live slots, ``None`` for dead ones.  Hot paths should read
    ``tet_verts_arr`` directly instead.
    """

    __slots__ = ("_mesh",)

    def __init__(self, mesh: "MeshArrays") -> None:
        self._mesh = mesh

    def __len__(self) -> int:
        return self._mesh.tet_top

    def __getitem__(self, t: int) -> Optional[Tuple[int, int, int, int]]:
        row = self._mesh.tet_verts_arr[t].tolist()
        if row[0] < 0:
            return None
        return tuple(row)

    def __iter__(self):
        arr = self._mesh.tet_verts_arr
        for t in range(self._mesh.tet_top):
            row = arr[t].tolist()
            yield tuple(row) if row[0] >= 0 else None


class MeshArrays:
    """Growable struct-of-arrays store for vertices and tetrahedra."""

    __slots__ = (
        "coords",
        "points",
        "timestamps",
        "alive_vertex",
        "tet_verts_arr",
        "tet_adj",
        "tet_top",
        "tet_epoch",
        "tet_cc",
        "v2t",
        "_free_tets",
        "_free_verts",
        "_clock",
        "n_live_tets",
        "_arena",
        "_akey",
        "_alloc_lock",
        "_resize_gate",
        "_alloc_tls",
        "_arenas_on",
    )

    def __init__(self, arena=None) -> None:
        # SoA columns live either on the heap (default) or inside a
        # shared-memory arena (explicit argument, or ambient via
        # arena_scope) — same dtypes, shapes and growth policy either
        # way, so every consumer including the C accelerator is
        # storage-agnostic.
        if arena is None:
            arena = current_arena()
        self._arena = arena
        if arena is not None:
            self._akey = f"m{arena.new_mesh_id()}"
            self.coords = arena.alloc(
                f"{self._akey}:coords", (_INIT_V_CAP, 3), np.float64)
            self.tet_verts_arr = arena.alloc(
                f"{self._akey}:tet_verts", (_INIT_T_CAP, 4), np.int32,
                fill=-1)
            self.tet_adj = arena.alloc(
                f"{self._akey}:tet_adj", (_INIT_T_CAP, 4), np.int32,
                fill=HULL)
            self.v2t = arena.alloc(
                f"{self._akey}:v2t", (_INIT_V_CAP,), np.int32, fill=HULL)
        else:
            self._akey = None
            self.coords = np.zeros((_INIT_V_CAP, 3), dtype=np.float64)
            self.tet_verts_arr = np.full((_INIT_T_CAP, 4), -1,
                                         dtype=np.int32)
            self.tet_adj = np.full((_INIT_T_CAP, 4), HULL, dtype=np.int32)
            self.v2t = np.full(_INIT_V_CAP, HULL, dtype=np.int32)
        self.points: List[Point] = []
        self.timestamps: List[int] = []
        self.alive_vertex: List[bool] = []
        self.tet_top = 0
        # Epoch counter per slot: bumps every time the slot is reused, so
        # stale references (e.g. Poor Element List entries) can detect
        # that "their" tet died even if the id was recycled.
        self.tet_epoch: List[int] = []
        self.tet_cc: List[Optional[tuple]] = []
        self._free_tets: List[int] = []
        self._free_verts: List[int] = []
        # Monotonic insertion clock.  itertools.count is bumped by a
        # single C-level call, so concurrent arena allocations get
        # unique timestamps without a lock.
        self._clock = itertools.count(1)
        self.n_live_tets = 0
        # Per-thread allocation arenas (threaded two-phase refinement).
        self._alloc_lock = threading.Lock()
        self._resize_gate = _ResizeGate()
        self._alloc_tls = threading.local()
        self._arenas_on = False

    @property
    def tet_verts(self) -> _TetVertsView:
        return _TetVertsView(self)

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def _grow_verts(self) -> None:
        cap = self.coords.shape[0] * 2
        if self._arena is not None:
            self.coords = self._arena.realloc(
                f"{self._akey}:coords", (cap, 3))
            self.v2t = self._arena.realloc(f"{self._akey}:v2t", (cap,))
            return
        old = self.coords
        grown = np.zeros((cap, 3), dtype=np.float64)
        grown[: old.shape[0]] = old
        self.coords = grown
        anchors = np.full(cap, HULL, dtype=np.int32)
        anchors[: self.v2t.shape[0]] = self.v2t
        self.v2t = anchors

    def _grow_tets(self, need: int) -> None:
        cap = self.tet_adj.shape[0]
        while cap < need:
            cap *= 2
        if self._arena is not None:
            self.tet_verts_arr = self._arena.realloc(
                f"{self._akey}:tet_verts", (cap, 4))
            self.tet_adj = self._arena.realloc(
                f"{self._akey}:tet_adj", (cap, 4))
            return
        tv = np.full((cap, 4), -1, dtype=np.int32)
        tv[: self.tet_verts_arr.shape[0]] = self.tet_verts_arr
        self.tet_verts_arr = tv
        ta = np.full((cap, 4), HULL, dtype=np.int32)
        ta[: self.tet_adj.shape[0]] = self.tet_adj
        self.tet_adj = ta

    # ------------------------------------------------------------------
    # per-thread allocation arenas
    # ------------------------------------------------------------------
    @property
    def resize_gate(self) -> _ResizeGate:
        return self._resize_gate

    def current_alloc_arena(self) -> Optional[ThreadAllocArena]:
        """This thread's installed arena, or None outside arena runs."""
        if not self._arenas_on:
            return None
        return getattr(self._alloc_tls, "arena", None)

    def adopt_alloc_arena(self, arena: Optional[ThreadAllocArena]) -> None:
        """Install ``arena`` as the calling thread's allocation arena."""
        self._alloc_tls.arena = arena

    def begin_thread_arenas(self, n: int) -> List[ThreadAllocArena]:
        """Create ``n`` arenas and route allocations through them.

        The pre-existing shared free lists are handed wholesale to
        arena 0 so a single-thread arena run pops recycled slots in
        exactly the order the sequential kernel would.
        """
        arenas = [ThreadAllocArena(i) for i in range(n)]
        arenas[0].free_tets.extend(self._free_tets)
        self._free_tets.clear()
        arenas[0].free_verts.extend(self._free_verts)
        self._free_verts.clear()
        self._arenas_on = True
        return arenas

    def end_thread_arenas(self, arenas: Sequence[ThreadAllocArena]) -> None:
        """Merge arena state back into the shared structures.

        Every dead slot below ``tet_top`` ends up on the shared free
        list exactly once; a chunk still sitting at the array tail is
        trimmed back off instead (single-thread runs always hit this,
        which leaves the end state bit-identical to a sequential run).
        """
        self._arenas_on = False
        with self._alloc_lock:
            for a in arenas:
                self.n_live_tets += a.live_delta
                a.live_delta = 0
                self._free_tets.extend(a.free_tets)
                a.free_tets.clear()
                self._free_verts.extend(a.free_verts)
                a.free_verts.clear()
                if a.tet_cursor < a.tet_chunk_end:
                    if a.tet_chunk_end == self.tet_top:
                        del self.tet_epoch[a.tet_cursor:]
                        del self.tet_cc[a.tet_cursor:]
                        self.tet_top = a.tet_cursor
                    else:
                        self._free_tets.extend(
                            range(a.tet_cursor, a.tet_chunk_end))
                a.tet_cursor = a.tet_chunk_end = 0
                if a.vert_cursor < a.vert_chunk_end:
                    if a.vert_chunk_end == len(self.points):
                        del self.points[a.vert_cursor:]
                        del self.timestamps[a.vert_cursor:]
                        del self.alive_vertex[a.vert_cursor:]
                    else:
                        self._free_verts.extend(
                            range(a.vert_cursor, a.vert_chunk_end))
                a.vert_cursor = a.vert_chunk_end = 0

    def ensure_arena_capacity(self, arena: ThreadAllocArena,
                              n_tets: int = 0, n_verts: int = 0) -> None:
        """Guarantee chunk space before a commit enters the resize gate.

        Must be called *outside* the shared gate section: refilling a
        chunk may grow the arrays, which takes the gate exclusively.
        """
        if arena.tet_chunk_end - arena.tet_cursor < n_tets:
            self._claim_tet_chunk(arena, n_tets)
        if (n_verts and not arena.free_verts
                and arena.vert_chunk_end - arena.vert_cursor < n_verts):
            self._claim_vert_chunk(arena, n_verts)

    def _claim_tet_chunk(self, arena: ThreadAllocArena, need: int) -> None:
        with self._alloc_lock:
            self.n_live_tets += arena.live_delta
            arena.live_delta = 0
            top = self.tet_top
            if arena.tet_chunk_end == top:
                # Grow the current chunk in place — with one thread this
                # is always the case, so fresh slot ids stay identical
                # to the sequential kernel's ``tet_top++`` sequence.
                short = need - (arena.tet_chunk_end - arena.tet_cursor)
                n = max(short, _TET_CHUNK)
            else:
                if arena.tet_cursor < arena.tet_chunk_end:
                    arena.free_tets.extend(
                        range(arena.tet_cursor, arena.tet_chunk_end))
                n = max(need, _TET_CHUNK)
                arena.tet_cursor = top
            new_top = top + n
            if new_top > self.tet_adj.shape[0]:
                with self._resize_gate.exclusive():
                    self._grow_tets(new_top)
            # Seed epochs at -1: the first allocation bumps them to 0,
            # matching what a fresh sequential append would have had.
            self.tet_epoch.extend([-1] * n)
            self.tet_cc.extend([None] * n)
            arena.tet_chunk_end = new_top
            # Published last so lock-free readers never index the epoch
            # list past its end.
            self.tet_top = new_top

    def _claim_vert_chunk(self, arena: ThreadAllocArena, need: int) -> None:
        with self._alloc_lock:
            base = len(self.points)
            if arena.vert_chunk_end == base:
                short = need - (arena.vert_chunk_end - arena.vert_cursor)
                n = max(short, _VERT_CHUNK)
            else:
                if arena.vert_cursor < arena.vert_chunk_end:
                    arena.free_verts.extend(
                        range(arena.vert_cursor, arena.vert_chunk_end))
                n = max(need, _VERT_CHUNK)
                arena.vert_cursor = base
            new_len = base + n
            if new_len > self.coords.shape[0]:
                with self._resize_gate.exclusive():
                    while self.coords.shape[0] < new_len:
                        self._grow_verts()
            # alive/timestamps before points: lock-free readers (e.g.
            # the point-location grid rebuild) enumerate ``points`` and
            # index the flag lists, so those must never be shorter.
            self.alive_vertex.extend([False] * n)
            self.timestamps.extend([0] * n)
            self.points.extend([(0.0, 0.0, 0.0)] * n)
            arena.vert_chunk_end = new_len

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(self, p: Sequence[float]) -> int:
        """Store a new vertex and stamp it with the insertion clock."""
        pt = (float(p[0]), float(p[1]), float(p[2]))
        arena = self.current_alloc_arena()
        if arena is not None:
            return self._add_vertex_arena(arena, pt)
        ts = next(self._clock)
        if self._free_verts:
            v = self._free_verts.pop()
            self.points[v] = pt
            self.timestamps[v] = ts
            self.alive_vertex[v] = True
        else:
            v = len(self.points)
            if v >= self.coords.shape[0]:
                self._grow_verts()
            self.points.append(pt)
            self.timestamps.append(ts)
            self.alive_vertex.append(True)
        self.v2t[v] = HULL
        c = self.coords[v]
        c[0] = pt[0]
        c[1] = pt[1]
        c[2] = pt[2]
        return v

    def _add_vertex_arena(self, arena: ThreadAllocArena, pt: Point) -> int:
        ts = next(self._clock)
        if arena.free_verts:
            v = arena.free_verts.pop()
        else:
            if arena.vert_cursor >= arena.vert_chunk_end:
                self._claim_vert_chunk(arena, 1)
            v = arena.vert_cursor
            arena.vert_cursor = v + 1
        # Coordinates before liveness: lock-free readers that reach
        # ``v`` through a freshly committed tet row must see real
        # geometry, not the recycled slot's stale coordinates.
        c = self.coords[v]
        c[0] = pt[0]
        c[1] = pt[1]
        c[2] = pt[2]
        self.points[v] = pt
        self.timestamps[v] = ts
        self.v2t[v] = HULL
        self.alive_vertex[v] = True
        return v

    def kill_vertex(self, v: int) -> None:
        self.alive_vertex[v] = False
        self.v2t[v] = DEAD
        arena = self.current_alloc_arena()
        if arena is not None:
            arena.free_verts.append(v)
        else:
            self._free_verts.append(v)

    @property
    def n_vertices(self) -> int:
        return len(self.points) - len(self._free_verts)

    # ------------------------------------------------------------------
    # tetrahedra
    # ------------------------------------------------------------------
    def add_tet(self, verts: Tuple[int, int, int, int]) -> int:
        """Allocate a tet slot; adjacency starts as four HULL markers."""
        arena = self.current_alloc_arena()
        if arena is not None:
            return self._add_tet_arena(arena, verts)
        if self._free_tets:
            t = self._free_tets.pop()
            self.tet_epoch[t] += 1
            self.tet_cc[t] = None
        else:
            t = self.tet_top
            self.tet_top = t + 1
            if t >= self.tet_adj.shape[0]:
                self._grow_tets(t + 1)
            self.tet_epoch.append(0)
            self.tet_cc.append(None)
        tv = self.tet_verts_arr[t]
        tv[0] = verts[0]
        tv[1] = verts[1]
        tv[2] = verts[2]
        tv[3] = verts[3]
        adj = self.tet_adj[t]
        adj[0] = adj[1] = adj[2] = adj[3] = HULL
        v2t = self.v2t
        for v in verts:
            v2t[v] = t
        self.n_live_tets += 1
        return t

    def _add_tet_arena(self, arena: ThreadAllocArena,
                       verts: Tuple[int, int, int, int]) -> int:
        if arena.free_tets:
            t = arena.free_tets.pop()
        else:
            if arena.tet_cursor >= arena.tet_chunk_end:
                self._claim_tet_chunk(arena, 1)
            t = arena.tet_cursor
            arena.tet_cursor = t + 1
        # Epoch bump *before* the row write: lock-free validators record
        # (tet, epoch) pairs and must observe the bump no later than an
        # alive-looking row appearing in the slot.
        self.tet_epoch[t] += 1
        self.tet_cc[t] = None
        tv = self.tet_verts_arr[t]
        tv[0] = verts[0]
        tv[1] = verts[1]
        tv[2] = verts[2]
        tv[3] = verts[3]
        adj = self.tet_adj[t]
        adj[0] = adj[1] = adj[2] = adj[3] = HULL
        v2t = self.v2t
        for v in verts:
            v2t[v] = t
        arena.live_delta += 1
        return t

    def add_tets_batch(self, verts_rows: np.ndarray) -> List[int]:
        """Allocate slots for ``k`` new tets at once.

        ``verts_rows`` is a ``(k, 4)`` int array.  Slot assignment is
        identical to ``k`` successive :meth:`add_tet` calls (LIFO
        free-list pops first, then fresh slots in order), so recycled
        ids — and therefore all downstream iteration orders — match the
        scalar path bit-for-bit.  ``v2t`` is *not* updated here; the
        caller owns anchor maintenance (the insertion commit rewrites
        anchors for every new tet anyway).
        """
        k = verts_rows.shape[0]
        arena = self.current_alloc_arena()
        if arena is not None:
            return self._add_tets_batch_arena(arena, verts_rows, k)
        free = self._free_tets
        epoch = self.tet_epoch
        ccs = self.tet_cc
        top = self.tet_top
        tids: List[int] = []
        for _ in range(k):
            if free:
                t = free.pop()
                epoch[t] += 1
                ccs[t] = None
            else:
                t = top
                top += 1
                epoch.append(0)
                ccs.append(None)
            tids.append(t)
        self.tet_top = top
        if top > self.tet_adj.shape[0]:
            self._grow_tets(top)
        idx = np.asarray(tids, dtype=np.intp)
        self.tet_verts_arr[idx] = verts_rows
        self.tet_adj[idx] = HULL
        self.n_live_tets += k
        return tids

    def _add_tets_batch_arena(self, arena: ThreadAllocArena,
                              verts_rows: np.ndarray, k: int) -> List[int]:
        free = arena.free_tets
        epoch = self.tet_epoch
        ccs = self.tet_cc
        tids: List[int] = []
        for _ in range(k):
            if free:
                t = free.pop()
            else:
                if arena.tet_cursor >= arena.tet_chunk_end:
                    self._claim_tet_chunk(arena, k - len(tids))
                t = arena.tet_cursor
                arena.tet_cursor = t + 1
            # All epoch bumps land before any row write below.
            epoch[t] += 1
            ccs[t] = None
            tids.append(t)
        idx = np.asarray(tids, dtype=np.intp)
        self.tet_verts_arr[idx] = verts_rows
        self.tet_adj[idx] = HULL
        arena.live_delta += k
        return tids

    def kill_tet(self, t: int) -> None:
        self.tet_verts_arr[t] = -1
        arena = self.current_alloc_arena()
        if arena is not None:
            arena.free_tets.append(t)
            arena.live_delta -= 1
            return
        self._free_tets.append(t)
        self.n_live_tets -= 1

    def kill_tets_batch(self, ts: Sequence[int]) -> None:
        """Kill several tets; free-list order matches per-tet kills."""
        arena = self.current_alloc_arena()
        if arena is not None:
            arena.free_tets.extend(ts)
            self.tet_verts_arr[np.asarray(ts, dtype=np.intp)] = -1
            arena.live_delta -= len(ts)
            return
        self._free_tets.extend(ts)
        self.tet_verts_arr[np.asarray(ts, dtype=np.intp)] = -1
        self.n_live_tets -= len(ts)

    def is_live(self, t: int) -> bool:
        return 0 <= t < self.tet_top and self.tet_verts_arr[t, 0] >= 0

    def live_tets(self) -> Iterator[int]:
        """Iterate ids of all live tetrahedra (snapshot at call time)."""
        live = self.tet_verts_arr[: self.tet_top, 0] >= 0
        yield from np.flatnonzero(live).tolist()

    def live_tet_ids(self) -> np.ndarray:
        """Ids of all live tetrahedra as an int array (ascending)."""
        live = self.tet_verts_arr[: self.tet_top, 0] >= 0
        return np.flatnonzero(live)

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    def face_opposite(self, t: int, i: int) -> Tuple[int, int, int]:
        """Vertex ids of the face of ``t`` opposite local vertex ``i``."""
        a, b, c, d = self.tet_verts_arr[t].tolist()
        if i == 0:
            return (b, c, d)
        if i == 1:
            return (a, c, d)
        if i == 2:
            return (a, b, d)
        return (a, b, c)

    def local_index(self, t: int, v: int) -> int:
        """Local index (0..3) of global vertex ``v`` inside tet ``t``."""
        verts = self.tet_verts_arr[t].tolist()
        for i in range(4):
            if verts[i] == v:
                return i
        raise ValueError(f"vertex {v} not in tet {t} {verts}")

    def neighbor_index(self, t: int, nbr: int) -> int:
        """Local face index of ``t`` across which ``nbr`` lies."""
        adj = self.tet_adj[t]
        for i in range(4):
            if adj[i] == nbr:
                return i
        raise ValueError(f"tet {nbr} is not a neighbor of {t}")

    def set_mutual_adjacency(self, t1: int, i1: int, t2: int, i2: int) -> None:
        self.tet_adj[t1][i1] = t2
        self.tet_adj[t2][i2] = t1

    def incident_tets(self, v: int) -> List[int]:
        """All live tets incident to vertex ``v`` (breadth-first from v2t)."""
        seed = int(self.v2t[v])
        if seed < 0 or not self.is_live(seed):
            seed = self._find_incident_slow(v)
            if seed is None:
                return []
        tva = self.tet_verts_arr
        tadj = self.tet_adj
        out = [seed]
        seen = {seed}
        stack = [seed]
        while stack:
            t = stack.pop()
            verts = tva[t].tolist()
            adj = tadj[t].tolist()
            for i in range(4):
                nbr = adj[i]
                if nbr < 0 or nbr in seen:
                    continue
                # The face shared with nbr is opposite local vertex i; it
                # contains v iff v is not the opposite vertex.
                if verts[i] == v:
                    continue
                nverts = tva[nbr].tolist()
                if nverts[0] < 0 or v not in nverts:
                    continue
                seen.add(nbr)
                out.append(nbr)
                stack.append(nbr)
        return out

    def _find_incident_slow(self, v: int) -> Optional[int]:
        tva = self.tet_verts_arr
        for t in self.live_tets():
            if v in tva[t].tolist():
                self.v2t[v] = t
                return t
        return None
