"""Incremental 3D Delaunay triangulation with insertions and removals.

The triangulation always lives inside a *virtual box* (paper Figure 1):
the box is triangulated into 6 tetrahedra and every subsequent point is
inserted strictly inside it, so no ghost/infinite elements are needed.

Hot-path kernel design
----------------------
The insertion pipeline (locate -> compute_cavity -> commit) is the
throughput bottleneck of the whole mesher, so it is organised around
three accelerations, none of which changes any mesh output:

* **point location** starts from a uniform-grid vertex bucket (each
  inserted vertex registers its cell; a query walks from a tet incident
  to the nearest registered vertex) or from the last located tet, and
  randomizes its face order with an inline LCG instead of a
  ``random.Random`` call per step.
* **cavity search** replaces most in-sphere predicate evaluations with a
  cached circumsphere test: every tet carries a precomputed
  ``(center, r^2, error-band)`` record (built vectorized for the whole
  commit batch) and the full robust predicate runs only inside the
  rounding-error band, so the fast path is *guaranteed* to agree with
  exact arithmetic.  Visited/boundary bookkeeping uses epoch-tagged
  scratch arrays reused across operations instead of per-call sets.
* **the commit phase** validates all boundary faces with one vectorized
  orientation batch, checks cavity closedness with packed edge keys and
  ``np.unique``, allocates all new tets at once (free-list order
  identical to the scalar path) and wires internal adjacency by sorting
  edge keys — only the ``v2t`` anchor maintenance stays scalar, because
  its "last writer wins" semantics must match the historical loop.

Crucially the depth-first cavity *enumeration order* is untouched:
cavity membership is predicate-determined (traversal-invariant), but the
order in which cavity tets and boundary faces are emitted dictates new
tet ids and hence every downstream decision, so it is part of the
deterministic contract (see ``tests/test_kernel_parity.py``).

Speculative-execution support
-----------------------------
Every operation accepts an optional ``touch`` callback which is invoked
with each vertex id the operation reads *before* the read happens.  The
parallel refiner uses this hook to take per-vertex try-locks; when a lock
is already owned by another thread the callback raises
:class:`RollbackSignal`, the operation unwinds without having mutated
anything, and the caller rolls back (paper Section 4.2).  All mutation is
deferred until the read phase has fully succeeded, which is what makes
rollbacks free of side effects.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import _accel
from repro.delaunay.mesh import HULL, MeshArrays
from repro.geometry.batch import insphere_many, new_tet_records
from repro.geometry.predicates import (
    STATS,
    circumsphere_entry,
    insphere,
    orient3d,
)

Point = Tuple[float, float, float]
TouchFn = Optional[Callable[[int], None]]

# Inline LCG constants (glibc) for the walk's face-order randomization.
_LCG_MULT = 1103515245
_LCG_INC = 12345
_LCG_MASK = 0x7FFFFFFF

# Initial vertex-bucket grid resolution along the longest box axis; the
# grid doubles its resolution whenever occupancy exceeds ~8 vertices per
# cell so bucket lookups stay local as the mesh grows.
_GRID_RES = 16


class RollbackSignal(Exception):
    """Raised by a touch callback to abort an operation without side effects.

    Carries the id of the thread that owns the contended vertex so the
    contention manager can record the dependency (``conflicting_id``),
    plus a ``reason`` tag distinguishing lock contention from
    optimistic-read aborts and post-lock validation failures.  Raisers
    chain the underlying exception (``raise ... from exc``) so an
    ``IndexError`` from a torn optimistic read keeps its provenance in
    tracebacks instead of being masked.
    """

    def __init__(self, owner: int = -1, reason: str = "contention"):
        super().__init__(
            f"rollback ({reason}): vertex owned by thread {owner}")
        self.owner = owner
        self.reason = reason


class PointLocationError(Exception):
    """The walk left the triangulated domain (point outside the box)."""


class InsertionError(Exception):
    """Insertion would create a degenerate element (point on a cavity face,
    duplicate vertex, ...).  The triangulation is left untouched."""


class RemovalError(Exception):
    """The removal ball could not be consistently re-triangulated.  The
    triangulation is left untouched and the caller skips the removal."""


class KernelCounters:
    """Per-triangulation kernel statistics (advisory; races tolerated).

    Complemented by the process-wide predicate filter counters in
    :data:`repro.geometry.predicates.STATS`; both are published through
    ``runtime/stats.py`` into the metrics registry.
    """

    __slots__ = (
        "locate_calls", "walk_steps",
        "seed_grid_hits", "seed_hint_hits", "seed_scans",
        "cavity_calls", "cavity_tets",
        "cc_cached", "cc_computed",
        "scratch_reuses", "scratch_grows",
        "accel_inserts", "accel_retries",
        "accel_batch_calls", "accel_batch_inserts",
        "accel_removals", "accel_remove_retries",
        "commits", "commit_wait_seconds", "commit_work_seconds",
        "rollbacks_optimistic", "rollbacks_contention",
        "rollbacks_validation",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)
        self.commit_wait_seconds = 0.0
        self.commit_work_seconds = 0.0

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def mean_walk_length(self) -> float:
        return self.walk_steps / self.locate_calls if self.locate_calls else 0.0

    @property
    def commit_seconds(self) -> float:
        """Total commit time (wait + work); kept for back-compat."""
        return self.commit_wait_seconds + self.commit_work_seconds

    @property
    def mean_commit_seconds(self) -> float:
        return self.commit_work_seconds / self.commits if self.commits else 0.0

    @property
    def mean_commit_wait_seconds(self) -> float:
        return self.commit_wait_seconds / self.commits if self.commits else 0.0


class Triangulation3D:
    """Delaunay triangulation of points inside a virtual bounding box."""

    def __init__(self, lo: Sequence[float], hi: Sequence[float],
                 margin: float = 0.0, seed: int = 0x5EED):
        """Create the box triangulation (the paper's only sequential step).

        Parameters
        ----------
        lo, hi:
            Opposite corners of the region that must be enclosed.
        margin:
            Extra slack added on every side; the refiner passes a few
            multiples of ``delta`` so circumcenters never escape.
        seed:
            Seed for the walk's face-order randomization.  The state is
            per-instance (concurrent triangulations never share RNG
            state) and the sequential pipeline is fully deterministic
            for a fixed seed.
        """
        self.mesh = MeshArrays()
        dx = (hi[0] - lo[0]) or 1.0
        dy = (hi[1] - lo[1]) or 1.0
        dz = (hi[2] - lo[2]) or 1.0
        pad = margin + 0.25 * max(dx, dy, dz)
        self._lo = (lo[0] - pad, lo[1] - pad, lo[2] - pad)
        self._hi = (hi[0] + pad, hi[1] + pad, hi[2] + pad)

        # The virtual bounding volume is an enclosing *simplex* rather
        # than the paper's 6-tet box.  A simplex's hull facets are single
        # triangles, so interior insertions never need to re-triangulate
        # the hull, and 4 auxiliary vertices cannot form the cospherical /
        # cocircular clusters that a cube's corners do — which is what
        # makes vertex removal near the boundary robust.  Functionally the
        # two choices are identical: the auxiliary volume is carved away
        # at extraction (paper Figure 1).
        cx = 0.5 * (self._lo[0] + self._hi[0])
        cy = 0.5 * (self._lo[1] + self._hi[1])
        cz = 0.5 * (self._lo[2] + self._hi[2])
        extent = max(
            self._hi[0] - self._lo[0],
            self._hi[1] - self._lo[1],
            self._hi[2] - self._lo[2],
        )
        k = 3.0 * extent
        corners = [
            (cx + k, cy + k, cz + k),
            (cx + k, cy - k, cz - k),
            (cx - k, cy + k, cz - k),
            (cx - k, cy - k, cz + k),
        ]
        self.box_vertices: List[int] = [
            self.mesh.add_vertex(c) for c in corners
        ]
        v = self.box_vertices
        pts = self.mesh.points
        tet = (v[0], v[1], v[2], v[3])
        if orient3d(pts[tet[0]], pts[tet[1]], pts[tet[2]], pts[tet[3]]) < 0:
            tet = (v[1], v[0], v[2], v[3])
        self.mesh.add_tet(tet)
        # Inward-facing face planes of the simplex, used by the insertion
        # gate: a point is insertable when strictly inside the simplex
        # hull by a small safety margin.
        self._hull_planes = []
        tv = self.mesh.tet_verts_arr[0].tolist()
        for i in range(4):
            face = [tv[j] for j in range(4) if j != i]
            a, b, c = (pts[w] for w in face)
            n = (
                (b[1] - a[1]) * (c[2] - a[2]) - (b[2] - a[2]) * (c[1] - a[1]),
                (b[2] - a[2]) * (c[0] - a[0]) - (b[0] - a[0]) * (c[2] - a[2]),
                (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]),
            )
            norm = math.sqrt(n[0] * n[0] + n[1] * n[1] + n[2] * n[2])
            n = (n[0] / norm, n[1] / norm, n[2] / norm)
            off = n[0] * a[0] + n[1] * a[1] + n[2] * a[2]
            inner = pts[tv[i]]
            side = n[0] * inner[0] + n[1] * inner[1] + n[2] * inner[2] - off
            if side < 0:
                n = (-n[0], -n[1], -n[2])
                off = -off
            self._hull_planes.append((n, off))
        self._hull_margin = 1e-9 * k

        # Walk randomization state (inline LCG; one state per instance).
        self._walk_state = ((seed ^ 0x2545F491) & _LCG_MASK) or 1
        # Point-location acceleration: last successfully located tet and
        # a uniform-grid vertex bucket index (cell -> most recent vertex
        # inserted there).  Both are *hints*: the walk verifies
        # containment, so stale entries cost steps, never correctness —
        # which also makes unsynchronized concurrent access benign.
        self._last_located = 0
        self._vgrid: Dict[Tuple[int, int, int], int] = {}
        self._extent = extent
        self._vgrid_res = _GRID_RES
        self._vgrid_inv = _GRID_RES / extent
        self._vgrid_cap = _GRID_RES ** 3 // 8
        # Epoch-tagged scratch for the cavity search (reused across
        # operations; values: gen = in cavity, gen+1 = checked out).
        # Generations come from an itertools.count: next() is a single
        # GIL-atomic operation, so concurrent speculative threads always
        # draw distinct generation pairs.
        self._cav_tag: List[int] = []
        self._cav_gen = itertools.count(2, 2)
        self.counters = KernelCounters()
        # Lazily allocated scratch for the optional C insertion kernel.
        self._acc = None
        # Serializes mesh mutation when speculative threads commit; the
        # sequential paths never take it.
        self._commit_lock = threading.Lock()
        # Two-phase speculative insertion (acquire all locks up front,
        # then commit lock-free in C).  Enabled by the threaded driver.
        self._two_phase = False
        self._tls = threading.local()
        # Scratch used by remove_vertex to pass the ball volume to the
        # fill verification.
        self._pending_ball_volume = 0.0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.mesh.n_vertices

    @property
    def n_tets(self) -> int:
        return self.mesh.n_live_tets

    def point(self, v: int) -> Point:
        return self.mesh.points[v]

    def tet_points(self, t: int):
        pts = self.mesh.points
        a, b, c, d = self.mesh.tet_verts_arr[t].tolist()
        return pts[a], pts[b], pts[c], pts[d]

    def is_box_vertex(self, v: int) -> bool:
        """True for the 4 auxiliary corners of the virtual bounding simplex."""
        return v < 4

    def inside_box(self, p: Sequence[float], slack: float = 0.0) -> bool:
        """True if ``p`` lies strictly inside the padded image box."""
        lo, hi = self._lo, self._hi
        return all(lo[i] + slack < p[i] < hi[i] - slack for i in range(3))

    def inside_domain(self, p: Sequence[float]) -> bool:
        """True if ``p`` is strictly inside the virtual bounding simplex.

        This is the insertion gate: any such point can be triangulated.
        It is a superset of :meth:`inside_box` — circumcenters of exterior
        tetrahedra routinely fall outside the padded image box but are
        perfectly insertable.
        """
        m = self._hull_margin
        for n, off in self._hull_planes:
            if n[0] * p[0] + n[1] * p[1] + n[2] * p[2] - off <= m:
                return False
        return True

    # ------------------------------------------------------------------
    # point location
    # ------------------------------------------------------------------
    def _grid_key(self, x: float, y: float, z: float) -> Tuple[int, int, int]:
        lo = self._lo
        inv = self._vgrid_inv
        return (int((x - lo[0]) * inv), int((y - lo[1]) * inv),
                int((z - lo[2]) * inv))

    def _regrid(self) -> None:
        """Double the vertex grid's resolution and re-bin live vertices."""
        res = self._vgrid_res * 2
        self._vgrid_res = res
        self._vgrid_inv = res / self._extent
        self._vgrid_cap = res ** 3 // 8
        mesh = self.mesh
        alive = mesh.alive_vertex
        gk = self._grid_key
        grid: Dict[Tuple[int, int, int], int] = {}
        for v, pt in enumerate(mesh.points):
            if alive[v]:
                grid[gk(pt[0], pt[1], pt[2])] = v
        self._vgrid = grid

    def _locate_seed(self, x: float, y: float, z: float,
                     hint: Optional[int] = None) -> int:
        """Pick the walk's starting tet.

        Candidates: a tet incident to the nearest vertex registered in
        the query's grid neighborhood, the caller's hint, the last
        located tet, a linear scan — whichever of the first two is
        closer to the query wins (the caller's hint is excellent during
        refinement but arbitrary for scattered insertion workloads).
        """
        mesh = self.mesh
        counters = self.counters
        pts = mesh.points
        grid = self._vgrid
        lo = self._lo
        inv = self._vgrid_inv
        kx = int((x - lo[0]) * inv)
        ky = int((y - lo[1]) * inv)
        kz = int((z - lo[2]) * inv)
        best_v = grid.get((kx, ky, kz))
        if best_v is not None:
            q = pts[best_v]
            dx = q[0] - x
            dy = q[1] - y
            dz = q[2] - z
            best_d = dx * dx + dy * dy + dz * dz
        elif grid:
            # Probe the 26 surrounding buckets for the nearest registered
            # vertex (the grid keeps occupancy low, so the home bucket is
            # often empty while the neighborhood rarely is).
            best_d = math.inf
            for nk in (
                (kx - 1, ky - 1, kz - 1), (kx - 1, ky - 1, kz),
                (kx - 1, ky - 1, kz + 1), (kx - 1, ky, kz - 1),
                (kx - 1, ky, kz), (kx - 1, ky, kz + 1),
                (kx - 1, ky + 1, kz - 1), (kx - 1, ky + 1, kz),
                (kx - 1, ky + 1, kz + 1), (kx, ky - 1, kz - 1),
                (kx, ky - 1, kz), (kx, ky - 1, kz + 1),
                (kx, ky, kz - 1), (kx, ky, kz + 1),
                (kx, ky + 1, kz - 1), (kx, ky + 1, kz),
                (kx, ky + 1, kz + 1), (kx + 1, ky - 1, kz - 1),
                (kx + 1, ky - 1, kz), (kx + 1, ky - 1, kz + 1),
                (kx + 1, ky, kz - 1), (kx + 1, ky, kz),
                (kx + 1, ky, kz + 1), (kx + 1, ky + 1, kz - 1),
                (kx + 1, ky + 1, kz), (kx + 1, ky + 1, kz + 1),
            ):
                v = grid.get(nk)
                if v is None:
                    continue
                q = pts[v]
                dx = q[0] - x
                dy = q[1] - y
                dz = q[2] - z
                d = dx * dx + dy * dy + dz * dz
                if d < best_d:
                    best_d = d
                    best_v = v
        if best_v is not None:
            t = int(mesh.v2t[best_v])
            if t >= 0 and mesh.tet_verts_arr[t, 0] >= 0:
                if hint is not None:
                    h = pts[mesh.tet_verts_arr[hint, 0]]
                    dx = h[0] - x
                    dy = h[1] - y
                    dz = h[2] - z
                    if dx * dx + dy * dy + dz * dz < best_d:
                        counters.seed_hint_hits += 1
                        return hint
                counters.seed_grid_hits += 1
                return t
        if hint is not None:
            counters.seed_hint_hits += 1
            return hint
        t = self._last_located
        if mesh.is_live(t):
            counters.seed_hint_hits += 1
            return t
        counters.seed_scans += 1
        return next(mesh.live_tets())

    def locate(self, p: Sequence[float], hint: Optional[int] = None,
               touch: TouchFn = None) -> int:
        """Find a tetrahedron containing ``p`` by a remembering walk."""
        mesh = self.mesh
        pts = mesh.points
        tva = mesh.tet_verts_arr
        tet_adj = mesh.tet_adj
        orient = orient3d
        px = p[0]
        py = p[1]
        pz = p[2]
        pq = (px, py, pz)
        if hint is not None and mesh.is_live(hint):
            t = self._locate_seed(px, py, pz, hint)
        else:
            t = self._locate_seed(px, py, pz)
        max_steps = mesh.n_live_tets * 2 + 64
        state = self._walk_state
        steps = 0
        # The walk itself is read-only point location and is deliberately
        # NOT protected by vertex locks (the paper locks what cavity
        # expansion and ball filling touch).  A concurrently invalidated
        # tet is detected and the walk restarts from a live one; a
        # wrongly located tet is caught by the conflict check in
        # compute_cavity.
        while steps < max_steps:
            steps += 1
            verts = tva[t].tolist()
            if verts[0] < 0:  # invalidated under our feet
                t = next(mesh.live_tets())
                continue
            qa = pts[verts[0]]
            qb = pts[verts[1]]
            qc = pts[verts[2]]
            qd = pts[verts[3]]
            state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
            start = (state >> 13) & 3
            moved = False
            for k in range(4):
                i = (start + k) & 3
                if i == 0:
                    s = orient(pq, qb, qc, qd)
                elif i == 1:
                    s = orient(qa, pq, qc, qd)
                elif i == 2:
                    s = orient(qa, qb, pq, qd)
                else:
                    s = orient(qa, qb, qc, pq)
                if s < 0:
                    nbr = tet_adj[t, i]
                    if nbr == HULL:
                        raise PointLocationError(
                            f"point {tuple(p)} escapes the virtual box"
                        )
                    t = int(nbr)
                    moved = True
                    break
            if not moved:
                self._walk_state = state
                self._last_located = t
                counters = self.counters
                counters.locate_calls += 1
                counters.walk_steps += steps
                return t
        raise PointLocationError("walk did not converge (cycling)")

    # ------------------------------------------------------------------
    # insertion (Bowyer-Watson)
    # ------------------------------------------------------------------
    def _cc_entry(self, t: int):
        """Compute and cache tet ``t``'s circumsphere record (scalar path).

        Stored as ``()`` for degenerate tets so the cache distinguishes
        "computed, no fast path" from "not computed yet" (``None``).
        """
        mesh = self.mesh
        pts = mesh.points
        a, b, c, d = mesh.tet_verts_arr[t].tolist()
        e = circumsphere_entry(pts[a], pts[b], pts[c], pts[d])
        e = e if e is not None else ()
        mesh.tet_cc[t] = e
        self.counters.cc_computed += 1
        return e

    def compute_cavity(self, p: Sequence[float], hint: Optional[int] = None,
                       touch: TouchFn = None
                       ) -> Tuple[List[int], List[Tuple[int, int]]]:
        """Conflict region of ``p``: cavity tets + boundary (tet, face) pairs.

        Purely a read operation; safe to abandon at any point.  The
        conflict rule is *strict* (``insphere > 0``): cospherical ties stay
        outside the cavity, which yields degenerate-but-valid new elements
        instead of corrupting the cavity's star-shapedness.  A located tet
        that is not in strict conflict means ``p`` duplicates an existing
        vertex (a point inside a closed tet lies on its circumsphere only
        at a vertex) and raises :class:`InsertionError`.

        The in-sphere tests run through the cached circumsphere records
        (exact-agreeing fast path, see module docstring); the depth-first
        enumeration order is part of the deterministic output contract
        and must not change.
        """
        mesh = self.mesh
        pts = mesh.points
        t0 = self.locate(p, hint, touch)
        tva = mesh.tet_verts_arr
        v0 = tva[t0].tolist()
        if touch is not None:
            for v in v0:
                touch(v)
            if tva[t0].tolist() != v0:
                # The seed died between location and locking: treat like
                # a conflict and let the caller retry the element.
                raise RollbackSignal(owner=-1)
        px = p[0]
        py = p[1]
        pz = p[2]
        ccs = mesh.tet_cc
        counters = self.counters
        stats = STATS
        cc_tests = 0
        cc_fast = 0
        cc_fallback = 0
        cc_cached = 0

        ent = ccs[t0]
        if ent is None:
            ent = self._cc_entry(t0)
        else:
            cc_cached += 1
        if ent:
            cc_tests += 1
            dx = px - ent[0]
            dy = py - ent[1]
            dz = pz - ent[2]
            d2 = dx * dx + dy * dy + dz * dz
            sv = d2 - ent[3]
            band = ent[4] + ent[5] * d2
            if sv > band:
                cc_fast += 1
                s0 = -1
            elif sv < -band:
                cc_fast += 1
                s0 = 1
            else:
                cc_fallback += 1
                s0 = insphere(pts[v0[0]], pts[v0[1]], pts[v0[2]],
                              pts[v0[3]], p)
        else:
            s0 = insphere(pts[v0[0]], pts[v0[1]], pts[v0[2]], pts[v0[3]], p)
        if s0 <= 0:
            stats.cc_tests += cc_tests
            stats.cc_fast += cc_fast
            stats.cc_fallback += cc_fallback
            raise InsertionError(
                f"point {tuple(p)} duplicates an existing vertex"
            )

        # Epoch-tagged scratch instead of per-call sets.
        tag = self._cav_tag
        n_slots = mesh.tet_top
        if len(tag) < n_slots:
            tag.extend([0] * (n_slots - len(tag) + 1024))
            counters.scratch_grows += 1
        else:
            counters.scratch_reuses += 1
        gen = next(self._cav_gen)
        genout = gen + 1

        tet_adj = mesh.tet_adj
        cavity = [t0]
        tag[t0] = gen
        boundary: List[Tuple[int, int]] = []
        stack = [t0]
        while stack:
            t = stack.pop()
            row = tet_adj[t].tolist()
            for i in range(4):
                nbr = row[i]
                if nbr < 0:  # HULL
                    boundary.append((t, i))
                    continue
                tg = tag[nbr]
                if tg == gen:
                    continue
                if tg == genout:
                    boundary.append((t, i))
                    continue
                nverts = tva[nbr].tolist()
                if touch is not None:
                    for v in nverts:
                        touch(v)
                ent = ccs[nbr]
                if ent is None:
                    ent = self._cc_entry(nbr)
                else:
                    cc_cached += 1
                if ent:
                    cc_tests += 1
                    dx = px - ent[0]
                    dy = py - ent[1]
                    dz = pz - ent[2]
                    d2 = dx * dx + dy * dy + dz * dz
                    sv = d2 - ent[3]
                    band = ent[4] + ent[5] * d2
                    if sv > band:
                        cc_fast += 1
                        s = -1
                    elif sv < -band:
                        cc_fast += 1
                        s = 1
                    else:
                        cc_fallback += 1
                        s = insphere(pts[nverts[0]], pts[nverts[1]],
                                     pts[nverts[2]], pts[nverts[3]], p)
                else:
                    s = insphere(pts[nverts[0]], pts[nverts[1]],
                                 pts[nverts[2]], pts[nverts[3]], p)
                if s > 0:
                    tag[nbr] = gen
                    cavity.append(nbr)
                    stack.append(nbr)
                else:
                    tag[nbr] = genout
                    boundary.append((t, i))
        stats.cc_tests += cc_tests
        stats.cc_fast += cc_fast
        stats.cc_fallback += cc_fallback
        counters.cavity_calls += 1
        counters.cavity_tets += len(cavity)
        counters.cc_cached += cc_cached
        return cavity, boundary

    def insert_point(self, p: Sequence[float], hint: Optional[int] = None,
                     touch: TouchFn = None
                     ) -> Tuple[int, List[int], List[int]]:
        """Insert ``p``; returns ``(vertex_id, new_tets, killed_tets)``.

        Raises :class:`InsertionError` (triangulation untouched) when the
        insertion would create a degenerate tetrahedron — e.g. ``p``
        duplicates an existing vertex or lies exactly on a cavity boundary
        face.  Raises :class:`PointLocationError` if ``p`` is outside the
        virtual box.

        Dispatch: sequential inserts (no ``touch`` callback) run through
        the compiled C kernel when available; any insertion it cannot
        decide with conclusive floating point filters is retried — with
        zero mutation having happened — on the pure-Python path below,
        whose exact-arithmetic fallback always concludes.  Both paths
        replicate the same traversal and allocation orders, so the
        resulting meshes are bit-identical (tests/test_kernel_parity.py).
        """
        if not self.inside_domain(p):
            raise PointLocationError(
                f"point {tuple(p)} outside the virtual bounding simplex"
            )
        if touch is None and _accel.bw_insert is not None:
            result = self._insert_point_c(p, hint)
            if result is not None:
                return result
        elif touch is not None and self._two_phase:
            return self._insert_point_two_phase(p, hint, touch)
        return self._insert_point_py(p, hint, touch)

    def _insert_point_c(self, p: Sequence[float], hint: Optional[int]
                        ) -> Optional[Tuple[int, List[int], List[int]]]:
        """One C-kernel insert attempt; ``None`` means "retry in Python".

        The C routine does the walk, cavity search, validation and the
        mesh-array commit; this glue reproduces the Python-side
        bookkeeping (scalar mirrors, free lists, v2t anchors, counters,
        vertex grid) in exactly the order the Python kernel would, so
        the two paths are indistinguishable afterwards.
        """
        mesh = self.mesh
        acc = self._acc
        if acc is None:
            acc = self._acc = _accel.AccelScratch()
        px = float(p[0])
        py = float(p[1])
        pz = float(p[2])
        if hint is not None and mesh.is_live(hint):
            seed = self._locate_seed(px, py, pz, hint)
        else:
            seed = self._locate_seed(px, py, pz)
        free_t = mesh._free_tets
        free_v = mesh._free_verts
        # Prospective vertex id: what add_vertex will allocate after the
        # C kernel succeeds (it only writes the id into tet rows; the
        # coordinates are passed separately).
        vnew = free_v[-1] if free_v else len(mesh.points)
        gen = next(self._cav_gen)
        tail = mesh.tet_top
        status = acc.insert(mesh, px, py, pz, seed, self._walk_state, gen,
                            vnew, len(free_t))
        counters = self.counters
        if status == _accel.RETRY:
            counters.accel_retries += 1
            return None
        out = acc.out_i
        # The walk succeeded for every non-RETRY status: commit its
        # state and counters exactly as locate() would have.
        counters.locate_calls += 1
        counters.walk_steps += int(out[4])
        self._walk_state = int(out[5])
        self._last_located = int(out[6])
        stats = STATS
        n_o = int(out[7])
        n_i = int(out[8])
        stats.orient3d_calls += n_o
        stats.orient3d_filtered += n_o
        stats.insphere_calls += n_i
        stats.insphere_filtered += n_i
        if status == _accel.ERR_DUP:
            raise InsertionError(
                f"point {tuple(p)} duplicates an existing vertex"
            )
        counters.cavity_calls += 1
        counters.cavity_tets += int(out[0])
        if status == _accel.ERR_FACE:
            raise InsertionError(
                "degenerate insertion: point lies on a cavity face"
            )
        if status == _accel.ERR_CLOSED:
            raise InsertionError(
                "degenerate insertion: cavity boundary is not a closed surface"
            )
        counters.accel_inserts += 1
        ncav = int(out[0])
        nb = int(out[1])
        consumed = int(out[2])
        cavity = acc.cav[:ncav].tolist()
        new_tets = acc.newt[:nb].tolist()
        rows = mesh.tet_verts_arr[acc.newt[:nb]].tolist()
        mesh.add_vertex((px, py, pz))  # allocates exactly vnew
        if consumed:
            del free_t[-consumed:]
        epoch = mesh.tet_epoch
        ccs = mesh.tet_cc
        v2t = mesh.v2t
        for j in range(nb):
            t = new_tets[j]
            row = rows[j]
            if t < tail:  # recycled slot
                epoch[t] += 1
                ccs[t] = None
            else:  # fresh slots arrive in sequential tail order
                epoch.append(0)
                ccs.append(None)
            v2t[row[0]] = t
            v2t[row[1]] = t
            v2t[row[2]] = t
            v2t[row[3]] = t
        mesh.tet_top = tail + int(out[3])
        free_t.extend(cavity)
        mesh.n_live_tets += nb - ncav
        self._vgrid[self._grid_key(px, py, pz)] = vnew
        if len(mesh.points) > self._vgrid_cap:
            self._regrid()
        return vnew, new_tets, cavity

    # ------------------------------------------------------------------
    # two-phase speculative insertion (threaded fast path)
    # ------------------------------------------------------------------
    def _compute_cavity_optimistic(self, p: Sequence[float],
                                   hint: Optional[int]):
        """Lock-free cavity computation for the two-phase threaded path.

        Reads the mesh without holding any vertex lock, recording every
        vertex seen (the lock set to acquire) and every tet whose
        in-conflict status was decided, together with the tet's epoch at
        read time.  The caller acquires all locks, then re-validates
        each ``(tet, epoch)`` pair: a tet killed since shows a negative
        row, a recycled slot a bumped epoch — either invalidates the
        speculation.  Torn reads can only produce a *wrong* cavity,
        never a crash: rows hold valid vertex ids or ``-1`` at every
        instant, and any structural inconsistency surfaces as an index
        or location error mapped to :class:`RollbackSignal`.

        Returns ``(cavity, boundary, vlist, tested)``; ``cavity`` is
        ``None`` when the located tet is not in strict conflict (a
        duplicate point — the caller decides after validation whether it
        was genuine).  The circumsphere cache is deliberately bypassed:
        writing it without the row locked could publish a stale entry.
        """
        mesh = self.mesh
        pts = mesh.points
        tva = mesh.tet_verts_arr
        tet_adj = mesh.tet_adj
        epoch = mesh.tet_epoch
        tls = self._tls
        tag = getattr(tls, "tag", None)
        if tag is None:
            tag = tls.tag = []
        try:
            t0 = self.locate(p, hint)
            n_slots = mesh.tet_top
            if len(tag) < n_slots:
                tag.extend([0] * (n_slots - len(tag) + 1024))
            gen = next(self._cav_gen)
            genout = gen + 1
            e0 = epoch[t0]  # epoch before row: recycling bumps the epoch
            v0 = tva[t0].tolist()
            # Reject any negative id, not just a dead row: rows are
            # written front to back, so a torn read of a slot being
            # populated always shows a -1 suffix.
            if v0[0] < 0 or v0[1] < 0 or v0[2] < 0 or v0[3] < 0:
                raise RollbackSignal(owner=-1, reason="optimistic-read")
            tested = [(t0, e0)]
            vlist = list(v0)
            vseen = set(v0)
            s0 = insphere(pts[v0[0]], pts[v0[1]], pts[v0[2]], pts[v0[3]], p)
            if s0 <= 0:
                return None, None, vlist, tested
            cavity = [t0]
            tag[t0] = gen
            boundary: List[Tuple[int, int]] = []
            stack = [t0]
            while stack:
                t = stack.pop()
                row = tet_adj[t].tolist()
                for i in range(4):
                    nbr = row[i]
                    if nbr < 0:  # HULL
                        boundary.append((t, i))
                        continue
                    if nbr >= len(tag):
                        tag.extend([0] * (nbr - len(tag) + 1024))
                    tg = tag[nbr]
                    if tg == gen:
                        continue
                    if tg == genout:
                        boundary.append((t, i))
                        continue
                    e = epoch[nbr]
                    nverts = tva[nbr].tolist()
                    if (nverts[0] < 0 or nverts[1] < 0
                            or nverts[2] < 0 or nverts[3] < 0):
                        raise RollbackSignal(owner=-1,
                                             reason="optimistic-read")
                    tested.append((nbr, e))
                    for w in nverts:
                        if w not in vseen:
                            vseen.add(w)
                            vlist.append(w)
                    s = insphere(pts[nverts[0]], pts[nverts[1]],
                                 pts[nverts[2]], pts[nverts[3]], p)
                    if s > 0:
                        tag[nbr] = gen
                        cavity.append(nbr)
                        stack.append(nbr)
                    else:
                        tag[nbr] = genout
                        boundary.append((t, i))
            return cavity, boundary, vlist, tested
        except (IndexError, PointLocationError) as exc:
            # Chain the cause: a torn read surfacing as IndexError keeps
            # its provenance instead of being masked by ``from None``.
            raise RollbackSignal(owner=-1, reason="optimistic-read") from exc

    def _insert_point_two_phase(self, p: Sequence[float],
                                hint: Optional[int], touch: TouchFn
                                ) -> Tuple[int, List[int], List[int]]:
        """Speculative insertion: optimistic read, acquire-all, commit.

        Phase 1 computes the cavity without holding a single lock, then
        acquires every vertex lock up front; contention raises
        :class:`RollbackSignal` from ``touch`` with no lock-state of our
        own to unwind (the worker releases whatever was acquired).
        Phase 2 re-validates the recorded ``(tet, epoch)`` pairs — any
        concurrent conflicting operation must have locked at least three
        of the vertices we now hold, so a successful validation cannot
        go stale — and commits, through the C kernel when available (the
        pre-validated cavity makes the commit a straight-line array
        transform), falling back to the Python commit on an inconclusive
        filter.

        With a per-thread allocation arena installed (threaded driver),
        commits from threads holding disjoint lock sets run concurrently:
        slot allocation is arena-private and the only shared section is
        the resize gate's reader entry.  Without an arena (direct
        two-phase callers), the commit serializes on ``_commit_lock`` as
        before.
        """
        counters = self.counters
        try:
            cavity, boundary, vlist, tested = \
                self._compute_cavity_optimistic(p, hint)
        except RollbackSignal:
            counters.rollbacks_optimistic += 1
            raise
        try:
            for v in vlist:
                touch(v)
        except RollbackSignal:
            counters.rollbacks_contention += 1
            raise
        mesh = self.mesh
        tva = mesh.tet_verts_arr
        epoch = mesh.tet_epoch
        for t, e in tested:
            if tva[t, 0] < 0 or epoch[t] != e:
                counters.rollbacks_validation += 1
                raise RollbackSignal(owner=-1, reason="validation")
        if cavity is None:
            # Validated under locks: the duplicate was genuine.
            raise InsertionError(
                f"point {tuple(p)} duplicates an existing vertex"
            )
        counters.cavity_calls += 1
        counters.cavity_tets += len(cavity)
        arena = mesh.current_alloc_arena()
        t0 = time.perf_counter()
        if arena is None:
            with self._commit_lock:
                t1 = time.perf_counter()
                result = None
                if _accel.bw_commit is not None:
                    result = self._commit_insertion_c(p, cavity, boundary)
                if result is None:
                    result = self._commit_insertion(p, cavity, boundary)
        else:
            # Capacity first (chunk refills may grow arrays, which takes
            # the gate exclusively), then enter the gate shared and
            # commit concurrently with other arena-backed threads.
            mesh.ensure_arena_capacity(arena, n_tets=len(boundary),
                                       n_verts=1)
            gate = mesh.resize_gate
            gate.acquire_shared()
            t1 = time.perf_counter()
            try:
                result = None
                if _accel.bw_commit is not None:
                    result = self._commit_insertion_c(p, cavity, boundary,
                                                      arena)
                if result is None:
                    result = self._commit_insertion(p, cavity, boundary)
            finally:
                gate.release_shared()
        counters.commits += 1
        counters.commit_wait_seconds += t1 - t0
        counters.commit_work_seconds += time.perf_counter() - t1
        return result

    def _commit_insertion_c(self, p: Sequence[float], cavity: List[int],
                            boundary: List[Tuple[int, int]],
                            arena=None
                            ) -> Optional[Tuple[int, List[int], List[int]]]:
        """Commit a pre-validated cavity through the C kernel.

        Caller holds every vertex lock of the cavity's closure, plus
        either ``_commit_lock`` (no arena: commits serialized) or a
        shared hold on the resize gate with ``arena`` installed (slot
        allocation arena-private, commits concurrent).  Returns ``None``
        on an inconclusive orientation filter (caller falls back to the
        Python commit, still under the same locks — no lock is dropped
        across the retry).  Uses per-thread scratch so concurrent
        speculative threads never share buffers.

        Arena-mode ordering, load-bearing for lock-free readers: the
        new vertex's coordinates are published *before* the C kernel
        writes any row naming it, and the epoch of every slot the kernel
        may populate is bumped *before* the row write — so an optimistic
        reader either never sees the new rows or fails validation.
        """
        mesh = self.mesh
        tls = self._tls
        acc = getattr(tls, "acc", None)
        if acc is None:
            acc = tls.acc = _accel.AccelScratch()
        px = float(p[0])
        py = float(p[1])
        pz = float(p[2])
        nb = len(boundary)
        epoch = mesh.tet_epoch
        if arena is None:
            free_t = mesh._free_tets
            free_v = mesh._free_verts
            vnew = free_v[-1] if free_v else len(mesh.points)
            tail = mesh.tet_top
            cap = None
        else:
            free_t = arena.free_tets
            free_v = arena.free_verts
            vnew = arena.peek_vertex_id()
            tail = arena.tet_cursor
            cap = arena.tet_chunk_end
            # Publish the new vertex's geometry before any row can name
            # it (the slot already exists: free-list entry or chunk
            # slot below len(points)).
            pt = (px, py, pz)
            c = mesh.coords[vnew]
            c[0] = px
            c[1] = py
            c[2] = pz
            mesh.points[vnew] = pt
            # Pre-bump the epoch of every slot the kernel may write:
            # the free-list window it pops from, and the fresh chunk
            # range.  Extra bumps on slots it ends up not consuming are
            # harmless (dead slots; any later allocation bumps again).
            n_win = len(free_t)
            if n_win > _accel._FREE_CAP:
                n_win = _accel._FREE_CAP
            for t in free_t[len(free_t) - n_win:]:
                epoch[t] += 1
            for t in range(tail, tail + nb):
                epoch[t] += 1
        gen = next(self._cav_gen)
        codes = [t * 4 + i for t, i in boundary]
        status = acc.commit(mesh, px, py, pz, gen, vnew, len(free_t),
                            cavity, codes, tail=tail, cap=cap,
                            free_list=free_t)
        counters = self.counters
        stats = STATS
        out = acc.out_i
        n_o = int(out[2])
        stats.orient3d_calls += n_o
        stats.orient3d_filtered += n_o
        if status == _accel.RETRY:
            counters.accel_retries += 1
            return None
        if status == _accel.ERR_FACE:
            raise InsertionError(
                "degenerate insertion: point lies on a cavity face"
            )
        if status == _accel.ERR_CLOSED:
            raise InsertionError(
                "degenerate insertion: cavity boundary is not a closed surface"
            )
        counters.accel_inserts += 1
        ncav = len(cavity)
        consumed = int(out[0])
        new_tets = acc.newt[:nb].tolist()
        rows = mesh.tet_verts_arr[acc.newt[:nb]].tolist()
        mesh.add_vertex((px, py, pz))  # allocates exactly vnew
        if consumed:
            del free_t[-consumed:]
        ccs = mesh.tet_cc
        v2t = mesh.v2t
        for j in range(nb):
            t = new_tets[j]
            row = rows[j]
            if arena is not None:
                # Epochs were pre-bumped; every slot (window pop or
                # chunk slot) already has an epoch/cc entry.
                ccs[t] = None
            elif t < tail:  # recycled slot
                epoch[t] += 1
                ccs[t] = None
            else:
                epoch.append(0)
                ccs.append(None)
            v2t[row[0]] = t
            v2t[row[1]] = t
            v2t[row[2]] = t
            v2t[row[3]] = t
        if arena is None:
            mesh.tet_top = tail + int(out[1])
            free_t.extend(cavity)
            mesh.n_live_tets += nb - ncav
        else:
            arena.tet_cursor = tail + int(out[1])
            free_t.extend(cavity)
            arena.live_delta += nb - ncav
        self._vgrid[self._grid_key(px, py, pz)] = vnew
        if len(mesh.points) > self._vgrid_cap:
            self._regrid()
        return vnew, new_tets, cavity

    # ------------------------------------------------------------------
    # batched insertion (initial sampling fast path)
    # ------------------------------------------------------------------
    def insert_many(self, points: Sequence[Sequence[float]],
                    hint: Optional[int] = None, skip_errors: bool = True
                    ) -> List[Optional[int]]:
        """Insert a sequence of points; one result slot per input point.

        Returns the new vertex id per point, or ``None`` where the
        insertion was skipped (duplicate / degenerate / outside the
        domain) — unless ``skip_errors`` is false, in which case the
        first failure raises.  Semantically identical to a loop of
        :meth:`insert_point` with hint chaining; when the C accelerator
        is available and the vertex free list is empty (so new vertex
        ids are contiguous — always true during the initial sampling
        burst), runs of points are dispatched through one batched ctypes
        crossing and only the stoppers (inconclusive filters, capacity
        growth, errors) fall back to the scalar path.
        """
        results: List[Optional[int]] = []
        mesh = self.mesh
        n = len(points)
        i = 0
        while i < n:
            if (n - i > 1 and _accel.bw_insert_many is not None
                    and not mesh._free_verts):
                done = self._insert_batch_c(points, i, results)
                if done:
                    i += done
                    hint = self._last_located
                    continue
            try:
                v, ntets, _ = self.insert_point(points[i], hint)
            except (InsertionError, PointLocationError):
                if not skip_errors:
                    raise
                results.append(None)
            else:
                hint = ntets[0]
                results.append(v)
            i += 1
        return results

    def _insert_batch_c(self, points: Sequence[Sequence[float]], start: int,
                        results: List[Optional[int]]) -> int:
        """One batched C crossing starting at ``points[start]``.

        Appends the committed vertex ids to ``results`` and returns how
        many points were committed (0 means the first point needs the
        scalar path).  The C kernel walks, carves and commits each point
        directly on the mesh arrays, maintaining its own free-list
        stack; this glue replays the per-insert records to bring the
        Python-side bookkeeping (points, timestamps, epochs, free
        lists, v2t anchors, vertex grid, counters) to exactly the state
        a scalar loop would have produced.  Batch and scalar paths may
        locate through different seed tets, but cavity membership is
        predicate-determined, so the resulting topology is identical.
        """
        mesh = self.mesh
        acc = self._acc
        if acc is None:
            acc = self._acc = _accel.AccelScratch()
        p0 = points[start]
        seed = self._locate_seed(float(p0[0]), float(p0[1]), float(p0[2]))
        free_t = mesh._free_tets
        gen0 = next(self._cav_gen)
        v_base = len(mesh.points)
        out = acc.insert_many(mesh, points[start:start + _accel._BATCH_CAP],
                              seed, self._walk_state, gen0, v_base,
                              len(free_t))
        n_done = int(out[0])
        n_gens = int(out[1])
        # Keep the shared generation allocator ahead of every generation
        # the batch consumed (one per attempted point; one was already
        # drawn above).
        cav_gen = self._cav_gen
        for _ in range(n_gens - 1):
            next(cav_gen)
        self._walk_state = int(out[2])
        counters = self.counters
        stats = STATS
        n_o = int(out[5])
        n_i = int(out[6])
        stats.orient3d_calls += n_o
        stats.orient3d_filtered += n_o
        stats.insphere_calls += n_i
        stats.insphere_filtered += n_i
        counters.walk_steps += int(out[4])
        if n_done == 0:
            counters.accel_retries += 1
            return 0
        self._last_located = int(out[3])
        counters.locate_calls += n_done
        counters.cavity_calls += n_done
        counters.cavity_tets += int(out[7])
        counters.accel_inserts += n_done
        counters.accel_batch_calls += 1
        counters.accel_batch_inserts += n_done
        rec = acc.rec
        pos = 0
        epoch = mesh.tet_epoch
        ccs = mesh.tet_cc
        v2t = mesh.v2t
        tail = mesh.tet_top
        gk = self._grid_key
        vgrid = self._vgrid
        for k in range(n_done):
            p = points[start + k]
            vnew = mesh.add_vertex(
                (float(p[0]), float(p[1]), float(p[2]))
            )
            ncav = int(rec[pos])
            nb = int(rec[pos + 1])
            consumed = int(rec[pos + 2])
            pos += 3
            cav = rec[pos:pos + ncav].tolist()
            pos += ncav
            newt = rec[pos:pos + nb].tolist()
            pos += nb
            rows = rec[pos:pos + 4 * nb].tolist()
            pos += 4 * nb
            if consumed:
                del free_t[-consumed:]
            for j in range(nb):
                t = newt[j]
                if t < tail:  # recycled slot
                    epoch[t] += 1
                    ccs[t] = None
                else:  # fresh slots arrive in sequential tail order
                    epoch.append(0)
                    ccs.append(None)
                    tail = t + 1
                b = 4 * j
                v2t[rows[b]] = t
                v2t[rows[b + 1]] = t
                v2t[rows[b + 2]] = t
                v2t[rows[b + 3]] = t
            free_t.extend(cav)
            mesh.n_live_tets += nb - ncav
            vgrid[gk(p[0], p[1], p[2])] = vnew
            if len(mesh.points) > self._vgrid_cap:
                self._regrid()
            results.append(vnew)
        mesh.tet_top = tail
        return n_done

    def _insert_point_py(self, p: Sequence[float],
                         hint: Optional[int] = None, touch: TouchFn = None
                         ) -> Tuple[int, List[int], List[int]]:
        """Pure-Python insertion (filtered predicates + exact fallback)."""
        cavity, boundary = self.compute_cavity(p, hint, touch)
        return self._commit_insertion(p, cavity, boundary)

    def _commit_insertion(self, p: Sequence[float], cavity: List[int],
                          boundary: List[Tuple[int, int]]
                          ) -> Tuple[int, List[int], List[int]]:
        """Validate and commit a precomputed cavity (pure Python).

        The tail of the historical ``_insert_point_py``: everything after
        the cavity search.  Shared by the sequential Python path and the
        two-phase speculative path (which computes the cavity lock-free,
        then acquires every vertex lock before calling this).  Raises
        :class:`InsertionError` with the triangulation untouched when the
        cavity is degenerate.
        """
        mesh = self.mesh
        nb = len(boundary)

        bt = np.fromiter((b[0] for b in boundary), dtype=np.intp, count=nb)
        bi = np.fromiter((b[1] for b in boundary), dtype=np.intp, count=nb)
        btv = mesh.tet_verts_arr[bt]          # (nb, 4) vertex ids
        coords = mesh.coords
        rows = np.arange(nb)

        # Validate before mutating: each new tet replaces the cavity-side
        # vertex of a boundary face with p and must stay positively
        # oriented (cavity star-shapedness around p).  The orientation
        # sign falls out of the circumsphere-record computation (its
        # Cramer denominator is -orient3d's determinant), so one fused
        # batch yields both the validation and the cached records the
        # next cavity searches will consume.
        quads = coords[btv.ravel()].reshape(nb, 4, 3)
        quads[rows, bi] = p
        all_positive, entries = new_tet_records(quads)
        if not all_positive:
            raise InsertionError(
                "degenerate insertion: point lies on a cavity face"
            )
        # Closed-surface check: every edge of the boundary triangles must
        # be shared by exactly two of them.
        keep = np.arange(4)[None, :] != bi[:, None]
        faces = btv[keep].reshape(nb, 3).astype(np.int64)
        edges = np.empty((nb, 3, 2), dtype=np.int64)
        edges[:, 0, 0] = faces[:, 0]
        edges[:, 0, 1] = faces[:, 1]
        edges[:, 1, 0] = faces[:, 0]
        edges[:, 1, 1] = faces[:, 2]
        edges[:, 2, 0] = faces[:, 1]
        edges[:, 2, 1] = faces[:, 2]
        keys = (edges.min(axis=2) << 32) | edges.max(axis=2)   # (nb, 3)
        flat = keys.ravel()
        if flat.size & 1:
            raise InsertionError(
                "degenerate insertion: cavity boundary is not a closed surface"
            )
        # One stable sort serves two purposes: the closed-surface check
        # (every edge key must appear exactly twice: consecutive sorted
        # pairs equal, adjacent pairs distinct) and, later, the internal
        # adjacency pairing.
        order = np.argsort(flat, kind="stable")
        sf = flat[order]
        first = order[0::2]
        second = order[1::2]
        if (sf[0::2] != sf[1::2]).any() or (sf[1:-1:2] == sf[2::2]).any():
            raise InsertionError(
                "degenerate insertion: cavity boundary is not a closed surface"
            )

        # ---- commit phase (no predicate can fail from here on) ----
        vnew = mesh.add_vertex(p)
        # Record external adjacency before killing cavity tets.
        ext = mesh.tet_adj[bt, bi].astype(np.intp)

        new_verts = btv.copy()
        new_verts[rows, bi] = vnew
        new_tets = mesh.add_tets_batch(new_verts)
        nt_arr = np.asarray(new_tets, dtype=np.intp)
        tet_adj = mesh.tet_adj  # re-fetch: the batch alloc may have grown it

        # External faces: new tet k inherits boundary face k's outside
        # neighbor; the neighbor's back-pointer (currently at the dying
        # cavity tet) is redirected to the new tet.
        tet_adj[nt_arr, bi] = ext
        real = np.flatnonzero(ext != HULL)
        if real.size:
            os_ = ext[real]
            back = (tet_adj[os_] == bt[real][:, None]).argmax(axis=1)
            tet_adj[os_, back] = nt_arr[real]

        # Internal faces: each contains vnew plus one edge of a boundary
        # triangle; the two new tets sharing that edge are adjacent.  The
        # local slot opposite edge m of face r is the r-th boundary
        # face's non-bi position in *descending* edge order (edge pairs
        # (0,1),(0,2),(1,2) drop positions 2,1,0 respectively).
        pos = np.broadcast_to(np.arange(4), (nb, 4))[keep].reshape(nb, 3)
        slots = pos[:, ::-1]                                   # (nb, 3)
        flat_nt = np.repeat(nt_arr, 3)
        flat_slot = slots.ravel()
        tet_adj[flat_nt[first], flat_slot[first]] = flat_nt[second]
        tet_adj[flat_nt[second], flat_slot[second]] = flat_nt[first]

        mesh.kill_tets_batch(cavity)
        # v2t anchors for surviving vertices may point at dead tets; they
        # are refreshed lazily, but make sure vnew's anchor is live.
        # Scalar loop: the "last new tet wins" ordering is part of the
        # deterministic contract.
        v2t = mesh.v2t
        v2t[vnew] = new_tets[0]
        nv_rows = new_verts.tolist()
        for r in range(nb):
            nt = new_tets[r]
            row = nv_rows[r]
            v2t[row[0]] = nt
            v2t[row[1]] = nt
            v2t[row[2]] = nt
            v2t[row[3]] = nt

        # Store the circumsphere records computed during validation (the
        # quads held exactly the new tets' coordinates: boundary face + p).
        ccs = mesh.tet_cc
        for r in range(nb):
            e = entries[r]
            ccs[new_tets[r]] = e if e is not None else ()

        self._vgrid[self._grid_key(p[0], p[1], p[2])] = vnew
        if len(mesh.points) > self._vgrid_cap:
            self._regrid()
        return vnew, new_tets, cavity

    # ------------------------------------------------------------------
    # removal
    # ------------------------------------------------------------------
    def remove_vertex(self, v: int, touch: TouchFn = None
                      ) -> Tuple[List[int], List[int]]:
        """Remove vertex ``v`` and re-triangulate its ball.

        Returns ``(new_tets, killed_tets)``.  The ball is filled with the
        tetrahedra of a *local* Delaunay triangulation of the link
        vertices, built by inserting them in global insertion-timestamp
        order (paper Section 4.2), selecting the local tets whose
        circumsphere contains ``v``; the selection is verified to tile the
        hole exactly before any mutation happens, and
        :class:`RemovalError` is raised otherwise.
        """
        mesh = self.mesh
        if self.is_box_vertex(v):
            raise RemovalError("virtual box corners cannot be removed")
        if not mesh.alive_vertex[v]:
            raise RemovalError(f"vertex {v} is not alive")
        pts = mesh.points
        p = pts[v]

        # Lock the vertex itself before walking its star: any concurrent
        # operation that would create or destroy a tet incident to ``v``
        # must touch ``v`` too, so holding it freezes the ball.
        if touch is not None:
            touch(v)
        ball = mesh.incident_tets(v)
        if not ball:
            raise RemovalError(f"vertex {v} has no incident tetrahedra")
        if touch is not None:
            tva = mesh.tet_verts_arr
            for t in ball:
                for w in tva[t].tolist():
                    touch(w)

        # Hole boundary: the face opposite v in each ball tet, plus its
        # outside neighbor.
        hole_faces: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        link: List[int] = []
        link_seen: Set[int] = set()
        for t in ball:
            li = mesh.local_index(t, v)
            face = mesh.face_opposite(t, li)
            key = tuple(sorted(face))
            hole_faces[key] = (t, li)
            for w in face:
                if w not in link_seen:
                    link_seen.add(w)
                    link.append(w)

        self._pending_ball_volume = self._abs_volume_sum(
            mesh.tet_verts_arr[np.asarray(ball, dtype=np.int64)]
        )
        # Fill strategies, all verified against the hole boundary before
        # any mutation:
        #  0. the C gift-wrap kernel (sequential path only): identical
        #     decisions to strategy 1 when every filter is conclusive,
        #     RETRY into the Python strategies otherwise;
        #  1. boundary-conforming Delaunay gift-wrapping (advancing front
        #     seeded with the hole's own boundary faces, min-id tie-break);
        #  2. fallback: local Delaunay triangulation of the link replayed
        #     in global insertion-timestamp order (the paper's approach).
        fill = None
        errors = []
        if touch is None and _accel.bw_remove is not None:
            candidate = self._fill_hole_c(link, hole_faces, ball)
            if candidate is None:
                self.counters.accel_remove_retries += 1
            else:
                try:
                    self._verify_fill(candidate, hole_faces)
                except RemovalError as exc:
                    errors.append(f"_fill_hole_c: {exc}")
                    self.counters.accel_remove_retries += 1
                else:
                    fill = candidate
                    self.counters.accel_removals += 1
        if fill is None:
            for strategy in (self._fill_hole_giftwrap,
                             self._fill_hole_local_dt):
                try:
                    candidate = strategy(p, link, hole_faces, ball)
                    self._verify_fill(candidate, hole_faces)
                except RemovalError as exc:
                    errors.append(f"{strategy.__name__}: {exc}")
                    continue
                fill = candidate
                break
        if fill is None:
            raise RemovalError(
                "ball re-triangulation failed (" + "; ".join(errors) + ")"
            )
        boundary_faces = set(hole_faces.keys())

        # ---- commit ----
        # Under speculative execution the mutation burst must not race
        # array growth (and, without a per-thread arena, must not
        # interleave with another commit at all: the shared free lists
        # and epoch lists are not safe to mutate from two threads at
        # once).  With an arena installed, allocation is thread-private
        # and a shared hold on the resize gate suffices.
        commit_lock = None
        gate = None
        if touch is not None:
            arena = mesh.current_alloc_arena()
            if arena is not None:
                mesh.ensure_arena_capacity(arena, n_tets=len(fill))
                gate = mesh.resize_gate
                gate.acquire_shared()
            else:
                commit_lock = self._commit_lock
                commit_lock.acquire()
        try:
            # Resolve each boundary face's outside neighbor *and* the
            # slot in that neighbor pointing back into the ball before
            # killing any tet: killed slots get recycled by add_tet,
            # which would make the stale back-pointers ambiguous.
            ext: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
            for key, (t, li) in hole_faces.items():
                o = int(mesh.tet_adj[t][li])
                j = mesh.neighbor_index(o, t) if o != HULL else -1
                ext[key] = (o, j)

            for t in ball:
                mesh.kill_tet(t)
            mesh.kill_vertex(v)
            gkey = self._grid_key(p[0], p[1], p[2])
            if self._vgrid.get(gkey) == v:
                # The grid is an advisory hint shared without a lock;
                # a concurrent regrid may have dropped the key already.
                self._vgrid.pop(gkey, None)

            new_tets: List[int] = []
            face_map: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
            for tet in fill:
                a, b, c, d = tet
                if orient3d(pts[a], pts[b], pts[c], pts[d]) < 0:
                    tet = (b, a, c, d)
                    a, b = b, a
                nt = mesh.add_tet(tet)
                new_tets.append(nt)
                for i, f3 in enumerate(((b, c, d), (a, c, d),
                                        (a, b, d), (a, b, c))):
                    f = tuple(sorted(f3))
                    if f in boundary_faces:
                        o, j = ext[f]
                        mesh.tet_adj[nt][i] = o
                        if o != HULL:
                            mesh.tet_adj[o][j] = nt
                    else:
                        other = face_map.pop(f, None)
                        if other is None:
                            face_map[f] = (nt, i)
                        else:
                            mesh.set_mutual_adjacency(
                                nt, i, other[0], other[1]
                            )

            tva = mesh.tet_verts_arr
            v2t = mesh.v2t
            for nt in new_tets:
                for w in tva[nt].tolist():
                    v2t[w] = nt
        finally:
            if gate is not None:
                gate.release_shared()
            if commit_lock is not None:
                commit_lock.release()
        return new_tets, ball

    # ------------------------------------------------------------------
    # hole-filling strategies for vertex removal
    # ------------------------------------------------------------------
    def _fill_hole_c(self, link, hole_faces, ball):
        """C gift-wrap fill; ``None`` means "run the Python strategies".

        Marshals the hole boundary (in ``hole_faces`` insertion order —
        the order ``_fill_hole_giftwrap``'s dict front replicates) and
        the sorted link into the accelerator scratch and runs the
        advancing-front kernel.  Every conclusive decision it makes is
        identical to the Python strategy's exact arithmetic; any
        inconclusive filter, cospherical tie or degeneracy returns the
        retry sentinel with nothing mutated.  The caller still runs
        ``_verify_fill`` on the result, so the C path sits behind the
        same safety net as the Python strategies.
        """
        mesh = self.mesh
        acc = self._acc
        if acc is None:
            acc = self._acc = _accel.AccelScratch()
        tva = mesh.tet_verts_arr
        faces_flat: List[int] = []
        for t, li in hole_faces.values():
            faces_flat.extend(tva[t].tolist())
            faces_flat.append(li)
        n = acc.remove(mesh, faces_flat, sorted(link), len(ball))
        out = acc.out_i
        n_o = int(out[0])
        n_i = int(out[1])
        stats = STATS
        stats.orient3d_calls += n_o
        stats.orient3d_filtered += n_o
        stats.insphere_calls += n_i
        stats.insphere_filtered += n_i
        if n < 0:
            return None
        flat = acc.fill[:4 * n].tolist()
        return [tuple(flat[4 * j:4 * j + 4]) for j in range(n)]

    def _fill_hole_giftwrap(self, p, link, hole_faces, ball):
        """Delaunay gift-wrapping of the removal ball.

        Advancing front seeded with the hole's own boundary faces, so the
        result conforms to the surrounding mesh by construction.  Apexes
        are chosen by the standard empty-circumsphere sweep with a
        deterministic smallest-id tie-break (a "pulling" resolution of
        cospherical clusters); dominance is re-verified so degenerate
        inputs fail cleanly instead of producing overlaps.
        """
        mesh = self.mesh
        pts = mesh.points

        # Front entries: sorted-face-key -> (template, slot).  Placing an
        # apex vertex at ``template[slot]`` must give a positively
        # oriented tet on the *remaining hole* side of the face.
        front: Dict[Tuple[int, int, int], Tuple[List[int], int]] = {}
        for key, (t, li) in hole_faces.items():
            template = mesh.tet_verts_arr[t].tolist()
            front[key] = (template, li)

        link_sorted = sorted(link)
        fill: List[Tuple[int, int, int, int]] = []
        made: Set[Tuple[int, int, int, int]] = set()
        max_iter = 8 * len(ball) + 64
        it = 0
        while front:
            it += 1
            if it > max_iter:
                raise RemovalError("gift-wrapping did not converge")
            key, (template, slot) = front.popitem()
            face_verts = set(template) - {template[slot]}

            def tet_points_for(apex):
                args = [pts[template[m]] for m in range(4)]
                args[slot] = pts[apex]
                return args

            candidates = []
            best = None
            for w in link_sorted:
                if w in face_verts:
                    continue
                args = tet_points_for(w)
                if orient3d(*args) <= 0:
                    continue
                candidates.append(w)
                if best is None:
                    best = w
                    continue
                bargs = tet_points_for(best)
                if insphere(bargs[0], bargs[1], bargs[2], bargs[3], pts[w]) > 0:
                    best = w
            if best is None:
                raise RemovalError("gift-wrapping found no apex for a face")
            # Dominance re-check (guards non-transitive degenerate sweeps)
            # and collection of the cospherical tie set.
            bargs = tet_points_for(best)
            ties = [best]
            for w in candidates:
                if w == best:
                    continue
                s = insphere(bargs[0], bargs[1], bargs[2], bargs[3], pts[w])
                if s > 0:
                    raise RemovalError("gift-wrapping apex not dominant")
                if s == 0:
                    ties.append(w)
            if len(ties) > 1:
                # Cospherical cluster: any tie is Delaunay-valid, but only
                # choices consistent with the already-fixed hole boundary
                # tile the ball.  Prefer the apex whose new tet cancels the
                # most faces already waiting in the front.
                def front_score(w):
                    nv = list(template)
                    nv[slot] = w
                    score = 0
                    for j in range(4):
                        if j == slot:
                            continue
                        fkey = tuple(sorted(nv[m] for m in range(4) if m != j))
                        if fkey in front:
                            score += 1
                    return (score, -w)

                best = max(ties, key=front_score)
                bargs = tet_points_for(best)

            new_verts = list(template)
            new_verts[slot] = best
            tet = tuple(new_verts)
            canon = tuple(sorted(tet))
            if canon in made:
                raise RemovalError("gift-wrapping repeated a tetrahedron")
            made.add(canon)
            fill.append(tet)

            # Push / cancel the three faces containing the new apex.
            for j in range(4):
                if j == slot:
                    continue
                fkey = tuple(sorted(new_verts[m] for m in range(4) if m != j))
                if fkey in front:
                    del front[fkey]
                else:
                    # Flip parity so an apex beyond this face orients
                    # positively: swap two slots other than j.
                    flipped = list(new_verts)
                    others = [m for m in range(4) if m != j]
                    flipped[others[0]], flipped[others[1]] = (
                        flipped[others[1]], flipped[others[0]],
                    )
                    front[fkey] = (flipped, j)
        return fill

    def _fill_hole_local_dt(self, p, link, hole_faces, ball):
        """The paper's strategy: local DT of the link replayed in global
        insertion-timestamp order; keep the local tets whose circumsphere
        strictly contains the removed point."""
        mesh = self.mesh
        pts = mesh.points
        order = sorted(link, key=lambda w: mesh.timestamps[w])
        lo = [min(pts[w][i] for w in link) for i in range(3)]
        hi = [max(pts[w][i] for w in link) for i in range(3)]
        extent = max(hi[i] - lo[i] for i in range(3))
        local = Triangulation3D(lo, hi, margin=2.0 * extent)
        l2g: Dict[int, int] = {}
        hint = None
        try:
            for w in order:
                lv, ntets, _ = local.insert_point(pts[w], hint)
                l2g[lv] = w
                hint = ntets[0]
        except (InsertionError, PointLocationError) as exc:
            raise RemovalError(f"link re-triangulation failed: {exc}") from exc

        fill: List[Tuple[int, int, int, int]] = []
        lmesh = local.mesh
        lids = lmesh.live_tet_ids()
        signs = insphere_many(lmesh.coords, lmesh.tet_verts_arr, lids, p,
                              lmesh.points)
        for lt, s in zip(lids.tolist(), signs.tolist()):
            if s <= 0:
                continue
            lverts = lmesh.tet_verts_arr[lt].tolist()
            if any(lw not in l2g for lw in lverts):
                continue
            fill.append(tuple(l2g[lw] for lw in lverts))
        if not fill:
            raise RemovalError("no local tetrahedra conflict with the vertex")
        return fill

    def _verify_fill(self, fill, hole_faces) -> None:
        """Check that ``fill`` tiles the removal ball exactly.

        Face-pairing check: every face appears at most twice, the faces
        appearing once are exactly the hole boundary.  A volume check
        guards against abstractly-paired but geometrically overlapping
        configurations.
        """
        face_count: Dict[Tuple[int, int, int], int] = {}
        for a, b, c, d in fill:
            for f3 in ((b, c, d), (a, c, d), (a, b, d), (a, b, c)):
                f = tuple(sorted(f3))
                face_count[f] = face_count.get(f, 0) + 1
        if any(c > 2 for c in face_count.values()):
            raise RemovalError("fill face shared by more than two tets")
        boundary = {f for f, c in face_count.items() if c == 1}
        if boundary != set(hole_faces.keys()):
            raise RemovalError("fill does not tile the removal ball")

        fill_volume = self._abs_volume_sum(
            np.asarray(fill, dtype=np.int64)
        )
        ball_volume = self._pending_ball_volume
        if abs(fill_volume - ball_volume) > 1e-6 * max(1.0, ball_volume):
            raise RemovalError("fill volume does not match ball volume")

    def _abs_volume_sum(self, vrows: np.ndarray) -> float:
        """Sum of |tet volume| over (n, 4) vertex-id rows, batched.

        Only feeds the removal tolerance check (1e-6 relative), so the
        numpy summation-order difference vs a scalar loop is harmless.
        """
        P = self.mesh.coords[vrows]
        d = P[:, 3]
        ad = P[:, 0] - d
        bd = P[:, 1] - d
        cd = P[:, 2] - d
        # explicit cross/dot: np.cross pays moveaxis overhead per call,
        # which dominates at removal-ball sizes (~25 rows)
        vol6 = (
            ad[:, 0] * (bd[:, 1] * cd[:, 2] - bd[:, 2] * cd[:, 1])
            + ad[:, 1] * (bd[:, 2] * cd[:, 0] - bd[:, 0] * cd[:, 2])
            + ad[:, 2] * (bd[:, 0] * cd[:, 1] - bd[:, 1] * cd[:, 0])
        )
        return float(np.abs(vol6).sum()) / 6.0

    # ------------------------------------------------------------------
    # validation (test / debug helpers)
    # ------------------------------------------------------------------
    def validate_topology(self) -> None:
        """Assert structural invariants; raises AssertionError on failure."""
        mesh = self.mesh
        pts = mesh.points
        for t in mesh.live_tets():
            verts = mesh.tet_verts_arr[t].tolist()
            a, b, c, d = (pts[verts[0]], pts[verts[1]], pts[verts[2]], pts[verts[3]])
            assert orient3d(a, b, c, d) > 0, f"tet {t} not positively oriented"
            adj = mesh.tet_adj[t]
            for i in range(4):
                nbr = int(adj[i])
                if nbr == HULL:
                    continue
                assert mesh.is_live(nbr), f"tet {t} adj to dead tet {nbr}"
                face = set(mesh.face_opposite(t, i))
                nface_ok = face.issubset(set(mesh.tet_verts_arr[nbr].tolist()))
                assert nface_ok, f"face mismatch {t}/{nbr}"
                j = mesh.neighbor_index(nbr, t)
                assert set(mesh.face_opposite(nbr, j)) == face, \
                    f"reciprocal face mismatch {t}/{nbr}"

    def is_delaunay(self, tol_exhaustive: int = 250_000) -> bool:
        """Exhaustive empty-circumsphere check (tests only; O(n_t * n_v)).

        Vectorized through the cached circumsphere records: for each live
        tet the squared distances of all live vertices are compared
        against the record's radius band at once; only vertices falling
        inside the uncertainty band are re-checked with the robust
        predicate.
        """
        mesh = self.mesh
        pts = mesh.points
        live_verts = [w for w in range(len(pts)) if mesh.alive_vertex[w]]
        n_checks = mesh.n_live_tets * len(live_verts)
        if n_checks > tol_exhaustive:
            raise ValueError(
                f"mesh too large for exhaustive Delaunay check ({n_checks})"
            )
        lv = np.asarray(live_verts, dtype=np.intp)
        pv = mesh.coords[lv]
        ccs = mesh.tet_cc
        for t in mesh.live_tets():
            verts = mesh.tet_verts_arr[t].tolist()
            ent = ccs[t]
            if ent is None:
                ent = self._cc_entry(t)
            a, b, c, d = (pts[verts[0]], pts[verts[1]], pts[verts[2]],
                          pts[verts[3]])
            if ent:
                diff = pv - ent[:3]
                d2 = (diff * diff).sum(axis=1)
                sv = d2 - ent[3]
                band = ent[4] + ent[5] * d2
                if (sv < -band).any():
                    inside = lv[sv < -band]
                    # Certainly-inside lanes can still be the tet's own
                    # vertices only if the entry were wrong; re-verify
                    # robustly to keep the audit trustworthy.
                    for w in inside.tolist():
                        if w in verts:
                            continue
                        if insphere(a, b, c, d, pts[w]) > 0:
                            return False
                unsure = lv[np.abs(sv) <= band]
                for w in unsure.tolist():
                    if w in verts:
                        continue
                    if insphere(a, b, c, d, pts[w]) > 0:
                        return False
            else:
                for w in live_verts:
                    if w in verts:
                        continue
                    if insphere(a, b, c, d, pts[w]) > 0:
                        return False
        return True
