"""Incremental 3D Delaunay triangulation with insertions and removals.

The triangulation always lives inside a *virtual box* (paper Figure 1):
the box is triangulated into 6 tetrahedra and every subsequent point is
inserted strictly inside it, so no ghost/infinite elements are needed.

Speculative-execution support
-----------------------------
Every operation accepts an optional ``touch`` callback which is invoked
with each vertex id the operation reads *before* the read happens.  The
parallel refiner uses this hook to take per-vertex try-locks; when a lock
is already owned by another thread the callback raises
:class:`RollbackSignal`, the operation unwinds without having mutated
anything, and the caller rolls back (paper Section 4.2).  All mutation is
deferred until the read phase has fully succeeded, which is what makes
rollbacks free of side effects.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.delaunay.mesh import HULL, MeshArrays
from repro.geometry.predicates import insphere, orient3d

Point = Tuple[float, float, float]
TouchFn = Optional[Callable[[int], None]]


class RollbackSignal(Exception):
    """Raised by a touch callback to abort an operation without side effects.

    Carries the id of the thread that owns the contended vertex so the
    contention manager can record the dependency (``conflicting_id``).
    """

    def __init__(self, owner: int = -1):
        super().__init__(f"rollback: vertex owned by thread {owner}")
        self.owner = owner


class PointLocationError(Exception):
    """The walk left the triangulated domain (point outside the box)."""


class InsertionError(Exception):
    """Insertion would create a degenerate element (point on a cavity face,
    duplicate vertex, ...).  The triangulation is left untouched."""


class RemovalError(Exception):
    """The removal ball could not be consistently re-triangulated.  The
    triangulation is left untouched and the caller skips the removal."""


class Triangulation3D:
    """Delaunay triangulation of points inside a virtual bounding box."""

    def __init__(self, lo: Sequence[float], hi: Sequence[float], margin: float = 0.0):
        """Create the box triangulation (the paper's only sequential step).

        Parameters
        ----------
        lo, hi:
            Opposite corners of the region that must be enclosed.
        margin:
            Extra slack added on every side; the refiner passes a few
            multiples of ``delta`` so circumcenters never escape.
        """
        self.mesh = MeshArrays()
        dx = (hi[0] - lo[0]) or 1.0
        dy = (hi[1] - lo[1]) or 1.0
        dz = (hi[2] - lo[2]) or 1.0
        pad = margin + 0.25 * max(dx, dy, dz)
        self._lo = (lo[0] - pad, lo[1] - pad, lo[2] - pad)
        self._hi = (hi[0] + pad, hi[1] + pad, hi[2] + pad)

        # The virtual bounding volume is an enclosing *simplex* rather
        # than the paper's 6-tet box.  A simplex's hull facets are single
        # triangles, so interior insertions never need to re-triangulate
        # the hull, and 4 auxiliary vertices cannot form the cospherical /
        # cocircular clusters that a cube's corners do — which is what
        # makes vertex removal near the boundary robust.  Functionally the
        # two choices are identical: the auxiliary volume is carved away
        # at extraction (paper Figure 1).
        cx = 0.5 * (self._lo[0] + self._hi[0])
        cy = 0.5 * (self._lo[1] + self._hi[1])
        cz = 0.5 * (self._lo[2] + self._hi[2])
        extent = max(
            self._hi[0] - self._lo[0],
            self._hi[1] - self._lo[1],
            self._hi[2] - self._lo[2],
        )
        k = 3.0 * extent
        corners = [
            (cx + k, cy + k, cz + k),
            (cx + k, cy - k, cz - k),
            (cx - k, cy + k, cz - k),
            (cx - k, cy - k, cz + k),
        ]
        self.box_vertices: List[int] = [
            self.mesh.add_vertex(c) for c in corners
        ]
        v = self.box_vertices
        pts = self.mesh.points
        tet = (v[0], v[1], v[2], v[3])
        if orient3d(pts[tet[0]], pts[tet[1]], pts[tet[2]], pts[tet[3]]) < 0:
            tet = (v[1], v[0], v[2], v[3])
        self.mesh.add_tet(tet)
        # Inward-facing face planes of the simplex, used by the insertion
        # gate: a point is insertable when strictly inside the simplex
        # hull by a small safety margin.
        self._hull_planes = []
        tv = self.mesh.tet_verts[0]
        for i in range(4):
            face = [tv[j] for j in range(4) if j != i]
            a, b, c = (pts[w] for w in face)
            n = (
                (b[1] - a[1]) * (c[2] - a[2]) - (b[2] - a[2]) * (c[1] - a[1]),
                (b[2] - a[2]) * (c[0] - a[0]) - (b[0] - a[0]) * (c[2] - a[2]),
                (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]),
            )
            norm = math.sqrt(n[0] * n[0] + n[1] * n[1] + n[2] * n[2])
            n = (n[0] / norm, n[1] / norm, n[2] / norm)
            off = n[0] * a[0] + n[1] * a[1] + n[2] * a[2]
            inner = pts[tv[i]]
            side = n[0] * inner[0] + n[1] * inner[1] + n[2] * inner[2] - off
            if side < 0:
                n = (-n[0], -n[1], -n[2])
                off = -off
            self._hull_planes.append((n, off))
        self._hull_margin = 1e-9 * k
        self._rng = random.Random(0x5EED)
        # Scratch used by remove_vertex to pass the ball volume to the
        # fill verification.
        self._pending_ball_volume = 0.0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.mesh.n_vertices

    @property
    def n_tets(self) -> int:
        return self.mesh.n_live_tets

    def point(self, v: int) -> Point:
        return self.mesh.points[v]

    def tet_points(self, t: int):
        pts = self.mesh.points
        a, b, c, d = self.mesh.tet_verts[t]
        return pts[a], pts[b], pts[c], pts[d]

    def is_box_vertex(self, v: int) -> bool:
        """True for the 4 auxiliary corners of the virtual bounding simplex."""
        return v < 4

    def inside_box(self, p: Sequence[float], slack: float = 0.0) -> bool:
        """True if ``p`` lies strictly inside the padded image box."""
        lo, hi = self._lo, self._hi
        return all(lo[i] + slack < p[i] < hi[i] - slack for i in range(3))

    def inside_domain(self, p: Sequence[float]) -> bool:
        """True if ``p`` is strictly inside the virtual bounding simplex.

        This is the insertion gate: any such point can be triangulated.
        It is a superset of :meth:`inside_box` — circumcenters of exterior
        tetrahedra routinely fall outside the padded image box but are
        perfectly insertable.
        """
        m = self._hull_margin
        for n, off in self._hull_planes:
            if n[0] * p[0] + n[1] * p[1] + n[2] * p[2] - off <= m:
                return False
        return True

    # ------------------------------------------------------------------
    # point location
    # ------------------------------------------------------------------
    def locate(self, p: Sequence[float], hint: Optional[int] = None,
               touch: TouchFn = None) -> int:
        """Find a tetrahedron containing ``p`` by a remembering walk."""
        mesh = self.mesh
        pts = mesh.points
        t = hint if hint is not None and mesh.is_live(hint) else None
        if t is None:
            t = next(mesh.live_tets())
        max_steps = mesh.n_live_tets * 2 + 64
        rng = self._rng
        # The walk itself is read-only point location and is deliberately
        # NOT protected by vertex locks (the paper locks what cavity
        # expansion and ball filling touch).  A concurrently invalidated
        # tet is detected and the walk restarts from a live one; a
        # wrongly located tet is caught by the conflict check in
        # compute_cavity.
        for _ in range(max_steps):
            verts = mesh.tet_verts[t]
            if verts is None:  # invalidated under our feet
                t = next(mesh.live_tets())
                continue
            qa, qb, qc, qd = (pts[verts[0]], pts[verts[1]],
                              pts[verts[2]], pts[verts[3]])
            quad = (qa, qb, qc, qd)
            moved = False
            start = rng.randrange(4)
            for k in range(4):
                i = (start + k) & 3
                args = list(quad)
                args[i] = p
                if orient3d(*args) < 0:
                    nbr = mesh.tet_adj[t][i]
                    if nbr == HULL:
                        raise PointLocationError(
                            f"point {tuple(p)} escapes the virtual box"
                        )
                    t = nbr
                    moved = True
                    break
            if not moved:
                return t
        raise PointLocationError("walk did not converge (cycling)")

    # ------------------------------------------------------------------
    # insertion (Bowyer-Watson)
    # ------------------------------------------------------------------
    def compute_cavity(self, p: Sequence[float], hint: Optional[int] = None,
                       touch: TouchFn = None
                       ) -> Tuple[List[int], List[Tuple[int, int]]]:
        """Conflict region of ``p``: cavity tets + boundary (tet, face) pairs.

        Purely a read operation; safe to abandon at any point.  The
        conflict rule is *strict* (``insphere > 0``): cospherical ties stay
        outside the cavity, which yields degenerate-but-valid new elements
        instead of corrupting the cavity's star-shapedness.  A located tet
        that is not in strict conflict means ``p`` duplicates an existing
        vertex (a point inside a closed tet lies on its circumsphere only
        at a vertex) and raises :class:`InsertionError`.
        """
        mesh = self.mesh
        pts = mesh.points
        t0 = self.locate(p, hint, touch)
        v0 = mesh.tet_verts[t0]
        if touch is not None:
            for v in v0:
                touch(v)
            if mesh.tet_verts[t0] != v0:
                # The seed died between location and locking: treat like
                # a conflict and let the caller retry the element.
                raise RollbackSignal(owner=-1)
        p0a, p0b, p0c, p0d = (pts[v0[0]], pts[v0[1]], pts[v0[2]], pts[v0[3]])
        if insphere(p0a, p0b, p0c, p0d, p) <= 0:
            raise InsertionError(
                f"point {tuple(p)} duplicates an existing vertex"
            )
        cavity = [t0]
        in_cavity = {t0}
        checked_out: Set[int] = set()
        boundary: List[Tuple[int, int]] = []
        stack = [t0]
        while stack:
            t = stack.pop()
            adj = mesh.tet_adj[t]
            for i in range(4):
                nbr = adj[i]
                if nbr == HULL:
                    boundary.append((t, i))
                    continue
                if nbr in in_cavity:
                    continue
                if nbr in checked_out:
                    boundary.append((t, i))
                    continue
                nverts = mesh.tet_verts[nbr]
                if touch is not None:
                    for v in nverts:
                        touch(v)
                na, nb, nc, nd = (pts[nverts[0]], pts[nverts[1]],
                                  pts[nverts[2]], pts[nverts[3]])
                if insphere(na, nb, nc, nd, p) > 0:
                    in_cavity.add(nbr)
                    cavity.append(nbr)
                    stack.append(nbr)
                else:
                    checked_out.add(nbr)
                    boundary.append((t, i))
        return cavity, boundary

    def insert_point(self, p: Sequence[float], hint: Optional[int] = None,
                     touch: TouchFn = None
                     ) -> Tuple[int, List[int], List[int]]:
        """Insert ``p``; returns ``(vertex_id, new_tets, killed_tets)``.

        Raises :class:`InsertionError` (triangulation untouched) when the
        insertion would create a degenerate tetrahedron — e.g. ``p``
        duplicates an existing vertex or lies exactly on a cavity boundary
        face.  Raises :class:`PointLocationError` if ``p`` is outside the
        virtual box.
        """
        if not self.inside_domain(p):
            raise PointLocationError(
                f"point {tuple(p)} outside the virtual bounding simplex"
            )
        mesh = self.mesh
        pts = mesh.points
        cavity, boundary = self.compute_cavity(p, hint, touch)

        # Validate before mutating: each new tet replaces the cavity-side
        # vertex of a boundary face with p and must stay positively
        # oriented (cavity star-shapedness around p).
        new_specs: List[Tuple[int, int]] = []  # (cavity tet, face index)
        edge_use: Dict[Tuple[int, int], int] = {}
        for (t, i) in boundary:
            verts = mesh.tet_verts[t]
            args = [pts[verts[0]], pts[verts[1]], pts[verts[2]], pts[verts[3]]]
            args[i] = p
            if orient3d(*args) <= 0:
                raise InsertionError(
                    "degenerate insertion: point lies on a cavity face"
                )
            face = [verts[m] for m in range(4) if m != i]
            for (u, w) in ((face[0], face[1]), (face[0], face[2]),
                           (face[1], face[2])):
                key = (u, w) if u < w else (w, u)
                edge_use[key] = edge_use.get(key, 0) + 1
            new_specs.append((t, i))
        if any(c != 2 for c in edge_use.values()):
            raise InsertionError(
                "degenerate insertion: cavity boundary is not a closed surface"
            )

        # ---- commit phase (no predicate can fail from here on) ----
        vnew = mesh.add_vertex(p)
        # Record external adjacency before killing cavity tets.
        ext: List[int] = []
        for (t, i) in boundary:
            ext.append(mesh.tet_adj[t][i])

        new_tets: List[int] = []
        edge_map: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for k, (t, i) in enumerate(new_specs):
            verts = list(mesh.tet_verts[t])
            verts[i] = vnew
            nt = mesh.add_tet(tuple(verts))
            new_tets.append(nt)
            o = ext[k]
            mesh.tet_adj[nt][i] = o
            if o != HULL:
                # o's pointer still references the dying cavity tet t.
                j = mesh.neighbor_index(o, t)
                mesh.tet_adj[o][j] = nt
            # Internal faces: each contains vnew and one edge of the
            # boundary triangle.
            for j in range(4):
                if j == i:
                    continue
                edge = [verts[m] for m in range(4) if m != j and m != i]
                key = (edge[0], edge[1]) if edge[0] < edge[1] else (edge[1], edge[0])
                other = edge_map.pop(key, None)
                if other is None:
                    edge_map[key] = (nt, j)
                else:
                    mesh.set_mutual_adjacency(nt, j, other[0], other[1])

        for t in cavity:
            mesh.kill_tet(t)
        # v2t anchors for surviving vertices may point at dead tets; they
        # are refreshed lazily, but make sure vnew's anchor is live.
        mesh.v2t[vnew] = new_tets[0]
        for nt in new_tets:
            for v in mesh.tet_verts[nt]:
                mesh.v2t[v] = nt
        return vnew, new_tets, cavity

    # ------------------------------------------------------------------
    # removal
    # ------------------------------------------------------------------
    def remove_vertex(self, v: int, touch: TouchFn = None
                      ) -> Tuple[List[int], List[int]]:
        """Remove vertex ``v`` and re-triangulate its ball.

        Returns ``(new_tets, killed_tets)``.  The ball is filled with the
        tetrahedra of a *local* Delaunay triangulation of the link
        vertices, built by inserting them in global insertion-timestamp
        order (paper Section 4.2), selecting the local tets whose
        circumsphere contains ``v``; the selection is verified to tile the
        hole exactly before any mutation happens, and
        :class:`RemovalError` is raised otherwise.
        """
        mesh = self.mesh
        if self.is_box_vertex(v):
            raise RemovalError("virtual box corners cannot be removed")
        if not mesh.alive_vertex[v]:
            raise RemovalError(f"vertex {v} is not alive")
        pts = mesh.points
        p = pts[v]

        # Lock the vertex itself before walking its star: any concurrent
        # operation that would create or destroy a tet incident to ``v``
        # must touch ``v`` too, so holding it freezes the ball.
        if touch is not None:
            touch(v)
        ball = mesh.incident_tets(v)
        if not ball:
            raise RemovalError(f"vertex {v} has no incident tetrahedra")
        if touch is not None:
            for t in ball:
                for w in mesh.tet_verts[t]:
                    touch(w)

        ball_set = set(ball)
        # Hole boundary: the face opposite v in each ball tet, plus its
        # outside neighbor.
        hole_faces: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        link: List[int] = []
        link_seen: Set[int] = set()
        for t in ball:
            li = mesh.local_index(t, v)
            face = mesh.face_opposite(t, li)
            key = tuple(sorted(face))
            hole_faces[key] = (t, li)
            for w in face:
                if w not in link_seen:
                    link_seen.add(w)
                    link.append(w)

        from repro.geometry.quality import tet_volume

        self._pending_ball_volume = sum(
            abs(tet_volume(*self.tet_points(t))) for t in ball
        )
        # Two fill strategies, both verified against the hole boundary
        # before any mutation:
        #  1. boundary-conforming Delaunay gift-wrapping (advancing front
        #     seeded with the hole's own boundary faces, min-id tie-break);
        #  2. fallback: local Delaunay triangulation of the link replayed
        #     in global insertion-timestamp order (the paper's approach).
        fill = None
        errors = []
        for strategy in (self._fill_hole_giftwrap, self._fill_hole_local_dt):
            try:
                candidate = strategy(p, link, hole_faces, ball)
                self._verify_fill(candidate, hole_faces)
            except RemovalError as exc:
                errors.append(f"{strategy.__name__}: {exc}")
                continue
            fill = candidate
            break
        if fill is None:
            raise RemovalError(
                "ball re-triangulation failed (" + "; ".join(errors) + ")"
            )
        boundary_faces = set(hole_faces.keys())

        # ---- commit ----
        # Resolve each boundary face's outside neighbor *and* the slot in
        # that neighbor pointing back into the ball before killing any
        # tet: killed slots get recycled by add_tet, which would make the
        # stale back-pointers ambiguous.
        ext: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        for key, (t, li) in hole_faces.items():
            o = mesh.tet_adj[t][li]
            j = mesh.neighbor_index(o, t) if o != HULL else -1
            ext[key] = (o, j)

        for t in ball:
            mesh.kill_tet(t)
        mesh.kill_vertex(v)

        new_tets: List[int] = []
        face_map: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        for tet in fill:
            a, b, c, d = tet
            if orient3d(pts[a], pts[b], pts[c], pts[d]) < 0:
                tet = (b, a, c, d)
            nt = mesh.add_tet(tet)
            new_tets.append(nt)
            for i in range(4):
                f = tuple(sorted(tet[j] for j in range(4) if j != i))
                if f in boundary_faces:
                    o, j = ext[f]
                    mesh.tet_adj[nt][i] = o
                    if o != HULL:
                        mesh.tet_adj[o][j] = nt
                else:
                    other = face_map.pop(f, None)
                    if other is None:
                        face_map[f] = (nt, i)
                    else:
                        mesh.set_mutual_adjacency(nt, i, other[0], other[1])

        for nt in new_tets:
            for w in mesh.tet_verts[nt]:
                mesh.v2t[w] = nt
        return new_tets, ball

    # ------------------------------------------------------------------
    # hole-filling strategies for vertex removal
    # ------------------------------------------------------------------
    def _fill_hole_giftwrap(self, p, link, hole_faces, ball):
        """Delaunay gift-wrapping of the removal ball.

        Advancing front seeded with the hole's own boundary faces, so the
        result conforms to the surrounding mesh by construction.  Apexes
        are chosen by the standard empty-circumsphere sweep with a
        deterministic smallest-id tie-break (a "pulling" resolution of
        cospherical clusters); dominance is re-verified so degenerate
        inputs fail cleanly instead of producing overlaps.
        """
        mesh = self.mesh
        pts = mesh.points

        # Front entries: sorted-face-key -> (template, slot).  Placing an
        # apex vertex at ``template[slot]`` must give a positively
        # oriented tet on the *remaining hole* side of the face.
        front: Dict[Tuple[int, int, int], Tuple[List[int], int]] = {}
        for key, (t, li) in hole_faces.items():
            template = list(mesh.tet_verts[t])
            front[key] = (template, li)

        link_sorted = sorted(link)
        fill: List[Tuple[int, int, int, int]] = []
        made: Set[Tuple[int, int, int, int]] = set()
        max_iter = 8 * len(ball) + 64
        it = 0
        while front:
            it += 1
            if it > max_iter:
                raise RemovalError("gift-wrapping did not converge")
            key, (template, slot) = front.popitem()
            face_verts = set(template) - {template[slot]}

            def tet_points_for(apex):
                args = [pts[template[m]] for m in range(4)]
                args[slot] = pts[apex]
                return args

            candidates = []
            best = None
            for w in link_sorted:
                if w in face_verts:
                    continue
                args = tet_points_for(w)
                if orient3d(*args) <= 0:
                    continue
                candidates.append(w)
                if best is None:
                    best = w
                    continue
                bargs = tet_points_for(best)
                if insphere(bargs[0], bargs[1], bargs[2], bargs[3], pts[w]) > 0:
                    best = w
            if best is None:
                raise RemovalError("gift-wrapping found no apex for a face")
            # Dominance re-check (guards non-transitive degenerate sweeps)
            # and collection of the cospherical tie set.
            bargs = tet_points_for(best)
            ties = [best]
            for w in candidates:
                if w == best:
                    continue
                s = insphere(bargs[0], bargs[1], bargs[2], bargs[3], pts[w])
                if s > 0:
                    raise RemovalError("gift-wrapping apex not dominant")
                if s == 0:
                    ties.append(w)
            if len(ties) > 1:
                # Cospherical cluster: any tie is Delaunay-valid, but only
                # choices consistent with the already-fixed hole boundary
                # tile the ball.  Prefer the apex whose new tet cancels the
                # most faces already waiting in the front.
                def front_score(w):
                    nv = list(template)
                    nv[slot] = w
                    score = 0
                    for j in range(4):
                        if j == slot:
                            continue
                        fkey = tuple(sorted(nv[m] for m in range(4) if m != j))
                        if fkey in front:
                            score += 1
                    return (score, -w)

                best = max(ties, key=front_score)
                bargs = tet_points_for(best)

            new_verts = list(template)
            new_verts[slot] = best
            tet = tuple(new_verts)
            canon = tuple(sorted(tet))
            if canon in made:
                raise RemovalError("gift-wrapping repeated a tetrahedron")
            made.add(canon)
            fill.append(tet)

            # Push / cancel the three faces containing the new apex.
            for j in range(4):
                if j == slot:
                    continue
                fkey = tuple(sorted(new_verts[m] for m in range(4) if m != j))
                if fkey in front:
                    del front[fkey]
                else:
                    # Flip parity so an apex beyond this face orients
                    # positively: swap two slots other than j.
                    flipped = list(new_verts)
                    others = [m for m in range(4) if m != j]
                    flipped[others[0]], flipped[others[1]] = (
                        flipped[others[1]], flipped[others[0]],
                    )
                    front[fkey] = (flipped, j)
        return fill

    def _fill_hole_local_dt(self, p, link, hole_faces, ball):
        """The paper's strategy: local DT of the link replayed in global
        insertion-timestamp order; keep the local tets whose circumsphere
        strictly contains the removed point."""
        mesh = self.mesh
        pts = mesh.points
        order = sorted(link, key=lambda w: mesh.timestamps[w])
        lo = [min(pts[w][i] for w in link) for i in range(3)]
        hi = [max(pts[w][i] for w in link) for i in range(3)]
        extent = max(hi[i] - lo[i] for i in range(3))
        local = Triangulation3D(lo, hi, margin=2.0 * extent)
        l2g: Dict[int, int] = {}
        hint = None
        try:
            for w in order:
                lv, ntets, _ = local.insert_point(pts[w], hint)
                l2g[lv] = w
                hint = ntets[0]
        except (InsertionError, PointLocationError) as exc:
            raise RemovalError(f"link re-triangulation failed: {exc}") from exc

        fill: List[Tuple[int, int, int, int]] = []
        lmesh = local.mesh
        for lt in lmesh.live_tets():
            lverts = lmesh.tet_verts[lt]
            if any(lw not in l2g for lw in lverts):
                continue
            la, lb, lc, ld = (lmesh.points[lverts[0]], lmesh.points[lverts[1]],
                              lmesh.points[lverts[2]], lmesh.points[lverts[3]])
            if insphere(la, lb, lc, ld, p) > 0:
                fill.append(tuple(l2g[lw] for lw in lverts))
        if not fill:
            raise RemovalError("no local tetrahedra conflict with the vertex")
        return fill

    def _verify_fill(self, fill, hole_faces) -> None:
        """Check that ``fill`` tiles the removal ball exactly.

        Face-pairing check: every face appears at most twice, the faces
        appearing once are exactly the hole boundary.  A volume check
        guards against abstractly-paired but geometrically overlapping
        configurations.
        """
        from repro.geometry.quality import tet_volume

        mesh = self.mesh
        pts = mesh.points
        face_count: Dict[Tuple[int, int, int], int] = {}
        for tet in fill:
            for i in range(4):
                f = tuple(sorted(tet[j] for j in range(4) if j != i))
                face_count[f] = face_count.get(f, 0) + 1
        if any(c > 2 for c in face_count.values()):
            raise RemovalError("fill face shared by more than two tets")
        boundary = {f for f, c in face_count.items() if c == 1}
        if boundary != set(hole_faces.keys()):
            raise RemovalError("fill does not tile the removal ball")

        fill_volume = sum(
            abs(tet_volume(pts[a], pts[b], pts[c], pts[d]))
            for (a, b, c, d) in fill
        )
        ball_volume = self._pending_ball_volume
        if abs(fill_volume - ball_volume) > 1e-6 * max(1.0, ball_volume):
            raise RemovalError("fill volume does not match ball volume")

    # ------------------------------------------------------------------
    # validation (test / debug helpers)
    # ------------------------------------------------------------------
    def validate_topology(self) -> None:
        """Assert structural invariants; raises AssertionError on failure."""
        mesh = self.mesh
        pts = mesh.points
        for t in mesh.live_tets():
            verts = mesh.tet_verts[t]
            a, b, c, d = (pts[verts[0]], pts[verts[1]], pts[verts[2]], pts[verts[3]])
            assert orient3d(a, b, c, d) > 0, f"tet {t} not positively oriented"
            adj = mesh.tet_adj[t]
            for i in range(4):
                nbr = adj[i]
                if nbr == HULL:
                    continue
                assert mesh.is_live(nbr), f"tet {t} adj to dead tet {nbr}"
                face = set(mesh.face_opposite(t, i))
                nface_ok = face.issubset(set(mesh.tet_verts[nbr]))
                assert nface_ok, f"face mismatch {t}/{nbr}"
                j = mesh.neighbor_index(nbr, t)
                assert set(mesh.face_opposite(nbr, j)) == face, \
                    f"reciprocal face mismatch {t}/{nbr}"

    def is_delaunay(self, tol_exhaustive: int = 250_000) -> bool:
        """Exhaustive empty-circumsphere check (tests only; O(n_t * n_v))."""
        mesh = self.mesh
        pts = mesh.points
        live_verts = [w for w in range(len(pts)) if mesh.alive_vertex[w]]
        n_checks = mesh.n_live_tets * len(live_verts)
        if n_checks > tol_exhaustive:
            raise ValueError(
                f"mesh too large for exhaustive Delaunay check ({n_checks})"
            )
        for t in mesh.live_tets():
            verts = mesh.tet_verts[t]
            a, b, c, d = (pts[verts[0]], pts[verts[1]], pts[verts[2]], pts[verts[3]])
            for w in live_verts:
                if w in verts:
                    continue
                if insphere(a, b, c, d, pts[w]) > 0:
                    return False
        return True

