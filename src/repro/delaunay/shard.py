"""Domain-sharded meshing: block decomposition + interface stitching.

The per-mesh latency floor of the sequential refiner is the largest
contiguous region one process refines.  This module turns that floor
into a scale-out knob, following the decompose / mesh-independently /
repair-the-interfaces template of Garner et al. (PAPERS.md):

1. **Decompose** — :func:`decompose` splits the image's foreground
   bounding box into axis-aligned blocks by recursive bisection
   (octree-style: always the longest axis, at the occupancy-weighted
   median plane), where *occupancy* is the foreground voxel count — the
   cheap stand-in for refinement work, which the EDT concentrates
   around foreground surfaces.  Each block has a half-open **core**
   (exclusive point ownership; cores partition all of space, the outer
   faces extending to infinity) and an **overlap crop** — the core
   dilated by the interface band, so a shard sees the same image
   context any point in its core would see in the unsharded run out to
   the ``2*delta`` influence radius of the refinement rules.
2. **Mesh blocks** — :func:`mesh_block` runs the ordinary sequential
   refiner on the cropped sub-image (same ``delta``, same bounds) and
   exports the vertices its core *owns*, in insertion order, with
   their :class:`~repro.core.domain.VertexKind`.
3. **Stitch** — :func:`stitch` rebuilds one global domain, bulk-loads
   every owned point through ``Triangulation3D.insert_many`` (the
   ``bw_insert_many`` C kernel), replays rule R6 in the interface
   bands — circumcenter vertices within ``2*delta`` of a seam-band
   isosurface sample are deleted via ``remove_vertex`` (the
   ``bw_remove`` kernel) — and then runs the sequential refiner to
   completion.  The refiner's vectorized radius-edge screen seeds its
   Poor Element List from *all* live tets, so the final mesh satisfies
   every rule the unsharded mesh satisfies; away from the seams the
   point set is already refined and the screen admits (almost) nothing.

Everything here is deterministic: blocks are visited in index order,
points in per-shard insertion order, and R6 victims in sorted-id
order, so the same image + the same shard count reproduces the same
topology on every run.

:func:`mesh_sharded` composes the three stages behind a ``runner``
callable so the same algorithm serves in-process execution (the
default serial runner) and the service's process-pool fan-out
(:mod:`repro.service.shards`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.imaging.image import SegmentedImage

Vec3i = Tuple[int, int, int]
Vec3f = Tuple[float, float, float]

#: Smallest core extent (voxels) bisection will leave on either side of
#: a cut.  Below this a block's crop is mostly band, and shard overhead
#: outweighs the win.
MIN_CORE_VOXELS = 4

#: Cap on post-stitch quality passes.  Each pass re-seeds the refiner
#: from every live tet and runs to convergence; the loop exits as soon
#: as a pass makes no insertions or removals, so the cap only guards
#: against a pathological mutate/skip ping-pong.
_MAX_QUALITY_ROUNDS = 8


class ShardingUnavailable(RuntimeError):
    """The image cannot usefully be sharded (e.g. one occupied block)."""


@dataclass(frozen=True)
class Block:
    """One shard of the decomposition, in voxel and world coordinates.

    ``core_lo``/``core_hi`` is the half-open voxel box this block owns;
    ``crop_lo``/``crop_hi`` is the core dilated by the interface band
    and clamped to the image (the sub-image the shard actually meshes).
    ``own_lo``/``own_hi`` is the world-space ownership box: half-open,
    with faces on the decomposition root's boundary pushed to ±inf so
    the ownership boxes of all blocks partition all of space (shard
    meshes place circumcenters outside the image volume too).
    """

    index: int
    core_lo: Vec3i
    core_hi: Vec3i
    crop_lo: Vec3i
    crop_hi: Vec3i
    own_lo: Vec3f
    own_hi: Vec3f
    occupancy: int

    def owns(self, p: Sequence[float]) -> bool:
        return (
            self.own_lo[0] <= p[0] < self.own_hi[0]
            and self.own_lo[1] <= p[1] < self.own_hi[1]
            and self.own_lo[2] <= p[2] < self.own_hi[2]
        )


@dataclass
class ShardPlan:
    """The full decomposition: blocks + the parameters they share."""

    blocks: List[Block]
    band_voxels: Vec3i
    delta: float
    root_lo: Vec3i
    root_hi: Vec3i

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def seam_planes(self, image: SegmentedImage) -> List[Tuple[int, float]]:
        """Interior core boundaries as ``(axis, world_coordinate)``.

        Only planes strictly inside the decomposition root qualify —
        the root's own faces are not seams.
        """
        planes = set()
        for b in self.blocks:
            for axis in range(3):
                for idx in (b.core_lo[axis], b.core_hi[axis]):
                    if self.root_lo[axis] < idx < self.root_hi[axis]:
                        planes.add((axis, _world(image, axis, idx)))
        return sorted(planes)

    def to_meta(self) -> Dict[str, Any]:
        """JSON-safe summary for stats / logs."""
        return {
            "blocks": self.n_blocks,
            "band_voxels": list(self.band_voxels),
            "delta": self.delta,
            "occupancy": [b.occupancy for b in self.blocks],
        }


def _world(image: SegmentedImage, axis: int, idx: int) -> float:
    """World coordinate of voxel-grid plane ``idx`` along ``axis``.

    One expression, used for every block: adjacent blocks get the
    bit-identical float for their shared boundary.
    """
    return image.origin[axis] + idx * image.spacing[axis]


def band_width_voxels(image: SegmentedImage, delta: float) -> Vec3i:
    """Interface band width per axis, in voxels.

    The refinement rules reach ``2*delta`` around a point (R6's purge
    radius, R1/R2's circumball tests at the target density), so a
    shard must see at least that much image beyond its core for its
    core-owned points to match the unsharded run; one extra voxel
    covers the EDT's voxel-center discretisation.
    """
    return tuple(
        max(2, int(math.ceil(2.0 * delta / image.spacing[d])) + 1)
        for d in range(3)
    )


def resolve_delta(image: SegmentedImage, delta: Optional[float]) -> float:
    """The delta every shard and the stitch domain share (must match
    :class:`~repro.core.domain.RefineDomain`'s default resolution)."""
    return float(delta) if delta is not None else 2.0 * image.min_spacing


# ---------------------------------------------------------------------------
# decomposition
# ---------------------------------------------------------------------------

def decompose(image: SegmentedImage, n_shards: int,
              delta: Optional[float] = None,
              band_voxels: Optional[int] = None) -> ShardPlan:
    """Split the image into at most ``n_shards`` occupied blocks.

    Recursive bisection of the foreground bounding box: repeatedly
    split the block with the most foreground voxels along its longest
    physical axis, at the occupancy-weighted median plane (clamped so
    both sides keep a usable core).  Stops early when no block can be
    split further; the returned plan may hold fewer blocks than asked.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    d = resolve_delta(image, delta)
    band = ((band_voxels,) * 3 if band_voxels is not None
            else band_width_voxels(image, d))
    mask = image.labels > 0
    fg = np.argwhere(mask)
    if fg.size == 0:
        raise ValueError("image has no foreground voxels")
    root_lo = tuple(int(x) for x in fg.min(axis=0))
    root_hi = tuple(int(x) + 1 for x in fg.max(axis=0))

    boxes: List[Tuple[Vec3i, Vec3i, int]] = [
        (root_lo, root_hi, int(mask.sum()))
    ]
    while len(boxes) < n_shards:
        split = _best_split(mask, boxes, image.spacing)
        if split is None:
            break
        i, axis, cut = split
        lo, hi, _ = boxes[i]
        a_hi = list(hi)
        a_hi[axis] = cut
        b_lo = list(lo)
        b_lo[axis] = cut
        a = (lo, tuple(a_hi))
        b = (tuple(b_lo), hi)
        boxes[i: i + 1] = [
            (bl, bh, _occupancy(mask, bl, bh)) for bl, bh in (a, b)
        ]

    shape = image.shape
    blocks: List[Block] = []
    for lo, hi, occ in sorted(b for b in boxes if b[2] > 0):
        crop_lo = tuple(max(0, lo[d] - band[d]) for d in range(3))
        crop_hi = tuple(min(shape[d], hi[d] + band[d]) for d in range(3))
        own_lo = tuple(
            _world(image, d, lo[d]) if lo[d] > root_lo[d] else -math.inf
            for d in range(3)
        )
        own_hi = tuple(
            _world(image, d, hi[d]) if hi[d] < root_hi[d] else math.inf
            for d in range(3)
        )
        blocks.append(Block(
            index=len(blocks), core_lo=lo, core_hi=hi,
            crop_lo=crop_lo, crop_hi=crop_hi,
            own_lo=own_lo, own_hi=own_hi, occupancy=occ,
        ))
    return ShardPlan(blocks=blocks, band_voxels=band, delta=d,
                     root_lo=root_lo, root_hi=root_hi)


def _occupancy(mask: np.ndarray, lo: Vec3i, hi: Vec3i) -> int:
    return int(mask[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]].sum())


def _best_split(mask: np.ndarray, boxes, spacing
                ) -> Optional[Tuple[int, int, int]]:
    """``(box index, axis, cut plane)`` for the most occupied splittable
    box, or ``None`` when nothing can be split."""
    order = sorted(range(len(boxes)), key=lambda i: -boxes[i][2])
    for i in order:
        lo, hi, occ = boxes[i]
        if occ == 0:
            continue
        axes = sorted(
            (d for d in range(3) if hi[d] - lo[d] >= 2 * MIN_CORE_VOXELS),
            key=lambda d: -(hi[d] - lo[d]) * spacing[d],
        )
        for axis in axes:
            cut = _median_cut(mask, lo, hi, axis)
            if cut is not None:
                return (i, axis, cut)
    return None


def _median_cut(mask: np.ndarray, lo: Vec3i, hi: Vec3i,
                axis: int) -> Optional[int]:
    """Occupancy-median plane along ``axis``, clamped to leave
    ``MIN_CORE_VOXELS`` on both sides."""
    sub = mask[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]
    counts = sub.sum(axis=tuple(d for d in range(3) if d != axis))
    total = int(counts.sum())
    if total == 0:
        return None
    cum = np.cumsum(counts)
    cut = int(np.searchsorted(cum, total / 2.0)) + 1
    cut = min(max(cut, MIN_CORE_VOXELS), (hi[axis] - lo[axis])
              - MIN_CORE_VOXELS)
    if cut <= 0 or cut >= hi[axis] - lo[axis]:
        return None
    return lo[axis] + cut


# ---------------------------------------------------------------------------
# per-block meshing
# ---------------------------------------------------------------------------

def crop_image(image: SegmentedImage, block: Block) -> SegmentedImage:
    """The block's sub-image, origin shifted so world coords align."""
    lo, hi = block.crop_lo, block.crop_hi
    labels = np.ascontiguousarray(
        image.labels[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]
    )
    origin = tuple(_world(image, d, lo[d]) for d in range(3))
    return SegmentedImage(labels, spacing=image.spacing, origin=origin)


def refine_block(sub: SegmentedImage, own_lo: Sequence[float],
                 own_hi: Sequence[float], *, delta: float,
                 radius_edge_bound: float = 2.0,
                 planar_angle_bound_deg: float = 30.0,
                 max_operations: Optional[int] = None
                 ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Refine one (already cropped) sub-image and export owned points.

    Returns ``(arrays, stats)`` where ``arrays`` holds ``points``
    (float64 ``(k, 3)``, insertion order) and ``kinds`` (int8 ``(k,)``,
    :class:`~repro.core.domain.VertexKind` values).  Runs identically
    in-process and inside a worker process (the service's shard job
    kind calls straight into this).
    """
    from repro.core.domain import RefineDomain, VertexKind
    from repro.core.refiner import SequentialRefiner

    domain = RefineDomain(
        sub, delta=delta, radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
    )
    rstats = SequentialRefiner(
        domain, max_operations=max_operations
    ).refine()
    mesh = domain.tri.mesh
    alive = mesh.alive_vertex
    rows: List[Tuple[int, int, int]] = []  # (timestamp, vertex, kind)
    for v, kind in domain.vertex_kind.items():
        if kind == VertexKind.BOX or not alive[v]:
            continue
        p = mesh.points[v]
        if (own_lo[0] <= p[0] < own_hi[0]
                and own_lo[1] <= p[1] < own_hi[1]
                and own_lo[2] <= p[2] < own_hi[2]):
            rows.append((mesh.timestamps[v], v, int(kind)))
    rows.sort()
    pts = np.array(
        [mesh.points[v] for _, v, _ in rows], dtype=np.float64
    ).reshape(-1, 3)
    kinds = np.array([k for _, _, k in rows], dtype=np.int8)
    stats = {
        "operations": rstats.n_operations,
        "insertions": rstats.n_insertions,
        "removals": rstats.n_removals,
        "tets": rstats.final_tets,
        "owned_points": int(len(rows)),
        "refine_seconds": rstats.wall_time,
    }
    return {"points": pts, "kinds": kinds}, stats


def mesh_block(image: SegmentedImage, block: Block, plan: ShardPlan,
               *, radius_edge_bound: float = 2.0,
               planar_angle_bound_deg: float = 30.0,
               max_operations: Optional[int] = None
               ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Crop + refine one block of ``image`` (the in-process runner)."""
    return refine_block(
        crop_image(image, block), block.own_lo, block.own_hi,
        delta=plan.delta, radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
        max_operations=max_operations,
    )


# ---------------------------------------------------------------------------
# stitching
# ---------------------------------------------------------------------------

def stitch(image: SegmentedImage, plan: ShardPlan,
           shard_points: List[Dict[str, np.ndarray]], *,
           radius_edge_bound: float = 2.0,
           planar_angle_bound_deg: float = 30.0,
           max_operations: Optional[int] = None,
           obs=None):
    """Merge shard point clouds into one refined global mesh.

    ``shard_points[i]`` is block ``i``'s ``{"points", "kinds"}`` export.
    Returns ``(MeshingResult, stitch_stats)``.
    """
    from repro.core import MeshingResult, extract_mesh
    from repro.core.domain import RefineDomain, VertexKind
    from repro.core.refiner import SequentialRefiner

    tracer = obs.tracer if obs is not None else None
    t0 = time.perf_counter()
    domain = RefineDomain(
        image, delta=plan.delta, radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
    )
    tri = domain.tri

    # -- bulk load: one batched bw_insert_many sweep in block order ----
    points: List[Tuple[float, float, float]] = []
    kinds: List[int] = []
    for out in shard_points:
        points.extend(map(tuple, out["points"].tolist()))
        kinds.extend(out["kinds"].tolist())
    vids = tri.insert_many(points)
    inserted = 0
    duplicates = 0
    iso_loaded: List[Tuple[int, Tuple[float, float, float]]] = []
    for vid, kind, p in zip(vids, kinds, points):
        if vid is None:
            duplicates += 1
            continue
        inserted += 1
        k = VertexKind(kind)
        domain.vertex_kind[vid] = k
        if k == VertexKind.ISOSURFACE:
            domain.iso_grid.add(vid, p)
            iso_loaded.append((vid, p))
        else:
            domain.cc_grid.add(vid, p)
    domain.n_insertions += inserted
    load_seconds = time.perf_counter() - t0

    # -- interface-band R6 replay: bw_remove on crowded circumcenters --
    # Each shard applied R6 only against its own isosurface samples; a
    # circumcenter owned by one block can sit within 2*delta of an
    # isosurface sample owned by its neighbour.  Replay the purge for
    # isosurface vertices in the seam bands.
    t1 = time.perf_counter()
    removed = _replay_r6_bands(domain, plan, image, iso_loaded)
    r6_seconds = time.perf_counter() - t1

    # -- local re-refinement until every rule passes -------------------
    # The refiner seeds its PEL from the vectorized radius-edge screen
    # plus the scalar rule checks over all live tets; away from the
    # seams the shards already refined to completion, so the seed is
    # (nearly) empty there and the work concentrates on the interfaces.
    t2 = time.perf_counter()
    refiner = SequentialRefiner(domain, max_operations=max_operations,
                                obs=obs)
    if tracer is not None and tracer.enabled:
        with tracer.span("shard.stitch.refine"):
            rstats = refiner.refine()
    else:
        rstats = refiner.refine()
    # The dense bulk reload makes transiently degenerate cavities far
    # likelier than during a from-scratch run, and the refiner drops a
    # tet whose insertion raises mid-pass even though the rule becomes
    # applicable again once the neighbourhood changes.  Re-run fresh
    # passes (each re-seeds the PEL from every live tet) until one makes
    # no insertions or removals, so no inside-object tet escapes the
    # radius-edge / size screen for lack of a retry.
    quality_rounds = 0
    while quality_rounds < _MAX_QUALITY_ROUNDS:
        before = domain.n_insertions + domain.n_removals
        extra = SequentialRefiner(
            domain, max_operations=max_operations
        ).refine()
        rstats.n_operations += extra.n_operations
        if domain.n_insertions + domain.n_removals == before:
            break
        quality_rounds += 1
    rstats.final_tets = domain.tri.n_tets
    rstats.final_vertices = domain.tri.n_vertices
    rstats.n_insertions = domain.n_insertions
    rstats.n_removals = domain.n_removals
    rstats.n_skipped = domain.n_skipped
    refine_seconds = time.perf_counter() - t2

    mesh = extract_mesh(domain)
    stitch_stats = {
        "points_loaded": inserted,
        "duplicates": duplicates,
        "band_removed": removed,
        "refine_operations": rstats.n_operations,
        "quality_rounds": quality_rounds,
        "load_seconds": load_seconds,
        "r6_seconds": r6_seconds,
        "refine_seconds": refine_seconds,
        "seconds": time.perf_counter() - t0,
    }
    if obs is not None:
        reg = obs.registry
        reg.counter("shard.stitch.points").inc(inserted)
        reg.counter("shard.stitch.duplicates").inc(duplicates)
        reg.counter("shard.stitch.removed").inc(removed)
        reg.counter("shard.stitch.refine_operations").inc(
            rstats.n_operations
        )
        reg.gauge("shard.stitch.seconds").set(stitch_stats["seconds"])
    return MeshingResult(mesh=mesh, stats=rstats, domain=domain), \
        stitch_stats


def _replay_r6_bands(domain, plan: ShardPlan, image: SegmentedImage,
                     iso_loaded) -> int:
    """R6 for seam-band isosurface vertices; returns removal count."""
    from repro.core.domain import VertexKind
    from repro.delaunay import RemovalError

    planes = plan.seam_planes(image)
    if not planes or not iso_loaded:
        return 0
    radius = 2.0 * plan.delta
    pts = np.array([p for _, p in iso_loaded], dtype=np.float64)
    near = np.zeros(len(iso_loaded), dtype=bool)
    for axis, w in planes:
        near |= np.abs(pts[:, axis] - w) <= radius
    removed = 0
    tri = domain.tri
    mesh = tri.mesh
    for (vid, p), hit in zip(iso_loaded, near.tolist()):
        if not hit or not mesh.alive_vertex[vid]:
            continue
        victims = sorted(
            v for v in domain.cc_grid.query_ball(p, radius) if v != vid
        )
        for v in victims:
            if not mesh.alive_vertex[v]:
                domain.cc_grid.remove(v)
                continue
            if domain.vertex_kind.get(v) != VertexKind.CIRCUMCENTER:
                continue
            try:
                tri.remove_vertex(v)
            except RemovalError:
                domain.n_skipped += 1
                continue
            domain.n_removals += 1
            domain.cc_grid.remove(v)
            domain.vertex_kind.pop(v, None)
            removed += 1
    return removed


# ---------------------------------------------------------------------------
# composition
# ---------------------------------------------------------------------------

#: ``runner(plan) -> list of {"points", "kinds"} in block order``.
ShardRunner = Callable[[ShardPlan], List[Dict[str, np.ndarray]]]


def mesh_sharded(request, plan: Optional[ShardPlan] = None,
                 runner: Optional[ShardRunner] = None, obs=None):
    """Decompose, mesh every block, stitch; returns a ``MeshResult``.

    ``runner`` maps the plan to per-block point exports; ``None`` runs
    the blocks serially in-process (correctness path — the speedup
    comes from the service's process-pool runner).  Raises
    :class:`ShardingUnavailable` when the decomposition yields fewer
    than two occupied blocks; callers fall back to the unsharded
    mesher.
    """
    from repro.api import MeshResult
    from repro.observability import Observability

    if obs is None:
        obs = Observability.from_config(request.observability)
    t0 = time.perf_counter()
    if plan is None:
        tracer = obs.tracer
        if tracer.enabled:
            with tracer.span("shard.decompose"):
                plan = decompose(request.image, request.resolved_shards(),
                                 delta=request.delta)
        else:
            plan = decompose(request.image, request.resolved_shards(),
                             delta=request.delta)
    if plan.n_blocks < 2:
        raise ShardingUnavailable(
            f"decomposition produced {plan.n_blocks} occupied block(s)"
        )
    t_dec = time.perf_counter() - t0

    if runner is None:
        runner = _serial_runner(request)
    t1 = time.perf_counter()
    outs = runner(plan)
    shard_seconds = time.perf_counter() - t1
    if len(outs) != plan.n_blocks or any(o is None for o in outs):
        raise ShardingUnavailable("a shard produced no output")

    result, stitch_stats = stitch(
        request.image, plan, [o["arrays"] for o in outs],
        radius_edge_bound=request.radius_edge_bound,
        planar_angle_bound_deg=request.planar_angle_bound_deg,
        max_operations=request.max_operations, obs=obs,
    )
    wall = time.perf_counter() - t0
    shard_stats = [o["stats"] for o in outs]
    s = result.stats
    return MeshResult(
        mesh=result.mesh,
        mesher=request.resolved_mesher(),
        stats={
            "operations": s.n_operations,
            "insertions": s.n_insertions + stitch_stats["points_loaded"],
            "removals": s.n_removals,
            "skipped": s.n_skipped,
            "rule_counts": dict(s.rule_counts),
            "elements_per_second": (
                result.mesh.n_tets / wall if wall > 0 else 0.0
            ),
            "shards": plan.n_blocks,
            "shard_plan": plan.to_meta(),
            "shard_stats": shard_stats,
            "stitch": stitch_stats,
        },
        metrics=obs.snapshot(),
        timings={
            "wall_seconds": wall,
            "decompose_seconds": t_dec,
            "shard_seconds": shard_seconds,
            "stitch_seconds": stitch_stats["seconds"],
        },
        extras={"obs": obs, "domain": result.domain, "plan": plan},
    )


def _serial_runner(request) -> ShardRunner:
    def run(plan: ShardPlan):
        outs = []
        for block in plan.blocks:
            arrays, stats = mesh_block(
                request.image, block, plan,
                radius_edge_bound=request.radius_edge_bound,
                planar_angle_bound_deg=request.planar_angle_bound_deg,
                max_operations=request.max_operations,
            )
            outs.append({"arrays": arrays, "stats": stats})
        return outs
    return run


__all__ = [
    "Block",
    "ShardPlan",
    "ShardingUnavailable",
    "band_width_voxels",
    "crop_image",
    "decompose",
    "mesh_block",
    "mesh_sharded",
    "refine_block",
    "resolve_delta",
    "stitch",
]
