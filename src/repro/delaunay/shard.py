"""Domain-sharded meshing: block decomposition + interface stitching.

The per-mesh latency floor of the sequential refiner is the largest
contiguous region one process refines.  This module turns that floor
into a scale-out knob, following the decompose / mesh-independently /
repair-the-interfaces template of Garner et al. (PAPERS.md):

1. **Decompose** — :func:`decompose` splits the image's foreground
   bounding box into axis-aligned blocks by recursive bisection
   (octree-style: always the longest axis, at the occupancy-weighted
   median plane), where *occupancy* is the foreground voxel count — the
   cheap stand-in for refinement work, which the EDT concentrates
   around foreground surfaces.  Each block has a half-open **core**
   (exclusive point ownership; cores partition all of space, the outer
   faces extending to infinity) and an **overlap crop** — the core
   dilated by the interface band, so a shard sees the same image
   context any point in its core would see in the unsharded run out to
   the ``2*delta`` influence radius of the refinement rules.
2. **Mesh blocks** — :func:`mesh_block` runs the ordinary sequential
   refiner on the cropped sub-image (same ``delta``, same bounds) and
   exports the vertices its core *owns*, in insertion order, with
   their :class:`~repro.core.domain.VertexKind`.
3. **Stitch** — :func:`stitch` rebuilds one global domain, bulk-loads
   every owned point through ``Triangulation3D.insert_many`` (the
   ``bw_insert_many`` C kernel), replays rule R6 in the interface
   bands — circumcenter vertices within ``2*delta`` of a seam-band
   isosurface sample are deleted via ``remove_vertex`` (the
   ``bw_remove`` kernel) — and then runs the sequential refiner to
   completion.  The refiner's vectorized radius-edge screen seeds its
   Poor Element List from *all* live tets, so the final mesh satisfies
   every rule the unsharded mesh satisfies; away from the seams the
   point set is already refined and the screen admits (almost) nothing.

Everything here is deterministic: blocks are visited in index order,
points in per-shard insertion order, and R6 victims in sorted-id
order, so the same image + the same shard count reproduces the same
topology on every run.

:func:`mesh_sharded` composes the three stages behind a ``runner``
callable so the same algorithm serves in-process execution (the
default serial runner) and the service's process-pool fan-out
(:mod:`repro.service.shards`).
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.imaging.image import SegmentedImage

Vec3i = Tuple[int, int, int]
Vec3f = Tuple[float, float, float]

#: Smallest core extent (voxels) bisection will leave on either side of
#: a cut.  Below this a block's crop is mostly band, and shard overhead
#: outweighs the win.
MIN_CORE_VOXELS = 4

#: Cut planes snap to this voxel grid so that near-duplicate images
#: decompose identically (see :func:`_median_cut`).
CUT_QUANTUM = 2

#: Cap on post-stitch quality passes.  Each pass re-seeds the refiner
#: from every live tet and runs to convergence; the loop exits as soon
#: as a pass makes no insertions or removals, so the cap only guards
#: against a pathological mutate/skip ping-pong.
_MAX_QUALITY_ROUNDS = 8


class ShardingUnavailable(RuntimeError):
    """The image cannot usefully be sharded (e.g. one occupied block)."""


@dataclass(frozen=True)
class Block:
    """One shard of the decomposition, in voxel and world coordinates.

    ``core_lo``/``core_hi`` is the half-open voxel box this block owns;
    ``crop_lo``/``crop_hi`` is the core dilated by the interface band
    and clamped to the image (the sub-image the shard actually meshes).
    ``own_lo``/``own_hi`` is the world-space ownership box: half-open,
    with faces on the decomposition root's boundary pushed to ±inf so
    the ownership boxes of all blocks partition all of space (shard
    meshes place circumcenters outside the image volume too).
    """

    index: int
    core_lo: Vec3i
    core_hi: Vec3i
    crop_lo: Vec3i
    crop_hi: Vec3i
    own_lo: Vec3f
    own_hi: Vec3f
    occupancy: int

    def owns(self, p: Sequence[float]) -> bool:
        return (
            self.own_lo[0] <= p[0] < self.own_hi[0]
            and self.own_lo[1] <= p[1] < self.own_hi[1]
            and self.own_lo[2] <= p[2] < self.own_hi[2]
        )


@dataclass
class ShardPlan:
    """The full decomposition: blocks + the parameters they share."""

    blocks: List[Block]
    band_voxels: Vec3i
    delta: float
    root_lo: Vec3i
    root_hi: Vec3i

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def seam_planes(self, image: SegmentedImage) -> List[Tuple[int, float]]:
        """Interior core boundaries as ``(axis, world_coordinate)``.

        Only planes strictly inside the decomposition root qualify —
        the root's own faces are not seams.
        """
        planes = set()
        for b in self.blocks:
            for axis in range(3):
                for idx in (b.core_lo[axis], b.core_hi[axis]):
                    if self.root_lo[axis] < idx < self.root_hi[axis]:
                        planes.add((axis, _world(image, axis, idx)))
        return sorted(planes)

    def to_meta(self) -> Dict[str, Any]:
        """JSON-safe summary for stats / logs."""
        return {
            "blocks": self.n_blocks,
            "band_voxels": list(self.band_voxels),
            "delta": self.delta,
            "occupancy": [b.occupancy for b in self.blocks],
        }


def _world(image: SegmentedImage, axis: int, idx: int) -> float:
    """World coordinate of voxel-grid plane ``idx`` along ``axis``.

    One expression, used for every block: adjacent blocks get the
    bit-identical float for their shared boundary.
    """
    return image.origin[axis] + idx * image.spacing[axis]


def band_width_voxels(image: SegmentedImage, delta: float) -> Vec3i:
    """Interface band width per axis, in voxels.

    The refinement rules reach ``2*delta`` around a point (R6's purge
    radius, R1/R2's circumball tests at the target density), so a
    shard must see at least that much image beyond its core for its
    core-owned points to match the unsharded run; one extra voxel
    covers the EDT's voxel-center discretisation.
    """
    return tuple(
        max(2, int(math.ceil(2.0 * delta / image.spacing[d])) + 1)
        for d in range(3)
    )


def resolve_delta(image: SegmentedImage, delta: Optional[float]) -> float:
    """The delta every shard and the stitch domain share (must match
    :class:`~repro.core.domain.RefineDomain`'s default resolution)."""
    return float(delta) if delta is not None else 2.0 * image.min_spacing


# ---------------------------------------------------------------------------
# decomposition
# ---------------------------------------------------------------------------

def decompose(image: SegmentedImage, n_shards: int,
              delta: Optional[float] = None,
              band_voxels: Optional[int] = None) -> ShardPlan:
    """Split the image into at most ``n_shards`` occupied blocks.

    Recursive bisection of the foreground bounding box: repeatedly
    split the block with the most foreground voxels along its longest
    physical axis, at the occupancy-weighted median plane (clamped so
    both sides keep a usable core).  Stops early when no block can be
    split further; the returned plan may hold fewer blocks than asked.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    d = resolve_delta(image, delta)
    band = ((band_voxels,) * 3 if band_voxels is not None
            else band_width_voxels(image, d))
    mask = image.labels > 0
    fg = np.argwhere(mask)
    if fg.size == 0:
        raise ValueError("image has no foreground voxels")
    root_lo = tuple(int(x) for x in fg.min(axis=0))
    root_hi = tuple(int(x) + 1 for x in fg.max(axis=0))

    boxes: List[Tuple[Vec3i, Vec3i, int]] = [
        (root_lo, root_hi, int(mask.sum()))
    ]
    while len(boxes) < n_shards:
        split = _best_split(mask, boxes, image.spacing)
        if split is None:
            break
        i, axis, cut = split
        lo, hi, _ = boxes[i]
        a_hi = list(hi)
        a_hi[axis] = cut
        b_lo = list(lo)
        b_lo[axis] = cut
        a = (lo, tuple(a_hi))
        b = (tuple(b_lo), hi)
        boxes[i: i + 1] = [
            (bl, bh, _occupancy(mask, bl, bh)) for bl, bh in (a, b)
        ]

    shape = image.shape
    blocks: List[Block] = []
    for lo, hi, occ in sorted(b for b in boxes if b[2] > 0):
        crop_lo = tuple(max(0, lo[d] - band[d]) for d in range(3))
        crop_hi = tuple(min(shape[d], hi[d] + band[d]) for d in range(3))
        own_lo = tuple(
            _world(image, d, lo[d]) if lo[d] > root_lo[d] else -math.inf
            for d in range(3)
        )
        own_hi = tuple(
            _world(image, d, hi[d]) if hi[d] < root_hi[d] else math.inf
            for d in range(3)
        )
        blocks.append(Block(
            index=len(blocks), core_lo=lo, core_hi=hi,
            crop_lo=crop_lo, crop_hi=crop_hi,
            own_lo=own_lo, own_hi=own_hi, occupancy=occ,
        ))
    return ShardPlan(blocks=blocks, band_voxels=band, delta=d,
                     root_lo=root_lo, root_hi=root_hi)


def _occupancy(mask: np.ndarray, lo: Vec3i, hi: Vec3i) -> int:
    return int(mask[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]].sum())


def _best_split(mask: np.ndarray, boxes, spacing
                ) -> Optional[Tuple[int, int, int]]:
    """``(box index, axis, cut plane)`` for the most occupied splittable
    box, or ``None`` when nothing can be split."""
    order = sorted(range(len(boxes)), key=lambda i: -boxes[i][2])
    for i in order:
        lo, hi, occ = boxes[i]
        if occ == 0:
            continue
        axes = sorted(
            (d for d in range(3) if hi[d] - lo[d] >= 2 * MIN_CORE_VOXELS),
            key=lambda d: -(hi[d] - lo[d]) * spacing[d],
        )
        for axis in axes:
            cut = _median_cut(mask, lo, hi, axis)
            if cut is not None:
                return (i, axis, cut)
    return None


def _median_cut(mask: np.ndarray, lo: Vec3i, hi: Vec3i,
                axis: int) -> Optional[int]:
    """Occupancy-median plane along ``axis``, snapped to the
    ``CUT_QUANTUM`` voxel grid and clamped to leave
    ``MIN_CORE_VOXELS`` on both sides.

    The snap trades at most a couple voxels of balance for plan
    stability: a small edit shifts the occupancy median by a fraction
    of a voxel, and without quantization that fraction rounds into a
    moved cut plane, which changes every descendant block's crop and
    defeats the incremental block cache."""
    sub = mask[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]
    counts = sub.sum(axis=tuple(d for d in range(3) if d != axis))
    total = int(counts.sum())
    if total == 0:
        return None
    cum = np.cumsum(counts)
    cut = int(np.searchsorted(cum, total / 2.0)) + 1
    snapped = (
        (lo[axis] + cut + CUT_QUANTUM // 2) // CUT_QUANTUM * CUT_QUANTUM
    )
    cut = int(snapped) - lo[axis]
    cut = min(max(cut, MIN_CORE_VOXELS), (hi[axis] - lo[axis])
              - MIN_CORE_VOXELS)
    if cut <= 0 or cut >= hi[axis] - lo[axis]:
        return None
    return lo[axis] + cut


# ---------------------------------------------------------------------------
# per-block meshing
# ---------------------------------------------------------------------------

def crop_image(image: SegmentedImage, block: Block) -> SegmentedImage:
    """The block's sub-image, origin shifted so world coords align."""
    lo, hi = block.crop_lo, block.crop_hi
    labels = np.ascontiguousarray(
        image.labels[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]
    )
    origin = tuple(_world(image, d, lo[d]) for d in range(3))
    return SegmentedImage(labels, spacing=image.spacing, origin=origin)


def refine_block(sub: SegmentedImage, own_lo: Sequence[float],
                 own_hi: Sequence[float], *, delta: float,
                 radius_edge_bound: float = 2.0,
                 planar_angle_bound_deg: float = 30.0,
                 max_operations: Optional[int] = None
                 ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Refine one (already cropped) sub-image and export owned points.

    Returns ``(arrays, stats)`` where ``arrays`` holds ``points``
    (float64 ``(k, 3)``, insertion order) and ``kinds`` (int8 ``(k,)``,
    :class:`~repro.core.domain.VertexKind` values).  Runs identically
    in-process and inside a worker process (the service's shard job
    kind calls straight into this).
    """
    from repro.core.domain import RefineDomain, VertexKind
    from repro.core.refiner import SequentialRefiner

    domain = RefineDomain(
        sub, delta=delta, radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
    )
    rstats = SequentialRefiner(
        domain, max_operations=max_operations
    ).refine()
    mesh = domain.tri.mesh
    alive = mesh.alive_vertex
    rows: List[Tuple[int, int, int]] = []  # (timestamp, vertex, kind)
    for v, kind in domain.vertex_kind.items():
        if kind == VertexKind.BOX or not alive[v]:
            continue
        p = mesh.points[v]
        if (own_lo[0] <= p[0] < own_hi[0]
                and own_lo[1] <= p[1] < own_hi[1]
                and own_lo[2] <= p[2] < own_hi[2]):
            rows.append((mesh.timestamps[v], v, int(kind)))
    rows.sort()
    pts = np.array(
        [mesh.points[v] for _, v, _ in rows], dtype=np.float64
    ).reshape(-1, 3)
    kinds = np.array([k for _, _, k in rows], dtype=np.int8)
    stats = {
        "operations": rstats.n_operations,
        "insertions": rstats.n_insertions,
        "removals": rstats.n_removals,
        "tets": rstats.final_tets,
        "owned_points": int(len(rows)),
        "refine_seconds": rstats.wall_time,
    }
    return {"points": pts, "kinds": kinds}, stats


def mesh_block(image: SegmentedImage, block: Block, plan: ShardPlan,
               *, radius_edge_bound: float = 2.0,
               planar_angle_bound_deg: float = 30.0,
               max_operations: Optional[int] = None
               ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Crop + refine one block of ``image`` (the in-process runner)."""
    return refine_block(
        crop_image(image, block), block.own_lo, block.own_hi,
        delta=plan.delta, radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
        max_operations=max_operations,
    )


# ---------------------------------------------------------------------------
# content keys
# ---------------------------------------------------------------------------

#: Version of the per-block export and stitch-delta artifact formats.
#: Bump to orphan every cached block / stitch artifact after a semantic
#: change to ``refine_block``, the export schema, or the stitch protocol.
BLOCK_FORMAT_VERSION = 1


def _params_blob(delta: float, radius_edge_bound: float,
                 planar_angle_bound_deg: float,
                 max_operations: Optional[int]) -> bytes:
    return repr((
        BLOCK_FORMAT_VERSION, float(delta), float(radius_edge_bound),
        float(planar_angle_bound_deg), max_operations,
    )).encode()


def block_content_key(image: SegmentedImage, block: Block, *, delta: float,
                      radius_edge_bound: float = 2.0,
                      planar_angle_bound_deg: float = 30.0,
                      max_operations: Optional[int] = None) -> str:
    """Content address of one block's refined point set.

    Hashes exactly what :func:`refine_block` sees: the band-dilated
    label crop (dtype, shape, bytes), its world placement (crop origin,
    spacing, ownership box) and the canonical refinement parameters.
    ``refine_block`` is deterministic in those inputs — across
    processes too (pure byte hashing, nothing derived from ``id()`` or
    randomized ``hash()``) — so equal keys imply bit-identical exports.
    """
    lo, hi = block.crop_lo, block.crop_hi
    crop = image.labels[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]
    h = hashlib.blake2b(digest_size=20)
    h.update(_params_blob(delta, radius_edge_bound,
                          planar_angle_bound_deg, max_operations))
    h.update(str(crop.dtype).encode())
    h.update(repr(crop.shape).encode())
    h.update(repr(tuple(image.spacing)).encode())
    h.update(repr(
        tuple(_world(image, d, lo[d]) for d in range(3))
    ).encode())
    h.update(repr((block.own_lo, block.own_hi)).encode())
    h.update(np.ascontiguousarray(crop).tobytes())
    return h.hexdigest()


def plan_content_key(image: SegmentedImage, plan: ShardPlan, *,
                     radius_edge_bound: float = 2.0,
                     planar_angle_bound_deg: float = 30.0,
                     max_operations: Optional[int] = None) -> str:
    """Address of the stitch-delta artifact for one decomposition.

    Hashes the decomposition *geometry* (grid placement, band, block
    cores) plus the refinement parameters — image content deliberately
    excluded, so a perturbed image that decomposes into the same block
    layout finds the previous run's stitch delta to warm-start from.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(_params_blob(plan.delta, radius_edge_bound,
                          planar_angle_bound_deg, max_operations))
    h.update(repr((
        tuple(image.shape), tuple(image.spacing), tuple(image.origin)
    )).encode())
    h.update(repr(tuple(plan.band_voxels)).encode())
    for b in plan.blocks:
        h.update(repr((b.core_lo, b.core_hi)).encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# stitching
# ---------------------------------------------------------------------------

#: Above this changed-block fraction the seam-local path stops paying
#: for itself — most seams need re-refinement anyway — so the stitch
#: falls back to the full reload-and-re-refine (which also refreshes
#: the stitch-delta artifact for the next request).
INCREMENTAL_MAX_CHANGED_FRACTION = 0.5


@dataclass
class IncrementalStitch:
    """Warm-start context one :func:`stitch` call consumes and refills.

    ``prev`` is the previous run's stitch delta for the same plan
    geometry: the Steiner points the stitch *added* over the raw block
    exports (``points``/``kinds``, insertion order) and the
    block-exported points it *removed* (``removed``).  ``changed``
    lists the block indices whose content key differs from the record
    the delta was computed under.  After the stitch, ``export`` holds
    the refreshed delta and ``mode`` names the path that ran
    (``"full"``, ``"seam_local"``, or ``"seam_local+repair"``).
    """

    block_keys: List[str]
    prev: Optional[Dict[str, np.ndarray]] = None
    changed: List[int] = field(default_factory=list)
    threshold: float = INCREMENTAL_MAX_CHANGED_FRACTION
    mode: str = "full"
    export: Optional[Dict[str, np.ndarray]] = None


def _in_boxes(pts: np.ndarray, boxes) -> np.ndarray:
    """Row mask: point inside any of the half-open world ``boxes``."""
    mask = np.zeros(len(pts), dtype=bool)
    for lo, hi in boxes:
        m = np.ones(len(pts), dtype=bool)
        for d in range(3):
            m &= (pts[:, d] >= lo[d]) & (pts[:, d] < hi[d])
        mask |= m
    return mask


def _changed_boxes(image: SegmentedImage, plan: ShardPlan,
                   changed: Sequence[int]):
    """World boxes covering the refinement influence of changed blocks:
    the ownership box clipped to the image (a changed block only
    exports points it owns), dilated by the ``2*delta`` rule radius.
    Everything a changed export can directly affect — including the
    seam bands it shares with its neighbours — lies inside these
    boxes; longer-range cascades are caught by the global acceptance
    screen."""
    margin = 2.0 * plan.delta
    boxes = []
    for i in changed:
        b = plan.blocks[i]
        boxes.append((
            tuple(max(b.own_lo[d], _world(image, d, b.crop_lo[d])) - margin
                  for d in range(3)),
            tuple(min(b.own_hi[d], _world(image, d, b.crop_hi[d])) + margin
                  for d in range(3)),
        ))
    return boxes


def _changed_holes(image: SegmentedImage, plan: ShardPlan,
                   changed: Sequence[int]):
    """Eroded ownership boxes of the changed blocks — their deep
    interior.  The fresh block export is already refined to completion
    there (the crop band makes the in-block EDT exact throughout the
    core), and no foreign point reaches it: neighbouring owners stop at
    the ownership boundary and reused Steiner points are dropped
    throughout the influence box.  Subtracting these holes from the
    seed/replay region leaves the shell within ``2*delta`` of the
    ownership boundary, where stitching can actually create poor or
    crowded elements; the global acceptance screen still guards the
    whole mesh."""
    margin = 2.0 * plan.delta
    holes = []
    for i in changed:
        b = plan.blocks[i]
        lo = tuple(b.own_lo[d] + margin for d in range(3))
        hi = tuple(b.own_hi[d] - margin for d in range(3))
        if all(lo[d] < hi[d] for d in range(3)):
            holes.append((lo, hi))
    return holes


def _row_bytes(arr: np.ndarray) -> List[bytes]:
    a = np.ascontiguousarray(arr, dtype=np.float64).reshape(-1, 3)
    return [a[i].tobytes() for i in range(len(a))]


def _radius_edge_offenders(domain, bound: float) -> List[int]:
    """Live tets violating the radius-edge bound with an inside-object
    circumcenter — the post-stitch acceptance screen.  The ratio pass
    is vectorized; the scalar inside-object test runs only on the
    flagged tail."""
    from repro.geometry.batch import quality_screen

    mesh = domain.tri.mesh
    live = mesh.live_tet_ids()
    if len(live) == 0:
        return []
    ratios, _ = quality_screen(mesh.coords, mesh.tet_verts_arr, live)
    flagged = live[(ratios > bound) | ~np.isfinite(ratios)]
    poor = []
    for t in flagged.tolist():
        c, _ = domain.circumball(t)
        if domain.point_inside_object(c):
            poor.append(t)
    return poor


def _export_delta(domain, block_pts: np.ndarray) -> Dict[str, np.ndarray]:
    """The stitch's net effect over the raw block exports.

    ``points``/``kinds`` are the alive non-box vertices the stitch
    added beyond the block exports (insertion order); ``removed`` the
    block-exported points no longer alive.  Reloading
    ``blocks − removed + points`` reproduces this mesh's vertex set
    exactly, which is what lets the next request skip re-refining
    unchanged seams.  Matching is by coordinate bytes — exports are
    bit-deterministic, and vertex ids are recycled so they cannot
    serve as identities across runs.
    """
    from repro.core.domain import VertexKind

    mesh = domain.tri.mesh
    rows = []
    for v, kind in domain.vertex_kind.items():
        if kind == VertexKind.BOX or not mesh.alive_vertex[v]:
            continue
        rows.append((mesh.timestamps[v], v, int(kind)))
    rows.sort()
    pts = np.array([mesh.points[v] for _, v, _ in rows],
                   dtype=np.float64).reshape(-1, 3)
    kinds = np.array([k for _, _, k in rows], dtype=np.int8)
    block_rows = _row_bytes(block_pts)
    loaded = set(block_rows)
    alive = set()
    extra_rows = []
    for i, b in enumerate(_row_bytes(pts)):
        alive.add(b)
        if b not in loaded:
            extra_rows.append(i)
    removed = np.array(
        [block_pts[i] for i, b in enumerate(block_rows) if b not in alive],
        dtype=np.float64,
    ).reshape(-1, 3)
    return {
        "points": pts[extra_rows].reshape(-1, 3),
        "kinds": kinds[extra_rows],
        "removed": removed,
    }


def stitch(image: SegmentedImage, plan: ShardPlan,
           shard_points: List[Dict[str, np.ndarray]], *,
           radius_edge_bound: float = 2.0,
           planar_angle_bound_deg: float = 30.0,
           max_operations: Optional[int] = None,
           obs=None,
           inc: Optional[IncrementalStitch] = None):
    """Merge shard point clouds into one refined global mesh.

    ``shard_points[i]`` is block ``i``'s ``{"points", "kinds"}`` export.
    Returns ``(MeshingResult, stitch_stats)``.

    With an :class:`IncrementalStitch` context carrying a previous
    stitch delta whose changed fraction is under the threshold, the
    stitch runs **seam-local**: the previous run's Steiner points
    outside the changed blocks' influence boxes are bulk-loaded
    alongside the block exports, R6 replay and refinement seeding are
    restricted to those boxes, and a global vectorized radius-edge
    screen guards the result (any inside-object violation triggers
    unrestricted repair passes).  Otherwise the classic full path runs:
    load every owned point, replay R6 in every seam band, re-refine
    globally.
    """
    from repro.core import MeshingResult, extract_mesh
    from repro.core.domain import RefineDomain, VertexKind
    from repro.core.refiner import SequentialRefiner

    tracer = obs.tracer if obs is not None else None
    t0 = time.perf_counter()
    domain = RefineDomain(
        image, delta=plan.delta, radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
    )
    tri = domain.tri

    # -- assemble the load set -----------------------------------------
    block_pts = np.concatenate([
        np.asarray(out["points"], dtype=np.float64).reshape(-1, 3)
        for out in shard_points
    ]) if shard_points else np.zeros((0, 3), dtype=np.float64)
    block_kinds = np.concatenate([
        np.asarray(out["kinds"], dtype=np.int8).reshape(-1)
        for out in shard_points
    ]) if shard_points else np.zeros(0, dtype=np.int8)

    seam_local = (
        inc is not None and inc.prev is not None
        and len(inc.changed) <= inc.threshold * plan.n_blocks
    )
    boxes = None
    holes = None
    reused = 0
    dropped = 0
    if seam_local:
        boxes = _changed_boxes(image, plan, inc.changed)
        holes = _changed_holes(image, plan, inc.changed)
        prev_pts = np.asarray(
            inc.prev["points"], dtype=np.float64).reshape(-1, 3)
        keep = ~_in_boxes(prev_pts, boxes)
        extra_pts = prev_pts[keep]
        extra_kinds = np.asarray(
            inc.prev["kinds"], dtype=np.int8).reshape(-1)[keep]
        removed_pts = np.asarray(
            inc.prev["removed"], dtype=np.float64).reshape(-1, 3)
        removed_pts = removed_pts[~_in_boxes(removed_pts, boxes)]
        reused = int(len(extra_pts))
        if len(removed_pts):
            removed_set = set(_row_bytes(removed_pts))
            keep_rows = np.array(
                [b not in removed_set for b in _row_bytes(block_pts)],
                dtype=bool,
            )
            dropped = int((~keep_rows).sum())
            load_pts = np.concatenate([block_pts[keep_rows], extra_pts])
            load_kinds = np.concatenate(
                [block_kinds[keep_rows], extra_kinds])
        else:
            load_pts = np.concatenate([block_pts, extra_pts])
            load_kinds = np.concatenate([block_kinds, extra_kinds])
    else:
        load_pts, load_kinds = block_pts, block_kinds

    # -- bulk load: one batched bw_insert_many sweep in block order ----
    points: List[Tuple[float, float, float]] = list(
        map(tuple, load_pts.tolist())
    )
    kinds: List[int] = load_kinds.tolist()
    vids = tri.insert_many(points)
    inserted = 0
    duplicates = 0
    iso_loaded: List[Tuple[int, Tuple[float, float, float]]] = []
    for vid, kind, p in zip(vids, kinds, points):
        if vid is None:
            duplicates += 1
            continue
        inserted += 1
        k = VertexKind(kind)
        domain.vertex_kind[vid] = k
        if k == VertexKind.ISOSURFACE:
            domain.iso_grid.add(vid, p)
            iso_loaded.append((vid, p))
        else:
            domain.cc_grid.add(vid, p)
    domain.n_insertions += inserted
    load_seconds = time.perf_counter() - t0

    # -- interface-band R6 replay: bw_remove on crowded circumcenters --
    # Each shard applied R6 only against its own isosurface samples; a
    # circumcenter owned by one block can sit within 2*delta of an
    # isosurface sample owned by its neighbour.  Replay the purge for
    # isosurface vertices in the seam bands — in seam-local mode only
    # inside the changed boxes: reused Steiner points already survived
    # the previous purge, and the block points that purge removed were
    # dropped through the delta's removed set.
    t1 = time.perf_counter()
    removed = _replay_r6_bands(domain, plan, image, iso_loaded,
                               boxes=boxes, holes=holes)
    r6_seconds = time.perf_counter() - t1

    # -- local re-refinement until every rule passes -------------------
    # The refiner seeds its PEL from the vectorized radius-edge screen
    # plus the scalar rule checks over all live tets; away from the
    # seams the shards already refined to completion, so the seed is
    # (nearly) empty there and the work concentrates on the interfaces.
    # In seam-local mode the seed scan itself is restricted to tets
    # touching a changed box — the scalar rule checks over a complete
    # mesh are the dominant stitch cost on a warm cache.
    seed_filter = None
    if seam_local:
        def _quad_in(quads: np.ndarray, box_list) -> np.ndarray:
            m = np.zeros(quads.shape[:2], dtype=bool)
            for lo, hi in box_list:
                inside = np.ones(quads.shape[:2], dtype=bool)
                for d in range(3):
                    inside &= ((quads[..., d] >= lo[d])
                               & (quads[..., d] < hi[d]))
                m |= inside
            return m

        def seed_filter(live: np.ndarray) -> np.ndarray:
            mesh_store = tri.mesh
            quads = mesh_store.coords[
                mesh_store.tet_verts_arr[live].ravel()
            ].reshape(-1, 4, 3)
            vert_in = _quad_in(quads, boxes)
            if holes:
                vert_in &= ~_quad_in(quads, holes)
            return vert_in.any(axis=1)

    t2 = time.perf_counter()
    skip_snap = domain.n_skipped
    refiner = SequentialRefiner(domain, max_operations=max_operations,
                                obs=obs, seed_filter=seed_filter)
    if tracer is not None and tracer.enabled:
        with tracer.span("shard.stitch.refine"):
            rstats = refiner.refine()
    else:
        rstats = refiner.refine()
    # The dense bulk reload makes transiently degenerate cavities far
    # likelier than during a from-scratch run, and the refiner drops a
    # tet whose insertion raises mid-pass even though the rule becomes
    # applicable again once the neighbourhood changes.  Re-run fresh
    # passes (each re-seeds the PEL from every live tet) until one makes
    # no insertions or removals, so no inside-object tet escapes the
    # radius-edge / size screen for lack of a retry.
    quality_rounds = 0
    last_skipped = domain.n_skipped - skip_snap
    while quality_rounds < _MAX_QUALITY_ROUNDS:
        # Rounds exist to retry tets dropped on transiently degenerate
        # cavities; the refiner counts those as skips.  In seam-local
        # mode a pass with no skips therefore already reached the
        # fixpoint — skip the (full-seed-scan) confirmation round and
        # let the acceptance screen below stand guard.
        if seam_local and last_skipped == 0:
            break
        before = domain.n_insertions + domain.n_removals
        skip_before = domain.n_skipped
        extra = SequentialRefiner(
            domain, max_operations=max_operations, seed_filter=seed_filter
        ).refine()
        rstats.n_operations += extra.n_operations
        last_skipped = domain.n_skipped - skip_before
        if domain.n_insertions + domain.n_removals == before:
            break
        quality_rounds += 1

    # -- acceptance screen + repair (seam-local only) ------------------
    # The warm-started regions were refined under the previous image;
    # assert the radius-edge bound globally and fall back to
    # unrestricted passes if anything slipped through the restriction.
    mode = "seam_local" if seam_local else "full"
    offenders = 0
    if seam_local:
        poor = _radius_edge_offenders(domain, radius_edge_bound)
        offenders = len(poor)
        if poor:
            mode = "seam_local+repair"
            repair_rounds = 0
            while repair_rounds < _MAX_QUALITY_ROUNDS:
                before = domain.n_insertions + domain.n_removals
                extra = SequentialRefiner(
                    domain, max_operations=max_operations
                ).refine()
                rstats.n_operations += extra.n_operations
                if domain.n_insertions + domain.n_removals == before:
                    break
                repair_rounds += 1
            quality_rounds += repair_rounds
    rstats.final_tets = domain.tri.n_tets
    rstats.final_vertices = domain.tri.n_vertices
    rstats.n_insertions = domain.n_insertions
    rstats.n_removals = domain.n_removals
    rstats.n_skipped = domain.n_skipped
    refine_seconds = time.perf_counter() - t2

    if inc is not None:
        inc.mode = mode
        inc.export = _export_delta(domain, block_pts)

    mesh = extract_mesh(domain)
    stitch_stats = {
        "points_loaded": inserted,
        "duplicates": duplicates,
        "band_removed": removed,
        "refine_operations": rstats.n_operations,
        "quality_rounds": quality_rounds,
        "mode": mode,
        "changed_blocks": (len(inc.changed) if seam_local
                           else plan.n_blocks),
        "reused_points": reused,
        "dropped_points": dropped,
        "screen_offenders": offenders,
        "load_seconds": load_seconds,
        "r6_seconds": r6_seconds,
        "refine_seconds": refine_seconds,
        "seconds": time.perf_counter() - t0,
    }
    if obs is not None:
        reg = obs.registry
        reg.counter("shard.stitch.points").inc(inserted)
        reg.counter("shard.stitch.duplicates").inc(duplicates)
        reg.counter("shard.stitch.removed").inc(removed)
        reg.counter("shard.stitch.refine_operations").inc(
            rstats.n_operations
        )
        reg.gauge("shard.stitch.seconds").set(stitch_stats["seconds"])
    return MeshingResult(mesh=mesh, stats=rstats, domain=domain), \
        stitch_stats


def _replay_r6_bands(domain, plan: ShardPlan, image: SegmentedImage,
                     iso_loaded, boxes=None, holes=None) -> int:
    """R6 for seam-band isosurface vertices; returns removal count.

    ``boxes`` (seam-local mode) restricts the replay to isosurface
    vertices inside the changed blocks' influence boxes; ``holes``
    further excludes their deep interior (see :func:`_changed_holes`).
    """
    from repro.core.domain import VertexKind
    from repro.delaunay import RemovalError

    planes = plan.seam_planes(image)
    if not planes or not iso_loaded:
        return 0
    radius = 2.0 * plan.delta
    pts = np.array([p for _, p in iso_loaded], dtype=np.float64)
    near = np.zeros(len(iso_loaded), dtype=bool)
    for axis, w in planes:
        near |= np.abs(pts[:, axis] - w) <= radius
    if boxes is not None:
        near &= _in_boxes(pts, boxes)
        if holes:
            near &= ~_in_boxes(pts, holes)
    removed = 0
    tri = domain.tri
    mesh = tri.mesh
    for (vid, p), hit in zip(iso_loaded, near.tolist()):
        if not hit or not mesh.alive_vertex[vid]:
            continue
        victims = sorted(
            v for v in domain.cc_grid.query_ball(p, radius) if v != vid
        )
        for v in victims:
            if not mesh.alive_vertex[v]:
                domain.cc_grid.remove(v)
                continue
            if domain.vertex_kind.get(v) != VertexKind.CIRCUMCENTER:
                continue
            try:
                tri.remove_vertex(v)
            except RemovalError:
                domain.n_skipped += 1
                continue
            domain.n_removals += 1
            domain.cc_grid.remove(v)
            domain.vertex_kind.pop(v, None)
            removed += 1
    return removed


# ---------------------------------------------------------------------------
# composition
# ---------------------------------------------------------------------------

#: ``runner(plan, indices, keys) -> outs`` for the requested block
#: indices (in order), each ``{"arrays": {"points", "kinds"},
#: "stats": {...}}``.  ``keys`` aligns with ``plan.blocks`` (not with
#: ``indices``) and is ``None`` when no block cache is in play.
ShardRunner = Callable[..., List[Dict[str, Any]]]


def mesh_sharded(request, plan: Optional[ShardPlan] = None,
                 runner: Optional[ShardRunner] = None, obs=None,
                 block_cache=None, incremental: Optional[bool] = None):
    """Decompose, mesh every block, stitch; returns a ``MeshResult``.

    ``runner`` maps (plan, block indices) to per-block point exports;
    ``None`` runs the blocks serially in-process (correctness path —
    the speedup comes from the service's process-pool runner).  Raises
    :class:`ShardingUnavailable` when the decomposition yields fewer
    than two occupied blocks; callers fall back to the unsharded
    mesher.

    With a ``block_cache`` (an :class:`repro.service.cache
    .ArtifactCache`), block exports are content-addressed by
    :func:`block_content_key`: only blocks whose crop bytes changed
    reach the runner, the rest load from the cache.  ``incremental``
    (``None`` = the request's ``incremental`` flag) additionally
    warm-starts the stitch from the previous run's delta artifact —
    see :func:`stitch`.
    """
    from repro.api import MeshResult
    from repro.observability import Observability

    if obs is None:
        obs = Observability.from_config(request.observability)
    t0 = time.perf_counter()
    if plan is None:
        tracer = obs.tracer
        if tracer.enabled:
            with tracer.span("shard.decompose"):
                plan = decompose(request.image, request.resolved_shards(),
                                 delta=request.delta)
        else:
            plan = decompose(request.image, request.resolved_shards(),
                             delta=request.delta)
    if plan.n_blocks < 2:
        raise ShardingUnavailable(
            f"decomposition produced {plan.n_blocks} occupied block(s)"
        )
    t_dec = time.perf_counter() - t0

    params = dict(
        radius_edge_bound=request.radius_edge_bound,
        planar_angle_bound_deg=request.planar_angle_bound_deg,
        max_operations=request.max_operations,
    )
    if incremental is None:
        incremental = bool(getattr(request, "incremental", True))
    incremental = bool(incremental) and block_cache is not None

    keys: Optional[List[str]] = None
    outs: List[Optional[dict]] = [None] * plan.n_blocks
    hits = 0
    memory_hits = 0
    if block_cache is not None:
        keys = [
            block_content_key(request.image, b, delta=plan.delta, **params)
            for b in plan.blocks
        ]
        for i, key in enumerate(keys):
            arrays, tier = block_cache.get_block_tiered(key)
            if arrays is not None:
                hits += 1
                memory_hits += 1 if tier == "memory" else 0
                outs[i] = {"arrays": arrays,
                           "stats": {"cached": tier, "content_key": key}}
    miss = [i for i, o in enumerate(outs) if o is None]

    if runner is None:
        runner = _serial_runner(request)
    t1 = time.perf_counter()
    fresh = runner(plan, miss, keys) if miss else []
    shard_seconds = time.perf_counter() - t1
    if len(fresh) != len(miss) or any(o is None for o in fresh):
        raise ShardingUnavailable("a shard produced no output")
    for i, out in zip(miss, fresh):
        outs[i] = out
        if block_cache is not None:
            out["stats"].setdefault("content_key", keys[i])
            block_cache.put_block(keys[i], out["arrays"])

    inc: Optional[IncrementalStitch] = None
    pkey: Optional[str] = None
    if block_cache is not None:
        # Even with incremental off, export the delta so a later
        # incremental request can warm-start from this run.
        pkey = plan_content_key(request.image, plan, **params)
        inc = IncrementalStitch(block_keys=keys)
        if incremental:
            prev = block_cache.get_stitch(pkey)
            prev_keys = ([str(k) for k in prev["block_keys"]]
                         if prev is not None else None)
            if prev_keys is not None and len(prev_keys) == plan.n_blocks:
                inc.prev = prev
                inc.changed = [
                    i for i in range(plan.n_blocks)
                    if prev_keys[i] != keys[i]
                ]

    result, stitch_stats = stitch(
        request.image, plan, [o["arrays"] for o in outs],
        radius_edge_bound=request.radius_edge_bound,
        planar_angle_bound_deg=request.planar_angle_bound_deg,
        max_operations=request.max_operations, obs=obs, inc=inc,
    )
    if inc is not None and inc.export is not None:
        export = dict(inc.export)
        export["block_keys"] = np.asarray(keys)
        block_cache.put_stitch(pkey, export)

    wall = time.perf_counter() - t0
    shard_stats = [o["stats"] for o in outs]
    stats: Dict[str, Any] = {
        "operations": result.stats.n_operations,
        "insertions": (result.stats.n_insertions
                       + stitch_stats["points_loaded"]),
        "removals": result.stats.n_removals,
        "skipped": result.stats.n_skipped,
        "rule_counts": dict(result.stats.rule_counts),
        "elements_per_second": (
            result.mesh.n_tets / wall if wall > 0 else 0.0
        ),
        "shards": plan.n_blocks,
        "shard_plan": plan.to_meta(),
        "shard_stats": shard_stats,
        "stitch": stitch_stats,
    }
    if block_cache is not None:
        stats["block_cache"] = {
            "hits": hits,
            "memory_hits": memory_hits,
            "misses": len(miss),
            "stitch_mode": stitch_stats["mode"],
        }
        reg = obs.registry
        reg.counter("shard.cache.block_hits").inc(hits)
        reg.counter("shard.cache.block_misses").inc(len(miss))
        if inc is not None and inc.prev is not None:
            reg.counter("shard.cache.stitch_hits").inc()
        else:
            reg.counter("shard.cache.stitch_misses").inc()
        if stitch_stats["mode"] != "full":
            reg.counter("shard.cache.incremental_stitches").inc()
    return MeshResult(
        mesh=result.mesh,
        mesher=request.resolved_mesher(),
        stats=stats,
        metrics=obs.snapshot(),
        timings={
            "wall_seconds": wall,
            "decompose_seconds": t_dec,
            "shard_seconds": shard_seconds,
            "stitch_seconds": stitch_stats["seconds"],
        },
        extras={"obs": obs, "domain": result.domain, "plan": plan},
    )


def _serial_runner(request) -> ShardRunner:
    def run(plan: ShardPlan, indices: Sequence[int], keys=None):
        outs = []
        for i in indices:
            arrays, stats = mesh_block(
                request.image, plan.blocks[i], plan,
                radius_edge_bound=request.radius_edge_bound,
                planar_angle_bound_deg=request.planar_angle_bound_deg,
                max_operations=request.max_operations,
            )
            outs.append({"arrays": arrays, "stats": stats})
        return outs
    return run


__all__ = [
    "Block",
    "IncrementalStitch",
    "ShardPlan",
    "ShardingUnavailable",
    "band_width_voxels",
    "block_content_key",
    "crop_image",
    "decompose",
    "mesh_block",
    "mesh_sharded",
    "plan_content_key",
    "refine_block",
    "resolve_delta",
    "stitch",
]
