"""3D Delaunay triangulation kernel with dynamic insertions *and* removals.

This is the substrate the paper's refinement runs on: an incremental
Bowyer-Watson triangulation of a virtual bounding box, supporting

* point insertion (cavity carving + star re-triangulation), and
* vertex removal (ball re-triangulation through a local Delaunay
  triangulation of the link, inserting link vertices in global insertion
  order — the paper's Section 4.2 technique for degenerate cases).

The kernel exposes *touch hooks* so that the speculative parallel refiner
can lock every vertex an operation reads or writes and roll back on
conflict, exactly as Section 4.2 of the paper describes.
"""

from repro.delaunay.mesh import DEAD, HULL, MeshArrays, Tet
from repro.delaunay.triangulation import (
    InsertionError,
    PointLocationError,
    RemovalError,
    RollbackSignal,
    Triangulation3D,
)

__all__ = [
    "Triangulation3D",
    "MeshArrays",
    "Tet",
    "HULL",
    "DEAD",
    "RollbackSignal",
    "InsertionError",
    "RemovalError",
    "PointLocationError",
]
