"""HTTP gateway for the meshing service: stdlib server + client.

The gateway exposes the service/:func:`~repro.service.connect` layer
over plain HTTP/1.1 so any language with an HTTP client can submit
meshing work.  Stdlib only (:class:`http.server.ThreadingHTTPServer`);
one thread per in-flight request, which the service's own admission
control keeps bounded.

Routes
======

=============================== =====================================
``POST /v1/mesh``                 submit a request; body is JSON with
                                  ``params`` plus the image as
                                  ``image_b64`` (base64 of the
                                  compressed ``.npz`` container),
                                  inline ``image`` labels, or
                                  ``image_key`` against the gateway's
                                  image store; ``wait``/
                                  ``wait_timeout`` long-poll,
                                  ``return_mesh`` inlines the result
``GET /v1/jobs/<id>``             job status; ``?wait=S`` long-polls,
                                  ``?result=1`` inlines a DONE mesh
                                  (the response carries an ``ETag`` —
                                  the request's content key — and
                                  ``If-None-Match`` answers 304 with
                                  no body when it still matches)
``DELETE /v1/jobs/<id>``          cancel a queued job
``GET /healthz``                  liveness + negotiated protocol
``GET /metricsz``                 metrics snapshot incl. the SLO
                                  section (hit rate, per-tier p50/
                                  p95/p99 — see :mod:`.slo`)
=============================== =====================================

Status mapping: job state → HTTP status (:data:`STATE_STATUS`):
``DONE`` 200, ``QUEUED``/``RUNNING`` 202, ``CANCELLED`` 409,
``REJECTED`` 429 + ``Retry-After`` (503 once the service is shutting
down), ``FAILED`` 500, ``TIMED_OUT`` 504.  Bodies are always JSON and
always carry ``ok``.

Versioning: every response carries ``X-Repro-Protocol``; a request may
send the same header and is rejected with 400 on a mismatch — the
HTTP spelling of the NDJSON ``hello`` negotiation, sharing
:data:`~repro.service.protocol.PROTOCOL_VERSION`.

The **image store** makes repeat traffic cheap: every uploaded image
is retained in a byte-bounded LRU under its content key
(:func:`~repro.service.keys.image_content_key`), and later requests
may send only ``image_key``.  The key is a content hash the client
computes locally, so the fast path needs no server round-trip first;
an unknown key answers 404 with ``unknown_image_key`` and the client
falls back to uploading.
"""

from __future__ import annotations

import base64
import http.client as httpclient
import io
import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.api import MeshRequest, MeshResult
from repro.imaging.image import SegmentedImage
from repro.service.client import Client, request_wire_params
from repro.service.jobs import JobState, ServiceError, TERMINAL_STATES
from repro.service.keys import image_content_key
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    REQUEST_PARAMS,
)
from repro.service.service import MeshingService

#: Request/response header carrying the protocol version.
PROTOCOL_HEADER = "X-Repro-Protocol"

#: HTTP status answering each job state.
STATE_STATUS = {
    JobState.QUEUED: 202,
    JobState.RUNNING: 202,
    JobState.DONE: 200,
    JobState.FAILED: 500,
    JobState.CANCELLED: 409,
    JobState.TIMED_OUT: 504,
    JobState.REJECTED: 429,
}

#: Cap on one long-poll block (seconds); clients loop for longer waits.
MAX_WAIT = 60.0

#: Largest accepted request body (a 128 MB npz is a ~500^3 volume).
MAX_BODY_BYTES = 128 * 1024 * 1024

#: Default byte budget of the gateway image store.
IMAGE_STORE_BYTES = 256 * 1024 * 1024


# -- image transport ---------------------------------------------------
def encode_image_b64(image: SegmentedImage) -> str:
    """Base64 of the compressed ``.npz`` container (same layout as
    :func:`repro.io.save_image_npz`, but in memory)."""
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        labels=image.labels,
        spacing=np.asarray(image.spacing, dtype=np.float64),
        origin=np.asarray(image.origin, dtype=np.float64),
    )
    return base64.b64encode(buf.getvalue()).decode("ascii")


def decode_image_b64(data: str) -> SegmentedImage:
    """Inverse of :func:`encode_image_b64`; :class:`ProtocolError` on
    any malformed payload."""
    try:
        raw = base64.b64decode(data.encode("ascii"), validate=True)
        with np.load(io.BytesIO(raw)) as doc:
            return SegmentedImage(
                doc["labels"],
                spacing=tuple(doc["spacing"]),
                origin=tuple(doc["origin"]),
            )
    except Exception as exc:
        raise ProtocolError(f"bad image_b64 payload: {exc}") from None


class ImageStore:
    """Byte-bounded LRU of uploaded images, keyed by content key.

    Purely an upload-dedup optimisation: eviction is always safe (the
    client retries with the bytes), so the budget can be small.
    """

    def __init__(self, max_bytes: int = IMAGE_STORE_BYTES):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._images: "OrderedDict[str, SegmentedImage]" = OrderedDict()
        self._bytes = 0
        self.stats = {"hits": 0, "misses": 0, "stored": 0, "evicted": 0}

    def get(self, key: str) -> Optional[SegmentedImage]:
        with self._lock:
            image = self._images.get(key)
            if image is None:
                self.stats["misses"] += 1
                return None
            self._images.move_to_end(key)
            self.stats["hits"] += 1
            return image

    def put(self, image: SegmentedImage) -> str:
        key = image_content_key(image)
        size = int(image.labels.nbytes)
        with self._lock:
            if key not in self._images:
                self._images[key] = image
                self._bytes += size
                self.stats["stored"] += 1
            self._images.move_to_end(key)
            while self._bytes > self.max_bytes and len(self._images) > 1:
                victim, dropped = self._images.popitem(last=False)
                self._bytes -= int(dropped.labels.nbytes)
                self.stats["evicted"] += 1
        return key

    def stats_snapshot(self) -> Dict[str, int]:
        with self._lock:
            snap = dict(self.stats)
            snap["entries"] = len(self._images)
            snap["bytes_held"] = self._bytes
            return snap


def etag_matches(header: str, etag: str) -> bool:
    """RFC 7232 ``If-None-Match`` against one entity-tag value.

    ``*`` matches anything; otherwise the header is a comma-separated
    list of (possibly ``W/``-prefixed, possibly quoted) entity-tags,
    compared by opaque value — a weak validator is good enough for a
    cache answer, which is exactly what ``If-None-Match`` asks about.
    """
    header = header.strip()
    if header == "*":
        return True
    for token in header.split(","):
        token = token.strip()
        if token.startswith("W/"):
            token = token[2:].strip()
        if len(token) >= 2 and token[0] == '"' and token[-1] == '"':
            token = token[1:-1]
        if token == etag:
            return True
    return False


# -- gateway (transport-free request handling) -------------------------
class MeshGateway:
    """Routing/translation between HTTP semantics and a service.

    Deliberately transport-free — ``handle`` maps (method, path,
    query, body) to (status, body, headers) — so tests exercise every
    route and status code without opening a socket.
    """

    def __init__(self, service: MeshingService,
                 image_store: Optional[ImageStore] = None):
        self.service = service
        self.images = image_store or ImageStore()

    # -- entry point ---------------------------------------------------
    def handle(self, method: str, path: str,
               query: Optional[Dict[str, str]] = None,
               body: Optional[Dict[str, Any]] = None,
               version: Optional[str] = None,
               if_none_match: Optional[str] = None,
               ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        reg = self.service.registry
        reg.counter("service.http.requests").inc()
        t0 = time.perf_counter()
        try:
            status, out, headers = self._route(
                method, path, query or {}, body or {}, version,
                if_none_match,
            )
        except ProtocolError as exc:
            status, out, headers = 400, {"ok": False, "error": str(exc)}, {}
        except Exception as exc:  # never kill the connection thread
            status = 500
            out = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            headers = {}
        reg.histogram("service.http.request_seconds").observe(
            time.perf_counter() - t0
        )
        if status >= 400:
            reg.counter("service.http.errors").inc()
        return status, out, headers

    def _route(self, method: str, path: str, query: Dict[str, str],
               body: Dict[str, Any], version: Optional[str],
               if_none_match: Optional[str] = None,
               ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if version is not None and version != str(PROTOCOL_VERSION):
            return 400, {
                "ok": False, "v": PROTOCOL_VERSION,
                "error": (f"unsupported protocol version {version!r}; "
                          f"server speaks {PROTOCOL_VERSION}"),
            }, {}
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/metricsz" and method == "GET":
            return 200, self.service.metrics_snapshot(), {}
        if path == "/v1/mesh" and method == "POST":
            return self._mesh(body)
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            if method == "GET":
                return self._job_get(job_id, query, if_none_match)
            if method == "DELETE":
                return self._job_cancel(job_id)
        return 404, {"ok": False, "error": f"no route {method} {path}"}, {}

    # -- routes --------------------------------------------------------
    def _healthz(self) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        closed = self.service._closed
        return (503 if closed else 200), {
            "ok": not closed,
            "v": PROTOCOL_VERSION,
            "executor": self.service.executor,
            "coalesce": self.service._coalesce is not None,
            "image_store": self.images.stats_snapshot(),
        }, {}

    def _mesh(self, body: Dict[str, Any],
              ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        unknown = set(params) - set(REQUEST_PARAMS)
        if unknown:
            raise ProtocolError(
                f"unknown params: {', '.join(sorted(unknown))}"
            )
        image = self._image_from(body)
        if image is None:
            return 404, {
                "ok": False,
                "error": f"unknown image key {body.get('image_key')!r}",
                "unknown_image_key": True,
            }, {}
        request = MeshRequest(image=image, **params)
        deadline = body.get("deadline")
        job = self.service.submit(
            request, deadline=float(deadline) if deadline else None
        )
        if body.get("wait", True) and not job.done:
            timeout = min(float(body.get("wait_timeout") or MAX_WAIT),
                          MAX_WAIT)
            job.wait(timeout)
        return self._job_answer(job, bool(body.get("return_mesh")))

    def _image_from(self, body: Dict[str, Any]) -> Optional[SegmentedImage]:
        """Materialise the request's image; None = unknown image_key."""
        if "image_b64" in body:
            image = decode_image_b64(body["image_b64"])
            self.images.put(image)
            return image
        inline = body.get("image")
        if inline is not None:
            if not isinstance(inline, dict) or "labels" not in inline:
                raise ProtocolError("inline image needs a 'labels' array")
            image = SegmentedImage(
                np.asarray(inline["labels"], dtype=np.int16),
                spacing=tuple(inline.get("spacing", (1.0, 1.0, 1.0))),
                origin=tuple(inline.get("origin", (0.0, 0.0, 0.0))),
            )
            self.images.put(image)
            return image
        key = body.get("image_key")
        if not key:
            raise ProtocolError(
                "body carries none of image_b64 / image / image_key"
            )
        return self.images.get(key)

    def _job_get(self, job_id: str, query: Dict[str, str],
                 if_none_match: Optional[str] = None,
                 ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        job = self.service.job(job_id)
        if job is None:
            return 404, {"ok": False,
                         "error": f"unknown job {job_id!r}"}, {}
        wait = query.get("wait")
        if wait is not None and not job.done:
            try:
                seconds = float(wait)
            except ValueError:
                raise ProtocolError(f"bad wait value {wait!r}") from None
            job.wait(min(max(seconds, 0.0), MAX_WAIT))
        want_result = query.get("result") in ("1", "true", "yes")
        return self._job_answer(job, want_result,
                                if_none_match=if_none_match)

    def _job_cancel(self, job_id: str,
                    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        job = self.service.job(job_id)
        if job is None:
            return 404, {"ok": False,
                         "error": f"unknown job {job_id!r}"}, {}
        cancelled = self.service.cancel(job_id)
        return 200, {"ok": cancelled, "id": job_id,
                     "state": job.state.value}, {}

    def _job_answer(self, job, return_mesh: bool,
                    if_none_match: Optional[str] = None,
                    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        out = job.summary()
        out["ok"] = job.state in (JobState.QUEUED, JobState.RUNNING,
                                  JobState.DONE)
        headers: Dict[str, str] = {}
        if (return_mesh and job.state is JobState.DONE
                and job.result is not None):
            etag = job.keys[1] if job.keys is not None else None
            if etag is not None:
                # The request key already names the exact (image,
                # params) pair, and a DONE job's result never changes:
                # the key is a perfect validator for the result body.
                headers["ETag"] = f'"{etag}"'
                if if_none_match and etag_matches(if_none_match, etag):
                    self.service.registry.counter(
                        "service.http.not_modified").inc()
                    return 304, {}, headers
            out["result"] = job.result.to_dict()
        status = STATE_STATUS[job.state]
        if job.state is JobState.REJECTED:
            if self.service._closed:
                status = 503  # shutting down: back off for good
            else:
                headers["Retry-After"] = "1"
        return status, out, headers


# -- the server --------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-mesh"

    def log_message(self, *args) -> None:  # quiet by default
        pass

    def _dispatch(self, method: str) -> None:
        gateway: MeshGateway = self.server.gateway  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        body: Dict[str, Any] = {}
        status_override: Optional[Tuple[int, Dict[str, Any]]] = None
        if method == "POST":
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = 0
            if length > MAX_BODY_BYTES:
                # Drain nothing: answer and drop the connection.
                self.close_connection = True
                status_override = (413, {
                    "ok": False,
                    "error": f"body over {MAX_BODY_BYTES} bytes",
                })
            else:
                raw = self.rfile.read(length) if length else b""
                try:
                    body = json.loads(raw.decode("utf-8")) if raw else {}
                    if not isinstance(body, dict):
                        raise ValueError("body must be a JSON object")
                except ValueError as exc:
                    status_override = (
                        400, {"ok": False, "error": f"bad JSON body: {exc}"}
                    )
        if status_override is not None:
            status, out = status_override
            headers: Dict[str, str] = {}
        else:
            status, out, headers = gateway.handle(
                method, parsed.path, query, body,
                version=self.headers.get(PROTOCOL_HEADER),
                if_none_match=self.headers.get("If-None-Match"),
            )
        # A 304 must not carry a body (RFC 7232); everything else is
        # JSON.
        payload = (b"" if status == 304
                   else json.dumps(out).encode("utf-8"))
        self.send_response(status)
        self.send_header(PROTOCOL_HEADER, str(PROTOCOL_VERSION))
        if payload:
            self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-write

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


class MeshHTTPServer:
    """The HTTP front-end: a :class:`ThreadingHTTPServer` on its own
    thread over a :class:`MeshGateway`.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`address` / :attr:`url`.  The server borrows the service —
    closing the server never shuts the service down.
    """

    def __init__(self, service: MeshingService,
                 host: str = "127.0.0.1", port: int = 0,
                 image_store: Optional[ImageStore] = None):
        self.gateway = MeshGateway(service, image_store=image_store)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.gateway = self.gateway  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MeshHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-http", daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI's foreground mode)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MeshHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# -- the client --------------------------------------------------------
class HttpClient(Client):
    """:class:`~repro.service.client.Client` over the HTTP gateway.

    Stdlib ``http.client`` on one keep-alive connection (re-opened
    transparently if the server drops it).  Images travel by content
    key when the gateway already holds them, else as base64 ``.npz`` —
    the client computes the key locally, so the fast path costs no
    extra round-trip when it misses.
    """

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = None,
                 negotiate: bool = True):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._conn = httpclient.HTTPConnection(host, port,
                                               timeout=timeout)
        self._lock = threading.Lock()
        if negotiate:
            status, out, headers = self._request("GET", "/healthz")
            spoken = headers.get(PROTOCOL_HEADER.lower())
            if status != 200 or spoken != str(PROTOCOL_VERSION):
                self.close()
                raise ServiceError(
                    f"protocol version mismatch: client speaks "
                    f"{PROTOCOL_VERSION}, server answered "
                    f"status={status} {PROTOCOL_HEADER}={spoken!r}"
                )

    # -- raw access ----------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        payload = (json.dumps(body).encode("utf-8")
                   if body is not None else None)
        request_headers = {
            PROTOCOL_HEADER: str(PROTOCOL_VERSION),
            "Content-Type": "application/json",
        }
        with self._lock:
            for attempt in (0, 1):
                try:
                    self._conn.request(method, path, body=payload,
                                       headers=request_headers)
                    response = self._conn.getresponse()
                    raw = response.read()
                    break
                except (ConnectionError, OSError,
                        httpclient.HTTPException):
                    self._conn.close()
                    if attempt:
                        raise
            headers = {k.lower(): v for k, v in response.getheaders()}
            try:
                out = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError as exc:
                raise ServiceError(
                    f"non-JSON response ({response.status}): {exc}"
                ) from None
            return response.status, out, headers

    # -- Client interface ----------------------------------------------
    def mesh(self, request: MeshRequest,
             deadline: Optional[float] = None,
             timeout: Optional[float] = None) -> MeshResult:
        job_id = self.submit(request, deadline=deadline)
        summary = self.wait(job_id, timeout=timeout)
        state = summary.get("state")
        if state not in (s.value for s in TERMINAL_STATES):
            raise ServiceError(f"timed out waiting for {job_id}")
        if state != "DONE":
            detail = (f": {summary['error']}"
                      if summary.get("error") else "")
            raise ServiceError(f"{job_id} finished {state}{detail}")
        status, out, _ = self._request(
            "GET", f"/v1/jobs/{job_id}?result=1"
        )
        if status != 200 or "result" not in out:
            raise ServiceError(
                f"{job_id} result unavailable (status {status})"
            )
        return MeshResult.from_dict(out["result"])

    def submit(self, request: MeshRequest,
               deadline: Optional[float] = None) -> str:
        _, out = self._post_mesh(request, deadline, wait=False)
        job_id = out.get("id")
        if not job_id:
            raise ServiceError(out.get("error", "submit failed"))
        return job_id

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        terminal = {s.value for s in TERMINAL_STATES}
        end = (time.monotonic() + timeout
               if timeout is not None else None)
        while True:
            budget = MAX_WAIT
            if end is not None:
                budget = min(budget, max(0.0, end - time.monotonic()))
            status, out, _ = self._request(
                "GET", f"/v1/jobs/{job_id}?wait={budget:g}"
            )
            if status == 404:
                raise ServiceError(out.get("error",
                                           f"unknown job {job_id!r}"))
            if out.get("state") in terminal:
                return out
            if end is not None and time.monotonic() >= end:
                return out

    def status(self, job_id: str) -> Dict[str, Any]:
        status, out, _ = self._request("GET", f"/v1/jobs/{job_id}")
        if status == 404:
            raise ServiceError(out.get("error",
                                       f"unknown job {job_id!r}"))
        return out

    def cancel(self, job_id: str) -> bool:
        _, out, _ = self._request("DELETE", f"/v1/jobs/{job_id}")
        return bool(out.get("ok"))

    def metrics(self) -> Dict[str, Any]:
        status, out, _ = self._request("GET", "/metricsz")
        if status != 200:
            raise ServiceError(out.get("error", "metrics unavailable"))
        return out

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- plumbing ------------------------------------------------------
    def _post_mesh(self, request: MeshRequest,
                   deadline: Optional[float], wait: bool,
                   wait_timeout: Optional[float] = None,
                   return_mesh: bool = False,
                   ) -> Tuple[int, Dict[str, Any]]:
        params = request_wire_params(request)
        body: Dict[str, Any] = {
            "image_key": image_content_key(request.image),
            "wait": wait,
        }
        if params:
            body["params"] = params
        if deadline is not None:
            body["deadline"] = deadline
        if wait_timeout is not None:
            body["wait_timeout"] = wait_timeout
        if return_mesh:
            body["return_mesh"] = True
        status, out, _ = self._request("POST", "/v1/mesh", body)
        if status == 404 and out.get("unknown_image_key"):
            body["image_b64"] = encode_image_b64(request.image)
            status, out, _ = self._request("POST", "/v1/mesh", body)
        return status, out


__all__ = [
    "HttpClient",
    "ImageStore",
    "MeshGateway",
    "MeshHTTPServer",
    "PROTOCOL_HEADER",
    "STATE_STATUS",
    "decode_image_b64",
    "encode_image_b64",
    "etag_matches",
]
