"""Service front-ends: NDJSON over stdio or a Unix domain socket.

Both fronts speak the protocol of :mod:`repro.service.protocol` and
share one dispatcher, :class:`ServiceFrontend`.  The stdio front serves
a single caller (``repro serve`` piped into a pipeline); the socket
front accepts concurrent connections, one thread per connection, all
feeding the same service — which is where the queue, admission control
and cache earn their keep.  Stdlib only.
"""

from __future__ import annotations

import socket
import sys
import threading
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Tuple

from repro.service import protocol
from repro.service.service import MeshingService


class ServiceFrontend:
    """Op dispatcher shared by every transport."""

    def __init__(self, service: MeshingService):
        self.service = service

    def handle(self, msg: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """Answer one message → ``(response, shutdown_requested)``."""
        try:
            protocol.check_version(msg)
        except protocol.ProtocolError as exc:
            # Version reject names the server's version so a newer
            # client can renegotiate instead of guessing.
            out = protocol.error_response(str(exc), msg.get("id"))
            out["v"] = protocol.PROTOCOL_VERSION
            return out, False
        op = msg.get("op")
        if op == "hello":
            return protocol.hello_response(), False
        if op == "ping":
            return {"ok": True, "op": "pong"}, False
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}, True
        if op == "metrics":
            return {"ok": True,
                    "metrics": self.service.metrics_snapshot()}, False
        if op in ("mesh", "submit"):
            return self._submit(msg, sync=(op == "mesh")), False
        if op in ("wait", "status", "cancel"):
            return self._by_id(op, msg), False
        return protocol.error_response(f"unknown op {op!r}"), False

    def _submit(self, msg: Dict[str, Any], sync: bool) -> Dict[str, Any]:
        try:
            request = protocol.request_from_message(msg)
        except (protocol.ProtocolError, ValueError, FileNotFoundError) as exc:
            return protocol.error_response(str(exc), msg.get("id"))
        job = self.service.submit(
            request,
            deadline=msg.get("deadline"),
            job_id=msg.get("id"),
        )
        if sync:
            job.wait(msg.get("wait_timeout"))
        return protocol.job_response(
            job, return_mesh=bool(msg.get("return_mesh"))
        )

    def _by_id(self, op: str, msg: Dict[str, Any]) -> Dict[str, Any]:
        job_id = msg.get("id")
        if not job_id:
            return protocol.error_response(f"{op} needs an 'id'")
        job = self.service.job(job_id)
        if job is None:
            return protocol.error_response(f"unknown job {job_id!r}", job_id)
        if op == "cancel":
            cancelled = self.service.cancel(job_id)
            return {"ok": cancelled, "id": job_id,
                    "state": job.state.value}
        if op == "wait":
            job.wait(msg.get("wait_timeout"))
        return protocol.job_response(
            job, return_mesh=bool(msg.get("return_mesh"))
        )


def serve_stream(service: MeshingService, infile: TextIO,
                 outfile: TextIO) -> int:
    """Serve NDJSON messages from ``infile`` until EOF or ``shutdown``.

    Malformed lines are answered with error responses, never raised;
    the exit code is 0 for a clean end of stream or shutdown.
    """
    frontend = ServiceFrontend(service)
    for line in infile:
        if not line.strip():
            continue
        try:
            msg = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            outfile.write(protocol.encode(protocol.error_response(str(exc))))
            outfile.flush()
            continue
        try:
            response, shutdown = frontend.handle(msg)
        except Exception as exc:  # the frontend must outlive any request
            response, shutdown = protocol.error_response(
                f"internal error: {exc}"), False
        outfile.write(protocol.encode(response))
        outfile.flush()
        if shutdown:
            return 0
    return 0


class UnixSocketFrontend:
    """Threaded Unix-socket server around one :class:`MeshingService`."""

    def __init__(self, service: MeshingService, path: str, backlog: int = 16):
        self.service = service
        self.path = Path(path)
        self._frontend = ServiceFrontend(service)
        self._stop = threading.Event()
        self._threads: list = []
        if self.path.exists():
            self.path.unlink()
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(str(self.path))
        self._sock.listen(backlog)

    def serve_forever(self) -> int:
        """Accept connections until a ``shutdown`` op (or :meth:`stop`)."""
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._sock.accept()
                except OSError:
                    break  # listening socket closed by stop()
                t = threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                )
                t.start()
                self._threads.append(t)
        finally:
            self._cleanup()
        return 0

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            fh = conn.makefile("rwb")
            try:
                for raw in fh:
                    try:
                        msg = protocol.decode_line(raw.decode("utf-8"))
                    except protocol.ProtocolError as exc:
                        fh.write(protocol.encode(
                            protocol.error_response(str(exc))
                        ).encode("utf-8"))
                        fh.flush()
                        continue
                    try:
                        response, shutdown = self._frontend.handle(msg)
                    except Exception as exc:
                        response, shutdown = protocol.error_response(
                            f"internal error: {exc}"), False
                    fh.write(protocol.encode(response).encode("utf-8"))
                    fh.flush()
                    if shutdown:
                        self.stop()
                        return
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-exchange: their prerogative

    def stop(self) -> None:
        self._stop.set()
        # Closing the fd does not interrupt a thread already blocked in
        # accept(); poke the listener with a throwaway connection so the
        # loop observes the stop flag.
        try:
            poke = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            poke.settimeout(0.2)
            poke.connect(str(self.path))
            poke.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def _cleanup(self) -> None:
        self.stop()
        try:
            self.path.unlink()
        except OSError:
            pass


def serve_stdio(service: MeshingService,
                infile: Optional[TextIO] = None,
                outfile: Optional[TextIO] = None) -> int:
    """``repro serve`` stdio entry: NDJSON on stdin/stdout."""
    return serve_stream(
        service,
        infile if infile is not None else sys.stdin,
        outfile if outfile is not None else sys.stdout,
    )
