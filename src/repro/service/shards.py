"""Shard fan-out runners: wiring :mod:`repro.delaunay.shard` to pools.

The shard algorithm (decompose → mesh blocks → stitch) is pure; this
module supplies its ``runner`` — the thing that turns "mesh every
block" into parallel work:

* :func:`run_local` serves ``repro.api.mesh`` directly: it spins up a
  private :class:`~repro.service.pool.ProcessWorkerPool` when process
  support exists and the machine has more than one CPU, otherwise
  meshes the blocks serially in-process (same result, no speedup).
* :class:`ServiceShardRunner` serves :class:`~repro.service.service
  .MeshingService`: blocks fan out over the service's existing process
  pool as **sub-jobs** (ids ``<job>/s<block>``, visible through the
  normal job API), each bounded by the parent job's deadline, with
  crash isolation — a dead shard re-runs up to the configured retry
  budget while the other shards keep their results — and
  ``service.shard.*`` metrics plus one trace span per shard.

Fan-out never touches the service's :class:`JobQueue`: the claiming
thread that owns the parent job drives its own small thread group over
the pool's worker slots, so sharded jobs cannot deadlock the queue by
occupying every claiming thread with waiting parents.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.delaunay import shard as shard_mod
from repro.service.jobs import JobState, TransientMeshError
from repro.service.pool import (
    ProcessWorkerPool,
    WorkerCrashed,
    process_support_available,
)

#: events a fan-out reports: ``hook(event, block, info)`` with events
#: ``"start"``, ``"done"``, ``"retry"``, ``"fail"``.
ShardHook = Callable[[str, Any, Dict[str, Any]], None]


def _run_one_shard(pool: ProcessWorkerPool, request, plan, block,
                   deadline: Optional[float], retries: int,
                   hook: Optional[ShardHook],
                   content_key: Optional[str] = None) -> dict:
    """One block through the pool, with bounded crash/transient re-runs.

    ``DeadlineKilled`` is never retried (the parent deadline already
    passed); a crashed or transiently-failed shard re-runs on a fresh
    worker slot — its arena was reclaimed by name in ``run_shard``'s
    ``finally``, so nothing of the dead attempt leaks.
    """
    attempt = 0
    while True:
        attempt += 1
        if hook is not None:
            hook("start", block, {"attempt": attempt})
        t0 = time.perf_counter()
        try:
            out = pool.run_shard(request, plan, block, deadline=deadline,
                                 content_key=content_key)
        except (WorkerCrashed, TransientMeshError) as exc:
            crashed = isinstance(exc, WorkerCrashed)
            if attempt > retries:
                if hook is not None:
                    hook("fail", block, {"error": str(exc),
                                         "crashed": crashed})
                raise
            if hook is not None:
                hook("retry", block, {"error": str(exc),
                                      "crashed": crashed})
            continue
        except BaseException as exc:
            if hook is not None:
                hook("fail", block, {"error": str(exc), "crashed": False})
            raise
        if hook is not None:
            hook("done", block, {
                "seconds": time.perf_counter() - t0,
                "stats": out.get("stats", {}),
            })
        return out


def pool_runner(pool: ProcessWorkerPool, request,
                deadline: Optional[float] = None, retries: int = 1,
                hook: Optional[ShardHook] = None
                ) -> shard_mod.ShardRunner:
    """A :data:`~repro.delaunay.shard.ShardRunner` over ``pool``.

    Drives up to ``pool.n_workers`` parent threads, each checking out
    worker slots for successive blocks; the first non-retryable error
    stops assignment and re-raises after in-flight shards settle.
    """
    def run(plan: shard_mod.ShardPlan, indices=None, keys=None):
        if indices is None:
            indices = range(plan.n_blocks)
        indices = list(indices)
        outs: List[Optional[dict]] = [None] * len(indices)
        pending = list(enumerate(indices))
        errors: List[BaseException] = []
        lock = threading.Lock()

        def worker() -> None:
            while True:
                with lock:
                    if errors or not pending:
                        return
                    pos, i = pending.pop(0)
                try:
                    outs[pos] = _run_one_shard(
                        pool, request, plan, plan.blocks[i],
                        deadline, retries, hook,
                        content_key=keys[i] if keys is not None else None,
                    )
                except BaseException as exc:
                    with lock:
                        errors.append(exc)
                    return

        n = min(len(indices), pool.n_workers)
        if n <= 1:
            worker()
        else:
            threads = [
                threading.Thread(target=worker, name=f"shard-fanout-{i}",
                                 daemon=True)
                for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            raise errors[0]
        return outs
    return run


def serial_runner(request, hook: Optional[ShardHook] = None
                  ) -> shard_mod.ShardRunner:
    """Mesh the blocks one by one in this process (no pool)."""
    def run(plan: shard_mod.ShardPlan, indices=None, keys=None):
        if indices is None:
            indices = range(plan.n_blocks)
        outs = []
        for i in indices:
            block = plan.blocks[i]
            if hook is not None:
                hook("start", block, {"attempt": 1})
            t0 = time.perf_counter()
            arrays, stats = shard_mod.mesh_block(
                request.image, block, plan,
                radius_edge_bound=request.radius_edge_bound,
                planar_angle_bound_deg=request.planar_angle_bound_deg,
                max_operations=request.max_operations,
            )
            if hook is not None:
                hook("done", block, {
                    "seconds": time.perf_counter() - t0, "stats": stats,
                })
            outs.append({"arrays": arrays, "stats": stats})
        return outs
    return run


# ---------------------------------------------------------------------------
# api-path entry point
# ---------------------------------------------------------------------------

#: Lazily created, process-wide, memory-only block/stitch cache for the
#: api path — repeated ``repro.api.mesh`` calls on near-duplicate
#: images in one process get the same incremental treatment the
#: service provides, without any disk state.
_LOCAL_BLOCK_CACHE = None
_LOCAL_BLOCK_CACHE_GUARD = threading.Lock()


def _local_block_cache():
    global _LOCAL_BLOCK_CACHE
    with _LOCAL_BLOCK_CACHE_GUARD:
        if _LOCAL_BLOCK_CACHE is None:
            from repro.service.cache import ArtifactCache
            _LOCAL_BLOCK_CACHE = ArtifactCache(root=None)
        return _LOCAL_BLOCK_CACHE


def run_local(request):
    """Sharded meshing for ``repro.api.mesh`` (no service running).

    Returns the stitched ``MeshResult``, or ``None`` when the image
    does not decompose into at least two occupied blocks — the caller
    then runs the ordinary unsharded mesher.
    """
    import os

    try:
        plan = shard_mod.decompose(
            request.image, request.resolved_shards(), delta=request.delta
        )
    except ValueError:
        # e.g. empty foreground: let the unsharded path raise its
        # canonical error.
        return None
    if plan.n_blocks < 2:
        return None
    pool: Optional[ProcessWorkerPool] = None
    runner: Optional[shard_mod.ShardRunner] = None
    if process_support_available() and (os.cpu_count() or 1) > 1:
        pool = ProcessWorkerPool(
            min(plan.n_blocks, os.cpu_count() or 1), name="mesh-shard"
        )
        runner = pool_runner(pool, request)
    else:
        runner = serial_runner(request)
    block_cache = (
        _local_block_cache()
        if getattr(request, "incremental", True) else None
    )
    try:
        return shard_mod.mesh_sharded(request, plan=plan, runner=runner,
                                      block_cache=block_cache)
    except shard_mod.ShardingUnavailable:
        return None
    finally:
        if pool is not None:
            pool.shutdown()


# ---------------------------------------------------------------------------
# service-path coordinator
# ---------------------------------------------------------------------------

class ServiceShardRunner:
    """Runs one sharded job on a :class:`MeshingService`'s executors."""

    def __init__(self, service):
        self.service = service

    def run(self, job, request):
        """Returns the stitched result, or ``None`` to fall back."""
        svc = self.service
        reg = svc.registry
        try:
            plan = shard_mod.decompose(
                request.image, request.resolved_shards(),
                delta=request.delta,
                band_voxels=svc.config.shard_band_voxels,
            )
        except ValueError:
            return None
        if plan.n_blocks < 2:
            return None
        reg.counter("service.shard.jobs").inc()
        reg.counter("service.shard.blocks").inc(plan.n_blocks)
        hook = self._hook(job)
        pool = svc._proc_pool
        if pool is not None:
            runner = pool_runner(
                pool, request, deadline=job.deadline,
                retries=svc.config.shard_retries, hook=hook,
            )
        else:
            runner = serial_runner(request, hook=hook)
        block_cache = (
            svc.cache
            if (svc.cache is not None and svc.config.incremental
                and getattr(request, "incremental", True))
            else None
        )
        try:
            result = shard_mod.mesh_sharded(request, plan=plan,
                                            runner=runner,
                                            block_cache=block_cache)
        except shard_mod.ShardingUnavailable:
            return None
        bc = result.stats.get("block_cache")
        if bc:
            reg.counter("shard.cache.block_hits").inc(bc.get("hits", 0))
            reg.counter("shard.cache.block_misses").inc(
                bc.get("misses", 0))
            if bc.get("stitch_mode", "full") != "full":
                reg.counter("shard.cache.incremental_stitches").inc()
        stitch = result.stats.get("stitch", {})
        reg.counter("shard.stitch.points").inc(
            stitch.get("points_loaded", 0))
        reg.counter("shard.stitch.removed").inc(
            stitch.get("band_removed", 0))
        reg.counter("shard.stitch.refine_operations").inc(
            stitch.get("refine_operations", 0))
        reg.histogram("shard.stitch.seconds").observe(
            stitch.get("seconds", 0.0))
        return result

    def _hook(self, job) -> ShardHook:
        svc = self.service
        reg = svc.registry
        tracer = svc.tracer

        def hook(event: str, block, info: Dict[str, Any]) -> None:
            sub_id = f"{job.id}/s{block.index}"
            if event == "start":
                sub = svc._register_subjob(sub_id, job)
                if sub is not None:
                    sub.transition(JobState.QUEUED, JobState.RUNNING)
                    sub.attempts = info.get("attempt", 1)
            elif event == "done":
                reg.histogram("service.shard.seconds").observe(
                    info.get("seconds", 0.0))
                if tracer.enabled:
                    now = time.perf_counter()
                    tracer.complete(f"shard:{sub_id}",
                                    now - info.get("seconds", 0.0),
                                    info.get("seconds", 0.0), 0)
                sub = svc.job(sub_id)
                if sub is not None:
                    sub.finish(JobState.DONE)
            elif event == "retry":
                if info.get("crashed"):
                    reg.counter("service.shard.crashes").inc()
                reg.counter("service.shard.reruns").inc()
            elif event == "fail":
                if info.get("crashed"):
                    reg.counter("service.shard.crashes").inc()
                reg.counter("service.shard.failed").inc()
                sub = svc.job(sub_id)
                if sub is not None:
                    sub.finish(JobState.FAILED,
                               error=info.get("error", ""))
        return hook


__all__ = [
    "ServiceShardRunner",
    "pool_runner",
    "run_local",
    "serial_runner",
]
