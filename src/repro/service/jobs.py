"""Job model for the meshing service: states, transitions, errors.

A :class:`Job` wraps one :class:`~repro.api.MeshRequest` travelling
through the service.  Its lifecycle is the state machine::

    QUEUED ──▶ RUNNING ──▶ DONE
       │          ├──────▶ FAILED      (exception; traceback attached)
       │          └──────▶ TIMED_OUT   (deadline passed)
       ├─────────────────▶ CANCELLED   (cancelled before pickup)
       └─ (never queued) ─▶ REJECTED   (queue full / service closed)

State changes go through :meth:`Job.transition`, an atomic
compare-and-set under the job's own lock.  That CAS is what closes the
"cancelled but still ran" race: a worker may only start a job by
winning ``QUEUED → RUNNING``, and a canceller may only cancel by
winning ``QUEUED → CANCELLED`` — exactly one of them succeeds, no
matter how the queue interleaves them.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from repro.api import MeshRequest, MeshResult


class JobState(Enum):
    """Lifecycle states; the right column of the module docstring."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMED_OUT = "TIMED_OUT"
    REJECTED = "REJECTED"


#: States a job can never leave.
TERMINAL_STATES = frozenset({
    JobState.DONE, JobState.FAILED, JobState.CANCELLED,
    JobState.TIMED_OUT, JobState.REJECTED,
})


class TransientMeshError(RuntimeError):
    """A failure worth retrying (flaky I/O, speculative-livelock, ...).

    Meshers — and tests injecting faults — raise this to opt a failure
    into the worker pool's bounded-retry-with-backoff path; any other
    exception fails the job immediately.
    """


class ServiceError(RuntimeError):
    """Raised by the synchronous client facade when a job does not end
    in ``DONE``; carries the job so callers can inspect state/error."""

    def __init__(self, message: str, job: Optional["Job"] = None):
        super().__init__(message)
        self.job = job


class Job:
    """One request's journey through the service."""

    __slots__ = (
        "id", "request", "deadline", "state", "result", "error",
        "attempts", "cache_hit", "tier", "coalesced", "keys",
        "submitted_at", "started_at", "finished_at",
        "_lock", "_done", "_callbacks",
    )

    def __init__(self, job_id: str, request: MeshRequest,
                 deadline: Optional[float] = None):
        self.id = job_id
        self.request = request
        #: absolute ``time.monotonic()`` deadline, or ``None``
        self.deadline = deadline
        self.state = JobState.QUEUED
        self.result: Optional[MeshResult] = None
        self.error: Optional[str] = None
        self.attempts = 0
        self.cache_hit = False
        #: SLO tier that served this job (:mod:`repro.service.slo`):
        #: ``memory_hit`` / ``disk_hit`` / ``coalesced`` / ``full_mesh``
        self.tier: Optional[str] = None
        #: True iff this job was concluded by a coalesce fan-out.
        self.coalesced = False
        #: ``(image_key, request_key)`` computed at submit (coalescing
        #: on), reused by the cache path; ``None`` = not yet computed.
        self.keys: Optional[Any] = None
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._callbacks: List[Callable[["Job"], None]] = []

    # -- state machine -------------------------------------------------
    def transition(self, frm: JobState, to: JobState) -> bool:
        """Atomic compare-and-set ``frm → to``; True iff it won."""
        callbacks: List[Callable[["Job"], None]] = []
        with self._lock:
            if self.state is not frm:
                return False
            self.state = to
            if to is JobState.RUNNING:
                self.started_at = time.monotonic()
            elif to in TERMINAL_STATES:
                self.finished_at = time.monotonic()
                self._done.set()
                callbacks = self._callbacks[:]
                self._callbacks.clear()
        for cb in callbacks:
            cb(self)
        return True

    def finish(self, state: JobState, result: Optional[MeshResult] = None,
               error: Optional[str] = None) -> bool:
        """Move a non-terminal job to terminal ``state``; True iff moved."""
        callbacks: List[Callable[["Job"], None]] = []
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            self.result = result
            self.error = error
            self.finished_at = time.monotonic()
            self._done.set()
            callbacks = self._callbacks[:]
            self._callbacks.clear()
        for cb in callbacks:
            cb(self)
        return True

    # -- queries -------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) > self.deadline

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def add_done_callback(self, fn: Callable[["Job"], None]) -> None:
        """Run ``fn(job)`` once the job is terminal (immediately if it
        already is).  Callbacks run on the finishing thread."""
        with self._lock:
            if self.state not in TERMINAL_STATES:
                self._callbacks.append(fn)
                return
        fn(self)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe status snapshot (the protocol's response body)."""
        out: Dict[str, Any] = {
            "id": self.id,
            "state": self.state.value,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
        }
        if self.tier is not None:
            out["tier"] = self.tier
        if self.result is not None:
            out["n_tets"] = self.result.n_tets
            out["n_vertices"] = self.result.n_vertices
            out["timings"] = dict(self.result.timings)
        if self.error is not None:
            out["error"] = self.error
        if self.finished_at is not None and self.started_at is not None:
            out["run_seconds"] = self.finished_at - self.started_at
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job({self.id!r}, {self.state.value})"
