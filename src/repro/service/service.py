"""The meshing service: queue + worker pool + artifact cache + metrics.

:class:`MeshingService` turns the one-shot meshers of :mod:`repro.api`
into a long-running, observable system:

* requests are admitted into a bounded :class:`JobQueue` (full queue →
  ``REJECTED``, an explicit outcome, never silent drop);
* a :class:`WorkerPool` of N threads claims jobs via the
  ``QUEUED → RUNNING`` compare-and-set, honours per-job deadlines, and
  retries transient failures with exponential backoff within a bounded
  budget;
* results are content-addressed: a finished mesh is stored under
  ``hash(image bytes, canonical MeshParams)`` and an identical future
  request returns it in O(hash); the EDT feature transform is cached
  per *image*, so requests that share an image but differ in mesh
  parameters still skip the EDT (the hook of
  :mod:`repro.imaging.edt` is installed for the service's lifetime);
* every stage feeds ``service.*`` metrics in the service's
  :class:`~repro.observability.MetricsRegistry` and, when tracing is
  enabled, emits one span per job.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from repro.api import MESHER_NAMES, MeshRequest, MeshResult, get_mesher
from repro.imaging import edt as edt_module
from repro.observability import Observability, ObservabilityConfig
from repro.service.cache import ArtifactCache, EDTCacheAdapter
from repro.service.coalesce import CoalesceRegistry
from repro.service.jobs import (
    Job,
    JobState,
    ServiceError,
    TransientMeshError,
)
from repro.service.keys import cache_keys
from repro.service.slo import SLOTracker
from repro.service.pool import (
    DeadlineKilled,
    ProcessWorkerPool,
    WorkerCrashed,
    WorkerPool,
    process_support_available,
)
from repro.service.queue import JobQueue

#: Valid values of :attr:`ServiceConfig.executor`.
EXECUTORS = ("thread", "process")


@dataclass
class ServiceConfig:
    """Tunables of one service instance."""

    n_workers: int = 4
    queue_capacity: int = 64
    #: artifact directory; ``None`` keeps the cache in memory only.
    cache_dir: Optional[str] = None
    memory_cache_entries: int = 64
    #: byte budget for the in-memory artifact LRU (``None`` = entry
    #: count only); in-flight jobs pin their keys against eviction.
    memory_cache_bytes: Optional[int] = None
    #: retry budget for :class:`TransientMeshError` failures.
    max_retries: int = 2
    retry_backoff: float = 0.05
    retry_backoff_cap: float = 2.0
    #: default per-job deadline in seconds (``None`` = no deadline).
    default_deadline: Optional[float] = None
    #: install the process-wide EDT cache hook for this service's life.
    install_edt_cache: bool = True
    tracing: bool = False
    transient_exceptions: Tuple[Type[BaseException], ...] = (
        TransientMeshError,
    )
    #: cap on any request's shard count (``None`` = the request's own
    #: resolved value stands); applied at submit time, before cache
    #: keys are computed.
    max_shards: Optional[int] = None
    #: re-runs granted to a crashed / transiently-failed shard.
    shard_retries: int = 1
    #: interface-band width override in voxels (``None`` = derived
    #: from delta; see :func:`repro.delaunay.shard.band_width_voxels`).
    shard_band_voxels: Optional[int] = None
    #: incremental sharded meshing: content-address per-block exports
    #: in the artifact cache and warm-start the stitch from the
    #: previous run's delta (see :mod:`repro.delaunay.shard`).  The
    #: request's own ``incremental`` flag must also be set.
    incremental: bool = True
    #: coalesce identical in-flight requests onto one mesh run
    #: (:mod:`repro.service.coalesce`); keyed on the content-addressed
    #: request key, so only provably-identical requests join.
    coalesce: bool = True
    #: ``"thread"`` or ``"process"``; ``None`` reads the
    #: ``REPRO_EXECUTOR`` environment variable and defaults to
    #: ``"thread"``.  ``"process"`` runs CPU-bound meshing in spawned
    #: worker processes over shared-memory arenas and silently falls
    #: back to threads when shared memory is unavailable.
    executor: Optional[str] = None

    def resolved_executor(self) -> str:
        name = self.executor or os.environ.get("REPRO_EXECUTOR") or "thread"
        if name not in EXECUTORS:
            raise ValueError(
                f"unknown executor {name!r}; pick from {EXECUTORS}"
            )
        return name


class MeshingService:
    """Long-running meshing service over the :mod:`repro.api` meshers.

    Start with :meth:`start` (or use as a context manager), feed it
    :class:`~repro.api.MeshRequest` objects through :meth:`submit` /
    :meth:`mesh`, and stop with :meth:`shutdown`.  Thread-safe.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.obs = Observability.from_config(
            ObservabilityConfig(tracing=cfg.tracing)
        )
        self.registry = self.obs.registry
        self.tracer = self.obs.tracer
        self.cache = ArtifactCache(
            cfg.cache_dir, memory_entries=cfg.memory_cache_entries,
            max_bytes=cfg.memory_cache_bytes
        )
        self.queue = JobQueue(cfg.queue_capacity)
        self.pool = WorkerPool(
            self.queue, self._process, cfg.n_workers,
            on_crash=self._count_crash,
        )
        # Executor resolution: the claiming threads above always exist;
        # "process" adds worker processes underneath them, unless
        # shared memory is unusable here — then we degrade to threads
        # and say so in the metrics rather than failing to start.
        requested = cfg.resolved_executor()
        self._proc_pool: Optional[ProcessWorkerPool] = None
        if requested == "process" and not process_support_available():
            requested = "thread"
            self.executor_fallback = True
        else:
            self.executor_fallback = False
        self.executor = requested
        self.slo = SLOTracker(self.registry)
        self._coalesce: Optional[CoalesceRegistry] = (
            CoalesceRegistry(self) if cfg.coalesce else None
        )
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._meshers: Dict[str, object] = {}
        self._started = False
        self._closed = False
        self._edt_hook_prev: Optional[object] = None
        self._edt_adapter: Optional[EDTCacheAdapter] = None
        self._edt_stats_at_start = edt_module.CACHE_STATS.snapshot()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "MeshingService":
        if self._started:
            return self
        self._started = True
        if self.config.install_edt_cache:
            self._edt_adapter = EDTCacheAdapter(self.cache)
            self._edt_hook_prev = edt_module.set_feature_transform_cache(
                self._edt_adapter
            )
        self.registry.gauge("service.workers").set(self.config.n_workers)
        if self.executor == "process":
            self._proc_pool = ProcessWorkerPool(
                self.config.n_workers, cache_dir=self.config.cache_dir,
            )
        self.pool.start()
        return self

    def shutdown(self, wait: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop accepting work; drain (``wait=True``) or cancel what is
        still queued, join the workers, and restore the EDT hook."""
        if self._closed:
            return
        self._closed = True
        if not wait:
            for job in self.queue.drain():
                if job.transition(JobState.QUEUED, JobState.CANCELLED):
                    self.registry.counter("service.jobs.cancelled").inc()
        self.queue.close()
        if self._started:
            self.pool.join(timeout)
        if self._proc_pool is not None:
            # After pool.join no job is in flight, so every slot is
            # idle: polite exits, then kills, then an arena sweep.
            self._proc_pool.shutdown()
        if self.config.install_edt_cache and self._edt_adapter is not None:
            # Only restore if the hook is still ours (a nested service
            # may have replaced it and will restore its own previous).
            current = edt_module.set_feature_transform_cache(
                self._edt_hook_prev
            )
            if current is not self._edt_adapter:
                edt_module.set_feature_transform_cache(current)

    def __enter__(self) -> "MeshingService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- mesher registry -----------------------------------------------
    def register_mesher(self, name: str, mesher: object) -> None:
        """Overlay a mesher (tests inject fakes; plugins add backends).

        Overlay names win over the built-in :func:`repro.api.get_mesher`
        registry for this service only.
        """
        self._meshers[name] = mesher

    def _mesher(self, name: str):
        overlay = self._meshers.get(name)
        if overlay is not None:
            return overlay
        return get_mesher(name)

    # -- submission ----------------------------------------------------
    def submit(self, request: MeshRequest,
               deadline: Optional[float] = None,
               job_id: Optional[str] = None) -> Job:
        """Queue one request; returns its :class:`Job` immediately.

        ``deadline`` is seconds-from-now; it covers queue wait *and*
        run time.  A full (or shut-down) queue yields a ``REJECTED``
        job, not an exception — admission control is an outcome the
        caller inspects, and the metrics count it.
        """
        if request.mesher == "auto" or (
            request.mesher in MESHER_NAMES
            and request.mesher not in self._meshers
        ):
            request.validate()
        if request.shards is not None:
            # Normalise to a resolved, capped integer *before* any
            # cache key is computed, so the key reflects what will run.
            n = request.resolved_shards()
            if self.config.max_shards is not None:
                n = min(n, self.config.max_shards)
            request.shards = max(1, n)
        if deadline is None:
            deadline = self.config.default_deadline
        abs_deadline = (
            time.monotonic() + deadline if deadline is not None else None
        )
        if job_id is None:
            job_id = f"job-{next(self._ids):06d}"
        job = Job(job_id, request, deadline=abs_deadline)
        with self._jobs_lock:
            if job_id in self._jobs and not self._jobs[job_id].done:
                raise ValueError(f"job id {job_id!r} already active")
            self._jobs[job_id] = job
        reg = self.registry
        reg.counter("service.jobs.submitted").inc()
        if self._coalesce is not None and not self._closed:
            try:
                job.keys = cache_keys(request)
            except Exception:
                # A malformed image fails in the worker with a proper
                # FAILED outcome; submit itself must not raise for it.
                job.keys = None
            if (job.keys is not None
                    and self._coalesce.route(job.keys[1], job)):
                # Follower: rides the in-flight leader's run; it never
                # enters the queue and concludes at the fan-out.
                return job
        if self._closed or not self.queue.put(job):
            job.finish(JobState.REJECTED,
                       error="queue full or service shut down")
            reg.counter("service.jobs.rejected").inc()
        reg.gauge("service.queue.depth").set(len(self.queue))
        return job

    def job(self, job_id: str) -> Optional[Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def _register_subjob(self, sub_id: str, parent: Job) -> Optional[Job]:
        """Record one shard of ``parent`` as a visible sub-job.

        Sub-jobs never enter the queue (the parent's claiming thread
        drives them); they exist so ``job("<id>/s<k>")`` answers status
        queries and the metrics can count per-shard outcomes.  A
        re-run reuses the existing record.
        """
        with self._jobs_lock:
            existing = self._jobs.get(sub_id)
            if existing is not None:
                return existing
            sub = Job(sub_id, parent.request, deadline=parent.deadline)
            self._jobs[sub_id] = sub
            return sub

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; True iff it will never run.

        Wins (or loses) the ``QUEUED → CANCELLED`` CAS against the
        worker's ``QUEUED → RUNNING`` claim, then eagerly frees the
        queue slot.  Running jobs are not interruptible.
        """
        job = self.job(job_id)
        if job is None:
            return False
        if job.transition(JobState.QUEUED, JobState.CANCELLED):
            self.queue.remove(job)
            self.registry.counter("service.jobs.cancelled").inc()
            self.registry.gauge("service.queue.depth").set(len(self.queue))
            return True
        return False

    # -- coalescing ----------------------------------------------------
    def _enqueue_promoted(self, job: Job) -> None:
        """Queue a follower promoted to leader after a leader cancel."""
        reg = self.registry
        reg.counter("service.coalesce.promotions").inc()
        if self._closed or not self.queue.put(job):
            job.finish(JobState.REJECTED,
                       error="queue full or service shut down")
            reg.counter("service.jobs.rejected").inc()
        reg.gauge("service.queue.depth").set(len(self.queue))

    def _conclude_follower(self, follower: Job, leader: Job) -> bool:
        """Fan one leader outcome out to one waiter; True iff it landed.

        The follower inherits the leader's terminal state (result or
        error), except that a follower whose *own* deadline lapsed
        while it waited concludes ``TIMED_OUT`` — with the mesh still
        attached, like any salvageable late finish.  Returns False for
        followers already terminal (individually cancelled).
        """
        reg = self.registry
        follower.coalesced = True
        state = leader.state
        if state is JobState.DONE:
            if follower.expired():
                if not follower.finish(
                        JobState.TIMED_OUT, result=leader.result,
                        error="deadline expired while coalesced"):
                    return False
                reg.counter("service.jobs.timed_out").inc()
                return True
            follower.tier = "coalesced"
            if not follower.finish(JobState.DONE, result=leader.result):
                return False
            reg.counter("service.jobs.completed").inc()
            self._observe_slo(follower)
            return True
        counters = {
            JobState.FAILED: "service.jobs.failed",
            JobState.TIMED_OUT: "service.jobs.timed_out",
            JobState.CANCELLED: "service.jobs.cancelled",
            JobState.REJECTED: "service.jobs.rejected",
        }
        error = leader.error or (
            f"coalesced leader {leader.id} finished {leader.state.value}"
        )
        if not follower.finish(state, error=error):
            return False
        reg.counter(counters[state]).inc()
        return True

    def _observe_slo(self, job: Job) -> None:
        """Attribute one successfully concluded job to its SLO tier."""
        if job.finished_at is None:
            return
        self.slo.observe(job.tier, job.finished_at - job.submitted_at)

    def wait(self, job: Job, timeout: Optional[float] = None) -> Job:
        job.wait(timeout)
        return job

    def mesh(self, request: MeshRequest,
             deadline: Optional[float] = None,
             timeout: Optional[float] = None) -> MeshResult:
        """Synchronous submit + wait; raises :class:`ServiceError` for
        any terminal state other than ``DONE``."""
        job = self.submit(request, deadline=deadline)
        if not job.wait(timeout):
            raise ServiceError(f"timed out waiting for {job.id}", job)
        if job.state is not JobState.DONE or job.result is None:
            detail = f": {job.error}" if job.error else ""
            raise ServiceError(
                f"{job.id} finished {job.state.value}{detail}", job
            )
        return job.result

    # -- worker side ---------------------------------------------------
    def _count_crash(self, job: Job, tb: str) -> None:
        self.registry.counter("service.worker.crashes").inc()
        self.registry.counter("service.jobs.failed").inc()

    def _process(self, job: Job) -> None:
        """Claim, run (with retries), and conclude one job."""
        reg = self.registry
        now = time.monotonic()
        reg.histogram("service.stage.queue_wait_seconds").observe(
            now - job.submitted_at
        )
        reg.gauge("service.queue.depth").set(len(self.queue))
        if job.expired(now):
            # Died waiting in line: never claim, never run.
            if job.finish(JobState.TIMED_OUT,
                          error="deadline expired while queued"):
                reg.counter("service.jobs.timed_out").inc()
            return
        if not job.transition(JobState.QUEUED, JobState.RUNNING):
            return  # cancelled between pop and claim
        cfg = self.config
        tracer = self.tracer
        span = tracer.enabled
        t0 = time.perf_counter()
        if span:
            tracer.begin(f"job:{job.id}", 0, t0)
        try:
            while True:
                job.attempts += 1
                try:
                    result = self._execute(job)
                except cfg.transient_exceptions as exc:
                    if (job.attempts > cfg.max_retries
                            or job.expired()):
                        job.finish(
                            JobState.FAILED,
                            error=traceback.format_exc(),
                        )
                        reg.counter("service.jobs.failed").inc()
                        return
                    reg.counter("service.jobs.retries").inc()
                    backoff = min(
                        cfg.retry_backoff * (2.0 ** (job.attempts - 1)),
                        cfg.retry_backoff_cap,
                    )
                    if job.deadline is not None:
                        backoff = min(
                            backoff, max(0.0, job.deadline - time.monotonic())
                        )
                    time.sleep(backoff)
                    continue
                except DeadlineKilled as exc:
                    job.finish(JobState.TIMED_OUT, error=str(exc))
                    reg.counter("service.jobs.timed_out").inc()
                    return
                except WorkerCrashed:
                    job.finish(JobState.FAILED, error=traceback.format_exc())
                    reg.counter("service.worker.crashes").inc()
                    reg.counter("service.jobs.failed").inc()
                    return
                except BaseException:
                    job.finish(JobState.FAILED, error=traceback.format_exc())
                    reg.counter("service.jobs.failed").inc()
                    return
                if job.expired():
                    # The mesh is attached (salvageable), but the state
                    # reflects that the caller's deadline was missed.
                    job.finish(JobState.TIMED_OUT, result=result,
                               error="deadline expired during run")
                    reg.counter("service.jobs.timed_out").inc()
                    return
                job.finish(JobState.DONE, result=result)
                reg.counter("service.jobs.completed").inc()
                self._observe_slo(job)
                return
        finally:
            dt = time.perf_counter() - t0
            reg.histogram("service.job.total_seconds").observe(dt)
            if span:
                tracer.end(f"job:{job.id}", 0, t0 + dt,
                           state=job.state.value)

    def _execute(self, job: Job) -> MeshResult:
        """One attempt: cache lookup → mesher run → cache store."""
        reg = self.registry
        request = job.request
        # Reuse the keys submit computed for coalescing, if any — the
        # image hash is the expensive half of the key.
        keys = job.keys if job.keys is not None else cache_keys(request)
        if keys is None:
            reg.counter("service.jobs.uncacheable").inc()
        else:
            # Pin across the whole attempt: the stored result must
            # still be resident when the waiter reads it, even under a
            # byte-bounded LRU squeezed by concurrent jobs.
            self.cache.pin_mesh(keys[1])
        try:
            if keys is not None:
                t0 = time.perf_counter()
                cached, tier = self.cache.get_mesh_tiered(keys[1])
                reg.histogram("service.stage.cache_seconds").observe(
                    time.perf_counter() - t0
                )
                if cached is not None:
                    reg.counter("service.cache.hit").inc()
                    job.cache_hit = True
                    job.tier = (
                        "memory_hit" if tier == "memory" else "disk_hit"
                    )
                    return cached
                reg.counter("service.cache.miss").inc()
            t0 = time.perf_counter()
            result = self._run_mesher(job, request)
            bc = result.stats.get("block_cache") if result.stats else None
            job.tier = (
                "block_hit" if bc and bc.get("hits", 0) > 0
                else "full_mesh"
            )
            reg.histogram("service.stage.mesh_seconds").observe(
                time.perf_counter() - t0
            )
            if keys is not None:
                t0 = time.perf_counter()
                self.cache.put_mesh(keys[1], result)
                reg.histogram("service.stage.cache_seconds").observe(
                    time.perf_counter() - t0
                )
            return result
        finally:
            if keys is not None:
                self.cache.unpin_mesh(keys[1])

    def _run_mesher(self, job: Job, request: MeshRequest) -> MeshResult:
        """Dispatch one mesher run to the active executor.

        Requests the process pool cannot carry (``size_function``,
        parent-side overlay meshers) run inline on the claiming thread
        — thread-executor semantics, per job instead of per service.
        """
        if (request.resolved_shards() > 1
                and request.resolved_mesher() not in self._meshers):
            from repro.service.shards import ServiceShardRunner

            result = ServiceShardRunner(self).run(job, request)
            if result is not None:
                return result
            # One occupied block: the plain path below is equivalent.
        pool = self._proc_pool
        if pool is not None and pool.remotable(request, self._meshers):
            self.registry.counter("service.jobs.remote").inc()
            return pool.run(request, deadline=job.deadline)
        if pool is not None:
            self.registry.counter("service.jobs.inline").inc()
        return self._mesher(request.resolved_mesher()).mesh(request)

    # -- reporting -----------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        """Registry snapshot with live queue/cache/EDT gauges folded in.

        EDT counters are deltas since this service started (the hook's
        stats are process-wide).
        """
        reg = self.registry
        reg.gauge("service.queue.depth").set(len(self.queue))
        reg.gauge("service.workers.alive").set(self.pool.alive_workers)
        reg.gauge("service.executor.process").set(
            1 if self.executor == "process" else 0
        )
        if self._proc_pool is not None:
            reg.gauge("service.procworkers.alive").set(
                self._proc_pool.alive_workers
            )
            reg.gauge("service.procworkers.spawned").set(
                self._proc_pool.spawned_total
            )
        edt_now = edt_module.CACHE_STATS.snapshot()
        for name in ("hits", "misses", "computes"):
            reg.gauge(f"edt.cache.{name}").set(
                edt_now[name] - self._edt_stats_at_start[name]
            )
        cache_stats = self.cache.stats_snapshot()
        for name, value in cache_stats.items():
            reg.gauge(f"service.cache.store.{name}").set(value)
        reg.gauge("service.cache.evictions").set(cache_stats["evictions"])
        reg.gauge("service.cache.bytes_held").set(
            cache_stats["bytes_held"])
        snap = reg.snapshot()
        snap["slo"] = self.slo.snapshot()
        return snap
