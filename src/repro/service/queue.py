"""Bounded FIFO job queue with admission control and eager cancellation.

Backpressure is explicit: :meth:`JobQueue.put` never blocks — when the
queue is at capacity (or closed) it returns ``False`` and the service
marks the job ``REJECTED``, so overload is a visible, countable outcome
instead of an unbounded memory ramp.

Cancellation of a queued job is a two-layer defence:

* the canceller wins the ``QUEUED → CANCELLED`` compare-and-set on the
  job itself, so even a job still sitting in the deque can never start
  (workers must win ``QUEUED → RUNNING``, and only one CAS succeeds);
* :meth:`remove` additionally drops the entry from the deque under the
  queue lock, freeing its capacity slot immediately instead of lazily
  at pop time.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from repro.service.jobs import Job, JobState


class JobQueue:
    """Bounded deque of queued jobs, condition-variable signalled."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: Deque[Job] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, job: Job) -> bool:
        """Admit ``job``; False (not blocking) when full or closed."""
        with self._cond:
            if self._closed or len(self._items) >= self.capacity:
                return False
            self._items.append(job)
            self._cond.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next queued job, or ``None`` on timeout / drained-and-closed.

        Jobs that lost their ``QUEUED`` state while waiting (cancelled,
        or timed out by the canceller) are discarded here rather than
        returned — the caller only ever sees jobs it may try to claim.
        """
        with self._cond:
            while True:
                while self._items:
                    job = self._items.popleft()
                    if job.state is JobState.QUEUED:
                        return job
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def remove(self, job: Job) -> bool:
        """Drop ``job`` from the deque (eager cancel); True iff found."""
        with self._cond:
            try:
                self._items.remove(job)
                return True
            except ValueError:
                return False

    def close(self) -> None:
        """Refuse new work and wake every waiting worker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list:
        """Remove and return every still-queued job (shutdown path)."""
        with self._cond:
            out = list(self._items)
            self._items.clear()
            return out
