"""One client API for every transport: ``repro.service.connect()``.

:func:`connect` is the single documented entry point for talking to a
meshing service.  The ``target`` picks the transport; the object that
comes back always implements the same :class:`Client` interface —
``mesh`` / ``submit`` / ``wait`` / ``status`` / ``cancel`` /
``metrics`` / ``close``, usable as a context manager::

    from repro.api import MeshRequest
    from repro.service import ServiceConfig, connect

    # in-process: spins up (and owns) a MeshingService
    with connect(config=ServiceConfig(n_workers=4)) as client:
        result = client.mesh(MeshRequest(image=image, delta=2.0))

    # same calls over a Unix socket (`repro serve --socket PATH`)
    with connect("/run/repro.sock") as client:
        result = client.mesh(MeshRequest(image=image, delta=2.0))

    # or over the HTTP gateway (`repro serve --http HOST:PORT`)
    with connect("http://127.0.0.1:8080") as client:
        result = client.mesh(MeshRequest(image=image, delta=2.0))

Target forms:

========================= =========================================
``None``                    in-process service (from ``config``, or
                            borrow an already-running ``service``)
``"/path/to.sock"``         Unix-socket NDJSON (``unix://`` prefix
                            also accepted)
``"http://host:port"``      the HTTP gateway
                            (:class:`repro.service.http.HttpClient`)
``"scheme://..."``          anything else → error
========================= =========================================

Across transports, ``submit`` returns the job **id** (a string) and
``wait``/``status`` return the JSON-safe job summary dict — the
lowest common denominator every transport can honour.  ``mesh``
always returns a full :class:`~repro.api.MeshResult`.  The in-process
client additionally exposes ``.service`` (and ``job(id)``) for
callers that want the richer :class:`~repro.service.jobs.Job`
objects; the socket client exposes ``request()`` for raw protocol
access.

Remote clients negotiate the protocol version on connect (the
``hello`` op over the socket, the ``X-Repro-Protocol`` header over
HTTP) and refuse to proceed against a server speaking a different
version.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional, Union

from repro.api import MeshRequest, MeshResult
from repro.service.jobs import Job, ServiceError
from repro.service.protocol import PROTOCOL_VERSION, REQUEST_PARAMS
from repro.service.service import MeshingService, ServiceConfig


def request_wire_params(request: MeshRequest) -> Dict[str, Any]:
    """The request's non-default :data:`REQUEST_PARAMS` as a wire
    ``params`` object (shared by the socket and HTTP clients).

    Raises :class:`ServiceError` for requests that cannot cross a
    process boundary (live ``size_function`` callables).
    """
    if request.size_function is not None:
        raise ServiceError(
            "size_function requests cannot cross the wire"
        )
    params: Dict[str, Any] = {}
    defaults = MeshRequest.__dataclass_fields__
    for key in REQUEST_PARAMS:
        value = getattr(request, key)
        if value != defaults[key].default:
            params[key] = value
    return params


class Client:
    """The transport-agnostic client interface (see module docstring).

    Concrete transports subclass this; user code should obtain
    instances via :func:`connect` and program against these methods
    only.
    """

    def mesh(self, request: MeshRequest,
             deadline: Optional[float] = None,
             timeout: Optional[float] = None) -> MeshResult:
        """Submit and wait; raises :class:`ServiceError` unless DONE."""
        raise NotImplementedError

    def submit(self, request: MeshRequest,
               deadline: Optional[float] = None) -> str:
        """Queue a request; returns the job id immediately."""
        raise NotImplementedError

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job is terminal; returns its summary."""
        raise NotImplementedError

    def status(self, job_id: str) -> Dict[str, Any]:
        """Non-blocking job summary."""
        raise NotImplementedError

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; True iff it will never run."""
        raise NotImplementedError

    def metrics(self) -> Dict[str, Any]:
        """Service metrics snapshot."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessClient(Client):
    """:class:`Client` over a :class:`MeshingService` in this process.

    Owns the service it builds from ``config``; borrows (and leaves
    running) a ``service`` passed in.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 service: Optional[MeshingService] = None):
        self._owns_service = service is None
        self.service = service or MeshingService(config).start()

    def mesh(self, request: MeshRequest,
             deadline: Optional[float] = None,
             timeout: Optional[float] = None) -> MeshResult:
        return self.service.mesh(request, deadline=deadline,
                                 timeout=timeout)

    def submit(self, request: MeshRequest,
               deadline: Optional[float] = None) -> str:
        return self.service.submit(request, deadline=deadline).id

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        job = self._job(job_id)
        job.wait(timeout)
        return job.summary()

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._job(job_id).summary()

    def cancel(self, job_id: str) -> bool:
        return self.service.cancel(job_id)

    def metrics(self) -> Dict[str, Any]:
        return self.service.metrics_snapshot()

    def close(self) -> None:
        if self._owns_service:
            self.service.shutdown()

    # -- in-process extras ---------------------------------------------
    def job(self, job_id: str) -> Optional[Job]:
        """The live :class:`Job` (in-process escape hatch)."""
        return self.service.job(job_id)

    def result(self, job_id: str) -> Optional[MeshResult]:
        """The finished job's full result, if it is DONE."""
        job = self.service.job(job_id)
        return job.result if job is not None else None

    def _job(self, job_id: str) -> Job:
        job = self.service.job(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job


class SocketClient(Client):
    """:class:`Client` over the Unix-socket NDJSON front-end.

    One request-response exchange per call on a persistent
    connection; the protocol version is negotiated up front.  Stdlib
    only.
    """

    def __init__(self, path: str, timeout: Optional[float] = None,
                 negotiate: bool = True):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        self._sock.connect(path)
        self._file = self._sock.makefile("rwb")
        if negotiate:
            hello = self.request({"op": "hello", "v": PROTOCOL_VERSION})
            if not hello.get("ok") or hello.get("v") != PROTOCOL_VERSION:
                self.close()
                raise ServiceError(
                    f"protocol version mismatch: client speaks "
                    f"{PROTOCOL_VERSION}, server answered {hello!r}"
                )

    # -- raw protocol --------------------------------------------------
    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, read one response line."""
        self._file.write(json.dumps(message).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line.decode("utf-8"))

    # -- Client interface ----------------------------------------------
    def mesh(self, request: MeshRequest,
             deadline: Optional[float] = None,
             timeout: Optional[float] = None) -> MeshResult:
        msg = self._message("mesh", request)
        if deadline is not None:
            msg["deadline"] = deadline
        if timeout is not None:
            msg["wait_timeout"] = timeout
        msg["return_mesh"] = True
        out = self.request(msg)
        if not out.get("ok") or out.get("state") != "DONE":
            raise ServiceError(
                f"{out.get('id', '<job>')} finished "
                f"{out.get('state', 'with error')}"
                f"{': ' + out['error'] if out.get('error') else ''}"
            )
        return MeshResult.from_dict(out["result"])

    def submit(self, request: MeshRequest,
               deadline: Optional[float] = None) -> str:
        msg = self._message("submit", request)
        if deadline is not None:
            msg["deadline"] = deadline
        out = self.request(msg)
        if not out.get("ok"):
            raise ServiceError(out.get("error", "submit failed"))
        return out["id"]

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        msg: Dict[str, Any] = {"op": "wait", "id": job_id}
        if timeout is not None:
            msg["wait_timeout"] = timeout
        return self.request(msg)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "status", "id": job_id})

    def cancel(self, job_id: str) -> bool:
        return bool(self.request({"op": "cancel", "id": job_id}).get("ok"))

    def metrics(self) -> Dict[str, Any]:
        out = self.request({"op": "metrics"})
        return out.get("metrics", out)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    # -- convenience ---------------------------------------------------
    def mesh_path(self, image_path: str,
                  params: Optional[Dict[str, Any]] = None,
                  **options: Any) -> Dict[str, Any]:
        """Synchronous mesh of an on-disk ``.npz`` image; raw response.

        The efficient remote form — the volume stays off the wire.
        """
        msg: Dict[str, Any] = {"op": "mesh", "image_path": image_path}
        if params:
            msg["params"] = params
        msg.update(options)
        return self.request(msg)

    @staticmethod
    def _message(op: str, request: MeshRequest) -> Dict[str, Any]:
        """Encode a MeshRequest as a wire message (image inlined)."""
        image = request.image
        params = request_wire_params(request)
        msg: Dict[str, Any] = {
            "op": op,
            "image": {
                "labels": image.labels.tolist(),
                "spacing": list(image.spacing),
                "origin": list(image.origin),
            },
        }
        if params:
            msg["params"] = params
        return msg


def connect(target: Union[None, str, MeshingService] = None, *,
            config: Optional[ServiceConfig] = None,
            service: Optional[MeshingService] = None,
            timeout: Optional[float] = None) -> Client:
    """Open a :class:`Client` on ``target`` (see module docstring).

    ``target=None`` builds an in-process service from ``config`` (or
    borrows ``service``); a path string connects to a Unix-socket
    server; ``http://host:port`` connects to the HTTP gateway; other
    URL schemes are rejected.
    """
    if isinstance(target, MeshingService):
        return InProcessClient(service=target)
    if target is None:
        return InProcessClient(config=config, service=service)
    if not isinstance(target, str):
        target = str(target)
    if "://" in target:
        scheme, _, rest = target.partition("://")
        if scheme == "http":
            from repro.service.http import HttpClient

            host, _, port = rest.rstrip("/").rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(
                    f"http target must be http://host:port, got {target!r}"
                )
            return HttpClient(host, int(port), timeout=timeout)
        if scheme != "unix":
            raise ValueError(
                f"unsupported transport {scheme!r} in {target!r}; "
                "use in-process (None), unix://, or http://"
            )
        target = rest
    return SocketClient(target, timeout=timeout)


__all__ = [
    "Client",
    "InProcessClient",
    "ServiceError",
    "SocketClient",
    "connect",
    "request_wire_params",
]
