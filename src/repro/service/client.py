"""Client facades: in-process synchronous, and NDJSON-over-socket.

:class:`ServiceClient` is the way tests, examples and embedding Python
code talk to the service: it owns (or borrows) a
:class:`~repro.service.service.MeshingService` and exposes the blocking
``mesh()`` call plus the async ``submit``/``wait``/``cancel`` trio.

:class:`SocketServiceClient` speaks the newline-delimited-JSON protocol
of :mod:`repro.service.frontend` over a Unix domain socket — the
out-of-process counterpart (``repro serve --socket PATH``).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from repro.api import MeshRequest, MeshResult
from repro.service.jobs import Job, ServiceError
from repro.service.service import MeshingService, ServiceConfig


class ServiceClient:
    """Synchronous facade over an in-process :class:`MeshingService`.

    Usage::

        from repro.service import ServiceClient, ServiceConfig

        with ServiceClient(ServiceConfig(n_workers=2)) as client:
            result = client.mesh(MeshRequest(image=image, delta=2.0))

    When constructed with an already-running ``service`` the client
    borrows it (and ``close()`` leaves it running); otherwise the
    client owns its service's lifecycle.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 service: Optional[MeshingService] = None):
        self._owns_service = service is None
        self.service = service or MeshingService(config).start()

    # -- one-call path -------------------------------------------------
    def mesh(self, request: MeshRequest,
             deadline: Optional[float] = None,
             timeout: Optional[float] = None) -> MeshResult:
        """Submit and wait; raises :class:`ServiceError` unless DONE."""
        return self.service.mesh(request, deadline=deadline, timeout=timeout)

    # -- async trio ----------------------------------------------------
    def submit(self, request: MeshRequest,
               deadline: Optional[float] = None) -> Job:
        return self.service.submit(request, deadline=deadline)

    def wait(self, job: Job, timeout: Optional[float] = None) -> Job:
        return self.service.wait(job, timeout)

    def cancel(self, job_id: str) -> bool:
        return self.service.cancel(job_id)

    # -- introspection -------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        return self.service.metrics_snapshot()

    def close(self) -> None:
        if self._owns_service:
            self.service.shutdown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SocketServiceClient:
    """NDJSON client for ``repro serve --socket PATH``.

    One request-response exchange per :meth:`request` call; the
    connection persists across calls.  Stdlib only.
    """

    def __init__(self, path: str, timeout: Optional[float] = None):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        self._sock.connect(path)
        self._file = self._sock.makefile("rwb")

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, read one response line."""
        self._file.write(json.dumps(message).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line.decode("utf-8"))

    def mesh_path(self, image_path: str,
                  params: Optional[Dict[str, Any]] = None,
                  **options: Any) -> Dict[str, Any]:
        """Convenience: synchronous mesh of an on-disk ``.npz`` image."""
        msg: Dict[str, Any] = {"op": "mesh", "image_path": image_path}
        if params:
            msg["params"] = params
        msg.update(options)
        return self.request(msg)

    def metrics(self) -> Dict[str, Any]:
        return self.request({"op": "metrics"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ServiceClient", "SocketServiceClient", "ServiceError"]
