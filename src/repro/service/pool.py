"""Worker pool: N daemon threads draining the job queue.

The pool is deliberately dumb — it pulls jobs and hands them to the
processing callable (the service's ``_process``), which owns claiming,
deadlines, retries and metrics.  The loop survives anything the
processor lets escape: an unexpected exception fails the job with its
traceback and is counted, but never kills the thread, so one poisoned
request cannot take a worker slot out of service.
"""

from __future__ import annotations

import threading
import traceback
from typing import Callable, List, Optional

from repro.service.jobs import Job, JobState
from repro.service.queue import JobQueue

_POLL_SECONDS = 0.1


class WorkerPool:
    """Fixed-size thread pool wired to a :class:`JobQueue`."""

    def __init__(self, queue: JobQueue, process: Callable[[Job], None],
                 n_workers: int, name: str = "mesh-worker",
                 on_crash: Optional[Callable[[Job, str], None]] = None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.queue = queue
        self.process = process
        self.n_workers = n_workers
        self.name = name
        self.on_crash = on_crash
        self._threads: List[threading.Thread] = []
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.n_workers):
            t = threading.Thread(
                target=self._loop, name=f"{self.name}-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def _loop(self) -> None:
        queue = self.queue
        while True:
            job = queue.get(timeout=_POLL_SECONDS)
            if job is None:
                if queue.closed:
                    return
                continue
            try:
                self.process(job)
            except BaseException:
                # The processor is supposed to catch everything; this is
                # the belt-and-braces layer that keeps the worker alive.
                tb = traceback.format_exc()
                job.finish(JobState.FAILED, error=tb)
                if self.on_crash is not None:
                    self.on_crash(job, tb)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every worker to exit (requires a closed queue)."""
        deadline = None
        if timeout is not None:
            import time
            deadline = time.monotonic() + timeout
        for t in self._threads:
            if deadline is None:
                t.join()
            else:
                import time
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                t.join(remaining)
        return all(not t.is_alive() for t in self._threads)

    @property
    def alive_workers(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())
