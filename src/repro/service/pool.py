"""Worker pools: queue-draining threads, and meshing processes.

:class:`WorkerPool` is deliberately dumb — it pulls jobs and hands
them to the processing callable (the service's ``_process``), which
owns claiming, deadlines, retries and metrics.  The loop survives
anything the processor lets escape: an unexpected exception fails the
job with its traceback and is counted, but never kills the thread, so
one poisoned request cannot take a worker slot out of service.

:class:`ProcessWorkerPool` adds the process executor underneath that
same thread pool: the claiming thread checks out a worker *slot* — a
lazily-spawned OS process paired over a duplex pipe — ships the job's
payload, and blocks on the reply while the child meshes into a
shared-memory arena (:mod:`repro.delaunay.arena`).  The parent keeps
everything stateful (cache lookups, the CAS claim, retry/backoff,
metrics); the child holds no job state a crash could lose, and the
parent picks the arena *name* before the child exists, so cleanup
after a dead worker is a by-name :func:`~repro.delaunay.arena.reclaim`
— no handshake required with a corpse.

Failure taxonomy seen by the service:

* :class:`DeadlineKilled` — the job's deadline passed while the child
  meshed; the child is killed (``SIGKILL``), the arena reclaimed, the
  job concluded ``TIMED_OUT``.  Threads cannot do this: a wedged
  C-level mesher is unkillable in-process, a worker process is not.
* :class:`WorkerCrashed` — the child died mid-job (OOM kill,
  segfault, ``os._exit``); arena reclaimed, job ``FAILED``, slot
  respawned on next use.
* :class:`~repro.service.jobs.TransientMeshError` — re-raised
  verbatim in the parent so the bounded-retry path applies unchanged.
* :class:`RemoteMeshError` — any other child-side exception, carrying
  the remote traceback.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
import traceback
from typing import Callable, FrozenSet, List, Optional

import numpy as np

from repro.delaunay import arena as arena_mod
from repro.service import procworker
from repro.service.jobs import Job, JobState, TransientMeshError
from repro.service.queue import JobQueue

_POLL_SECONDS = 0.1


class WorkerPool:
    """Fixed-size thread pool wired to a :class:`JobQueue`."""

    def __init__(self, queue: JobQueue, process: Callable[[Job], None],
                 n_workers: int, name: str = "mesh-worker",
                 on_crash: Optional[Callable[[Job, str], None]] = None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.queue = queue
        self.process = process
        self.n_workers = n_workers
        self.name = name
        self.on_crash = on_crash
        self._threads: List[threading.Thread] = []
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.n_workers):
            t = threading.Thread(
                target=self._loop, name=f"{self.name}-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def _loop(self) -> None:
        queue = self.queue
        while True:
            job = queue.get(timeout=_POLL_SECONDS)
            if job is None:
                if queue.closed:
                    return
                continue
            try:
                self.process(job)
            except BaseException:
                # The processor is supposed to catch everything; this is
                # the belt-and-braces layer that keeps the worker alive.
                tb = traceback.format_exc()
                job.finish(JobState.FAILED, error=tb)
                if self.on_crash is not None:
                    self.on_crash(job, tb)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every worker to exit (requires a closed queue)."""
        deadline = None
        if timeout is not None:
            import time
            deadline = time.monotonic() + timeout
        for t in self._threads:
            if deadline is None:
                t.join()
            else:
                import time
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                t.join(remaining)
        return all(not t.is_alive() for t in self._threads)

    @property
    def alive_workers(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())


# ---------------------------------------------------------------------------
# process executor
# ---------------------------------------------------------------------------

class DeadlineKilled(RuntimeError):
    """The worker process was killed because the job's deadline passed."""


class WorkerCrashed(RuntimeError):
    """The worker process died mid-job (exit, signal, OOM)."""


class RemoteMeshError(RuntimeError):
    """A non-transient exception escaped the mesher in the worker
    process; the message is the remote traceback."""


def process_support_available() -> bool:
    """True iff the process executor can run here: working named
    shared memory and a spawnable interpreter."""
    if not arena_mod.available():
        return False
    try:
        multiprocessing.get_context("spawn")
    except ValueError:  # pragma: no cover
        return False
    return True


class _WorkerSlot:
    """One lazily-spawned worker process + its parent-side pipe end."""

    def __init__(self, pool: "ProcessWorkerPool", idx: int):
        self.pool = pool
        self.idx = idx
        self.proc = None
        self.conn = None
        self.spawned = 0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def ensure_started(self) -> None:
        if self.alive:
            return
        self.discard()
        ctx = self.pool._ctx
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=procworker.worker_main,
            args=(child_conn, self.pool._worker_init),
            name=f"{self.pool.name}-{self.idx}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self.proc, self.conn = proc, parent_conn
        self.spawned += 1

    def discard(self) -> None:
        """Forget the current process (it is dead or being killed)."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        self.proc, self.conn = None, None

    def kill(self) -> None:
        proc = self.proc
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(5.0)
        self.discard()

    def run(self, payload: dict, deadline: Optional[float],
            arena_name: Optional[str]):
        """Ship one job, await the reply, materialise the result."""
        self.ensure_started()
        body = dict(payload)
        body["arena"] = arena_name
        try:
            self.conn.send(("run", body))
        except (BrokenPipeError, OSError) as exc:
            self.kill()
            raise WorkerCrashed(f"worker pipe broken at send: {exc}")
        kind, reply = self._await_reply(deadline)
        if kind == "ok":
            return self._collect(arena_name, reply)
        if kind == "transient":
            raise TransientMeshError(reply)
        raise RemoteMeshError(reply)

    def _await_reply(self, deadline: Optional[float]):
        conn, proc = self.conn, self.proc
        while True:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.kill()
                    raise DeadlineKilled(
                        "deadline expired during run; worker killed"
                    )
                step = min(0.05, remaining)
            else:
                step = 0.05
            try:
                if conn.poll(step):
                    return conn.recv()
            except (EOFError, OSError):
                self.kill()
                raise WorkerCrashed("worker pipe closed mid-job")
            if not proc.is_alive():
                # Grab a reply that raced the exit, if any.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                code = proc.exitcode
                self.kill()
                raise WorkerCrashed(
                    f"worker process died mid-job (exit code {code})"
                )

    @staticmethod
    def _collect(arena_name: Optional[str], reply: dict):
        from repro.api import MeshResult
        from repro.core.extract import ExtractedMesh

        meta = reply["meta"]
        # The reply names its own result columns; legacy mesh replies
        # without a field list carry the fixed extracted-mesh set.
        fields = tuple(meta.get("fields") or procworker.RESULT_FIELDS)
        if reply["transport"] == "pipe":
            arrays = reply["arrays"]
        else:
            att = arena_mod.SharedArena.attach(arena_name)
            try:
                arrays = {
                    field: np.array(att.get(f"res:{field}"), copy=True)
                    for field in fields
                }
            finally:
                att.close()
        if meta.get("kind") == "shard":
            return {"arrays": arrays, "stats": meta.get("stats", {})}
        return MeshResult(
            mesh=ExtractedMesh(**arrays),
            mesher=meta["mesher"],
            stats=meta["stats"],
            metrics=meta["metrics"],
            timings=meta["timings"],
        )


class ProcessWorkerPool:
    """N worker-process slots checked out by the service's threads.

    Slots spawn lazily (a thread-only workload never pays process
    startup) and respawn lazily after a crash or deadline kill.  The
    pool owns arena naming — ``repro-arena-<pid>-p<k>-w<slot>-<seq>``,
    where ``p<k>`` is a per-pool token — and guarantees reclamation in
    every outcome via ``finally``.  The token keeps two pools in one
    process (a service pool plus a shard pool, or nested services)
    from sweeping each other's live arenas at shutdown.
    """

    _POOL_IDS = itertools.count(1)

    def __init__(self, n_workers: int, cache_dir: Optional[str] = None,
                 plugins: Optional[tuple] = None,
                 name: str = "mesh-procworker"):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.name = name
        self._token = f"{os.getpid()}-p{next(ProcessWorkerPool._POOL_IDS)}"
        self._ctx = multiprocessing.get_context("spawn")
        specs = (plugins if plugins is not None
                 else procworker.plugin_specs_from_env())
        self._worker_init = {"plugins": specs, "cache_dir": cache_dir}
        #: mesher names the plugins provide — loaded parent-side only
        #: to learn the *names* (remotability); the instances run in
        #: the workers.
        self._plugin_names: FrozenSet[str] = frozenset(
            procworker.load_plugins(specs)
        )
        self._slots = [_WorkerSlot(self, i) for i in range(n_workers)]
        self._free: List[_WorkerSlot] = list(self._slots)
        self._cond = threading.Condition()
        self._seq = itertools.count(1)
        self._closed = False

    # -- routing -------------------------------------------------------
    def remotable(self, request, overlays=()) -> bool:
        """Can this request run in a worker process?

        Not remotable: requests carrying a live ``size_function``
        (unpicklable by contract) and requests routed at a mesher
        overlaid parent-side (tests' fakes live only in this process).
        Those fall back to inline execution on the claiming thread —
        exactly the thread executor's semantics.
        """
        from repro.api import MESHER_NAMES

        if request.size_function is not None:
            return False
        name = request.resolved_mesher()
        if name in overlays:
            return False
        return name in MESHER_NAMES or name in self._plugin_names

    # -- execution -----------------------------------------------------
    def run(self, request, deadline: Optional[float] = None):
        """Run one request in a worker process; returns a MeshResult.

        Raises :class:`DeadlineKilled`, :class:`WorkerCrashed`,
        :class:`~repro.service.jobs.TransientMeshError` or
        :class:`RemoteMeshError` (see module docstring).
        """
        slot = self._checkout()
        arena_name = self._arena_name(slot)
        try:
            payload = procworker.build_payload(request)
            return slot.run(payload, deadline, arena_name)
        finally:
            if arena_name is not None:
                arena_mod.reclaim(arena_name)
            self._checkin(slot)

    def run_shard(self, request, plan, block,
                  deadline: Optional[float] = None,
                  content_key: Optional[str] = None) -> dict:
        """Mesh one decomposition block in a worker process.

        Returns ``{"arrays": {"points", "kinds"}, "stats": {...}}``
        (see :func:`repro.delaunay.shard.refine_block`).  Failure
        taxonomy is identical to :meth:`run`; the shard's arena is
        reclaimed by name in every outcome, including a worker crash.
        """
        slot = self._checkout()
        arena_name = self._arena_name(slot)
        try:
            payload = procworker.build_shard_payload(
                request, plan, block, content_key=content_key)
            return slot.run(payload, deadline, arena_name)
        finally:
            if arena_name is not None:
                arena_mod.reclaim(arena_name)
            self._checkin(slot)

    def _arena_name(self, slot: _WorkerSlot) -> Optional[str]:
        if not arena_mod.available():
            return None
        return (f"{arena_mod.ARENA_PREFIX}{self._token}"
                f"-w{slot.idx}-{next(self._seq)}")

    @property
    def arena_prefix(self) -> str:
        """Every arena this pool names starts with this prefix."""
        return f"{arena_mod.ARENA_PREFIX}{self._token}-"

    def _checkout(self) -> _WorkerSlot:
        with self._cond:
            while not self._free:
                if self._closed:
                    raise RuntimeError("process pool is shut down")
                self._cond.wait(0.1)
            if self._closed:
                raise RuntimeError("process pool is shut down")
            return self._free.pop()

    def _checkin(self, slot: _WorkerSlot) -> None:
        with self._cond:
            self._free.append(slot)
            self._cond.notify()

    # -- lifecycle -----------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker process and sweep this pool's arenas.

        Call after the claiming threads have drained (no job in
        flight): live workers get a polite ``exit`` message, then the
        stragglers are killed.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        deadline = time.monotonic() + timeout
        for slot in self._slots:
            if slot.proc is None:
                continue
            if slot.proc.is_alive() and slot.conn is not None:
                try:
                    slot.conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
            slot.proc.join(max(0.1, deadline - time.monotonic()))
            slot.kill()
        # Crash windows can leave segments between "created" and
        # "reclaimed"; sweep everything *this pool* could have named —
        # scoped by the pool token, so a second pool's live arenas in
        # the same process survive this shutdown.
        arena_mod.sweep(self.arena_prefix)

    @property
    def alive_workers(self) -> int:
        return sum(1 for s in self._slots if s.alive)

    @property
    def spawned_total(self) -> int:
        return sum(s.spawned for s in self._slots)
