"""Cache-tier SLO accounting: hit rates and latency percentiles.

Every request the service concludes successfully is attributed to the
**tier** that served it:

============== ======================================================
``memory_hit``   the mesh came straight from the in-memory LRU
``disk_hit``     the mesh was loaded from the disk artifact store
``coalesced``    the result was fanned out from an in-flight leader
                 (:mod:`repro.service.coalesce`) — no cache read at all
``block_hit``    a sharded mesher ran, but at least one block loaded
                 from the content-addressed block cache (incremental
                 meshing — part of the work was skipped)
``full_mesh``    a mesher actually ran
============== ======================================================

For each tier the tracker keeps a latency histogram (end-to-end:
submit → terminal, queue wait included — that is what a caller
experiences) and a request counter in the service's metrics registry,
under ``service.slo.<tier>.latency_seconds`` /
``service.slo.<tier>.requests``.  :meth:`SLOTracker.snapshot` distils
them into the report ``/metricsz`` publishes: per-tier share, p50 /
p95 / p99 / mean, and the overall **hit rate** — the fraction of
requests that never ran a mesher (memory + disk + coalesced), the
number the "millions of users, mostly repeat traffic" pitch stands on.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.observability.metrics import LATENCY_BUCKETS, MetricsRegistry

#: The tiers, cheapest first.  Order matters only for reporting.
TIERS = ("memory_hit", "disk_hit", "coalesced", "block_hit", "full_mesh")

#: Tiers that did not run a mesher (the numerator of the hit rate).
HIT_TIERS = frozenset({"memory_hit", "disk_hit", "coalesced"})


class SLOTracker:
    """Per-tier latency/hit bookkeeping over a metrics registry."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        # Materialise every tier up front so /metricsz always shows the
        # full table (zero rows included), not just tiers already hit.
        self._latency = {
            tier: registry.histogram(
                f"service.slo.{tier}.latency_seconds", LATENCY_BUCKETS
            )
            for tier in TIERS
        }
        self._requests = {
            tier: registry.counter(f"service.slo.{tier}.requests")
            for tier in TIERS
        }

    def observe(self, tier: Optional[str], seconds: float) -> None:
        """Record one concluded request; unknown/absent tiers are
        counted as ``full_mesh`` (the conservative attribution)."""
        if tier not in self._latency:
            tier = "full_mesh"
        self._requests[tier].inc()
        self._latency[tier].observe(seconds)

    # -- reporting -----------------------------------------------------
    @staticmethod
    def _q(h, q: float) -> Optional[float]:
        """Bucket quantile, JSON-safe (overflow ``inf`` → ``None``)."""
        v = h.quantile(q)
        return None if v == float("inf") else v

    def snapshot(self) -> Dict[str, object]:
        """The ``/metricsz`` SLO section (JSON-safe)."""
        tiers: Dict[str, Dict[str, float]] = {}
        total = 0
        hits = 0
        for tier in TIERS:
            h = self._latency[tier]
            n = h.count
            total += n
            if tier in HIT_TIERS:
                hits += n
            tiers[tier] = {
                "requests": n,
                "mean_seconds": h.mean,
                "p50_seconds": self._q(h, 0.50) if n else 0.0,
                "p95_seconds": self._q(h, 0.95) if n else 0.0,
                "p99_seconds": self._q(h, 0.99) if n else 0.0,
            }
        for tier in TIERS:
            tiers[tier]["share"] = (
                tiers[tier]["requests"] / total if total else 0.0
            )
        return {
            "requests": total,
            "hit_rate": hits / total if total else 0.0,
            "tiers": tiers,
        }
