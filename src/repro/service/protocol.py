"""Wire protocol of the service front-end: newline-delimited JSON.

Each line is one JSON object with an ``op`` field.  Operations:

========== ==========================================================
``hello``     version negotiation → ``{"ok": true, "v": 1, ...}``
``ping``      liveness check → ``{"ok": true, "op": "pong"}``
``mesh``      submit and wait (synchronous per message)
``submit``    submit, return immediately with the job id
``wait``      block until job ``id`` is terminal
``status``    non-blocking job state
``cancel``    cancel a queued job
``metrics``   service metrics snapshot
``shutdown``  stop the service and close the stream/server
========== ==========================================================

Versioning: every message *may* carry ``"v": <int>``; the server
rejects any version other than :data:`PROTOCOL_VERSION` with an error
response that names its own version, and answers ``hello`` with its
version and op list so clients can negotiate up front.  Messages
without ``"v"`` are treated as version 1 (the field was introduced
with version 1, so absence is unambiguous today).

``mesh``/``submit`` messages carry the image either as
``"image_path"`` (an ``.npz`` saved by :func:`repro.io.save_image_npz`
— the normal case; meshes-over-JSON stay off the wire) or inline as
``"image": {"labels": [...], "spacing": [...], "origin": [...]}``, plus
an optional ``"params"`` object holding :class:`~repro.api.MeshRequest`
knobs (``mesher``, ``delta``, ``n_threads``, ...), an optional
``"deadline"`` in seconds, and ``"return_mesh": true`` to inline the
full mesh arrays in the response.

Responses always carry ``"ok"``; failures carry ``"error"``.  A
malformed line is answered with an error response — it never kills the
connection or the service.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import numpy as np

from repro.api import MeshRequest
from repro.service.jobs import Job, JobState

#: Version of the NDJSON protocol this build speaks.
PROTOCOL_VERSION = 1

#: Operations the front-end answers (the ``hello`` response body).
PROTOCOL_OPS = (
    "hello", "ping", "mesh", "submit", "wait", "status", "cancel",
    "metrics", "shutdown",
)

#: MeshRequest knobs a client may set through the wire.
REQUEST_PARAMS = (
    "mesher", "delta", "radius_edge_bound", "planar_angle_bound_deg",
    "n_threads", "cm", "lb", "hyperthreading", "seed",
    "max_operations", "timeout", "shards", "incremental",
)


class ProtocolError(ValueError):
    """A malformed or unanswerable message."""


def check_version(msg: Dict[str, Any]) -> Optional[int]:
    """Validate the message's ``"v"`` field.

    Returns the version the message speaks (absent → 1, the field's
    introduction version); raises :class:`ProtocolError` for anything
    this server does not speak, so the caller can answer with a
    rejection that names :data:`PROTOCOL_VERSION`.
    """
    v = msg.get("v", PROTOCOL_VERSION)
    if not isinstance(v, int) or v != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {v!r}; "
            f"server speaks {PROTOCOL_VERSION}"
        )
    return v


def hello_response() -> Dict[str, Any]:
    """The negotiation answer: what this server speaks."""
    return {
        "ok": True,
        "op": "hello",
        "v": PROTOCOL_VERSION,
        "ops": list(PROTOCOL_OPS),
    }


def decode_line(line: str) -> Dict[str, Any]:
    """Parse one NDJSON message; raises :class:`ProtocolError`."""
    line = line.strip()
    if not line:
        raise ProtocolError("empty message")
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError("message must be a JSON object")
    if "op" not in msg:
        raise ProtocolError("message has no 'op'")
    return msg


def encode(message: Dict[str, Any]) -> str:
    """One response line (compact JSON + newline)."""
    return json.dumps(message, separators=(",", ":")) + "\n"


def error_response(message: str,
                   job_id: Optional[str] = None) -> Dict[str, Any]:
    out: Dict[str, Any] = {"ok": False, "error": message}
    if job_id is not None:
        out["id"] = job_id
    return out


def load_image_from_message(msg: Dict[str, Any]):
    """Materialise the :class:`SegmentedImage` a message refers to."""
    from repro.imaging.image import SegmentedImage
    from repro.io import load_image_npz

    path = msg.get("image_path")
    if path is not None:
        return load_image_npz(path)
    inline = msg.get("image")
    if inline is None:
        raise ProtocolError("message carries neither image_path nor image")
    if not isinstance(inline, dict) or "labels" not in inline:
        raise ProtocolError("inline image needs a 'labels' array")
    return SegmentedImage(
        np.asarray(inline["labels"], dtype=np.int16),
        spacing=tuple(inline.get("spacing", (1.0, 1.0, 1.0))),
        origin=tuple(inline.get("origin", (0.0, 0.0, 0.0))),
    )


def request_from_message(msg: Dict[str, Any]) -> MeshRequest:
    """Build the :class:`MeshRequest` a ``mesh``/``submit`` op describes."""
    image = load_image_from_message(msg)
    params = msg.get("params") or {}
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
    unknown = set(params) - set(REQUEST_PARAMS)
    if unknown:
        raise ProtocolError(
            f"unknown params: {', '.join(sorted(unknown))}"
        )
    return MeshRequest(image=image, **params)


def job_response(job: Job, return_mesh: bool = False) -> Dict[str, Any]:
    """The response body describing ``job``'s current state."""
    out = job.summary()
    out["ok"] = job.state in (JobState.QUEUED, JobState.RUNNING,
                              JobState.DONE)
    if (return_mesh and job.state is JobState.DONE
            and job.result is not None):
        out["result"] = job.result.to_dict()
    return out
