"""Worker-process side of the process executor.

:func:`worker_main` is the entry point a spawned worker runs: a loop
over a duplex pipe, one ``("run", body)`` message per job.  For each
job the worker

1. rebuilds the :class:`~repro.api.MeshRequest` from the picklable
   payload (the label volume, spacing/origin and the flat param dict);
2. creates the shared-memory arena whose *name* the parent chose (the
   parent never creates it — that way a worker crash leaves nothing
   the parent cannot reclaim by name), and meshes inside
   :func:`~repro.delaunay.arena.arena_scope`, so every ``MeshArrays``
   column the triangulation allocates lives in shared memory;
3. publishes the extracted result arrays into the arena under
   ``res:*`` tags and answers with a small JSON-safe meta message —
   the big arrays never cross the pipe; the parent attaches the arena,
   copies them out, and unlinks every segment.

When shared memory is unavailable (or arena creation fails at
runtime), the worker degrades to ``transport="pipe"`` and sends the
arrays pickled — slower, never wrong.

Extra meshers come from the ``REPRO_WORKER_PLUGINS`` environment
variable: a comma-separated list of ``module:callable`` specs, each
callable returning ``{name: mesher}``.  Tests use this to install
crashing/sleeping meshers *inside* the worker process.

Failure taxonomy on the wire: ``("transient", str)`` for
:class:`~repro.service.jobs.TransientMeshError` (the parent re-raises
it so the service's bounded-retry path applies), ``("error", tb)`` for
anything else.
"""

from __future__ import annotations

import importlib
import traceback
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.delaunay import arena as arena_mod

#: result-array tags published into the arena (``res:<field>``).
RESULT_FIELDS = (
    "vertices", "tets", "tet_labels", "boundary_faces", "boundary_labels",
)

PLUGIN_ENV = "REPRO_WORKER_PLUGINS"


def load_plugins(specs) -> Dict[str, Any]:
    """Import each ``module:callable`` spec → merged ``{name: mesher}``.

    Bad specs are skipped (a worker must come up even if a plugin is
    broken; the job routed at the missing mesher fails cleanly).
    """
    meshers: Dict[str, Any] = {}
    for spec in specs or ():
        spec = spec.strip()
        if not spec or ":" not in spec:
            continue
        mod_name, _, fn_name = spec.partition(":")
        try:
            registry = getattr(importlib.import_module(mod_name), fn_name)()
            meshers.update(registry)
        except Exception:
            continue
    return meshers


def plugin_specs_from_env(environ=None) -> Tuple[str, ...]:
    import os

    raw = (environ or os.environ).get(PLUGIN_ENV, "")
    return tuple(s for s in (p.strip() for p in raw.split(",")) if s)


def build_payload(request) -> Dict[str, Any]:
    """Parent side: the picklable job body for one request.

    Only remotable requests reach this (no ``size_function``, no
    parent-local overlay mesher), so everything here round-trips
    through pickle by construction.
    """
    image = request.image
    return {
        "labels": np.ascontiguousarray(image.labels),
        "spacing": tuple(image.spacing),
        "origin": tuple(image.origin),
        "params": {
            "mesher": request.resolved_mesher(),
            "delta": request.delta,
            "radius_edge_bound": request.radius_edge_bound,
            "planar_angle_bound_deg": request.planar_angle_bound_deg,
            "n_threads": request.n_threads,
            "cm": request.cm,
            "lb": request.lb,
            "hyperthreading": request.hyperthreading,
            "seed": request.seed,
            "max_operations": request.max_operations,
            "timeout": request.timeout,
        },
    }


def build_shard_payload(request, plan, block,
                        content_key: Optional[str] = None
                        ) -> Dict[str, Any]:
    """Parent side: the picklable body for one decomposition block.

    The label crop happens here (only the block's sub-volume crosses
    the pipe) and every parameter the shard needs arrives resolved —
    ``delta`` in particular, so all shards and the stitch domain agree
    even when the request left it defaulted.  ``content_key`` (the
    block's content address, when a block cache is in play) rides as a
    top-level field — ``params`` must stay exactly ``refine_block``'s
    keyword arguments — and is echoed back in the shard's stats so the
    parent can publish the fresh export under it.
    """
    image = request.image
    lo, hi = block.crop_lo, block.crop_hi
    origin = tuple(
        image.origin[d] + lo[d] * image.spacing[d] for d in range(3)
    )
    return {
        "kind": "shard",
        "labels": np.ascontiguousarray(
            image.labels[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]
        ),
        "spacing": tuple(image.spacing),
        "origin": origin,
        "own_lo": tuple(block.own_lo),
        "own_hi": tuple(block.own_hi),
        "content_key": content_key,
        "params": {
            "delta": plan.delta,
            "radius_edge_bound": request.radius_edge_bound,
            "planar_angle_bound_deg": request.planar_angle_bound_deg,
            "max_operations": request.max_operations,
        },
    }


def rebuild_request(body: Dict[str, Any]):
    from repro.api import MeshRequest
    from repro.imaging.image import SegmentedImage

    image = SegmentedImage(
        np.asarray(body["labels"], dtype=np.int16),
        spacing=tuple(body["spacing"]),
        origin=tuple(body["origin"]),
    )
    return MeshRequest(image=image, **body["params"])


def _publish_result(arena, result) -> None:
    """Copy the extracted mesh arrays into ``res:*`` arena columns."""
    m = result.mesh
    for field in RESULT_FIELDS:
        arr = np.ascontiguousarray(getattr(m, field))
        arena.alloc(f"res:{field}", arr.shape, arr.dtype)[...] = arr


def _result_meta(result) -> Dict[str, Any]:
    return {
        "mesher": result.mesher,
        "stats": dict(result.stats),
        "metrics": dict(result.metrics),
        "timings": dict(result.timings),
    }


def _pipe_arrays(result) -> Dict[str, np.ndarray]:
    m = result.mesh
    return {f: np.ascontiguousarray(getattr(m, f)) for f in RESULT_FIELDS}


def _run_shard(body: Dict[str, Any]) -> tuple:
    """Run one shard job: crop arrives pre-cut, refine, export points.

    The exported arrays are tiny next to a full mesh, but they still
    ride the arena when one is available — same transport, same
    reclaim-by-name crash story as whole-mesh jobs.
    """
    from repro.delaunay.shard import refine_block
    from repro.imaging.image import SegmentedImage
    from repro.service.jobs import TransientMeshError

    if body.get("fault") == "exit":  # deterministic crash-test seam
        import os
        os._exit(3)
    arena_name: Optional[str] = body.get("arena")
    arena = None
    try:
        sub = SegmentedImage(
            np.asarray(body["labels"], dtype=np.int16),
            spacing=tuple(body["spacing"]),
            origin=tuple(body["origin"]),
        )
        if arena_name is not None:
            try:
                arena = arena_mod.SharedArena.create(arena_name)
            except arena_mod.ArenaError:
                arena = None
        if arena is not None:
            with arena_mod.arena_scope(arena):
                arrays, stats = refine_block(
                    sub, body["own_lo"], body["own_hi"], **body["params"]
                )
        else:
            arrays, stats = refine_block(
                sub, body["own_lo"], body["own_hi"], **body["params"]
            )
        if body.get("content_key"):
            stats["content_key"] = body["content_key"]
        fields = tuple(arrays)
        meta = {"kind": "shard", "fields": list(fields), "stats": stats}
        if arena is not None:
            for field in fields:
                arr = np.ascontiguousarray(arrays[field])
                arena.alloc(f"res:{field}", arr.shape, arr.dtype)[...] = arr
            del arrays
            arena.close()
            return ("ok", {"transport": "arena", "meta": meta})
        return ("ok", {"transport": "pipe", "meta": meta,
                       "arrays": arrays})
    except TransientMeshError as exc:
        if arena is not None:
            arena.unlink_all()
        return ("transient", str(exc))
    except BaseException:
        if arena is not None:
            arena.unlink_all()
        return ("error", traceback.format_exc())


def _run_one(body: Dict[str, Any], meshers: Dict[str, Any]) -> tuple:
    from repro.api import get_mesher
    from repro.service.jobs import TransientMeshError

    if body.get("kind") == "shard":
        return _run_shard(body)
    arena_name: Optional[str] = body.get("arena")
    arena = None
    try:
        request = rebuild_request(body)
        name = request.resolved_mesher()
        mesher = meshers.get(name)
        if mesher is None:
            mesher = get_mesher(name)
        if arena_name is not None:
            try:
                arena = arena_mod.SharedArena.create(arena_name)
            except arena_mod.ArenaError:
                arena = None  # degrade to pipe transport
        if arena is not None:
            with arena_mod.arena_scope(arena):
                result = mesher.mesh(request)
        else:
            result = mesher.mesh(request)
        meta = _result_meta(result)
        if arena is not None:
            _publish_result(arena, result)
            del result  # drop MeshArrays views before unmapping
            arena.close()
            return ("ok", {"transport": "arena", "meta": meta})
        return ("ok", {"transport": "pipe", "meta": meta,
                       "arrays": _pipe_arrays(result)})
    except TransientMeshError as exc:
        if arena is not None:
            arena.unlink_all()
        return ("transient", str(exc))
    except BaseException:
        if arena is not None:
            arena.unlink_all()
        return ("error", traceback.format_exc())


def worker_main(conn, init: Dict[str, Any]) -> None:
    """Run jobs from ``conn`` until ``("exit",)`` or pipe EOF."""
    meshers = load_plugins(init.get("plugins"))
    cache_dir = init.get("cache_dir")
    if cache_dir:
        # Share the parent's *disk* EDT cache: feature transforms
        # computed by any process are reused by every other.
        from repro.imaging import edt as edt_module
        from repro.service.cache import ArtifactCache, EDTCacheAdapter

        edt_module.set_feature_transform_cache(
            EDTCacheAdapter(ArtifactCache(cache_dir, memory_entries=8))
        )
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if not isinstance(msg, tuple) or not msg or msg[0] == "exit":
            return
        try:
            reply = _run_one(msg[1], meshers)
        except BaseException:  # belt and braces: never die silently
            reply = ("error", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


__all__ = [
    "PLUGIN_ENV",
    "RESULT_FIELDS",
    "build_payload",
    "build_shard_payload",
    "load_plugins",
    "plugin_specs_from_env",
    "rebuild_request",
    "worker_main",
]
