"""Content-addressed artifact cache: disk store with an in-memory LRU.

Two artifact kinds live here, both addressed by the keys of
:mod:`repro.service.keys`:

* **meshes** — a finished :class:`~repro.api.MeshResult`, stored as the
  JSON document of ``MeshResult.to_dict`` (exact round-trip of the
  float64 coordinates and all topology arrays, so a cached mesh is
  topology-identical to the run that produced it);
* **EDT feature transforms** — an
  :class:`~repro.imaging.edt.EDTResult`, stored as a compressed
  ``.npz`` (the arrays dominate; JSON would be ~6x the bytes).

Reads check the in-memory LRU first, then disk; disk hits are promoted
into the LRU.  Writes go to a temp file in the same directory and are
published with ``os.replace``, so a crash mid-write can never leave a
half-written artifact under a valid key.  *Any* failure to load an
artifact — truncation, bad JSON, a bad zip member — is treated as a
cache miss: the corrupt file is counted, unlinked best-effort, and the
caller recomputes.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.api import MeshResult
from repro.imaging.edt import EDTResult


class ArtifactCache:
    """Disk + LRU store for meshes and EDT feature transforms.

    ``root=None`` keeps everything in memory (tests, short-lived
    services); with a directory, artifacts persist across processes.
    ``memory_entries`` bounds the LRU front (per cache, not per kind);
    ``max_bytes`` additionally bounds it by the summed array payload of
    the held artifacts — whichever bound is crossed first evicts from
    the cold end.  Entries **pinned** (by the service, around in-flight
    jobs) are never evicted while their pin count is positive: evicting
    a mesh the claiming thread is about to hand to a waiter would force
    an immediate disk round-trip or, with no disk root, a recompute.

    Cached objects are shared: two hits on the same key return the same
    ``MeshResult``/``EDTResult`` instance.  Callers must treat cached
    artifacts as immutable.
    """

    def __init__(self, root: Optional[str] = None,
                 memory_entries: int = 64,
                 max_bytes: Optional[int] = None):
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        self.root = Path(root) if root is not None else None
        self.memory_entries = memory_entries
        self.max_bytes = max_bytes
        self._mem: "OrderedDict[str, Any]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._pins: Dict[str, int] = {}
        self._bytes_held = 0
        self._lock = threading.Lock()
        self.stats = {
            "hits": 0, "misses": 0, "memory_hits": 0,
            "corrupt": 0, "writes": 0, "evictions": 0,
            # Shard-level artifacts get their own ledgers so the mesh
            # hit rate (service.cache.store.*) stays a request-level
            # signal — one sharded request touches many block slots.
            "block_hits": 0, "block_misses": 0,
            "stitch_hits": 0, "stitch_misses": 0,
        }
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    # -- generic plumbing ----------------------------------------------
    def _bump(self, field: str, n: int = 1) -> None:
        with self._lock:
            self.stats[field] += n

    def _mem_get(self, slot: str) -> Optional[Any]:
        with self._lock:
            hit = self._mem.get(slot)
            if hit is not None:
                self._mem.move_to_end(slot)
            return hit

    @staticmethod
    def _sizeof(value: Any) -> int:
        """Array payload of an artifact, in bytes (metadata ignored)."""
        if isinstance(value, dict):  # block / stitch array bundles
            return max(sum(int(getattr(a, "nbytes", 0))
                           for a in value.values()), 1024)
        total = 0
        mesh = getattr(value, "mesh", None)
        for holder in (value, mesh):
            if holder is None:
                continue
            for field in ("vertices", "tets", "tet_labels",
                          "boundary_faces", "boundary_labels",
                          "dist2", "feature"):
                arr = getattr(holder, field, None)
                nbytes = getattr(arr, "nbytes", None)
                if nbytes is not None:
                    total += int(nbytes)
        return total if total > 0 else 1024  # opaque artifact: nominal

    def _drop_slot(self, slot: str) -> None:
        """Lock held: remove ``slot`` and settle the byte ledger."""
        self._mem.pop(slot, None)
        self._bytes_held -= self._sizes.pop(slot, 0)
        self.stats["evictions"] += 1

    def _evict_over_budget(self) -> None:
        """Lock held: pop cold unpinned entries until within bounds."""
        def over() -> bool:
            if len(self._mem) > self.memory_entries:
                return True
            return (self.max_bytes is not None
                    and self._bytes_held > self.max_bytes)

        while over():
            victim = next(
                (s for s in self._mem if self._pins.get(s, 0) <= 0),
                None,
            )
            if victim is None:  # everything pinned: over budget stands
                return
            self._drop_slot(victim)

    def _mem_put(self, slot: str, value: Any) -> None:
        with self._lock:
            if slot in self._mem:
                self._bytes_held -= self._sizes.pop(slot, 0)
            self._mem[slot] = value
            self._mem.move_to_end(slot)
            size = self._sizeof(value)
            self._sizes[slot] = size
            self._bytes_held += size
            self._evict_over_budget()

    # -- pinning -------------------------------------------------------
    def pin(self, slot: str) -> None:
        """Protect ``slot`` from eviction until its last :meth:`unpin`.

        Pins are counted, survive the entry itself (pinning before the
        artifact is stored is fine — the put then lands pre-pinned),
        and never block a re-``put`` of the same slot.
        """
        with self._lock:
            self._pins[slot] = self._pins.get(slot, 0) + 1

    def unpin(self, slot: str) -> None:
        with self._lock:
            n = self._pins.get(slot, 0) - 1
            if n <= 0:
                self._pins.pop(slot, None)
            else:
                self._pins[slot] = n
            self._evict_over_budget()

    def pin_mesh(self, key: str) -> None:
        self.pin(f"mesh:{key}")

    def unpin_mesh(self, key: str) -> None:
        self.unpin(f"mesh:{key}")

    def _path(self, kind: str, key: str, ext: str) -> Optional[Path]:
        if self.root is None:
            return None
        # Two-level fan-out keeps directories small at fleet scale.
        return self.root / kind / key[:2] / f"{key}{ext}"

    def _publish(self, path: Path, write) -> None:
        """Atomically materialise an artifact at ``path``."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                write(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._bump("writes")

    def _discard_corrupt(self, path: Path) -> None:
        self._bump("corrupt")
        try:
            path.unlink()
        except OSError:
            pass

    # -- meshes --------------------------------------------------------
    def get_mesh(self, key: str) -> Optional[MeshResult]:
        return self.get_mesh_tiered(key)[0]

    def get_mesh_tiered(
            self, key: str) -> Tuple[Optional[MeshResult], Optional[str]]:
        """``(result, tier)`` where tier is ``"memory"``, ``"disk"``,
        or ``None`` on a miss — the SLO layer needs to know which store
        answered, not just that one did."""
        slot = f"mesh:{key}"
        hit = self._mem_get(slot)
        if hit is not None:
            self._bump("hits")
            self._bump("memory_hits")
            return hit, "memory"
        path = self._path("mesh", key, ".json")
        if path is not None and path.exists():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    result = MeshResult.from_dict(json.load(fh))
            except Exception:
                self._discard_corrupt(path)
            else:
                self._bump("hits")
                self._mem_put(slot, result)
                return result, "disk"
        self._bump("misses")
        return None, None

    def put_mesh(self, key: str, result: MeshResult) -> None:
        self._mem_put(f"mesh:{key}", result)
        path = self._path("mesh", key, ".json")
        if path is not None:
            doc = json.dumps(result.to_dict()).encode("utf-8")
            self._publish(path, lambda fh: fh.write(doc))

    # -- EDT feature transforms ----------------------------------------
    def get_edt(self, key: str) -> Optional[EDTResult]:
        slot = f"edt:{key}"
        hit = self._mem_get(slot)
        if hit is not None:
            self._bump("hits")
            self._bump("memory_hits")
            return hit
        path = self._path("edt", key, ".npz")
        if path is not None and path.exists():
            try:
                with np.load(path) as doc:
                    result = EDTResult(
                        dist2=doc["dist2"],
                        feature=doc["feature"],
                        shape=tuple(int(x) for x in doc["shape"]),
                        spacing=tuple(float(x) for x in doc["spacing"]),
                    )
            except Exception:
                self._discard_corrupt(path)
            else:
                self._bump("hits")
                self._mem_put(slot, result)
                return result
        self._bump("misses")
        return None

    def put_edt(self, key: str, result: EDTResult) -> None:
        self._mem_put(f"edt:{key}", result)
        path = self._path("edt", key, ".npz")
        if path is not None:
            def write(fh) -> None:
                np.savez_compressed(
                    fh,
                    dist2=result.dist2,
                    feature=result.feature,
                    shape=np.asarray(result.shape, dtype=np.int64),
                    spacing=np.asarray(result.spacing, dtype=np.float64),
                )
            self._publish(path, write)

    # -- shard artifacts: block exports + stitch deltas ----------------
    # Both are plain dicts of ndarrays, stored as compressed npz.  A
    # block export ({"points", "kinds"}) is addressed by
    # ``repro.delaunay.shard.block_content_key``; a stitch delta
    # ({"points", "kinds", "removed", "block_keys"}) by
    # ``plan_content_key``.  No pickling — every member is a numeric or
    # unicode array — so a corrupt or adversarial file can at worst
    # fail to parse (counted, unlinked, miss).

    def _get_arrays(self, kind: str, key: str, *, hit_field: str,
                    miss_field: str, count: bool = True
                    ) -> Tuple[Optional[Dict[str, np.ndarray]],
                               Optional[str]]:
        slot = f"{kind}:{key}"
        hit = self._mem_get(slot)
        if hit is not None:
            if count:
                self._bump(hit_field)
            return hit, "memory"
        path = self._path(kind, key, ".npz")
        if path is not None and path.exists():
            try:
                with np.load(path) as doc:
                    arrays = {name: doc[name] for name in doc.files}
            except Exception:
                self._discard_corrupt(path)
            else:
                if count:
                    self._bump(hit_field)
                self._mem_put(slot, arrays)
                return arrays, "disk"
        if count:
            self._bump(miss_field)
        return None, None

    def _put_arrays(self, kind: str, key: str,
                    arrays: Dict[str, np.ndarray]) -> None:
        arrays = {k: np.asarray(v) for k, v in arrays.items()}
        self._mem_put(f"{kind}:{key}", arrays)
        path = self._path(kind, key, ".npz")
        if path is not None:
            self._publish(
                path, lambda fh: np.savez_compressed(fh, **arrays)
            )

    def get_block(self, key: str,
                  count: bool = True) -> Optional[Dict[str, np.ndarray]]:
        """One block's refined point export.  ``count=False`` reads
        without touching the hit/miss ledgers (bookkeeping lookups,
        e.g. fetching the *previous* export to diff against, must not
        masquerade as workload hits)."""
        return self._get_arrays("block", key, hit_field="block_hits",
                                miss_field="block_misses",
                                count=count)[0]

    def get_block_tiered(
            self, key: str) -> Tuple[Optional[Dict[str, np.ndarray]],
                                     Optional[str]]:
        """``(arrays, tier)`` for one block's refined point export."""
        return self._get_arrays("block", key, hit_field="block_hits",
                                miss_field="block_misses")

    def put_block(self, key: str,
                  arrays: Dict[str, np.ndarray]) -> None:
        self._put_arrays("block", key, arrays)

    def get_stitch(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        arrays, _ = self._get_arrays(
            "stitch", key, hit_field="stitch_hits",
            miss_field="stitch_misses",
        )
        return arrays

    def put_stitch(self, key: str,
                   arrays: Dict[str, np.ndarray]) -> None:
        """Store a stitch delta; re-puts of the same plan key are the
        normal case (every sharded run refreshes its plan's delta) and
        land atomically via the same ``os.replace`` publish."""
        self._put_arrays("stitch", key, arrays)

    # -- reporting -----------------------------------------------------
    @property
    def bytes_held(self) -> int:
        with self._lock:
            return self._bytes_held

    def stats_snapshot(self) -> Dict[str, int]:
        with self._lock:
            snap = dict(self.stats)
            snap["bytes_held"] = self._bytes_held
            snap["entries"] = len(self._mem)
            snap["pinned"] = sum(
                1 for s, n in self._pins.items() if n > 0
            )
            return snap


class EDTCacheAdapter:
    """The two-method object :mod:`repro.imaging.edt` expects, backed
    by an :class:`ArtifactCache` (installed/removed by the service)."""

    __slots__ = ("cache",)

    def __init__(self, cache: ArtifactCache):
        self.cache = cache

    def get(self, key: str) -> Optional[EDTResult]:
        return self.cache.get_edt(key)

    def put(self, key: str, result: EDTResult) -> None:
        self.cache.put_edt(key, result)
