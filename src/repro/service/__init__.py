"""Async meshing service: job queue, worker pool, artifact cache.

This package turns the one-shot meshers of :mod:`repro.api` into a
long-running service (the layer the paper's real-time pitch implies and
follow-on work — I2M inside clinical pipelines — makes explicit):

* :mod:`repro.service.jobs` — job model and the QUEUED → … state
  machine, with CAS transitions that make cancellation race-free;
* :mod:`repro.service.queue` — bounded FIFO admission queue
  (backpressure → ``REJECTED``, never silent drops);
* :mod:`repro.service.pool` — worker threads with deadline, bounded
  retry and crash containment;
* :mod:`repro.service.cache` / :mod:`repro.service.keys` —
  content-addressed artifact store (meshes by
  ``hash(image, canonical params)``, EDT feature transforms by image
  hash) with an in-memory LRU over an atomic-write disk layout;
* :mod:`repro.service.service` — :class:`MeshingService`, the
  orchestrator, feeding ``service.*`` metrics and per-job trace spans;
* :mod:`repro.service.client` — the synchronous in-process facade and
  the Unix-socket NDJSON client;
* :mod:`repro.service.protocol` / :mod:`repro.service.frontend` —
  the ``repro serve`` wire protocol over stdio or a Unix socket.

Quickstart::

    from repro.api import MeshRequest
    from repro.service import ServiceClient, ServiceConfig

    with ServiceClient(ServiceConfig(n_workers=4,
                                     cache_dir=".mesh-cache")) as client:
        result = client.mesh(MeshRequest(image=image, delta=2.0))
        again = client.mesh(MeshRequest(image=image, delta=2.0))  # cache hit
"""

from repro.service.cache import ArtifactCache, EDTCacheAdapter
from repro.service.client import ServiceClient, SocketServiceClient
from repro.service.jobs import (
    TERMINAL_STATES,
    Job,
    JobState,
    ServiceError,
    TransientMeshError,
)
from repro.service.keys import cache_keys, image_content_key, request_key
from repro.service.pool import WorkerPool
from repro.service.queue import JobQueue
from repro.service.service import MeshingService, ServiceConfig

__all__ = [
    "ArtifactCache",
    "EDTCacheAdapter",
    "Job",
    "JobQueue",
    "JobState",
    "MeshingService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SocketServiceClient",
    "TERMINAL_STATES",
    "TransientMeshError",
    "WorkerPool",
    "cache_keys",
    "image_content_key",
    "request_key",
]
