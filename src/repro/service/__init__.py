"""Async meshing service: job queue, worker pools, artifact cache.

This package turns the one-shot meshers of :mod:`repro.api` into a
long-running service (the layer the paper's real-time pitch implies and
follow-on work — I2M inside clinical pipelines — makes explicit):

* :mod:`repro.service.jobs` — job model and the QUEUED → … state
  machine, with CAS transitions that make cancellation race-free;
* :mod:`repro.service.queue` — bounded FIFO admission queue
  (backpressure → ``REJECTED``, never silent drops);
* :mod:`repro.service.pool` — claiming worker threads with deadline,
  bounded retry and crash containment, plus the **process executor**:
  spawned worker processes meshing into shared-memory arenas
  (:mod:`repro.delaunay.arena`), with crash detection, deadline kills
  and arena reclamation;
* :mod:`repro.service.procworker` — the worker-process side (payload
  rebuild, arena publish, plugin meshers);
* :mod:`repro.service.cache` / :mod:`repro.service.keys` —
  content-addressed artifact store (meshes by
  ``hash(image, canonical params)``, EDT feature transforms by image
  hash) with an in-memory LRU over an atomic-write disk layout;
* :mod:`repro.service.service` — :class:`MeshingService`, the
  orchestrator, feeding ``service.*`` metrics and per-job trace spans;
  pick the executor with ``ServiceConfig(executor="thread"|"process")``;
* :mod:`repro.service.coalesce` — in-flight request coalescing: K
  identical concurrent submissions share one mesh run, with leader
  promotion on cancel and failure fan-out;
* :mod:`repro.service.slo` — per-cache-tier SLO accounting (hit rate,
  p50/p95/p99 latency for memory-hit / disk-hit / coalesced /
  full-mesh);
* :mod:`repro.service.client` — :func:`connect`, the one client entry
  point for every transport, returning a uniform :class:`Client`;
* :mod:`repro.service.protocol` / :mod:`repro.service.frontend` —
  the versioned ``repro serve`` wire protocol over stdio or a Unix
  socket;
* :mod:`repro.service.http` — the HTTP gateway (``repro serve
  --http``): ``POST /v1/mesh``, ``GET /v1/jobs/<id>``, ``/healthz``,
  ``/metricsz``, plus :class:`HttpClient`, what
  ``connect("http://host:port")`` returns.

Quickstart::

    from repro.api import MeshRequest
    from repro.service import ServiceConfig, connect

    with connect(config=ServiceConfig(n_workers=4,
                                      executor="process",
                                      cache_dir=".mesh-cache")) as client:
        result = client.mesh(MeshRequest(image=image, delta=2.0))
        again = client.mesh(MeshRequest(image=image, delta=2.0))  # cache hit

The same two calls work against a remote server: replace the
``connect(config=...)`` with ``connect("/run/repro.sock")`` or
``connect("http://127.0.0.1:8080")``.
"""

from repro.service.cache import ArtifactCache, EDTCacheAdapter
from repro.service.client import (
    Client,
    InProcessClient,
    SocketClient,
    connect,
)
from repro.service.coalesce import CoalesceRegistry
from repro.service.http import (
    HttpClient,
    ImageStore,
    MeshHTTPServer,
    decode_image_b64,
    encode_image_b64,
)
from repro.service.jobs import (
    TERMINAL_STATES,
    Job,
    JobState,
    ServiceError,
    TransientMeshError,
)
from repro.service.keys import cache_keys, image_content_key, request_key
from repro.service.pool import (
    DeadlineKilled,
    ProcessWorkerPool,
    RemoteMeshError,
    WorkerCrashed,
    WorkerPool,
    process_support_available,
)
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.queue import JobQueue
from repro.service.service import EXECUTORS, MeshingService, ServiceConfig
from repro.service.slo import SLOTracker

__all__ = [
    "ArtifactCache",
    "Client",
    "CoalesceRegistry",
    "DeadlineKilled",
    "EDTCacheAdapter",
    "EXECUTORS",
    "HttpClient",
    "ImageStore",
    "InProcessClient",
    "Job",
    "JobQueue",
    "JobState",
    "MeshHTTPServer",
    "MeshingService",
    "PROTOCOL_VERSION",
    "ProcessWorkerPool",
    "RemoteMeshError",
    "SLOTracker",
    "ServiceConfig",
    "ServiceError",
    "SocketClient",
    "TERMINAL_STATES",
    "TransientMeshError",
    "WorkerCrashed",
    "WorkerPool",
    "cache_keys",
    "connect",
    "decode_image_b64",
    "encode_image_b64",
    "image_content_key",
    "process_support_available",
    "request_key",
]
