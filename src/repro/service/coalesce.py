"""In-flight request coalescing: N identical submissions, one mesh run.

At fleet scale most traffic is *repeat* traffic: bursts of requests for
the same image with the same parameters.  The artifact cache absorbs
repeats of *finished* work, but it does nothing for duplicates that
arrive while the first copy is still queued or running — without this
module, K identical concurrent submissions run K full mesh jobs and
then overwrite each other's cache entry.

:class:`CoalesceRegistry` closes that window.  Jobs are keyed on the
content-addressed request key of :mod:`repro.service.keys` (image
bytes + canonical parameters — the same key the artifact cache uses,
so "identical" means *provably the same output mesh*):

* the first submission for a key becomes the **leader** and is queued
  normally;
* every duplicate that arrives while the leader is in flight becomes a
  **follower**: it is registered as a real, waitable job but never
  enters the queue — when the leader concludes, its outcome (result,
  failure, or timeout) is fanned out to every follower;
* cancelling a follower cancels only that follower — the leader and
  the remaining waiters are untouched;
* cancelling a queued leader *promotes* the oldest live follower into
  a new leader (it is enqueued in the leader's place), so a cancel by
  the first submitter can never strand the other waiters.

Metrics: ``service.coalesce.leaders`` counts jobs that led at least
one follower, ``service.coalesce.followers`` counts attached
duplicates, and the ``service.coalesce.fanout`` histogram records the
per-leader fan-out degree at conclusion.

The registry never touches the artifact cache: followers are concluded
from the leader's in-memory result, so a coalesced hit adds no cache
pins (the leader's own run pins its key exactly once, like any job).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.service.jobs import Job, JobState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import MeshingService

#: fan-out degree buckets (waiters per leader).
FANOUT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class _Entry:
    """One in-flight key: its leader and the waiters attached to it."""

    __slots__ = ("leader", "followers")

    def __init__(self, leader: Job):
        self.leader = leader
        self.followers: List[Job] = []


class CoalesceRegistry:
    """In-flight job index keyed on the content-addressed request key."""

    def __init__(self, service: "MeshingService"):
        self._service = service
        self._lock = threading.Lock()
        self._entries: Dict[str, _Entry] = {}

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def leader_for(self, key: str) -> Optional[Job]:
        with self._lock:
            entry = self._entries.get(key)
            return entry.leader if entry is not None else None

    def waiters_for(self, key: str) -> int:
        with self._lock:
            entry = self._entries.get(key)
            return len(entry.followers) if entry is not None else 0

    # -- submit-side routing --------------------------------------------
    def route(self, key: str, job: Job) -> bool:
        """Attach ``job`` under ``key``; True iff it became a follower.

        Finding the key in flight attaches ``job`` as a follower of the
        existing leader (it must not be enqueued); otherwise ``job`` is
        registered as the key's leader and the caller enqueues it
        normally.  Atomic against concurrent routes and against the
        leader's own conclusion: an entry still present in the index
        has not fanned out yet, so a follower appended under the lock
        is always seen by the fan-out.
        """
        reg = self._service.registry
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if not entry.followers:
                    # This leader now actually leads someone.
                    reg.counter("service.coalesce.leaders").inc()
                entry.followers.append(job)
                reg.counter("service.coalesce.followers").inc()
                return True
            self._entries[key] = _Entry(job)
        # Outside the lock: the callback may fire on this very thread
        # if the job is already terminal (it cannot be — it was created
        # moments ago — but add_done_callback handles it either way).
        job.add_done_callback(lambda j: self._on_leader_done(key, j))
        return False

    # -- conclusion / fan-out -------------------------------------------
    def _on_leader_done(self, key: str, leader: Job) -> None:
        """Leader reached a terminal state: fan out, or promote.

        A cancelled leader with live waiters does not conclude them —
        the oldest still-queued follower is promoted to leader and
        enqueued; only its conclusion (or a promotion chain ending in
        rejection) reaches the remaining waiters.
        """
        promote: Optional[Job] = None
        followers: List[Job] = []
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.leader is not leader:
                return  # stale callback from a superseded leader
            if leader.state is JobState.CANCELLED:
                promote = next(
                    (f for f in entry.followers
                     if f.state is JobState.QUEUED),
                    None,
                )
            if promote is not None:
                entry.leader = promote
                entry.followers = [
                    f for f in entry.followers if f is not promote
                ]
            else:
                del self._entries[key]
                followers = entry.followers
        if promote is not None:
            promote.add_done_callback(
                lambda j: self._on_leader_done(key, j)
            )
            self._service._enqueue_promoted(promote)
            return
        if not followers:
            return
        notified = 0
        for follower in followers:
            if self._service._conclude_follower(follower, leader):
                notified += 1
        self._service.registry.histogram(
            "service.coalesce.fanout", FANOUT_BUCKETS
        ).observe(notified)
