"""Content-addressed cache keys for images and mesh requests.

Two keys address the service's artifact cache:

* the **image key** hashes the voxel content (label bytes, shape,
  dtype, spacing, origin) — it addresses per-image artifacts, i.e. the
  EDT feature transform;
* the **request key** hashes the image key together with the request's
  canonical parameter form (:meth:`repro.api.MeshRequest
  .canonical_params`) and a format version — it addresses finished
  meshes.

Both are plain hex digests, safe as file names.  Requests that cannot
be canonicalized (live ``size_function`` callables) have no request
key and bypass the mesh cache entirely.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

from repro.api import MeshRequest
from repro.imaging.image import SegmentedImage

#: Bump to invalidate every cached mesh after a format/semantic change.
#: v2: ``shards`` joined the canonical params (domain-sharded meshing).
CACHE_FORMAT_VERSION = 3


def image_content_key(image: SegmentedImage) -> str:
    """Hex digest addressing the image's voxel content."""
    h = hashlib.blake2b(digest_size=20)
    h.update(str(image.labels.dtype).encode())
    h.update(repr(image.shape).encode())
    h.update(repr(image.spacing).encode())
    h.update(repr(image.origin).encode())
    h.update(image.labels.tobytes())
    return h.hexdigest()


def request_key(image_key: str, params: Dict[str, object]) -> str:
    """Hex digest addressing one (image, canonical params) pair."""
    doc = json.dumps(
        {"v": CACHE_FORMAT_VERSION, "image": image_key, "params": params},
        sort_keys=True,
    )
    return hashlib.blake2b(doc.encode(), digest_size=20).hexdigest()


def cache_keys(request: MeshRequest) -> Optional[Tuple[str, str]]:
    """``(image_key, request_key)`` for ``request``, or ``None`` when
    the request is uncacheable."""
    try:
        params = request.canonical_params()
    except ValueError:
        return None
    ikey = image_content_key(request.image)
    return ikey, request_key(ikey, params)
