"""Per-thread statistics: the paper's three overhead categories.

Section 5.5 defines the wasted-cycle taxonomy every experiment reports:

* *contention overhead* — time spent busy-waiting on a Contention List
  (or random-sleeping, for Random-CM) plus accessing it;
* *load balance overhead* — time spent idling on the Begging List
  waiting for work plus accessing it;
* *rollback overhead* — time spent on partial work that had to be
  discarded when an operation rolled back.

When an :class:`~repro.observability.Observability` bundle is attached
(``stats.obs``), every overhead charge also feeds the run's metrics
registry (per-kind overhead counters, a contention-wait latency
histogram) and, if tracing is on, emits a timestamped instant event —
so both execution backends produce the Figure 6 overhead timeline as a
side effect of normal accounting instead of each benchmark re-deriving
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.observability import MetricsRegistry, Observability


class OverheadKind(Enum):
    CONTENTION = "contention"
    LOAD_BALANCE = "load_balance"
    ROLLBACK = "rollback"


@dataclass
class ThreadStats:
    """Counters one thread accumulates during refinement."""

    thread_id: int
    n_operations: int = 0
    n_rollbacks: int = 0
    n_insertions: int = 0
    n_removals: int = 0
    n_work_received: int = 0
    n_work_given: int = 0
    n_remote_steals: int = 0       # work received from another blade
    n_intra_blade_steals: int = 0  # work received within own blade
    overhead: Dict[OverheadKind, float] = field(
        default_factory=lambda: {k: 0.0 for k in OverheadKind}
    )
    busy_time: float = 0.0
    # (virtual time, cumulative total overhead) samples for Figure 6
    overhead_timeline: List[Tuple[float, float]] = field(default_factory=list)
    # Observability sink (not part of the value: excluded from ==/repr)
    obs: Optional["Observability"] = field(
        default=None, repr=False, compare=False
    )

    def add_overhead(self, kind: OverheadKind, dt: float, now: float = None
                     ) -> None:
        self.overhead[kind] += dt
        if now is not None:
            self.overhead_timeline.append((now, self.total_overhead))
        obs = self.obs
        if obs is not None:
            obs.registry.counter(
                f"runtime.overhead.{kind.value}_seconds"
            ).inc(dt)
            if kind is OverheadKind.CONTENTION:
                obs.registry.histogram(
                    "runtime.lock_wait_seconds",
                    help="time blocked per contention wait",
                ).observe(dt)
            tracer = obs.tracer
            if tracer.enabled and now is not None:
                tracer.instant(
                    f"overhead.{kind.value}", self.thread_id, now, dt=dt
                )

    @property
    def total_overhead(self) -> float:
        return sum(self.overhead.values())


def aggregate(stats: List[ThreadStats],
              registry: Optional["MetricsRegistry"] = None
              ) -> Dict[str, float]:
    """Fleet-wide totals, in the shape Table 1 reports.

    With a ``registry``, the totals are also published as ``run.<key>``
    gauges (idempotent: last write wins), which is how drivers hand the
    classic Table 1 numbers to the metrics exporters.
    """
    totals = _totals(stats)
    if registry is not None:
        for key, value in totals.items():
            registry.gauge(f"run.{key}").set(value)
    return totals


def publish_kernel_stats(registry: "MetricsRegistry", counters,
                         predicate_delta: Dict[str, int]) -> None:
    """Publish the Delaunay kernel's hot-path statistics as metrics.

    ``counters`` is a :class:`repro.delaunay.triangulation.KernelCounters`
    and ``predicate_delta`` a per-run delta of
    :data:`repro.geometry.predicates.STATS` (the process-wide filter
    counters), e.g. ``STATS.delta_since(before)``.  Everything lands
    under ``kernel.*`` so ``--metrics-out`` JSON captures the filter hit
    rate, the exact-fallback fraction, mean walk length and mean cavity
    size alongside the run-level gauges.
    """
    for name, value in counters.snapshot().items():
        registry.gauge(f"kernel.{name}").set(value)
    registry.gauge("kernel.mean_walk_length").set(counters.mean_walk_length)
    registry.gauge("kernel.mean_cavity_size").set(
        counters.cavity_tets / counters.cavity_calls
        if counters.cavity_calls else 0.0
    )
    registry.gauge("kernel.mean_commit_seconds").set(
        counters.mean_commit_seconds
    )
    registry.gauge("kernel.mean_commit_wait_seconds").set(
        counters.mean_commit_wait_seconds
    )
    for name, value in predicate_delta.items():
        registry.gauge(f"kernel.predicates.{name}").set(value)
    decisions = (predicate_delta.get("orient3d_calls", 0)
                 + predicate_delta.get("insphere_calls", 0)
                 + predicate_delta.get("cc_tests", 0)
                 + predicate_delta.get("batch_items", 0))
    exact = (predicate_delta.get("orient3d_exact", 0)
             + predicate_delta.get("insphere_exact", 0)
             + predicate_delta.get("batch_exact", 0))
    registry.gauge("kernel.predicates.exact_fraction").set(
        exact / decisions if decisions else 0.0
    )


def kernel_report(counters, predicate_delta: Dict[str, int]) -> str:
    """ASCII summary of the kernel statistics (mesh --kernel-stats)."""
    pd = predicate_delta
    o_calls = pd.get("orient3d_calls", 0)
    i_calls = pd.get("insphere_calls", 0)
    cc = pd.get("cc_tests", 0)
    batch = pd.get("batch_items", 0)
    decisions = o_calls + i_calls + cc + batch
    exact = (pd.get("orient3d_exact", 0) + pd.get("insphere_exact", 0)
             + pd.get("batch_exact", 0))
    fast = decisions - exact - pd.get("cc_fallback", 0)
    mean_cavity = (counters.cavity_tets / counters.cavity_calls
                   if counters.cavity_calls else 0.0)
    lines = [
        "kernel hot-path statistics",
        "--------------------------",
        f"locate calls            {counters.locate_calls:>10}",
        f"  mean walk length      {counters.mean_walk_length:>10.2f}",
        f"  seed: grid/hint/scan  {counters.seed_grid_hits:>6}"
        f"/{counters.seed_hint_hits}/{counters.seed_scans}",
        f"cavity searches         {counters.cavity_calls:>10}",
        f"  mean cavity size      {mean_cavity:>10.2f}",
        f"accelerated inserts     {counters.accel_inserts:>10}"
        f"  (retries {counters.accel_retries})",
        f"  batched               {counters.accel_batch_inserts:>10}"
        f"  ({counters.accel_batch_calls} crossings)",
        f"accelerated removals    {counters.accel_removals:>10}"
        f"  (retries {counters.accel_remove_retries})",
        f"two-phase commits       {counters.commits:>10}"
        f"  (work {counters.mean_commit_seconds * 1e6:.1f} us"
        f", wait {counters.mean_commit_wait_seconds * 1e6:.1f} us)",
        f"  rollbacks             "
        f"optimistic {counters.rollbacks_optimistic}"
        f"  contention {counters.rollbacks_contention}"
        f"  validation {counters.rollbacks_validation}",
        f"predicate decisions     {decisions:>10}",
        f"  orient3d/insphere     {o_calls:>6}/{i_calls}"
        f"  cc-entry {cc}  batch {batch}",
        f"  filter hit rate       {fast / decisions:>10.4f}"
        if decisions else "  filter hit rate              n/a",
        f"  exact fallbacks       {exact:>10}"
        f"  ({exact / decisions:.5f} of decisions)"
        if decisions else f"  exact fallbacks       {exact:>10}",
    ]
    return "\n".join(lines)


def _totals(stats: List[ThreadStats]) -> Dict[str, float]:
    return {
        "operations": sum(s.n_operations for s in stats),
        "rollbacks": sum(s.n_rollbacks for s in stats),
        "insertions": sum(s.n_insertions for s in stats),
        "removals": sum(s.n_removals for s in stats),
        "contention_overhead": sum(
            s.overhead[OverheadKind.CONTENTION] for s in stats
        ),
        "load_balance_overhead": sum(
            s.overhead[OverheadKind.LOAD_BALANCE] for s in stats
        ),
        "rollback_overhead": sum(
            s.overhead[OverheadKind.ROLLBACK] for s in stats
        ),
        "total_overhead": sum(s.total_overhead for s in stats),
        "remote_steals": sum(s.n_remote_steals for s in stats),
        "intra_blade_steals": sum(s.n_intra_blade_steals for s in stats),
    }
