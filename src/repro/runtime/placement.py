"""Thread-to-hardware placement maps.

The hierarchical work stealing scheme and the NUMA cost model both need
to know which socket and blade a thread runs on.  Threads are packed in
id order: socket = tid // cores_per_socket, blade = socket //
sockets_per_blade — matching how jobs are placed on Blacklight
(Table 2: 8 cores per socket, 2 sockets per blade).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Placement:
    """Packed placement of ``n_threads`` hardware threads."""

    n_threads: int
    cores_per_socket: int = 8
    sockets_per_blade: int = 2
    threads_per_core: int = 1  # 2 under hyper-threading

    @property
    def threads_per_socket(self) -> int:
        return self.cores_per_socket * self.threads_per_core

    @property
    def threads_per_blade(self) -> int:
        return self.threads_per_socket * self.sockets_per_blade

    def core_of(self, tid: int) -> int:
        return tid // self.threads_per_core

    def socket_of(self, tid: int) -> int:
        return tid // self.threads_per_socket

    def blade_of(self, tid: int) -> int:
        return tid // self.threads_per_blade

    @property
    def n_sockets(self) -> int:
        return (self.n_threads + self.threads_per_socket - 1) // self.threads_per_socket

    @property
    def n_blades(self) -> int:
        return (self.n_threads + self.threads_per_blade - 1) // self.threads_per_blade


def flat_placement(n_threads: int) -> Placement:
    """Everything on one giant socket: hierarchy levels degenerate and
    HWS behaves exactly like flat random work stealing."""
    return Placement(
        n_threads=n_threads,
        cores_per_socket=max(1, n_threads),
        sockets_per_blade=1,
    )


def blacklight_placement(n_threads: int, hyperthreading: bool = False
                         ) -> Placement:
    """Blacklight's topology from Table 2 (Intel Xeon X7560)."""
    return Placement(
        n_threads=n_threads,
        cores_per_socket=8,
        sockets_per_blade=2,
        threads_per_core=2 if hyperthreading else 1,
    )
