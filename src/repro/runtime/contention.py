"""The four contention managers of Section 5.

All managers expose the same two entry points, called by the worker
loop after each attempted operation:

* :meth:`ContentionManager.on_rollback` — the operation aborted because
  a vertex was owned by ``conflicting_id``; the manager may block the
  calling thread;
* :meth:`ContentionManager.on_success` — the operation committed; the
  manager may wake threads it previously blocked.

Blocking always goes through ``ctx.wait_until(...)`` so both execution
backends account the waited time as *contention overhead*.

Managers and their guarantees (paper Table 1):

==============  ========== =========================================
manager         blocking?  guarantees
==============  ========== =========================================
Aggressive-CM   no         none (livelocks observed in practice)
Random-CM       no         none (livelocks rare but possible)
Global-CM       yes        deadlock-free and livelock-free (proven)
Local-CM        semi       deadlock-free and livelock-free (Lemmas 1-2)
==============  ========== =========================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, List, Optional

from repro.runtime.context import ExecutionContext
from repro.runtime.shared import SharedState
from repro.runtime.stats import OverheadKind

_NO_DEP = -1


class ContentionManager(ABC):
    """Interface + shared bookkeeping for all contention managers."""

    name = "abstract"

    def __init__(self, n_threads: int, shared: SharedState):
        self.n_threads = n_threads
        self.shared = shared

    @abstractmethod
    def on_rollback(self, ctx: ExecutionContext, conflicting_id: int) -> None:
        ...

    @abstractmethod
    def on_success(self, ctx: ExecutionContext) -> None:
        ...

    # -- observability hooks -------------------------------------------
    def _blocked_wait(self, ctx: ExecutionContext, predicate) -> None:
        """Park ``ctx`` on a contention list, tracing the blocked span
        and counting the block so the metrics registry sees every CM
        decision (not just the waited seconds)."""
        obs = self.shared.obs
        traced = obs is not None and obs.tracer.enabled
        if obs is not None:
            obs.registry.counter("cm.blocks").inc()
        if traced:
            obs.tracer.begin("cm.blocked", ctx.thread_id, ctx.now())
        ctx.wait_until(predicate, OverheadKind.CONTENTION)
        if traced:
            obs.tracer.end("cm.blocked", ctx.thread_id, ctx.now())


class AggressiveCM(ContentionManager):
    """Brute force: discard the changes and immediately retry.

    Exists to demonstrate that reducing rollbacks "is not just a matter
    of performance, but a matter of correctness" — it livelocks on high
    core counts (Table 1)."""

    name = "aggressive"

    def on_rollback(self, ctx: ExecutionContext, conflicting_id: int) -> None:
        pass

    def on_success(self, ctx: ExecutionContext) -> None:
        pass


class RandomCM(ContentionManager):
    """Randomised backoff (Section 5.2).

    After ``r_plus`` consecutive rollbacks the thread sleeps for a
    uniform random 1..r_plus milliseconds.  Randomness usually breaks
    livelocks but provably cannot always (and Table 1b catches it
    livelocking at 256 cores)."""

    name = "random"

    def __init__(self, n_threads: int, shared: SharedState, r_plus: int = 5):
        super().__init__(n_threads, shared)
        self.r_plus = r_plus
        self._consecutive = [0] * n_threads

    def on_rollback(self, ctx: ExecutionContext, conflicting_id: int) -> None:
        i = ctx.thread_id
        self._consecutive[i] += 1
        if self._consecutive[i] > self.r_plus:
            millis = 1.0 + ctx.random() * (self.r_plus - 1)
            obs = self.shared.obs
            if obs is not None:
                obs.registry.counter("cm.backoffs").inc()
                if obs.tracer.enabled:
                    obs.tracer.instant("cm.backoff", i, ctx.now(),
                                       millis=millis)
            ctx.sleep(millis * 1e-3, OverheadKind.CONTENTION)

    def on_success(self, ctx: ExecutionContext) -> None:
        self._consecutive[ctx.thread_id] = 0


class GlobalCM(ContentionManager):
    """One global FIFO Contention List (Section 5.3).

    A rolled-back thread parks on the global CL; threads that complete
    ``s_plus`` consecutive operations wake the CL head.  The active
    counter forbids the last active thread from parking, which yields
    the deadlock-freedom proof."""

    name = "global"

    def __init__(self, n_threads: int, shared: SharedState, s_plus: int = 10):
        super().__init__(n_threads, shared)
        self.s_plus = s_plus
        self._successes = [0] * n_threads
        self._blocked_flag = [False] * n_threads
        self._cl: Deque[int] = deque()

    def on_rollback(self, ctx: ExecutionContext, conflicting_id: int) -> None:
        i = ctx.thread_id
        self._successes[i] = 0
        if not self.shared.try_deactivate_unless_last():
            return  # last active thread: forbidden to block
        self._blocked_flag[i] = True
        self._cl.append(i)
        self._blocked_wait(ctx, lambda: not self._blocked_flag[i])

    def on_success(self, ctx: ExecutionContext) -> None:
        i = ctx.thread_id
        self._successes[i] += 1
        if self._successes[i] > self.s_plus:
            self.wake_one()

    def wake_one(self) -> bool:
        """Release the CL head (also used by the begging list's
        last-active-thread escape hatch).  Returns True if woken."""
        if self._cl:
            j = self._cl.popleft()
            # Wakers transfer activity to the thread they release.
            self.shared.activate()
            self._blocked_flag[j] = False
            return True
        return False


class LocalCM(ContentionManager):
    """Distributed contention lists with cycle breaking (Section 5.4).

    Thread state follows Figure 2 exactly: ``conflicting_id`` records the
    dependency edge, ``busy_wait`` is the park flag, and the pairwise
    mutex acquisition in increasing id order makes the block/no-block
    decision atomic per edge.  Lemma 1 (some thread in a dependency
    cycle does not block) gives deadlock freedom; Lemma 2 (some thread
    blocks) gives livelock freedom.
    """

    name = "local"

    def __init__(self, n_threads: int, shared: SharedState, s_plus: int = 10):
        super().__init__(n_threads, shared)
        self.s_plus = s_plus
        self._s = [0] * n_threads
        self._conflicting_id = [_NO_DEP] * n_threads
        self._busy_wait = [False] * n_threads
        self._cl: List[Deque[int]] = [deque() for _ in range(n_threads)]
        self._mutexes = [None] * n_threads  # created lazily per backend

    def _mutex(self, ctx: ExecutionContext, i: int):
        if self._mutexes[i] is None:
            self._mutexes[i] = ctx.make_mutex()
        return self._mutexes[i]

    def on_rollback(self, ctx: ExecutionContext, conflicting_id: int) -> None:
        i = ctx.thread_id
        self._s[i] = 0
        if (conflicting_id < 0 or conflicting_id == i
                or conflicting_id >= self.n_threads):
            return  # no (usable) dependency edge: just retry
        self._conflicting_id[i] = conflicting_id

        # Figure 2c lines 4-5: acquire both mutexes in increasing id
        # order so decisions on a dependency edge are serialised.
        lo, hi = sorted((i, conflicting_id))
        m_lo = self._mutex(ctx, lo)
        m_hi = self._mutex(ctx, hi)
        m_lo.acquire()
        m_hi.acquire()
        try:
            if self._busy_wait[conflicting_id]:
                # The thread we depend on has itself decided to block: we
                # must not block too, or a cycle could deadlock (line 6-10).
                self._conflicting_id[i] = _NO_DEP
                return
            if not self.shared.try_deactivate_unless_last():
                self._conflicting_id[i] = _NO_DEP
                return
            self._busy_wait[i] = True
            self._cl[conflicting_id].append(i)
        finally:
            m_hi.release()
            m_lo.release()

        self._blocked_wait(ctx, lambda: not self._busy_wait[i])
        self._conflicting_id[i] = _NO_DEP

    def on_success(self, ctx: ExecutionContext) -> None:
        i = ctx.thread_id
        self._s[i] += 1
        if self._s[i] > self.s_plus:
            self.wake_one(i)

    def wake_one(self, i: int) -> bool:
        cl = self._cl[i]
        if cl:
            j = cl.popleft()
            # Wakers transfer activity to the thread they release.
            self.shared.activate()
            self._busy_wait[j] = False
            return True
        return False

    def wake_any(self) -> bool:
        """Wake a thread from any CL (the last-active escape hatch the
        begging list uses before it parks)."""
        for i in range(self.n_threads):
            if self.wake_one(i):
                return True
        return False


def make_contention_manager(name: str, n_threads: int, shared: SharedState,
                            **kwargs) -> ContentionManager:
    """Factory keyed by the paper's CM names."""
    table = {
        "aggressive": AggressiveCM,
        "random": RandomCM,
        "global": GlobalCM,
        "local": LocalCM,
    }
    try:
        cls = table[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown contention manager {name!r}; pick from {sorted(table)}"
        ) from None
    return cls(n_threads, shared, **kwargs)
