"""Execution context: the seam between protocol code and its backend.

Contention managers, begging lists and the refinement worker loop call
only this interface.  Two backends implement it:

* ``repro.parallel.RealContext`` — real ``threading`` threads; waits are
  spins, the clock is the wall clock, and per-vertex try-locks use
  GIL-atomic ``dict.setdefault`` (the role GCC atomic built-ins play in
  the paper's implementation, Section 4.2);
* ``repro.simnuma.SimContext`` — threads run in lock-step under a
  discrete-event engine; waits park the thread, the clock is virtual,
  and lock windows span the operation's *virtual* duration so
  contention statistics behave like the real machine's.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro.runtime.stats import OverheadKind, ThreadStats


class ExecutionContext(ABC):
    """Per-thread handle onto the execution backend."""

    thread_id: int
    stats: ThreadStats

    # -- vertex locks -------------------------------------------------
    @abstractmethod
    def try_lock_vertex(self, vid: int) -> int:
        """Acquire vertex ``vid`` for the current operation.

        Returns -1 on success (including when we already own it) or the
        owning thread's id on conflict.  Locks accumulate on the current
        operation and are released collectively by
        :meth:`commit_operation` / :meth:`abort_operation`.
        """

    def touch_vertex(self, vid: int) -> None:
        """Touch hook handed to the kernel: try-lock ``vid`` and raise
        :class:`~repro.delaunay.RollbackSignal` on conflict."""
        from repro.delaunay import RollbackSignal

        owner = self.try_lock_vertex(vid)
        if owner >= 0:
            raise RollbackSignal(owner)

    @abstractmethod
    def commit_operation(self, cost: float) -> None:
        """Operation succeeded; charge ``cost`` busy time and schedule the
        release of its locks (immediately for real threads; at the
        operation's virtual end time in the simulator)."""

    @abstractmethod
    def abort_operation(self, wasted_cost: float) -> None:
        """Operation rolled back: release all its locks now and account
        ``wasted_cost`` as rollback overhead."""

    # -- waiting / time ------------------------------------------------
    @abstractmethod
    def now(self) -> float:
        """Current (virtual or wall) time in seconds."""

    @abstractmethod
    def wait_until(self, predicate: Callable[[], bool],
                   kind: OverheadKind) -> None:
        """Block until ``predicate()`` is True, charging the waited time
        to ``kind``.  The predicate is flipped by *another thread* (the
        paper's busy-wait flags)."""

    @abstractmethod
    def sleep(self, seconds: float, kind: OverheadKind) -> None:
        """Sleep for a fixed duration, charged to ``kind`` (Random-CM)."""

    @abstractmethod
    def charge(self, seconds: float) -> None:
        """Account plain busy work outside operations (classification,
        PEL bookkeeping)."""

    # -- coordination helpers -------------------------------------------
    @abstractmethod
    def make_mutex(self):
        """A mutex usable by protocol code (Local-CM's per-thread mutex)."""

    @abstractmethod
    def random(self) -> float:
        """Uniform [0, 1) sample from the backend's deterministic RNG."""
