"""State shared by all refinement threads (active counter, termination).

The paper's Global-CM proof (Section 5.3) hinges on tracking "the number
of active threads, that is, the number of threads that do not busy wait
in either the CL or the Begging List": a thread is forbidden to block
when it is the last active one.  This object owns that counter plus the
global progress/termination flags the drivers need.
"""

from __future__ import annotations

import threading


class SharedState:
    """Fleet-wide counters; safe under both backends.

    Under the simulator, threads execute in lock-step so plain updates
    are race-free; under real threads the internal lock serialises them.
    """

    def __init__(self, n_threads: int, obs=None):
        self.n_threads = n_threads
        self._lock = threading.Lock()
        self._active = n_threads
        self.done = False
        self.successful_ops = 0  # global progress counter (livelock watch)
        # Observability bundle shared by every protocol component that
        # holds this state (contention managers, begging lists); None
        # means "record nothing".
        self.obs = obs

    # -- active-thread tracking ----------------------------------------
    def deactivate(self) -> None:
        with self._lock:
            self._active -= 1

    def activate(self) -> None:
        with self._lock:
            self._active += 1

    def try_deactivate_unless_last(self) -> bool:
        """Atomically deactivate unless this is the last active thread.

        Returns True when deactivated (caller may block), False when the
        caller is the last active thread and must keep running.
        """
        with self._lock:
            if self._active <= 1:
                return False
            self._active -= 1
            return True

    @property
    def active(self) -> int:
        return self._active

    def note_progress(self) -> None:
        with self._lock:
            self.successful_ops += 1
