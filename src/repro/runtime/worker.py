"""The per-thread refinement loop (paper Algorithm 1).

Each thread repeatedly pops a poor element from its own PEL, attempts
the operation under per-vertex try-locks, and either commits (updating
PELs and feeding beggars) or rolls back and reports to the contention
manager.  The loop is backend-agnostic: all waiting, locking and time
accounting goes through the :class:`ExecutionContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.domain import OperationResult, RefineDomain
from repro.core.pel import PoorElementList
from repro.delaunay import RollbackSignal
from repro.observability import Observability
from repro.observability.metrics import SIZE_BUCKETS
from repro.runtime.begging import GIVE_THRESHOLD, BeggingList
from repro.runtime.contention import ContentionManager, GlobalCM, LocalCM
from repro.runtime.context import ExecutionContext
from repro.runtime.placement import Placement
from repro.runtime.shared import SharedState


@dataclass
class WorkerEnv:
    """Everything the worker loop shares across threads."""

    domain: RefineDomain
    pels: List[PoorElementList]
    cm: ContentionManager
    bl: BeggingList
    shared: SharedState
    placement: Placement
    # (result, measured_seconds, ctx) -> charged cost in seconds
    cost_of: Callable[[OperationResult, float, ExecutionContext], float]
    give_threshold: int = GIVE_THRESHOLD
    obs: Optional[Observability] = None

    def wake_blocked(self) -> bool:
        """Escape hatch used by the begging list's last-active thread."""
        cm = self.cm
        if isinstance(cm, GlobalCM):
            return cm.wake_one()
        if isinstance(cm, LocalCM):
            return cm.wake_any()
        return False


def refinement_worker(ctx: ExecutionContext, env: WorkerEnv) -> None:
    """Body of one refinement thread (runs to global termination)."""
    my_pel = env.pels[ctx.thread_id]
    domain = env.domain
    mesh = domain.tri.mesh
    tid = ctx.thread_id
    import time as _time

    # Hoisted observability instruments (None when recording is off).
    obs = env.obs
    tracer = None
    ops_counter = rollback_counter = cavity_hist = None
    if obs is not None:
        tracer = obs.tracer
        reg = obs.registry
        ops_counter = reg.counter("refine.operations")
        rollback_counter = reg.counter("runtime.rollbacks")
        cavity_hist = reg.histogram(
            "refine.cavity_size", SIZE_BUCKETS,
            help="new tets created per operation",
        )

    while not env.shared.done:
        t = my_pel.pop()
        if t is None:
            if not env.bl.beg(ctx, env.wake_blocked):
                break
            continue

        t_op0 = ctx.now()
        t_real0 = _time.perf_counter()
        try:
            result = domain.refine_tet(t, touch=ctx.touch_vertex)
        except RollbackSignal as rb:
            elapsed = _time.perf_counter() - t_real0
            ctx.abort_operation(env.cost_of(None, elapsed, ctx))
            ctx.stats.n_rollbacks += 1
            if obs is not None:
                rollback_counter.inc()
                if tracer.enabled:
                    tracer.complete("rollback", t_op0, ctx.now() - t_op0,
                                    tid, owner=rb.owner)
            my_pel.push(t)  # retry the element later
            env.cm.on_rollback(ctx, rb.owner)
            continue

        elapsed = _time.perf_counter() - t_real0
        if result.inserted_vertex is not None:
            # Locality bookkeeping for the NUMA cost model: the inserting
            # thread is the vertex's home.
            domain.vertex_creator[result.inserted_vertex] = ctx.thread_id

        # Classify the new elements while the operation's locks are still
        # held (commit releases them): classifying after release would
        # race with concurrent mutations of the fresh region and could
        # silently drop a bad element from every PEL.
        poor = []
        if not result.skipped:
            poor = [
                nt for nt in result.new_tets
                if mesh.is_live(nt) and domain.is_poor(nt)
            ]

        ctx.stats.n_rollbacks += result.r6_conflicts
        ctx.commit_operation(env.cost_of(result, elapsed, ctx))
        ctx.stats.n_operations += 1
        if result.inserted_vertex is not None:
            ctx.stats.n_insertions += 1
        ctx.stats.n_removals += len(result.removed_vertices)
        env.shared.note_progress()
        if obs is not None:
            ops_counter.inc()
            if result.r6_conflicts:
                rollback_counter.inc(result.r6_conflicts)
            if not result.skipped:
                cavity_hist.observe(len(result.new_tets))
            if tracer.enabled:
                # commit_operation advanced the (virtual or wall) clock,
                # so now() - t_op0 spans the operation's charged window.
                tracer.complete(result.rule, t_op0, ctx.now() - t_op0, tid)
        env.cm.on_success(ctx)

        if not poor:
            continue
        if my_pel.live_count >= env.give_threshold:
            beggar = env.bl.pop_beggar(ctx.thread_id)
            if beggar is not None and beggar != ctx.thread_id:
                # Donate the cold half of the own PEL when possible: the
                # freshly created elements sit inside the region whose
                # vertex locks this thread still holds (until the
                # operation's end), so handing those to the beggar makes
                # its first attempt roll back instantly.  Cold entries
                # are spatially distant and lock-free.
                surplus = (my_pel.live_count - env.give_threshold) // 2
                donation = my_pel.take_oldest(max(1, surplus))
                if donation:
                    for nt in poor:
                        my_pel.push(nt)
                else:
                    donation = poor
                for nt in donation:
                    env.pels[beggar].push(nt)
                pl = env.placement
                if pl.blade_of(beggar) == pl.blade_of(ctx.thread_id):
                    ctx.stats.n_intra_blade_steals += 1
                else:
                    ctx.stats.n_remote_steals += 1
                ctx.stats.n_work_given += 1
                if obs is not None:
                    obs.registry.counter("lb.work_given").inc()
                    obs.registry.histogram(
                        "lb.donation_size", SIZE_BUCKETS,
                        help="elements handed to a beggar",
                    ).observe(len(donation))
                    if tracer.enabled:
                        tracer.instant("lb.give", tid, ctx.now(),
                                       to=beggar, n=len(donation))
                env.bl.wake(beggar)
                continue
        for nt in poor:
            my_pel.push(nt)
