"""Begging-list load balancers (paper Sections 4.4 and 6.1).

Idle threads register on a begging list and busy-wait; running threads,
after each completed operation, hand freshly classified poor elements to
the first beggar.  Two organisations are provided:

* :class:`BeggingList` — the classic flat Random Work Stealing (RWS)
  baseline: one global FIFO;
* :class:`HierarchicalBeggingList` — HWS: three levels (socket blade
  machine).  A beggar parks at the lowest level that still has room for
  it, and givers serve BL1 (own socket) before BL2 (own blade) before
  BL3, which is what cuts inter-blade traffic by ~29% in Figure 5b.

Termination: a thread about to beg deactivates via the shared active
counter.  The last active thread may not park: it first tries to wake a
contention-manager-blocked thread (the paper's escape hatch), and if
there is nothing to wake and no work anywhere it declares global
termination and releases every beggar.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.runtime.context import ExecutionContext
from repro.runtime.placement import Placement
from repro.runtime.shared import SharedState
from repro.runtime.stats import OverheadKind

# A thread may only give work away while it retains at least this many
# live poor elements (Section 4.4; "we set that threshold equal to 5").
GIVE_THRESHOLD = 5


class BeggingList:
    """Flat global begging list — Random Work Stealing (RWS)."""

    name = "rws"

    def __init__(self, n_threads: int, shared: SharedState,
                 placement: Optional[Placement] = None):
        self.n_threads = n_threads
        self.shared = shared
        self.placement = placement
        self._queue: Deque[int] = deque()
        self._got_work = [False] * n_threads

    # -- beggar side ----------------------------------------------------
    def beg(self, ctx: ExecutionContext,
            wake_blocked: Callable[[], bool]) -> bool:
        """Park until work arrives.  Returns False on global termination.

        ``wake_blocked`` is the escape hatch that releases a thread from
        a contention list when the caller is the last active thread.
        """
        i = ctx.thread_id
        while True:
            if self.shared.done:
                return False
            if self.shared.try_deactivate_unless_last():
                break
            # Last active thread: wake someone blocked on a contention
            # list so the system keeps running (wakers transfer activity
            # to the woken thread); if nobody is blocked, every other
            # thread is begging and there is no work left anywhere.
            if not wake_blocked():
                self.shared.done = True
                return False
        self._got_work[i] = False
        self._enqueue(i)
        obs = self.shared.obs
        traced = obs is not None and obs.tracer.enabled
        if obs is not None:
            obs.registry.counter("lb.begs").inc()
        if traced:
            obs.tracer.begin("beg", i, ctx.now())
        ctx.wait_until(
            lambda: self._got_work[i] or self.shared.done,
            OverheadKind.LOAD_BALANCE,
        )
        if traced:
            obs.tracer.end("beg", i, ctx.now())
        got = self._got_work[i]
        if got and obs is not None:
            obs.registry.counter("lb.work_received").inc()
        return got or not self.shared.done

    def describe(self) -> str:
        return self.name

    # -- giver side -----------------------------------------------------
    def pop_beggar(self, giver: int) -> Optional[int]:
        """Pick the beggar the giver should serve (FIFO for RWS)."""
        if self._queue:
            try:
                return self._queue.popleft()
            except IndexError:
                return None
        return None

    def wake(self, beggar: int) -> None:
        """Signal that work has been pushed to the beggar's PEL.

        The waker transfers activity: the beggar deactivated when it
        parked, and re-counting it here (not when it resumes) keeps the
        last-active-thread test sound under any interleaving.
        """
        self.shared.activate()
        self._got_work[beggar] = True

    @property
    def n_waiting(self) -> int:
        return len(self._queue)

    # -- internals ------------------------------------------------------
    def _enqueue(self, i: int) -> None:
        self._queue.append(i)


class HierarchicalBeggingList(BeggingList):
    """Three-level begging list (HWS, Section 6.1).

    BL1 is per socket with room for ``threads_per_socket - 1`` beggars,
    BL2 per blade with room for ``sockets_per_blade - 1``, BL3 global
    with room for one beggar per blade.  Givers serve their own socket's
    BL1 first, then their blade's BL2, then BL3.
    """

    name = "hws"

    def __init__(self, n_threads: int, shared: SharedState,
                 placement: Placement):
        super().__init__(n_threads, shared, placement)
        self.bl1: Dict[int, Deque[int]] = {}
        self.bl2: Dict[int, Deque[int]] = {}
        self.bl3: Deque[int] = deque()
        self._level_of: Dict[int, Tuple[int, int]] = {}

    def _enqueue(self, i: int) -> None:
        pl = self.placement
        sock = pl.socket_of(i)
        blade = pl.blade_of(i)
        q1 = self.bl1.setdefault(sock, deque())
        if len(q1) < pl.threads_per_socket - 1:
            q1.append(i)
            self._level_of[i] = (1, sock)
            return
        q2 = self.bl2.setdefault(blade, deque())
        if len(q2) < pl.sockets_per_blade - 1:
            q2.append(i)
            self._level_of[i] = (2, blade)
            return
        self.bl3.append(i)
        self._level_of[i] = (3, 0)

    def pop_beggar(self, giver: int) -> Optional[int]:
        pl = self.placement
        q1 = self.bl1.get(pl.socket_of(giver))
        if q1:
            try:
                i = q1.popleft()
                self._level_of.pop(i, None)
                return i
            except IndexError:
                pass
        q2 = self.bl2.get(pl.blade_of(giver))
        if q2:
            try:
                i = q2.popleft()
                self._level_of.pop(i, None)
                return i
            except IndexError:
                pass
        if self.bl3:
            try:
                i = self.bl3.popleft()
                self._level_of.pop(i, None)
                return i
            except IndexError:
                pass
        return None

    @property
    def n_waiting(self) -> int:
        return (
            sum(len(q) for q in self.bl1.values())
            + sum(len(q) for q in self.bl2.values())
            + len(self.bl3)
        )

