"""Shared-memory speculative execution runtime (paper Sections 4-5).

The pieces here — per-vertex try-locks, contention managers, begging-list
load balancers, and overhead accounting — are written once against the
:class:`~repro.runtime.context.ExecutionContext` interface and reused by
both execution backends:

* :mod:`repro.parallel` drives them with real ``threading`` threads;
* :mod:`repro.simnuma` drives them under a deterministic discrete-event
  cc-NUMA simulator (the Blacklight stand-in; see DESIGN.md).
"""

from repro.runtime.begging import BeggingList, HierarchicalBeggingList
from repro.runtime.contention import (
    AggressiveCM,
    ContentionManager,
    GlobalCM,
    LocalCM,
    RandomCM,
    make_contention_manager,
)
from repro.runtime.context import ExecutionContext
from repro.runtime.stats import OverheadKind, ThreadStats

__all__ = [
    "ExecutionContext",
    "ThreadStats",
    "OverheadKind",
    "ContentionManager",
    "AggressiveCM",
    "RandomCM",
    "GlobalCM",
    "LocalCM",
    "make_contention_manager",
    "BeggingList",
    "HierarchicalBeggingList",
]
