"""Unified mesher API: one request shape, one result shape, any mesher.

Every mesher in this repository — the PI2M sequential refiner, the
real-thread speculative refiner, the simulated cc-NUMA runs and the two
baselines (CGAL-like, TetGen-like) — is reachable through the same
three-step protocol::

    from repro.api import MeshRequest, mesh

    request = MeshRequest(image=image, delta=2.0, mesher="sequential")
    result = mesh(request)          # -> MeshResult
    result.mesh.n_tets, result.timings["wall_seconds"], result.metrics

A :class:`MeshRequest` bundles the image, the paper's quality knobs,
the parallel configuration (thread count, contention manager, load
balancer) and the run's
:class:`~repro.observability.ObservabilityConfig`; a
:class:`MeshResult` bundles the extracted mesh, flat statistics, the
metrics-registry snapshot and timings, plus non-serialisable extras
(domain, thread stats, the live ``Observability`` bundle) for callers
that need them.  ``MeshResult.to_dict`` / ``from_dict`` round-trip the
serialisable portion.

This module is the only supported entry point: the classic PR-1
functions (``repro.core.mesh_image``, ``repro.parallel.
parallel_mesh_image``, ``repro.simnuma.simulate_parallel_refinement``)
have been removed; their implementations live on as the underscore
functions this facade calls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.core.extract import ExtractedMesh
from repro.imaging.image import SegmentedImage
from repro.observability import Observability, ObservabilityConfig

#: Mesher names accepted by :class:`MeshRequest` / :func:`get_mesher`.
MESHER_NAMES = (
    "sequential", "threaded", "simulated", "cgal_like", "tetgen_like",
)


@dataclass
class MeshRequest:
    """Everything one meshing run needs, independent of the mesher.

    ``mesher='auto'`` resolves to ``'threaded'`` when ``n_threads > 1``
    and ``'sequential'`` otherwise, which is the CLI's behaviour.
    """

    image: SegmentedImage
    mesher: str = "auto"
    # -- fidelity / quality targets (paper Section 3) -------------------
    delta: Optional[float] = None
    radius_edge_bound: float = 2.0
    planar_angle_bound_deg: float = 30.0
    size_function: Optional[Any] = None
    # -- parallel configuration (paper Sections 4-6) --------------------
    n_threads: int = 1
    cm: str = "local"
    lb: str = "hws"
    hyperthreading: bool = False
    seed: int = 0
    #: domain sharding: ``None``/1 = off, ``"auto"`` = one shard per
    #: CPU (capped), N = split the image into up to N blocks meshed in
    #: parallel workers and stitched (:mod:`repro.delaunay.shard`).
    shards: Optional[Any] = None
    #: incremental meshing for sharded requests: content-address each
    #: block's refined point set and warm-start the stitch from the
    #: previous run's delta, so near-duplicate images only pay for the
    #: blocks whose crop bytes changed.  No effect when ``shards <= 1``.
    incremental: bool = True
    # -- guard rails ----------------------------------------------------
    max_operations: Optional[int] = None
    timeout: Optional[float] = None
    # -- observability --------------------------------------------------
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )

    def resolved_mesher(self) -> str:
        if self.mesher == "auto":
            return "threaded" if self.n_threads > 1 else "sequential"
        return self.mesher

    def resolved_shards(self) -> int:
        """The effective shard count (``"auto"`` → one per CPU, ≤ 8)."""
        s = self.shards
        if s is None:
            return 1
        if s == "auto":
            import os
            return max(1, min(os.cpu_count() or 1, 8))
        return int(s)

    def canonical_params(self) -> Dict[str, Any]:
        """The request knobs that determine the output mesh, in a flat,
        JSON-stable form (the second half of the service's cache key).

        ``mesher`` is resolved (``auto`` never appears), floats pass
        through ``repr`` untouched, and observability / timeout — which
        change what gets *recorded*, not what gets *meshed* — are
        excluded.  Requests carrying a live ``size_function`` have no
        canonical form and raise ``ValueError`` (the service treats
        them as uncacheable).
        """
        if self.size_function is not None:
            raise ValueError(
                "requests with a size_function are not canonicalizable"
            )
        return {
            "mesher": self.resolved_mesher(),
            "delta": self.delta,
            "radius_edge_bound": float(self.radius_edge_bound),
            "planar_angle_bound_deg": float(self.planar_angle_bound_deg),
            "n_threads": int(self.n_threads),
            "cm": self.cm,
            "lb": self.lb,
            "hyperthreading": bool(self.hyperthreading),
            "seed": int(self.seed),
            "max_operations": self.max_operations,
            "shards": int(self.resolved_shards()),
            "incremental": bool(self.incremental)
            and self.resolved_shards() > 1,
        }

    def validate(self) -> None:
        """Raise ``ValueError`` on an unsatisfiable request."""
        name = self.mesher
        if name != "auto" and name not in MESHER_NAMES:
            raise ValueError(
                f"unknown mesher {name!r}; pick from "
                f"{('auto',) + MESHER_NAMES}"
            )
        if self.n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {self.n_threads}")
        if self.delta is not None and self.delta <= 0:
            raise ValueError(f"delta must be positive, got {self.delta}")
        s = self.shards
        if s is not None:
            if s != "auto" and (not isinstance(s, int)
                                or isinstance(s, bool) or s < 1):
                raise ValueError(
                    f"shards must be a positive int or 'auto', got {s!r}"
                )
            if (s == "auto" or s > 1):
                if self.resolved_mesher() != "sequential":
                    raise ValueError(
                        "sharded meshing requires the sequential mesher "
                        f"(got {self.resolved_mesher()!r}); shards "
                        "parallelise across worker processes, not threads"
                    )
                if self.size_function is not None:
                    raise ValueError(
                        "sharded meshing does not support size_function"
                    )


@dataclass
class MeshResult:
    """Uniform outcome of any mesher run.

    ``stats`` holds flat, JSON-safe counters specific to the mesher
    (operations, rollbacks, rule counts, livelock, ...); ``metrics`` is
    the run's metrics-registry snapshot; ``timings`` always contains
    ``wall_seconds`` and, for simulated runs, ``virtual_seconds``.
    ``extras`` carries live objects (domain, thread stats, the
    ``Observability`` bundle) and is dropped by :meth:`to_dict`.
    """

    mesh: ExtractedMesh
    mesher: str
    stats: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def n_tets(self) -> int:
        return self.mesh.n_tets

    @property
    def n_vertices(self) -> int:
        return self.mesh.n_vertices

    @property
    def ok(self) -> bool:
        """A usable (non-empty, non-livelocked) mesh came out."""
        return self.mesh.n_tets > 0 and not self.stats.get("livelock", False)

    @property
    def observability(self) -> Optional[Observability]:
        return self.extras.get("obs")

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (mesh arrays as nested lists, extras dropped)."""
        return {
            "mesher": self.mesher,
            "mesh": {
                "vertices": self.mesh.vertices.tolist(),
                "tets": self.mesh.tets.tolist(),
                "tet_labels": self.mesh.tet_labels.tolist(),
                "boundary_faces": self.mesh.boundary_faces.tolist(),
                "boundary_labels": self.mesh.boundary_labels.tolist(),
            },
            "stats": dict(self.stats),
            "metrics": dict(self.metrics),
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "MeshResult":
        m = doc["mesh"]
        mesh = ExtractedMesh(
            vertices=np.asarray(m["vertices"], dtype=np.float64).reshape(-1, 3),
            tets=np.asarray(m["tets"], dtype=np.int64).reshape(-1, 4),
            tet_labels=np.asarray(m["tet_labels"], dtype=np.int32),
            boundary_faces=np.asarray(
                m["boundary_faces"], dtype=np.int64
            ).reshape(-1, 3),
            boundary_labels=np.asarray(
                m["boundary_labels"], dtype=np.int32
            ).reshape(-1, 2),
        )
        return cls(
            mesh=mesh,
            mesher=doc["mesher"],
            stats=dict(doc.get("stats", {})),
            metrics=dict(doc.get("metrics", {})),
            timings=dict(doc.get("timings", {})),
        )


@runtime_checkable
class Mesher(Protocol):
    """The protocol every mesher implementation satisfies."""

    name: str

    def mesh(self, request: MeshRequest) -> MeshResult:
        """Run one conversion described by ``request``."""
        ...


# ---------------------------------------------------------------------------
# implementations
# ---------------------------------------------------------------------------

class SequentialMesher:
    """PI2M single-threaded refinement (paper Section 3)."""

    name = "sequential"

    def mesh(self, request: MeshRequest) -> MeshResult:
        from repro.core import _mesh_image

        obs = Observability.from_config(request.observability)
        t0 = time.perf_counter()
        res = _mesh_image(
            request.image,
            delta=request.delta,
            size_function=request.size_function,
            radius_edge_bound=request.radius_edge_bound,
            planar_angle_bound_deg=request.planar_angle_bound_deg,
            max_operations=request.max_operations,
            obs=obs,
        )
        wall = time.perf_counter() - t0
        s = res.stats
        return MeshResult(
            mesh=res.mesh,
            mesher=self.name,
            stats={
                "operations": s.n_operations,
                "insertions": s.n_insertions,
                "removals": s.n_removals,
                "skipped": s.n_skipped,
                "rule_counts": dict(s.rule_counts),
                "elements_per_second": s.tets_per_second,
            },
            metrics=obs.snapshot(),
            timings={"wall_seconds": wall, "refine_seconds": s.wall_time},
            extras={"obs": obs, "domain": res.domain, "raw": res},
        )


class ThreadedMesher:
    """PI2M speculative refinement on real OS threads (Section 4)."""

    name = "threaded"

    def mesh(self, request: MeshRequest) -> MeshResult:
        from repro.parallel.threaded import _parallel_mesh_image

        obs = Observability.from_config(request.observability)
        t0 = time.perf_counter()
        res = _parallel_mesh_image(
            request.image,
            n_threads=request.n_threads,
            delta=request.delta,
            size_function=request.size_function,
            cm=request.cm,
            lb=request.lb,
            seed=request.seed,
            timeout=request.timeout,
            obs=obs,
        )
        wall = time.perf_counter() - t0
        stats = dict(res.totals)
        stats["n_threads"] = res.n_threads
        stats["elements_per_second"] = (
            res.mesh.n_tets / res.wall_time if res.wall_time > 0 else 0.0
        )
        return MeshResult(
            mesh=res.mesh,
            mesher=self.name,
            stats=stats,
            metrics=obs.snapshot(),
            timings={"wall_seconds": wall, "refine_seconds": res.wall_time},
            extras={
                "obs": obs,
                "domain": res.domain,
                "thread_stats": res.thread_stats,
                "raw": res,
            },
        )


class SimulatedMesher:
    """PI2M refinement on the simulated cc-NUMA machine (Sections 5-6).

    Unlike the classic ``_simulate_parallel_refinement`` (which reports
    counts only), the unified path also extracts the final mesh so the
    result shape matches every other mesher.
    """

    name = "simulated"

    def mesh(self, request: MeshRequest) -> MeshResult:
        from repro.core.domain import RefineDomain
        from repro.core.extract import extract_mesh
        from repro.simnuma.simrefiner import _simulate_parallel_refinement

        obs = Observability.from_config(request.observability)
        t0 = time.perf_counter()
        domain = RefineDomain(
            request.image,
            delta=request.delta,
            size_function=request.size_function,
            radius_edge_bound=request.radius_edge_bound,
            planar_angle_bound_deg=request.planar_angle_bound_deg,
        )
        sim = _simulate_parallel_refinement(
            request.image,
            request.n_threads,
            cm=request.cm,
            lb=request.lb,
            hyperthreading=request.hyperthreading,
            seed=request.seed,
            domain=domain,
            obs=obs,
        )
        mesh = extract_mesh(domain)
        wall = time.perf_counter() - t0
        stats = dict(sim.totals)
        stats.update(
            n_threads=sim.n_threads,
            cm=sim.cm_name,
            lb=sim.lb_name,
            hyperthreading=sim.hyperthreading,
            livelock=sim.livelock,
            elements_per_second=sim.elements_per_second,
        )
        return MeshResult(
            mesh=mesh,
            mesher=self.name,
            stats=stats,
            metrics=obs.snapshot(),
            timings={
                "wall_seconds": wall,
                "virtual_seconds": sim.virtual_time,
            },
            extras={
                "obs": obs,
                "domain": domain,
                "thread_stats": sim.thread_stats,
                "raw": sim,
            },
        )


class CGALLikeAdapter:
    """The isosurface-based CGAL-Mesh_3-style baseline (Table 6)."""

    name = "cgal_like"

    def mesh(self, request: MeshRequest) -> MeshResult:
        from repro.baselines.cgal_like import CGALLikeMesher

        obs = Observability.from_config(request.observability)
        mesher = CGALLikeMesher(
            request.image,
            facet_angle_deg=request.planar_angle_bound_deg,
            cell_radius_edge=request.radius_edge_bound,
        )
        t0 = time.perf_counter()
        with obs.tracer.span("cgal_like.refine"):
            extracted = mesher.refine()
        wall = time.perf_counter() - t0
        s = mesher.stats
        reg = obs.registry
        reg.counter("refine.operations").inc(s.n_operations)
        reg.counter("refine.insertions").inc(s.n_insertions)
        reg.gauge("run.elements").set(extracted.n_tets)
        reg.gauge("run.wall_seconds").set(wall)
        reg.gauge("run.elements_per_second").set(
            extracted.n_tets / wall if wall > 0 else 0.0
        )
        return MeshResult(
            mesh=extracted,
            mesher=self.name,
            stats={
                "operations": s.n_operations,
                "insertions": s.n_insertions,
                "elements_per_second": (
                    extracted.n_tets / wall if wall > 0 else 0.0
                ),
            },
            metrics=obs.snapshot(),
            timings={"wall_seconds": wall, "refine_seconds": s.wall_time},
            extras={"obs": obs, "raw": mesher},
        )


class TetGenLikeAdapter:
    """The PLC-based TetGen-style baseline (Table 6).

    TetGen receives *the surface PI2M recovers* as its PLC (the paper's
    exact setup), so this adapter first runs a sequential PI2M pass to
    produce the boundary triangulation, then fills and refines the
    volume.  Region seeds are label centroids of the input image.
    """

    name = "tetgen_like"

    def mesh(self, request: MeshRequest) -> MeshResult:
        from repro.baselines.tetgen_like import TetGenLikeMesher
        from repro.core import _mesh_image

        obs = Observability.from_config(request.observability)
        t0 = time.perf_counter()
        with obs.tracer.span("tetgen_like.plc"):
            plc = _mesh_image(
                request.image,
                delta=request.delta,
                size_function=request.size_function,
                radius_edge_bound=request.radius_edge_bound,
                planar_angle_bound_deg=request.planar_angle_bound_deg,
                max_operations=request.max_operations,
            )
        seeds = _region_seeds(request.image)
        if plc.mesh.n_tets == 0 or not seeds:
            wall = time.perf_counter() - t0
            return MeshResult(
                mesh=plc.mesh,
                mesher=self.name,
                stats={"operations": 0, "insertions": 0,
                       "plc_elements": plc.mesh.n_tets},
                metrics=obs.snapshot(),
                timings={"wall_seconds": wall},
                extras={"obs": obs},
            )
        mesher = TetGenLikeMesher(
            plc.mesh.vertices,
            plc.mesh.boundary_faces,
            seeds,
            radius_edge_bound=request.radius_edge_bound,
        )
        with obs.tracer.span("tetgen_like.refine"):
            extracted = mesher.refine()
        wall = time.perf_counter() - t0
        s = mesher.stats
        reg = obs.registry
        reg.counter("refine.operations").inc(s.n_operations)
        reg.counter("refine.insertions").inc(s.n_insertions)
        reg.gauge("run.elements").set(extracted.n_tets)
        reg.gauge("run.wall_seconds").set(wall)
        reg.gauge("run.elements_per_second").set(
            extracted.n_tets / wall if wall > 0 else 0.0
        )
        return MeshResult(
            mesh=extracted,
            mesher=self.name,
            stats={
                "operations": s.n_operations,
                "insertions": s.n_insertions,
                "plc_vertices": int(len(plc.mesh.vertices)),
                "elements_per_second": (
                    extracted.n_tets / wall if wall > 0 else 0.0
                ),
            },
            metrics=obs.snapshot(),
            timings={"wall_seconds": wall, "refine_seconds": s.wall_time},
            extras={"obs": obs, "raw": mesher, "plc": plc},
        )


def _region_seeds(image: SegmentedImage
                  ) -> List[Tuple[Tuple[float, float, float], int]]:
    """One interior seed point per tissue label: the centroid voxel of
    the label's mask, snapped to the nearest voxel actually carrying the
    label (centroids of non-convex tissues can fall outside)."""
    seeds: List[Tuple[Tuple[float, float, float], int]] = []
    for lab in np.unique(image.labels):
        if lab == 0:
            continue
        idx = np.argwhere(image.labels == lab)
        centroid = idx.mean(axis=0)
        nearest = idx[np.argmin(((idx - centroid) ** 2).sum(axis=1))]
        seeds.append((image.voxel_center(nearest), int(lab)))
    return seeds


# ---------------------------------------------------------------------------
# registry + dispatch
# ---------------------------------------------------------------------------

_MESHERS: Dict[str, Mesher] = {
    "sequential": SequentialMesher(),
    "threaded": ThreadedMesher(),
    "simulated": SimulatedMesher(),
    "cgal_like": CGALLikeAdapter(),
    "tetgen_like": TetGenLikeAdapter(),
}


def get_mesher(name: str) -> Mesher:
    """Look a mesher up by name (see :data:`MESHER_NAMES`)."""
    try:
        return _MESHERS[name]
    except KeyError:
        raise ValueError(
            f"unknown mesher {name!r}; pick from {MESHER_NAMES}"
        ) from None


def mesh(request: MeshRequest) -> MeshResult:
    """The unified entry point: validate, dispatch, run.

    Requests with ``shards`` > 1 route through the domain-sharded path
    (:mod:`repro.delaunay.shard`); when the image decomposes into a
    single occupied block — or ``shards`` resolves to 1 — the plain
    mesher runs, bit-identical to an unsharded request.
    """
    request.validate()
    if request.resolved_shards() > 1:
        from repro.service.shards import run_local

        result = run_local(request)
        if result is not None:
            return result
    return get_mesher(request.resolved_mesher()).mesh(request)


__all__ = [
    "MESHER_NAMES",
    "MeshRequest",
    "MeshResult",
    "Mesher",
    "SequentialMesher",
    "ThreadedMesher",
    "SimulatedMesher",
    "CGALLikeAdapter",
    "TetGenLikeAdapter",
    "get_mesher",
    "mesh",
]
