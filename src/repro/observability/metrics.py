"""Metrics registry: counters, gauges and fixed-bucket histograms.

One registry per run collects everything a benchmark or the CLI wants
to report — rollbacks, cavity sizes, lock-acquire latency, elements per
second — so ad-hoc aggregation dictionaries are no longer scattered
across ``runtime.stats``, ``simnuma`` and each benchmark harness.

Instruments are get-or-create by name, so independent subsystems feed
the same counter without coordinating.  Mutations take the registry's
lock: refinement operations are geometry-bound (milliseconds), so a
microsecond of locking per observation is noise, and it keeps totals
exact under real threads.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default latency buckets (seconds): 1us .. 10s, decade + half-decade.
LATENCY_BUCKETS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
    1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)

#: Default size buckets (counts): cavity sizes, ball sizes, PEL donations.
SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "help", "_lock", "value")

    def __init__(self, name: str, help: str = "",
                 lock: Optional[threading.Lock] = None):
        self.name = name
        self.help = help
        self._lock = lock or threading.Lock()
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "help", "_lock", "value")

    def __init__(self, name: str, help: str = "",
                 lock: Optional[threading.Lock] = None):
        self.name = name
        self.help = help
        self._lock = lock or threading.Lock()
        self.value: Number = 0

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-boundary histogram (cumulative-free, per-bucket counts).

    ``buckets`` are the upper edges of the first ``len(buckets)``
    buckets; one overflow bucket catches everything larger.  An
    observation ``v`` lands in the first bucket whose edge satisfies
    ``v <= edge``.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count", "_lock")

    def __init__(self, name: str, buckets: Sequence[Number],
                 help: str = "", lock: Optional[threading.Lock] = None):
        if not buckets:
            raise ValueError("histogram needs at least one bucket edge")
        edges = tuple(float(b) for b in buckets)
        if list(edges) != sorted(set(edges)):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # +1 overflow
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = lock or threading.Lock()

    def observe(self, value: Number) -> None:
        idx = bisect_right(self.buckets, value)
        if idx > 0 and value == self.buckets[idx - 1]:
            idx -= 1  # edge-inclusive: v == edge lands in that bucket
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding
        the ``q``-th observation (`inf` if it fell in the overflow)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return self.buckets[i] if i < len(self.buckets) else float("inf")
        return float("inf")


class MetricsRegistry:
    """Named instruments, get-or-create, snapshot-able."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create --------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, help)
            return c

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, help)
            return g

    def histogram(self, name: str,
                  buckets: Sequence[Number] = LATENCY_BUCKETS,
                  help: str = "") -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name, buckets, help)
            return h

    # -- output ---------------------------------------------------------
    @staticmethod
    def _quantile_json(h: Histogram, q: float) -> Optional[float]:
        """Bucket quantile, JSON-safe: the overflow bucket's ``inf``
        edge becomes ``None`` (``json.dumps`` emits non-standard
        ``Infinity`` otherwise)."""
        v = h.quantile(q)
        return None if v == float("inf") else v

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable copy of every instrument's current state.

        Histogram entries carry derived ``mean``/``p50``/``p95``/``p99``
        alongside the raw buckets, so consumers (``/metricsz``, trend
        reports) never re-implement the quantile walk.
        """
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = {
                n: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                    "mean": h.mean,
                    "p50": self._quantile_json(h, 0.50),
                    "p95": self._quantile_json(h, 0.95),
                    "p99": self._quantile_json(h, 0.99),
                }
                for n, h in self._histograms.items()
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                list(self._counters) + list(self._gauges)
                + list(self._histograms)
            )
