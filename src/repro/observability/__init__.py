"""End-to-end observability: trace events, metrics, exporters.

The paper's core evidence is overhead accounting — contention,
load-balancing and rollback time per thread over wall-clock time
(Table 1, Figs. 5-6).  This package makes that accounting a first-class
capability of *every* run instead of a per-benchmark re-implementation:

* :mod:`repro.observability.trace` — ring-buffered begin/end/instant
  span events with thread ids and caller-supplied (wall or virtual)
  timestamps, near-zero cost when disabled;
* :mod:`repro.observability.metrics` — a registry of named counters,
  gauges and fixed-bucket histograms that ``runtime.stats`` and the
  simulator feed instead of bypass;
* :mod:`repro.observability.export` — Chrome-trace JSON
  (``chrome://tracing`` / Perfetto loadable) and flat metrics
  JSON / ASCII table renderers used by ``benchmarks/`` and the CLI.

Usage::

    from repro.observability import Observability, ObservabilityConfig

    obs = Observability.from_config(ObservabilityConfig(tracing=True))
    ...  # pass obs into a mesher / refiner
    obs.write_trace("trace.json")
    obs.write_metrics("metrics.json")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.observability.export import (
    chrome_trace,
    metrics_json,
    metrics_table,
    write_chrome_trace,
    write_metrics_json,
)
from repro.observability.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer


@dataclass(frozen=True)
class ObservabilityConfig:
    """What a run should record (carried inside a ``MeshRequest``)."""

    tracing: bool = False
    trace_capacity: int = 65536
    metrics: bool = True

    @classmethod
    def off(cls) -> "ObservabilityConfig":
        return cls(tracing=False, metrics=False)


class Observability:
    """Bundle of one tracer + one metrics registry for a single run."""

    __slots__ = ("tracer", "registry", "config")

    def __init__(self, tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 config: Optional[ObservabilityConfig] = None):
        self.config = config or ObservabilityConfig()
        if tracer is None:
            tracer = (
                Tracer(capacity=self.config.trace_capacity)
                if self.config.tracing else NULL_TRACER
            )
        self.tracer = tracer
        self.registry = registry if registry is not None else MetricsRegistry()

    @classmethod
    def from_config(cls, config: Optional[ObservabilityConfig]
                    ) -> "Observability":
        return cls(config=config or ObservabilityConfig())

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(config=ObservabilityConfig.off())

    # -- convenience ----------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        return self.registry.snapshot()

    def write_trace(self, path: str, process_name: str = "repro") -> None:
        write_chrome_trace(self.tracer, path, process_name)

    def write_metrics(self, path: str,
                      extra: Optional[Dict] = None) -> None:
        write_metrics_json(self.registry, path, extra)


__all__ = [
    "Observability",
    "ObservabilityConfig",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_json",
    "write_metrics_json",
    "metrics_table",
]
