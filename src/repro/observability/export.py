"""Exporters: Chrome-trace JSON and flat metrics JSON / ASCII table.

``chrome://tracing`` (and Perfetto) load the JSON object format::

    {"traceEvents": [{"name": ..., "ph": "B", "ts": <us>, "pid": 0,
                      "tid": <tid>, ...}, ...]}

Timestamps are converted from the tracer's seconds (wall or virtual) to
the microseconds the format requires, so a simulated 176-thread run and
a real 4-thread run open in the same viewer.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import PH_COMPLETE, Tracer


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> Dict:
    """Render the tracer's buffer as a Chrome-trace JSON object."""
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for ev in tracer.events():
        rec: Dict[str, object] = {
            "name": ev.name,
            "ph": ev.ph,
            "ts": ev.ts * 1e6,
            "pid": 0,
            "tid": ev.tid,
        }
        if ev.ph == PH_COMPLETE:
            rec["dur"] = ev.dur * 1e6
        if ev.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
        if ev.args:
            rec["args"] = dict(ev.args)
        events.append(rec)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str,
                       process_name: str = "repro") -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, process_name), fh)


def metrics_json(registry: MetricsRegistry,
                 extra: Optional[Dict] = None) -> Dict:
    """Flat metrics snapshot, optionally merged with run-level extras."""
    doc = registry.snapshot()
    if extra:
        doc["run"] = dict(extra)
    return doc


def write_metrics_json(registry: MetricsRegistry, path: str,
                       extra: Optional[Dict] = None) -> None:
    with open(path, "w") as fh:
        json.dump(metrics_json(registry, extra), fh, indent=2, sort_keys=True)


def metrics_table(registry: MetricsRegistry) -> str:
    """Human-readable ASCII rendering of a metrics snapshot."""
    snap = registry.snapshot()
    lines: List[str] = []
    if snap["counters"]:
        lines.append("counters")
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"  {name:<44} {_fmt(value)}")
    if snap["gauges"]:
        lines.append("gauges")
        for name, value in sorted(snap["gauges"].items()):
            lines.append(f"  {name:<44} {_fmt(value)}")
    if snap["histograms"]:
        lines.append("histograms")
        for name, h in sorted(snap["histograms"].items()):
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name:<44} count={h['count']} mean={mean:.4g}"
            )
            bar = _bucket_bar(h["buckets"], h["counts"])
            if bar:
                lines.append(f"    {bar}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return f"{value:,}"


def _bucket_bar(buckets: List[float], counts: List[int],
                width: int = 40) -> str:
    total = sum(counts)
    if not total:
        return ""
    peak = max(counts)
    cells = []
    blocks = " .:-=+*#%@"
    for c in counts:
        level = 0 if peak == 0 else int((len(blocks) - 1) * c / peak)
        cells.append(blocks[level])
    lo = f"<= {buckets[0]:.3g}"
    hi = f"> {buckets[-1]:.3g}"
    return f"[{''.join(cells[:width])}] {lo} .. {hi}"
