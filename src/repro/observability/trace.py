"""Structured trace events: ring-buffered spans for any refinement run.

The tracer records *begin/end* span pairs, *instant* markers and
pre-timed *complete* events into a fixed-capacity ring buffer, so a
multi-million-operation run keeps the most recent window instead of
exhausting memory.  Timestamps are supplied by the caller (an
:class:`~repro.runtime.context.ExecutionContext` clock), which makes the
same event stream work for real wall-clock threads and for the
simulator's virtual clock — the property that turns Figure 6's one-off
overhead timeline into a general capability.

Cost discipline: a disabled tracer is a shared singleton whose methods
are no-ops, and every hot-path call site additionally guards on
``tracer.enabled`` so the disabled path costs one attribute load.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, NamedTuple, Optional

#: Chrome-trace phase codes used by :class:`TraceEvent`.
PH_BEGIN = "B"
PH_END = "E"
PH_INSTANT = "i"
PH_COMPLETE = "X"


class TraceEvent(NamedTuple):
    """One trace record (timestamps in seconds, real or virtual)."""

    ts: float
    tid: int
    ph: str
    name: str
    dur: float  # only meaningful for PH_COMPLETE events
    args: Optional[Dict[str, object]]


class Tracer:
    """Fixed-capacity ring buffer of :class:`TraceEvent` records.

    Appends are GIL-atomic list operations, so real threads may emit
    concurrently without a lock; the buffer wraps by index once
    ``capacity`` events have been recorded.
    """

    __slots__ = ("enabled", "capacity", "_events", "_next", "_dropped")

    def __init__(self, enabled: bool = True, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.enabled = enabled
        self.capacity = capacity
        self._events: List[Optional[TraceEvent]] = []
        self._next = 0  # ring slot for the next event once wrapped
        self._dropped = 0

    # -- emission ------------------------------------------------------
    def _emit(self, ev: TraceEvent) -> None:
        if len(self._events) < self.capacity:
            self._events.append(ev)
            return
        slot = self._next
        self._events[slot] = ev
        self._next = (slot + 1) % self.capacity
        self._dropped += 1

    def begin(self, name: str, tid: int = 0, ts: Optional[float] = None,
              **args) -> None:
        """Open a span named ``name`` on thread ``tid``."""
        if not self.enabled:
            return
        self._emit(TraceEvent(
            self._now(ts), tid, PH_BEGIN, name, 0.0, args or None
        ))

    def end(self, name: str, tid: int = 0, ts: Optional[float] = None,
            **args) -> None:
        """Close the innermost open span named ``name`` on ``tid``."""
        if not self.enabled:
            return
        self._emit(TraceEvent(
            self._now(ts), tid, PH_END, name, 0.0, args or None
        ))

    def instant(self, name: str, tid: int = 0, ts: Optional[float] = None,
                **args) -> None:
        """Record a zero-duration marker."""
        if not self.enabled:
            return
        self._emit(TraceEvent(
            self._now(ts), tid, PH_INSTANT, name, 0.0, args or None
        ))

    def complete(self, name: str, ts: float, dur: float, tid: int = 0,
                 **args) -> None:
        """Record a span whose duration is already known (one event
        instead of a begin/end pair — half the buffer pressure for the
        per-operation hot path)."""
        if not self.enabled:
            return
        self._emit(TraceEvent(ts, tid, PH_COMPLETE, name, dur, args or None))

    @contextmanager
    def span(self, name: str, tid: int = 0, clock=None) -> Iterator[None]:
        """Context manager emitting a begin/end pair around a block.

        ``clock`` is a zero-argument callable returning seconds;
        defaults to ``time.perf_counter``.
        """
        if not self.enabled:
            yield
            return
        clock = clock or time.perf_counter
        self.begin(name, tid, clock())
        try:
            yield
        finally:
            self.end(name, tid, clock())

    @staticmethod
    def _now(ts: Optional[float]) -> float:
        return time.perf_counter() if ts is None else ts

    # -- inspection ----------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """Events in chronological emission order (oldest first)."""
        if len(self._events) < self.capacity:
            return list(self._events)
        return (self._events[self._next:] + self._events[:self._next])  # type: ignore[operator]

    def __len__(self) -> int:
        return len(self._events)

    @property
    def n_dropped(self) -> int:
        """Events overwritten because the ring wrapped."""
        return self._dropped

    def clear(self) -> None:
        self._events.clear()
        self._next = 0
        self._dropped = 0


class NullTracer(Tracer):
    """Disabled tracer: every emission is a no-op.

    Shared via :data:`NULL_TRACER` so "observability off" costs one
    truthiness check at each call site and allocates nothing.
    """

    def __init__(self):
        super().__init__(enabled=False, capacity=1)

    def _emit(self, ev: TraceEvent) -> None:  # pragma: no cover - guarded
        pass


NULL_TRACER = NullTracer()
