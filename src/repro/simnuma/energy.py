"""Power/energy model for simulated runs (paper Section 8's discussion).

The paper observes that threads idling on contention and begging lists
create an opportunity to drop core frequency and maximise
``Elements / (second x Watt)``.  This model makes that trade-off
computable for any :class:`SimulationResult`:

* busy cycles burn full active power;
* busy-*waiting* burns nearly full power (a spin loop keeps the pipeline
  hot) — unless DVFS is enabled, in which case parked waits drop to a
  low-power state;
* the remainder of each thread's wall time is idle at static power.

Per-core wattages default to an X7560-class part (130 W TDP / 8 cores).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnuma.simrefiner import SimulationResult


@dataclass
class EnergyModel:
    """Per-core power states, in watts."""

    p_active: float = 16.0      # executing refinement work
    p_spin: float = 13.0        # busy-waiting at full frequency
    p_scaled: float = 4.0       # busy-waiting under DVFS / deep C-state
    p_static: float = 2.0       # leakage while otherwise idle

    def energy_joules(self, result: SimulationResult,
                      dvfs: bool = False) -> float:
        """Total energy of the run; waits burn p_spin or p_scaled."""
        wait_power = self.p_scaled if dvfs else self.p_spin
        total = 0.0
        for st in result.thread_stats:
            busy = st.busy_time
            waiting = st.total_overhead
            idle = max(0.0, result.virtual_time - busy - waiting)
            total += (
                busy * self.p_active
                + waiting * wait_power
                + idle * self.p_static
            )
        return total

    def elements_per_joule(self, result: SimulationResult,
                           dvfs: bool = False) -> float:
        """The paper's Elements/(second*Watt) figure of merit."""
        e = self.energy_joules(result, dvfs)
        return result.n_elements / e if e > 0 else 0.0

    def dvfs_saving(self, result: SimulationResult) -> float:
        """Fractional energy saved by scaling frequency during waits."""
        base = self.energy_joules(result, dvfs=False)
        scaled = self.energy_joules(result, dvfs=True)
        return (base - scaled) / base if base > 0 else 0.0
