"""Modeled hardware counters for the hyper-threading study (Table 5).

The paper reads TLB misses, last-level-cache misses and resource stall
cycles from Blacklight's PMU to show that hyper-threading *improves*
core-resource utilisation (all three drop per thread) even where it
slows the run down.  No PMU exists in a simulation, so these counters
are *modeled*: two hardware threads sharing a core overlap their
working sets (the mesh regions they refine are the same locality pool),
which reduces per-thread capacity misses, and they interleave micro-ops,
which reduces stall cycles.  The formulas below encode those mechanisms
with coefficients fitted to reproduce Table 5's direction and rough
magnitude; EXPERIMENTS.md flags them as modeled, not measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnuma.simrefiner import SimulationResult


@dataclass
class HTCounterModel:
    """Relative per-thread deltas of the HT run vs the non-HT run."""

    # Sharing a TLB across two threads working adjacent mesh regions:
    # fewer distinct pages per thread.
    tlb_share_gain: float = 0.16
    # LLC: the co-resident thread prefetches shared mesh structures.
    llc_share_gain: float = 0.42
    # Dual-issue interleaving keeps the pipeline busier.
    stall_gain: float = 0.46
    # Remote traffic pressure erodes the cache benefit as the working
    # set per blade grows (the >64-core regime of Table 5).
    pressure_coeff: float = 0.35

    def deltas(self, ht: SimulationResult, base: SimulationResult,
               registry=None):
        """Return (tlb, llc, stalls) per-thread relative changes.

        Negative values mean the hyper-threaded run had *fewer* misses /
        stalls per thread, which is the paper's (initially surprising)
        observation.  With a ``registry``
        (:class:`repro.observability.MetricsRegistry`) the three deltas
        are also published as ``sim.ht.*`` gauges, so Table 5 reports
        read from the same snapshot as every other metric.
        """
        remote_ht = ht.totals.get("remote_steals", 0) + 1.0
        remote_base = base.totals.get("remote_steals", 0) + 1.0
        pressure = min(1.5, remote_ht / remote_base - 1.0)

        tlb = -self.tlb_share_gain * (1.0 + 0.8 * max(0.0, pressure))
        llc = -self.llc_share_gain * (
            1.0 + self.pressure_coeff * max(0.0, pressure)
        )
        stalls = -self.stall_gain
        # Clamp to plausible ranges.
        out = (
            max(-0.60, min(-0.05, tlb)),
            max(-0.80, min(-0.20, llc)),
            max(-0.55, min(-0.30, stalls)),
        )
        if registry is not None:
            registry.gauge("sim.ht.tlb_miss_delta").set(out[0])
            registry.gauge("sim.ht.llc_miss_delta").set(out[1])
            registry.gauge("sim.ht.resource_stall_delta").set(out[2])
        return out
