"""Utilization reports from simulation results.

Turns a :class:`SimulationResult`'s per-thread statistics into a
terminal utilization summary — how the fleet's time split between
useful work and each overhead category, per thread group — the view
Figure 6 and Table 1 reason about.
"""

from __future__ import annotations

from typing import List

from repro.runtime.stats import OverheadKind
from repro.simnuma.simrefiner import SimulationResult


def utilization_report(result: SimulationResult, group_size: int = 16,
                       width: int = 48) -> str:
    """Stacked per-group utilization bars.

    Each group of ``group_size`` threads gets one bar showing the split
    of its wall time into busy ('#'), contention ('c'), load-balance
    ('l'), rollback ('r') and untracked idle (' ').
    """
    if result.virtual_time <= 0:
        raise ValueError("result has no elapsed time")
    lines = [
        f"utilization over {result.virtual_time:.4f}s x "
        f"{result.n_threads} threads "
        f"({result.n_elements} elements, CM={result.cm_name}, "
        f"LB={result.lb_name})",
        "legend: # busy, c contention, l load-balance, r rollback, . idle",
    ]
    stats = result.thread_stats
    for g0 in range(0, result.n_threads, group_size):
        group = stats[g0:g0 + group_size]
        wall = result.virtual_time * len(group)
        busy = sum(s.busy_time for s in group)
        cont = sum(s.overhead[OverheadKind.CONTENTION] for s in group)
        lb = sum(s.overhead[OverheadKind.LOAD_BALANCE] for s in group)
        rb = sum(s.overhead[OverheadKind.ROLLBACK] for s in group)
        idle = max(0.0, wall - busy - cont - lb - rb)

        def cells(x):
            return round(width * x / wall)

        bar = (
            "#" * cells(busy)
            + "c" * cells(cont)
            + "l" * cells(lb)
            + "r" * cells(rb)
        )
        bar = (bar + "." * width)[:width]
        ops = sum(s.n_operations for s in group)
        lines.append(
            f"t{g0:>4}-{min(result.n_threads, g0 + group_size) - 1:<4} "
            f"|{bar}| {ops} ops"
        )
    totals = result.totals
    lines.append(
        f"totals: {int(totals['operations'])} ops, "
        f"{int(totals['rollbacks'])} rollbacks, "
        f"overhead {totals['total_overhead']:.3f} thread-seconds"
    )
    return "\n".join(lines)
