"""Deterministic cc-NUMA machine simulator (the Blacklight stand-in).

Real 176-core SGI UV hardware is not available to this reproduction, and
CPython cannot exhibit hardware-level parallel scaling natively; per
DESIGN.md the parallel experiments therefore run on this discrete-event
simulator.  Crucially, simulated threads execute the *actual* production
code — the same kernel, contention managers, begging lists and worker
loop as the real-thread backend — against the real shared
triangulation; only time is virtual.  Each simulated thread is a real
Python thread run in lock-step by the engine, so protocol code runs
unmodified, and every run is deterministic given its seed.

The cost model charges operation durations from the work actually
performed (cavity sizes, ball sizes) plus NUMA effects: remote-touch
penalties by socket/blade distance, fat-tree hop latencies (2,000
cycles per hop, Section 6.3), switch congestion, and hyper-threading's
shared-pipeline factor.
"""

from repro.simnuma.costmodel import BLACKLIGHT, CRTC, MachineSpec, NumaCostModel
from repro.simnuma.engine import SimDeadlock, SimEngine, SimLivelock
from repro.simnuma.simrefiner import SimulationResult, _simulate_parallel_refinement

__all__ = [
    "MachineSpec",
    "NumaCostModel",
    "BLACKLIGHT",
    "CRTC",
    "SimEngine",
    "SimLivelock",
    "SimDeadlock",
    "_simulate_parallel_refinement",
    "SimulationResult",
]
