"""Machine specifications and the NUMA latency/congestion cost model.

Machine constants come from the paper's Table 2; the per-hop latency
(2,000 cycles) and the 3-vs-5 hop placement behaviour (allocations up to
8 blades stay under one mid-level switch; larger allocations route near
the fat-tree root) come from Section 6.3.  Operation work constants are
calibrated so a single simulated Blacklight core refines at a rate in
the paper's reported range (~10^5 elements/second single-threaded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.domain import OperationResult
from repro.runtime.placement import Placement


@dataclass(frozen=True)
class MachineSpec:
    """A cc-NUMA machine (paper Table 2)."""

    name: str
    cores_per_socket: int
    sockets_per_blade: int
    n_blades: int
    memory_per_socket_gb: int
    max_hops: int
    clock_hz: float

    def placement(self, n_threads: int, hyperthreading: bool = False
                  ) -> Placement:
        return Placement(
            n_threads=n_threads,
            cores_per_socket=self.cores_per_socket,
            sockets_per_blade=self.sockets_per_blade,
            threads_per_core=2 if hyperthreading else 1,
        )

    @property
    def total_cores(self) -> int:
        return self.cores_per_socket * self.sockets_per_blade * self.n_blades


BLACKLIGHT = MachineSpec(
    name="Blacklight",
    cores_per_socket=8,
    sockets_per_blade=2,
    n_blades=128,
    memory_per_socket_gb=64,
    max_hops=5,
    clock_hz=2.27e9,  # Intel Xeon X7560
)

CRTC = MachineSpec(
    name="CRTC",
    cores_per_socket=6,
    sockets_per_blade=2,
    n_blades=1,
    memory_per_socket_gb=48,
    max_hops=0,
    clock_hz=3.47e9,  # Intel Xeon X5690
)


@dataclass
class NumaCostModel:
    """Charges virtual time for refinement operations.

    All work constants are in cycles.  ``op_cost`` composes compute work
    (proportional to the cavity / ball sizes the operation actually
    touched) with communication work (per-vertex penalties by NUMA
    distance between the toucher and the vertex's creator, amplified by
    switch congestion).
    """

    machine: MachineSpec = BLACKLIGHT
    # compute work
    op_base_cycles: float = 30_000.0
    per_cavity_tet_cycles: float = 8_000.0
    per_new_tet_cycles: float = 6_000.0
    per_removed_vertex_cycles: float = 60_000.0
    classification_cycles: float = 9_000.0
    # communication
    intra_socket_cycles: float = 0.0
    inter_socket_cycles: float = 700.0
    cycles_per_hop: float = 2_000.0  # Section 6.3
    # congestion: leaky bucket of in-flight remote accesses per switch
    switch_service_rate: float = 3.0e6   # remote touches/s a switch absorbs
    congestion_softcap: float = 64.0     # bucket level where latency doubles
    # hyper-threading: two hardware threads share the pipeline
    ht_compute_factor: float = 1.35
    # per-core vertex cache (LLC stand-in): first touch of a remote
    # vertex pays the NUMA latency, re-touches are free
    vertex_cache_capacity: int = 4096

    def hops_between(self, blade_a: int, blade_b: int, n_blades: int) -> int:
        """Fat-tree hop count between blades for this allocation size.

        Jobs spanning at most 8 blades (128 cores) sit under one
        mid-level switch (3 hops blade-to-blade); bigger allocations are
        placed near the root and pay 5 (Section 6.3's observation).
        """
        if blade_a == blade_b:
            return 0
        return 3 if n_blades <= 8 else 5

    def touch_cost_cycles(self, toucher: int, creator: int,
                          placement: Placement, congestion: float) -> float:
        """Penalty for one vertex touch, by NUMA distance."""
        if placement.socket_of(toucher) == placement.socket_of(creator):
            return self.intra_socket_cycles
        b_t = placement.blade_of(toucher)
        b_c = placement.blade_of(creator)
        if b_t == b_c:
            return self.inter_socket_cycles
        hops = self.hops_between(b_t, b_c, placement.n_blades)
        return hops * self.cycles_per_hop * congestion

    def compute_cycles(self, result: Optional[OperationResult],
                       hyperthreading: bool) -> float:
        """Pure compute work of one operation (no communication)."""
        if result is None:  # rolled-back partial work
            cycles = self.op_base_cycles
        else:
            cycles = (
                self.op_base_cycles
                + self.per_cavity_tet_cycles * len(result.killed_tets)
                + self.per_new_tet_cycles * len(result.new_tets)
                + self.per_removed_vertex_cycles * len(result.removed_vertices)
                + self.classification_cycles
            )
        if hyperthreading:
            cycles *= self.ht_compute_factor
        return cycles

    def seconds(self, cycles: float) -> float:
        return cycles / self.machine.clock_hz
