"""Parallel refinement under the simulated cc-NUMA machine.

:func:`_simulate_parallel_refinement` is the single entry point the
scaling and contention-manager benchmarks use (fronted publicly by
``repro.api.mesh`` with a ``simulated`` mesher).  It assembles the real
production components — :class:`RefineDomain`, PELs, a contention
manager, a begging list and the shared worker loop — and runs them on
the discrete-event engine with the Blacklight cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.domain import OperationResult, RefineDomain
from repro.core.pel import PoorElementList
from repro.core.sizing import SizeFunction
from repro.imaging.image import SegmentedImage
from repro.runtime.begging import BeggingList, HierarchicalBeggingList
from repro.runtime.contention import make_contention_manager
from repro.runtime.shared import SharedState
from repro.runtime.stats import ThreadStats, aggregate
from repro.runtime.worker import WorkerEnv, refinement_worker
from repro.simnuma.costmodel import BLACKLIGHT, MachineSpec, NumaCostModel
from repro.simnuma.engine import SimEngine, SimLivelock


@dataclass
class SimulationResult:
    """Everything a scaling table row needs."""

    n_threads: int
    cm_name: str
    lb_name: str
    hyperthreading: bool
    virtual_time: float
    n_elements: int
    n_vertices: int
    thread_stats: List[ThreadStats]
    livelock: bool = False
    totals: Dict[str, float] = field(default_factory=dict)

    @property
    def elements_per_second(self) -> float:
        return self.n_elements / self.virtual_time if self.virtual_time else 0.0

    @property
    def rollbacks(self) -> int:
        return int(self.totals.get("rollbacks", 0))

    @property
    def overhead_per_thread(self) -> float:
        return self.totals.get("total_overhead", 0.0) / max(1, self.n_threads)


def _simulate_parallel_refinement(
    image: SegmentedImage,
    n_threads: int,
    delta: Optional[float] = None,
    size_function: Optional[SizeFunction] = None,
    cm: str = "local",
    lb: str = "hws",
    machine: MachineSpec = BLACKLIGHT,
    cost_model: Optional[NumaCostModel] = None,
    hyperthreading: bool = False,
    seed: int = 0,
    livelock_horizon: float = 5.0,
    livelock_event_horizon: int = 150_000,
    give_threshold: Optional[int] = None,
    domain: Optional[RefineDomain] = None,
    obs=None,
) -> SimulationResult:
    """Simulated cc-NUMA refinement behind ``repro.api.mesh``.

    Returns a :class:`SimulationResult`; on a livelock (possible for the
    aggressive / random contention managers, exactly as in Table 1) the
    result has ``livelock=True`` and carries the statistics accumulated
    up to the watchdog abort.  ``obs`` is an optional
    :class:`repro.observability.Observability` bundle; trace events then
    carry *virtual* timestamps, so the exported Chrome trace shows the
    simulated machine's timeline.
    """
    if domain is None:
        domain = RefineDomain(image, delta=delta, size_function=size_function)
    model = cost_model if cost_model is not None else NumaCostModel(machine=machine)
    placement = machine.placement(n_threads, hyperthreading)
    shared = SharedState(n_threads, obs=obs)
    manager = make_contention_manager(cm, n_threads, shared)
    if lb == "hws":
        begging = HierarchicalBeggingList(n_threads, shared, placement)
    elif lb == "rws":
        begging = BeggingList(n_threads, shared, placement)
    else:
        raise ValueError(f"unknown load balancer {lb!r}; pick 'rws' or 'hws'")

    mesh = domain.tri.mesh
    pels = [PoorElementList(mesh) for _ in range(n_threads)]
    # After the sequential virtual-box step only the main thread has work.
    for t in mesh.live_tets():
        if domain.is_poor(t):
            pels[0].push(t)

    engine = SimEngine(
        n_threads,
        seed=seed,
        progress_fn=lambda: shared.successful_ops,
        livelock_horizon=livelock_horizon,
        livelock_event_horizon=livelock_event_horizon,
        stop_fn=lambda: setattr(shared, "done", True),
        obs=obs,
    )

    creators = domain.vertex_creator
    service_rate = model.switch_service_rate
    softcap = model.congestion_softcap

    # Per-core LRU vertex caches: only the *first* touch of a remote
    # vertex pays the NUMA latency; re-touches of a thread's working set
    # are cache hits, as on real hardware.  Hyper-threads share their
    # core's cache — the same sharing that improves Table 5's modeled
    # LLC behaviour.
    from collections import OrderedDict

    n_cores = max(1, n_threads // placement.threads_per_core)
    caches = [OrderedDict() for _ in range(n_cores)]
    cache_capacity = model.vertex_cache_capacity

    def cost_of(result: Optional[OperationResult], elapsed: float, ctx) -> float:
        comm_cycles = 0.0
        n_remote = 0
        congestion = engine.congestion_multiplier(softcap)
        tid = ctx.thread_id
        my_blade = placement.blade_of(tid)
        cache = caches[placement.core_of(tid) % n_cores]
        for vid in ctx.op_locks:
            if vid in cache:
                cache.move_to_end(vid)
                continue
            creator = creators.get(vid, 0)
            comm_cycles += model.touch_cost_cycles(
                tid, creator, placement, congestion
            )
            if placement.blade_of(creator) != my_blade:
                n_remote += 1
            cache[vid] = None
            if len(cache) > cache_capacity:
                cache.popitem(last=False)
        if n_remote:
            engine.note_remote_touches(n_remote, service_rate)
        cycles = model.compute_cycles(result, hyperthreading) + comm_cycles
        return model.seconds(cycles)

    env = WorkerEnv(
        domain=domain,
        pels=pels,
        cm=manager,
        bl=begging,
        shared=shared,
        placement=placement,
        cost_of=cost_of,
        obs=obs,
    )
    if give_threshold is not None:
        env.give_threshold = give_threshold

    engine.spawn(refinement_worker, env)
    livelock = False
    try:
        total_time = engine.run()
    except SimLivelock:
        livelock = True
        total_time = engine.clock

    stats = [ctx.stats for ctx in engine.contexts]
    registry = obs.registry if obs is not None else None
    totals = aggregate(stats, registry=registry)
    if registry is not None:
        registry.gauge("run.threads").set(n_threads)
        registry.gauge("run.elements").set(mesh.n_live_tets)
        registry.gauge("run.vertices").set(mesh.n_vertices)
        registry.gauge("run.virtual_seconds").set(total_time)
        registry.gauge("run.elements_per_second").set(
            mesh.n_live_tets / total_time if total_time else 0.0
        )
        registry.gauge("run.livelock").set(int(livelock))
    return SimulationResult(
        n_threads=n_threads,
        cm_name=manager.name,
        lb_name=begging.name,
        hyperthreading=hyperthreading,
        virtual_time=total_time,
        n_elements=mesh.n_live_tets,
        n_vertices=mesh.n_vertices,
        thread_stats=stats,
        livelock=livelock,
        totals=totals,
    )
