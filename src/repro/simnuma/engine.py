"""Discrete-event engine running protocol threads in lock-step.

Each simulated thread is a real Python thread, but the engine lets
exactly one run at any instant (semaphore handshake), so the shared
triangulation and all protocol state are race-free while the *virtual*
clock interleaves operations the way a real machine would:

* an operation's vertex locks are held for its whole virtual duration,
  so overlapping operations conflict and roll back exactly as in the
  paper's speculative scheme;
* waits (contention lists, begging lists, Random-CM sleeps) park the
  thread and charge the waited virtual time to the right overhead
  bucket;
* a livelock watchdog aborts runs where virtual time advances without
  any successful operation — the way the paper diagnosed Aggressive-CM
  ("no tetrahedron was refined in the time period of an hour").
"""

from __future__ import annotations

import heapq
import random
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.runtime.context import ExecutionContext
from repro.runtime.stats import OverheadKind, ThreadStats


class SimLivelock(Exception):
    """Virtual time advanced past the watchdog horizon with no progress."""


class SimDeadlock(Exception):
    """All threads are parked and no event can wake any of them."""


class SimMutex:
    """Mutex for protocol code under lock-step execution."""

    def __init__(self, engine: "SimEngine"):
        self._engine = engine
        self._owner = -1

    def acquire(self) -> None:
        ctx = self._engine.current_ctx
        while self._owner not in (-1, ctx.thread_id):
            ctx.wait_until(lambda: self._owner == -1, OverheadKind.CONTENTION)
        self._owner = ctx.thread_id

    def release(self) -> None:
        self._owner = -1


class SimContext(ExecutionContext):
    """Per-thread execution context under the simulator."""

    def __init__(self, engine: "SimEngine", thread_id: int):
        self.engine = engine
        self.thread_id = thread_id
        self.stats = ThreadStats(thread_id=thread_id, obs=engine.obs)
        self.resume_sem = threading.Semaphore(0)
        self.finished = False
        self.op_locks: List[int] = []

    # -- engine handshake ------------------------------------------------
    def _yield(self) -> None:
        if self.engine.aborting:
            return  # run() is unwinding; do not hand control back
        self.engine.engine_sem.release()
        self.resume_sem.acquire()

    def _advance(self, dt: float) -> None:
        self.engine.schedule(self.engine.clock + dt, "resume", self.thread_id)
        self._yield()

    # -- ExecutionContext ------------------------------------------------
    def try_lock_vertex(self, vid: int) -> int:
        table = self.engine.lock_owner
        owner = table.get(vid, -1)
        if owner == -1:
            table[vid] = self.thread_id
            self.op_locks.append(vid)
            return -1
        if owner == self.thread_id:
            return -1
        return owner

    def commit_operation(self, cost: float) -> None:
        self.stats.busy_time += cost
        locks, self.op_locks = self.op_locks, []
        self.engine.schedule(
            self.engine.clock + cost, "release_locks", locks
        )
        self._advance(cost)

    def abort_operation(self, wasted_cost: float) -> None:
        self.stats.n_operations += 0  # rollbacks counted by the worker
        self.stats.add_overhead(
            OverheadKind.ROLLBACK, wasted_cost, self.engine.clock
        )
        locks, self.op_locks = self.op_locks, []
        self.engine.schedule(
            self.engine.clock + wasted_cost, "release_locks", locks
        )
        self._advance(wasted_cost)

    def now(self) -> float:
        return self.engine.clock

    def wait_until(self, predicate: Callable[[], bool],
                   kind: OverheadKind) -> None:
        if predicate():
            return
        self.engine.park(self.thread_id, predicate, kind)
        self._yield()

    def sleep(self, seconds: float, kind: OverheadKind) -> None:
        self.stats.add_overhead(kind, seconds, self.engine.clock)
        self._advance(seconds)

    def charge(self, seconds: float) -> None:
        self.stats.busy_time += seconds
        self._advance(seconds)

    def make_mutex(self):
        return SimMutex(self.engine)

    def random(self) -> float:
        return self.engine.rng.random()


class SimEngine:
    """The event loop.  Construct, :meth:`spawn` workers, :meth:`run`."""

    def __init__(self, n_threads: int, seed: int = 0,
                 progress_fn: Optional[Callable[[], int]] = None,
                 livelock_horizon: float = 5.0,
                 livelock_event_horizon: int = 400_000,
                 stop_fn: Optional[Callable[[], None]] = None,
                 obs=None):
        self.stop_fn = stop_fn
        # Observability bundle (must be set before contexts are built:
        # each SimContext wires it into its ThreadStats).
        self.obs = obs
        self.aborting = False
        self.livelock_event_horizon = livelock_event_horizon
        self._events_processed = 0
        self._last_progress_event = 0
        self.n_threads = n_threads
        self.clock = 0.0
        self.rng = random.Random(seed)
        self.engine_sem = threading.Semaphore(0)
        self.contexts = [SimContext(self, tid) for tid in range(n_threads)]
        self.current_ctx: Optional[SimContext] = None
        self.lock_owner: Dict[int, int] = {}
        self._heap: List[Tuple[float, int, str, object]] = []
        self._seq = 0
        self._parked: Dict[int, Tuple[Callable[[], bool], OverheadKind, float]] = {}
        self._threads: List[threading.Thread] = []
        self.errors: List[Tuple[int, BaseException]] = []
        # livelock watchdog
        self.progress_fn = progress_fn
        self.livelock_horizon = livelock_horizon
        self._last_progress_value = -1
        self._last_progress_clock = 0.0
        # congestion: leaky bucket of recent remote touches
        self._bucket_level = 0.0
        self._bucket_clock = 0.0

    # -- congestion accounting (used by the cost model closure) ----------
    def note_remote_touches(self, n: int, service_rate: float) -> None:
        dt = self.clock - self._bucket_clock
        self._bucket_level = max(0.0, self._bucket_level - dt * service_rate)
        self._bucket_level += n
        self._bucket_clock = self.clock

    def congestion_multiplier(self, softcap: float) -> float:
        return 1.0 + self._bucket_level / softcap

    # -- scheduling -------------------------------------------------------
    def schedule(self, when: float, kind: str, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, kind, payload))

    def park(self, tid: int, predicate, kind: OverheadKind) -> None:
        self._parked[tid] = (predicate, kind, self.clock)

    def _wake_ready(self) -> None:
        ready = [
            tid for tid, (pred, _, _) in self._parked.items() if pred()
        ]
        for tid in ready:
            pred, kind, since = self._parked.pop(tid)
            self.contexts[tid].stats.add_overhead(
                kind, self.clock - since, self.clock
            )
            self.schedule(self.clock, "resume", tid)

    # -- lifecycle ----------------------------------------------------------
    def spawn(self, worker: Callable, *args) -> None:
        """Create the real threads, one per simulated thread."""
        for ctx in self.contexts:
            th = threading.Thread(
                target=self._thread_body, args=(ctx, worker, args),
                daemon=True,
            )
            self._threads.append(th)
            th.start()

    def _thread_body(self, ctx: SimContext, worker: Callable, args) -> None:
        ctx.resume_sem.acquire()
        try:
            worker(ctx, *args)
        except BaseException as exc:  # noqa: BLE001 - surfaced in run()
            self.errors.append((ctx.thread_id, exc))
        ctx.finished = True
        self.engine_sem.release()

    def run(self) -> float:
        """Drive events until every thread finishes; returns final clock."""
        for tid in range(self.n_threads):
            self.schedule(0.0, "resume", tid)

        n_finished = 0
        while n_finished < self.n_threads:
            if not self._heap:
                self._wake_ready()
                if not self._heap:
                    parked = sorted(self._parked)
                    raise SimDeadlock(
                        f"no events and threads {parked} are parked"
                    )
                continue
            when, _, kind, payload = heapq.heappop(self._heap)
            if when > self.clock:
                self.clock = when
            if kind == "release_locks":
                for vid in payload:
                    self.lock_owner.pop(vid, None)
                continue
            # kind == "resume"
            tid = payload
            ctx = self.contexts[tid]
            if ctx.finished:
                continue
            self.current_ctx = ctx
            was_finished = ctx.finished
            ctx.resume_sem.release()
            self.engine_sem.acquire()
            if ctx.finished and not was_finished:
                n_finished += 1
            if self.errors:
                self._release_everything()
                tid_err, exc = self.errors[0]
                raise RuntimeError(
                    f"simulated thread {tid_err} raised: {exc!r}"
                ) from exc
            self._wake_ready()
            self._check_livelock()
        if self.obs is not None:
            self.obs.registry.gauge("engine.events_processed").set(
                self._events_processed
            )
            self.obs.registry.gauge("engine.virtual_seconds").set(self.clock)
        return self.clock

    def _check_livelock(self) -> None:
        if self.progress_fn is None:
            return
        self._events_processed += 1
        value = self.progress_fn()
        if value != self._last_progress_value:
            self._last_progress_value = value
            self._last_progress_clock = self.clock
            self._last_progress_event = self._events_processed
            return
        stalled_time = self.clock - self._last_progress_clock
        stalled_events = self._events_processed - self._last_progress_event
        if (stalled_time > self.livelock_horizon
                or stalled_events > self.livelock_event_horizon):
            if self.obs is not None:
                self.obs.registry.counter("engine.livelocks").inc()
                if self.obs.tracer.enabled:
                    self.obs.tracer.instant(
                        "engine.livelock", 0, self.clock,
                        stalled_time=stalled_time,
                        stalled_events=stalled_events,
                    )
            self._release_everything()
            raise SimLivelock(
                f"no successful operation for {stalled_time:.3f} virtual "
                f"seconds / {stalled_events} events "
                f"(t={self.clock:.3f}s)"
            )

    def _release_everything(self) -> None:
        """Unblock every thread so the process can exit after a failure.

        ``stop_fn`` (typically setting the fleet's done flag) runs first
        so resumed workers fall out of their loops instead of racing on
        the shared mesh."""
        self.aborting = True
        if self.stop_fn is not None:
            self.stop_fn()
        for ctx in self.contexts:
            ctx.resume_sem.release()
        for th in self._threads:
            th.join(timeout=5.0)
