"""Tetrahedral mesh writers/readers."""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

from repro.core.extract import ExtractedMesh


def save_vtk(mesh: ExtractedMesh, path: str, title: str = "PI2M mesh") -> None:
    """Write a legacy-ASCII VTK unstructured grid with tissue labels."""
    with open(path, "w") as f:
        f.write("# vtk DataFile Version 3.0\n")
        f.write(title[:255] + "\n")
        f.write("ASCII\nDATASET UNSTRUCTURED_GRID\n")
        f.write(f"POINTS {mesh.n_vertices} double\n")
        for p in mesh.vertices:
            f.write(f"{p[0]:.17g} {p[1]:.17g} {p[2]:.17g}\n")
        f.write(f"CELLS {mesh.n_tets} {mesh.n_tets * 5}\n")
        for tet in mesh.tets:
            f.write(f"4 {tet[0]} {tet[1]} {tet[2]} {tet[3]}\n")
        f.write(f"CELL_TYPES {mesh.n_tets}\n")
        f.write("10\n" * mesh.n_tets)  # VTK_TETRA
        f.write(f"CELL_DATA {mesh.n_tets}\n")
        f.write("SCALARS tissue int 1\nLOOKUP_TABLE default\n")
        for lab in mesh.tet_labels:
            f.write(f"{int(lab)}\n")


def save_tetgen(mesh: ExtractedMesh, basename: str) -> None:
    """Write TetGen's ``.node`` + ``.ele`` pair (1-based indices)."""
    with open(basename + ".node", "w") as f:
        f.write(f"{mesh.n_vertices} 3 0 0\n")
        for i, p in enumerate(mesh.vertices, start=1):
            f.write(f"{i} {p[0]:.17g} {p[1]:.17g} {p[2]:.17g}\n")
    with open(basename + ".ele", "w") as f:
        f.write(f"{mesh.n_tets} 4 1\n")
        for i, (tet, lab) in enumerate(
            zip(mesh.tets, mesh.tet_labels), start=1
        ):
            f.write(
                f"{i} {tet[0] + 1} {tet[1] + 1} {tet[2] + 1} {tet[3] + 1} "
                f"{int(lab)}\n"
            )


def load_tetgen(basename: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read a ``.node``/``.ele`` pair back as (vertices, tets, labels)."""
    with open(basename + ".node") as f:
        n, dim, _, _ = (int(x) for x in f.readline().split())
        if dim != 3:
            raise ValueError(f"expected 3D nodes, got dim={dim}")
        verts = np.empty((n, 3), dtype=np.float64)
        for _ in range(n):
            parts = f.readline().split()
            verts[int(parts[0]) - 1] = [float(x) for x in parts[1:4]]
    with open(basename + ".ele") as f:
        header = f.readline().split()
        m = int(header[0])
        has_attr = len(header) > 2 and int(header[2]) > 0
        tets = np.empty((m, 4), dtype=np.int64)
        labels = np.zeros(m, dtype=np.int32)
        for _ in range(m):
            parts = f.readline().split()
            i = int(parts[0]) - 1
            tets[i] = [int(x) - 1 for x in parts[1:5]]
            if has_attr:
                labels[i] = int(float(parts[5]))
    return verts, tets, labels


def save_off_surface(mesh: ExtractedMesh, path: str) -> None:
    """Write the boundary triangles as an OFF surface mesh."""
    used = sorted({int(v) for face in mesh.boundary_faces for v in face})
    remap = {v: i for i, v in enumerate(used)}
    with open(path, "w") as f:
        f.write("OFF\n")
        f.write(f"{len(used)} {len(mesh.boundary_faces)} 0\n")
        for v in used:
            p = mesh.vertices[v]
            f.write(f"{p[0]:.17g} {p[1]:.17g} {p[2]:.17g}\n")
        for face in mesh.boundary_faces:
            f.write(f"3 {remap[int(face[0])]} {remap[int(face[1])]} "
                    f"{remap[int(face[2])]}\n")
