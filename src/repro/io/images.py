"""Segmented-image persistence (compressed npz container)."""

from __future__ import annotations

import numpy as np

from repro.imaging.image import SegmentedImage


def save_image_npz(image: SegmentedImage, path: str) -> None:
    """Save labels + spacing + origin to a compressed ``.npz``."""
    np.savez_compressed(
        path,
        labels=image.labels,
        spacing=np.asarray(image.spacing, dtype=np.float64),
        origin=np.asarray(image.origin, dtype=np.float64),
    )


def load_image_npz(path: str) -> SegmentedImage:
    """Load an image saved by :func:`save_image_npz`."""
    with np.load(path) as data:
        return SegmentedImage(
            data["labels"],
            spacing=tuple(data["spacing"]),
            origin=tuple(data["origin"]),
        )
