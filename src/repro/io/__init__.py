"""Mesh and image exchange formats.

Writers for the formats the paper's ecosystem uses: legacy VTK (what
the paper's figures were rendered from), TetGen's ``.node``/``.ele``
pair (the PLC handoff of Section 7's TetGen comparison), OFF surface
meshes, and a compressed ``.npz`` container for segmented images.
"""

from repro.io.images import load_image_npz, save_image_npz
from repro.io.meshes import (
    load_tetgen,
    save_off_surface,
    save_tetgen,
    save_vtk,
)

__all__ = [
    "save_vtk",
    "save_tetgen",
    "load_tetgen",
    "save_off_surface",
    "save_image_npz",
    "load_image_npz",
]
