"""Exact Euclidean distance transform with a feature transform.

The refinement needs, for any point, the *surface voxel closest to it*
(Section 3: "the EDT returns the surface voxel q which is closest to
p").  The paper uses the parallel Maurer filter of Staubs et al. [56];
we implement the same dimension-by-dimension exact-EDT family using the
Felzenszwalb-Huttenlocher lower-envelope scan per axis, extended to
carry the argmin voxel index (the feature transform) and to support
anisotropic voxel spacing.

Two drivers are provided:

* :func:`euclidean_feature_transform` — sequential;
* :func:`euclidean_feature_transform_parallel` — the same passes with the
  independent 1D scans distributed over a thread pool, matching the
  row-parallel structure of the Maurer filter (each pass is
  embarrassingly parallel across lines).  CPython threads only overlap
  in numpy kernels, so the speedup is modest; the *structure* is what
  the paper's pre-processing step prescribes, and the simulator charges
  it as the linearly-scaling phase the paper reports.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

_INF = math.inf


@dataclass
class EDTResult:
    """Squared distances and nearest-site indices for every voxel.

    ``feature[i, j, k]`` is the flat index (C order) of the nearest site
    voxel; ``dist2`` is the squared anisotropic Euclidean distance
    between voxel centers.  ``shape`` and ``spacing`` echo the input.
    """

    dist2: np.ndarray
    feature: np.ndarray
    shape: Tuple[int, int, int]
    spacing: Tuple[float, float, float]

    def nearest_site_index(self, idx: Sequence[int]) -> Tuple[int, int, int]:
        """Nearest site voxel (3-index) for voxel ``idx``."""
        flat = int(self.feature[tuple(idx)])
        return tuple(int(x) for x in np.unravel_index(flat, self.shape))


def _scan_line(f: np.ndarray, feat: np.ndarray, w2: float) -> None:
    """One 1D lower-envelope pass, in place.

    ``f`` holds the current squared distances along the line, ``feat``
    the carried feature ids.  After the call, ``f[i]`` is
    ``min_j (i-j)^2 * w2 + f_in[j]`` and ``feat[i]`` the feature of the
    minimising ``j``.  Classic Felzenszwalb-Huttenlocher parabolas.
    """
    n = f.shape[0]
    # Work on plain Python lists: elementwise numpy indexing boxes a
    # scalar per access and dominates the runtime of this hot loop.
    f_in = f.tolist()
    feat_in = feat.tolist()
    finite = [q for q in range(n) if f_in[q] != _INF]
    if not finite:
        return  # no sites reach this line yet; distances stay infinite

    m = len(finite)
    v = [0] * m          # parabola vertex positions
    z = [0.0] * (m + 1)  # envelope breakpoints
    k = 0
    v[0] = finite[0]
    z[0] = -_INF
    z[1] = _INF
    inv2w2 = 1.0 / (2.0 * w2)
    for qi in range(1, m):
        q = finite[qi]
        fq_lift = f_in[q] + q * q * w2
        while True:
            p = v[k]
            s = (fq_lift - (f_in[p] + p * p * w2)) * inv2w2 / (q - p)
            if s <= z[k]:
                k -= 1
            else:
                break
        k += 1
        v[k] = q
        z[k] = s
        z[k + 1] = _INF

    out_f = [0.0] * n
    out_feat = [0] * n
    k = 0
    for q in range(n):
        while z[k + 1] < q:
            k += 1
        p = v[k]
        out_f[q] = (q - p) * (q - p) * w2 + f_in[p]
        out_feat[q] = feat_in[p]
    f[:] = out_f
    feat[:] = out_feat


def _pass_axis(dist2: np.ndarray, feat: np.ndarray, axis: int, w: float,
               pool: Optional[ThreadPoolExecutor]) -> None:
    """Run the 1D envelope scan over every line along ``axis``."""
    w2 = w * w
    # Basic slicing keeps views for any axis (a moveaxis+reshape would
    # silently copy for non-last axes and the pass would mutate the copy).
    other = [a for a in range(3) if a != axis]
    shape = dist2.shape
    indexers = []
    for u in range(shape[other[0]]):
        for v in range(shape[other[1]]):
            key = [slice(None)] * 3
            key[other[0]] = u
            key[other[1]] = v
            indexers.append(tuple(key))
    n_lines = len(indexers)

    def run(lo: int, hi: int) -> None:
        for r in range(lo, hi):
            key = indexers[r]
            line_d = dist2[key]
            line_f = feat[key]
            _scan_line(line_d, line_f, w2)

    if pool is None:
        run(0, n_lines)
    else:
        n_chunks = pool._max_workers * 4
        step = max(1, (n_lines + n_chunks - 1) // n_chunks)
        futures = [
            pool.submit(run, lo, min(lo + step, n_lines))
            for lo in range(0, n_lines, step)
        ]
        for fut in futures:
            fut.result()


def _feature_transform(sites: np.ndarray, spacing, pool) -> EDTResult:
    sites = np.asarray(sites, dtype=bool)
    if sites.ndim != 3:
        raise ValueError("sites mask must be 3D")
    shape = sites.shape
    dist2 = np.where(sites, 0.0, _INF)
    feat = np.where(
        sites, np.arange(sites.size, dtype=np.int64).reshape(shape), -1
    )
    for axis in range(3):
        _pass_axis(dist2, feat, axis, float(spacing[axis]), pool)
    return EDTResult(
        dist2=dist2,
        feature=feat,
        shape=tuple(shape),
        spacing=tuple(float(s) for s in spacing),
    )


def euclidean_feature_transform(
    sites: np.ndarray, spacing: Sequence[float] = (1.0, 1.0, 1.0)
) -> EDTResult:
    """Exact anisotropic EDT + feature transform of a boolean site mask.

    Raises ``ValueError`` when the mask contains no sites.
    """
    if not np.any(sites):
        raise ValueError("feature transform of an empty site mask")
    return _feature_transform(sites, spacing, pool=None)


def euclidean_feature_transform_parallel(
    sites: np.ndarray,
    spacing: Sequence[float] = (1.0, 1.0, 1.0),
    n_workers: int = 4,
) -> EDTResult:
    """Thread-parallel variant: each axis pass fans its independent 1D
    scans out over ``n_workers`` threads (the Maurer-filter structure)."""
    if not np.any(sites):
        raise ValueError("feature transform of an empty site mask")
    if n_workers <= 1:
        return _feature_transform(sites, spacing, pool=None)
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        return _feature_transform(sites, spacing, pool)
