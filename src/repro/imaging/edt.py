"""Exact Euclidean distance transform with a feature transform.

The refinement needs, for any point, the *surface voxel closest to it*
(Section 3: "the EDT returns the surface voxel q which is closest to
p").  The paper uses the parallel Maurer filter of Staubs et al. [56];
we implement the same dimension-by-dimension exact-EDT family using the
Felzenszwalb-Huttenlocher lower-envelope scan per axis, extended to
carry the argmin voxel index (the feature transform) and to support
anisotropic voxel spacing.

Two drivers are provided:

* :func:`euclidean_feature_transform` — sequential;
* :func:`euclidean_feature_transform_parallel` — the same passes with the
  independent 1D scans distributed over a thread pool, matching the
  row-parallel structure of the Maurer filter (each pass is
  embarrassingly parallel across lines).  CPython threads only overlap
  in numpy kernels, so the speedup is modest; the *structure* is what
  the paper's pre-processing step prescribes, and the simulator charges
  it as the linearly-scaling phase the paper reports.

When scipy is importable (the normal case — it is a dependency of the
imaging stack) both drivers delegate to ``scipy.ndimage``'s exact EDT
and rebuild ``dist2``/``feature`` from the returned nearest-site
indices, which is orders of magnitude faster than the Python scan at
clinical volume sizes.  Set ``REPRO_EDT=python`` to force the reference
implementation.

Both drivers consult an optional process-wide *feature-transform cache*
(:func:`set_feature_transform_cache`), keyed by the content of the site
mask and the voxel spacing.  The meshing service installs one so that
requests sharing an image never recompute the EDT; outside the service
the hook is a no-op.  Per-key in-flight locks guarantee at most one
compute per distinct mask even under concurrent callers, and the
module-level :data:`CACHE_STATS` counters (hits / misses / computes)
feed the service's ``edt.*`` metrics.
"""

from __future__ import annotations

import hashlib
import math
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

_INF = math.inf


@dataclass
class EDTResult:
    """Squared distances and nearest-site indices for every voxel.

    ``feature[i, j, k]`` is the flat index (C order) of the nearest site
    voxel; ``dist2`` is the squared anisotropic Euclidean distance
    between voxel centers.  ``shape`` and ``spacing`` echo the input.
    """

    dist2: np.ndarray
    feature: np.ndarray
    shape: Tuple[int, int, int]
    spacing: Tuple[float, float, float]

    def nearest_site_index(self, idx: Sequence[int]) -> Tuple[int, int, int]:
        """Nearest site voxel (3-index) for voxel ``idx``."""
        flat = int(self.feature[tuple(idx)])
        return tuple(int(x) for x in np.unravel_index(flat, self.shape))


def _scan_line_lists(f_in: list, feat_in: list, w2: float):
    """One 1D lower-envelope pass over plain Python lists.

    ``f_in`` holds the current squared distances along the line,
    ``feat_in`` the carried feature ids.  Returns ``(out_f, out_feat)``
    where ``out_f[i]`` is ``min_j (i-j)^2 * w2 + f_in[j]`` and
    ``out_feat[i]`` the feature of the minimising ``j``, or ``None``
    when no site reaches the line yet (distances stay infinite).
    Classic Felzenszwalb-Huttenlocher parabolas.
    """
    n = len(f_in)
    finite = [q for q in range(n) if f_in[q] != _INF]
    if not finite:
        return None

    m = len(finite)
    v = [0] * m          # parabola vertex positions
    z = [0.0] * (m + 1)  # envelope breakpoints
    k = 0
    v[0] = finite[0]
    z[0] = -_INF
    z[1] = _INF
    inv2w2 = 1.0 / (2.0 * w2)
    for qi in range(1, m):
        q = finite[qi]
        fq_lift = f_in[q] + q * q * w2
        while True:
            p = v[k]
            s = (fq_lift - (f_in[p] + p * p * w2)) * inv2w2 / (q - p)
            if s <= z[k]:
                k -= 1
            else:
                break
        k += 1
        v[k] = q
        z[k] = s
        z[k + 1] = _INF

    out_f = [0.0] * n
    out_feat = [0] * n
    k = 0
    for q in range(n):
        while z[k + 1] < q:
            k += 1
        p = v[k]
        out_f[q] = (q - p) * (q - p) * w2 + f_in[p]
        out_feat[q] = feat_in[p]
    return out_f, out_feat


def _scan_line(f: np.ndarray, feat: np.ndarray, w2: float) -> None:
    """In-place 1D envelope pass on numpy line views (scalar shim)."""
    out = _scan_line_lists(f.tolist(), feat.tolist(), w2)
    if out is None:
        return
    f[:] = out[0]
    feat[:] = out[1]


def _pass_axis(dist2: np.ndarray, feat: np.ndarray, axis: int, w: float,
               pool: Optional[ThreadPoolExecutor]) -> None:
    """Run the 1D envelope scan over every line along ``axis``.

    Lines are batched per 2D slab: one ``.tolist()`` and one write-back
    covers a whole plane of lines, amortising the numpy boxing overhead
    that a per-line conversion pays ``shape[u] * shape[v]`` times.  The
    per-line arithmetic (``_scan_line_lists``) is unchanged, so results
    are bit-identical to the row-at-a-time formulation.
    """
    w2 = w * w
    # Fix one non-scan dimension per slab, chosen so the scan axis is
    # the slab's *last* dimension whenever possible (tolist() rows are
    # then the scan lines).  Only axis 0 needs a transpose.  Basic
    # slicing keeps views, so the write-back mutates the real arrays.
    fix_dim = 0 if axis == 2 else 2
    transpose = axis == 0
    n_slabs = dist2.shape[fix_dim]

    def run(lo: int, hi: int) -> None:
        key = [slice(None)] * 3
        for u in range(lo, hi):
            key[fix_dim] = u
            skey = tuple(key)
            slab_d = dist2[skey]
            slab_f = feat[skey]
            rows_d = (slab_d.T if transpose else slab_d).tolist()
            rows_f = (slab_f.T if transpose else slab_f).tolist()
            changed = False
            for r in range(len(rows_d)):
                out = _scan_line_lists(rows_d[r], rows_f[r], w2)
                if out is not None:
                    rows_d[r], rows_f[r] = out
                    changed = True
            if not changed:
                continue  # no sites reach this slab; leave it infinite
            if transpose:
                slab_d[:] = np.asarray(rows_d, dtype=np.float64).T
                slab_f[:] = np.asarray(rows_f, dtype=np.int64).T
            else:
                slab_d[:] = rows_d
                slab_f[:] = rows_f

    if pool is None:
        run(0, n_slabs)
    else:
        n_chunks = pool._max_workers * 4
        step = max(1, (n_slabs + n_chunks - 1) // n_chunks)
        futures = [
            pool.submit(run, lo, min(lo + step, n_slabs))
            for lo in range(0, n_slabs, step)
        ]
        for fut in futures:
            fut.result()


def _feature_transform(sites: np.ndarray, spacing, pool) -> EDTResult:
    sites = np.asarray(sites, dtype=bool)
    if sites.ndim != 3:
        raise ValueError("sites mask must be 3D")
    shape = sites.shape
    dist2 = np.where(sites, 0.0, _INF)
    feat = np.where(
        sites, np.arange(sites.size, dtype=np.int64).reshape(shape), -1
    )
    for axis in range(3):
        _pass_axis(dist2, feat, axis, float(spacing[axis]), pool)
    return EDTResult(
        dist2=dist2,
        feature=feat,
        shape=tuple(shape),
        spacing=tuple(float(s) for s in spacing),
    )


# ---------------------------------------------------------------------------
# scipy fast path
# ---------------------------------------------------------------------------

try:  # scipy is already a hard dependency of the repo's imaging stack
    from scipy import ndimage as _ndimage
except ImportError:  # pragma: no cover - degraded environments only
    _ndimage = None


def _use_scipy() -> bool:
    """Whether the scipy-backed transform should run.

    ``REPRO_EDT=python`` forces the pure-Python lower-envelope scan
    (useful for benchmarking the reference implementation or chasing a
    suspected backend discrepancy); anything else uses scipy when
    importable.
    """
    return (
        _ndimage is not None
        and os.environ.get("REPRO_EDT", "").lower() != "python"
    )


def _feature_transform_scipy(sites: np.ndarray, spacing) -> EDTResult:
    """scipy.ndimage-backed exact EDT with the same result contract.

    ``distance_transform_edt(~sites, return_indices=True)`` yields the
    3-index of the nearest site per voxel; ``dist2`` is rebuilt from
    those indices in float64 (exact squared anisotropic distance — no
    sqrt/square round-trip) and ``feature`` is the C-order flat index.
    Semantics match the pure-Python scan exactly except that equidistant
    ties may resolve to a different, equally-nearest site.
    """
    sites = np.asarray(sites, dtype=bool)
    if sites.ndim != 3:
        raise ValueError("sites mask must be 3D")
    shape = sites.shape
    idx = _ndimage.distance_transform_edt(
        ~sites,
        sampling=[float(s) for s in spacing],
        return_distances=False,
        return_indices=True,
    )
    dist2 = np.zeros(shape, dtype=np.float64)
    for axis in range(3):
        coord = np.arange(shape[axis], dtype=np.float64).reshape(
            [-1 if a == axis else 1 for a in range(3)]
        )
        d = (idx[axis].astype(np.float64) - coord) * float(spacing[axis])
        dist2 += d * d
    feature = np.ravel_multi_index(tuple(idx), shape).astype(np.int64)
    return EDTResult(
        dist2=dist2,
        feature=feature,
        shape=tuple(shape),
        spacing=tuple(float(s) for s in spacing),
    )


def _compute_transform(sites: np.ndarray, spacing, pool) -> EDTResult:
    if _use_scipy():
        return _feature_transform_scipy(sites, spacing)
    return _feature_transform(sites, spacing, pool)


# ---------------------------------------------------------------------------
# feature-transform cache hook
# ---------------------------------------------------------------------------

class EDTCacheStats:
    """Process-wide counters for the feature-transform cache hook."""

    __slots__ = ("_lock", "hits", "misses", "computes")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.computes = 0

    def _inc(self, field: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "computes": self.computes,
            }

    def reset(self) -> None:
        with self._lock:
            self.hits = self.misses = self.computes = 0


#: Hit/miss/compute counters; the meshing service republishes them as
#: ``edt.cache.*`` metrics.  ``computes`` counts every full transform,
#: cached or not, so "EDT ran exactly once" is directly assertable.
CACHE_STATS = EDTCacheStats()

_CACHE: Optional[object] = None  # get(key)->Optional[EDTResult], put(key, r)
_CACHE_GUARD = threading.Lock()
_INFLIGHT: Dict[str, threading.Lock] = {}


def set_feature_transform_cache(cache: Optional[object]) -> Optional[object]:
    """Install (or clear, with ``None``) the process-wide EDT cache.

    ``cache`` needs two methods: ``get(key) -> Optional[EDTResult]`` and
    ``put(key, result) -> None``.  Returns the previously installed
    cache so callers can restore it.
    """
    global _CACHE
    with _CACHE_GUARD:
        previous = _CACHE
        _CACHE = cache
        return previous


def feature_transform_key(sites: np.ndarray,
                          spacing: Sequence[float]) -> str:
    """Content key of one feature-transform problem.

    Hashes the site mask bytes, its shape and the spacing — everything
    that determines the transform's output (the worker count does not).
    """
    sites = np.ascontiguousarray(np.asarray(sites, dtype=bool))
    h = hashlib.blake2b(digest_size=20)
    h.update(repr(sites.shape).encode())
    h.update(repr(tuple(float(s) for s in spacing)).encode())
    h.update(sites.tobytes())
    return h.hexdigest()


def _inflight_lock(key: str) -> threading.Lock:
    with _CACHE_GUARD:
        lock = _INFLIGHT.get(key)
        if lock is None:
            lock = _INFLIGHT[key] = threading.Lock()
        return lock


def _compute_via_cache(sites: np.ndarray, spacing: Sequence[float],
                       compute: Callable[[], EDTResult]) -> EDTResult:
    cache = _CACHE
    if cache is None:
        CACHE_STATS._inc("computes")
        return compute()
    key = feature_transform_key(sites, spacing)
    hit = cache.get(key)
    if hit is not None:
        CACHE_STATS._inc("hits")
        return hit
    # Serialise concurrent computes of the same mask: the loser of the
    # race finds the winner's artifact on the double-check.
    with _inflight_lock(key):
        hit = cache.get(key)
        if hit is not None:
            CACHE_STATS._inc("hits")
            return hit
        CACHE_STATS._inc("misses")
        CACHE_STATS._inc("computes")
        result = compute()
        cache.put(key, result)
    with _CACHE_GUARD:
        _INFLIGHT.pop(key, None)
    return result


def euclidean_feature_transform(
    sites: np.ndarray, spacing: Sequence[float] = (1.0, 1.0, 1.0)
) -> EDTResult:
    """Exact anisotropic EDT + feature transform of a boolean site mask.

    Raises ``ValueError`` when the mask contains no sites.
    """
    if not np.any(sites):
        raise ValueError("feature transform of an empty site mask")
    return _compute_via_cache(
        sites, spacing, lambda: _compute_transform(sites, spacing, pool=None)
    )


def euclidean_feature_transform_parallel(
    sites: np.ndarray,
    spacing: Sequence[float] = (1.0, 1.0, 1.0),
    n_workers: int = 4,
) -> EDTResult:
    """Thread-parallel variant: each axis pass fans its independent 1D
    scans out over ``n_workers`` threads (the Maurer-filter structure)."""
    if not np.any(sites):
        raise ValueError("feature transform of an empty site mask")
    if n_workers <= 1:
        return euclidean_feature_transform(sites, spacing)

    def compute() -> EDTResult:
        if _use_scipy():
            # scipy's C kernel beats any thread fan-out of the Python
            # scan; both drivers share it so seq == par bit-for-bit.
            return _feature_transform_scipy(sites, spacing)
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            return _feature_transform(sites, spacing, pool)

    return _compute_via_cache(sites, spacing, compute)
