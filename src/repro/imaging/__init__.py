"""Image substrate: segmented images, synthetic atlases, EDT, isosurfaces.

The paper meshes *multi-label segmented images* directly.  This package
provides everything the refinement needs from the imaging side:

* :class:`~repro.imaging.image.SegmentedImage` — a voxel grid of tissue
  labels with anisotropic spacing and world-coordinate transforms;
* synthetic multi-label phantoms standing in for the IRCAD / SPL atlases
  the paper uses (which cannot be redistributed);
* an exact Euclidean Distance Transform with a nearest-surface-voxel
  feature transform (the paper's parallel Maurer filter [56]), including
  a thread-parallel variant;
* isosurface geometry: surface-voxel detection, closest-isosurface-point
  queries and Voronoi-edge surface-center computation (Section 3).
"""

from repro.imaging.edt import EDTResult, euclidean_feature_transform
from repro.imaging.image import SegmentedImage
from repro.imaging.isosurface import SurfaceOracle, surface_voxel_mask
from repro.imaging.labelmaps import (
    compactify_labels,
    crop_to_foreground,
    fill_label_holes,
    relabel,
    remove_small_components,
    resample_isotropic,
)
from repro.imaging.synthetic import (
    abdominal_phantom,
    ball_grid_phantom,
    head_neck_phantom,
    knee_phantom,
    near_duplicate_phantom,
    shell_phantom,
    sphere_phantom,
    two_spheres_phantom,
    vascular_phantom,
)

__all__ = [
    "SegmentedImage",
    "EDTResult",
    "euclidean_feature_transform",
    "SurfaceOracle",
    "surface_voxel_mask",
    "sphere_phantom",
    "ball_grid_phantom",
    "near_duplicate_phantom",
    "shell_phantom",
    "two_spheres_phantom",
    "abdominal_phantom",
    "knee_phantom",
    "head_neck_phantom",
    "vascular_phantom",
    "relabel",
    "compactify_labels",
    "crop_to_foreground",
    "remove_small_components",
    "fill_label_holes",
    "resample_isotropic",
]
