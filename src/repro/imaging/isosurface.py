"""Isosurface geometry queries against a segmented image.

Implements the Section 3 machinery:

* *surface voxels* — foreground voxels with at least one 6-neighbor of a
  different label (image-boundary foreground voxels count: the outside
  is background);
* *closest isosurface point* — given a point ``p``, the EDT feature
  transform yields the nearest surface voxel ``q``; the segment ``p-q``
  (extended through ``q``) is marched in small intervals and the exact
  crossing is refined by bisection between the two differing labels
  (paper's interpolation step [57]);
* *surface centers* — the intersection of a Voronoi edge ``V(f)`` with
  the isosurface, computed by the same march/bisection along the edge.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.imaging.edt import (
    EDTResult,
    euclidean_feature_transform,
    euclidean_feature_transform_parallel,
)
from repro.imaging.image import SegmentedImage

Point = Tuple[float, float, float]


def surface_voxel_mask(image: SegmentedImage) -> np.ndarray:
    """Boolean mask of surface voxels.

    A voxel is a surface voxel when it is foreground and at least one of
    its six face neighbors carries a different label; voxels on the image
    border compare against implicit background outside.
    """
    lab = image.labels
    fg = lab > 0
    differs = np.zeros(lab.shape, dtype=bool)
    for axis in range(3):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(None, -1)
        hi[axis] = slice(1, None)
        neq = lab[tuple(lo)] != lab[tuple(hi)]
        differs[tuple(lo)] |= neq
        differs[tuple(hi)] |= neq
        # Image border: outside is background.
        edge_lo = [slice(None)] * 3
        edge_lo[axis] = 0
        differs[tuple(edge_lo)] |= lab[tuple(edge_lo)] != 0
        edge_hi = [slice(None)] * 3
        edge_hi[axis] = lab.shape[axis] - 1
        differs[tuple(edge_hi)] |= lab[tuple(edge_hi)] != 0
    return fg & differs


class SurfaceOracle:
    """Answers closest-isosurface-point and surface-crossing queries.

    Builds the surface-voxel feature transform once (the paper's EDT
    pre-processing step) and then answers queries in roughly constant
    time per query.
    """

    def __init__(self, image: SegmentedImage, n_workers: int = 1):
        self.image = image
        self.surface_mask = surface_voxel_mask(image)
        if not self.surface_mask.any():
            raise ValueError("image has no surface voxels (empty foreground?)")
        if n_workers > 1:
            self.edt: EDTResult = euclidean_feature_transform_parallel(
                self.surface_mask, image.spacing, n_workers=n_workers
            )
        else:
            self.edt = euclidean_feature_transform(
                self.surface_mask, image.spacing
            )
        self._march_step = 0.25 * image.min_spacing

    # ------------------------------------------------------------------
    def nearest_surface_voxel(self, p: Sequence[float]) -> Point:
        """World center of the surface voxel nearest to ``p``."""
        idx = self.image.voxel_of(p)
        site = self.edt.nearest_site_index(idx)
        return self.image.voxel_center(site)

    def closest_surface_point(self, p: Sequence[float]) -> Optional[Point]:
        """A point on the isosurface close to ``p`` (Section 3's p-hat).

        Marches the ray from ``p`` through the nearest surface voxel and
        refines the first label crossing by bisection.  Returns ``None``
        when no crossing is found (degenerate query far outside the
        image).
        """
        q = self.nearest_surface_voxel(p)
        d = (q[0] - p[0], q[1] - p[1], q[2] - p[2])
        length = math.sqrt(d[0] * d[0] + d[1] * d[1] + d[2] * d[2])
        overshoot = 2.0 * max(self.image.spacing)
        if length == 0.0:
            # p sits exactly on a surface voxel center: a label change
            # lies within one voxel in at least one axis direction (that
            # is what makes the voxel a surface voxel).
            sp = self.image.spacing
            for axis in range(3):
                for sign in (1.0, -1.0):
                    d = [0.0, 0.0, 0.0]
                    d[axis] = sign * sp[axis]
                    hit = self._march_segment(
                        p, tuple(d), sp[axis] + overshoot, sp[axis]
                    )
                    if hit is not None:
                        return hit
            return None
        # Extend past q: the actual label interface lies within one voxel
        # of the surface voxel center.
        return self._march_segment(
            p, d, length + overshoot, length
        )

    def surface_crossing(self, a: Sequence[float], b: Sequence[float]
                         ) -> Optional[Point]:
        """First isosurface crossing on segment ``a``-``b`` (or ``None``).

        This is the primitive behind surface centers: the Voronoi edge of
        a facet is the segment between the circumcenters of its two
        tetrahedra, and its intersection with the isosurface is the
        surface center ``c_surf(f)`` (rule R3).
        """
        d = (b[0] - a[0], b[1] - a[1], b[2] - a[2])
        length = math.sqrt(d[0] * d[0] + d[1] * d[1] + d[2] * d[2])
        if length == 0.0:
            return None
        return self._march_segment(a, d, length, length)

    # ------------------------------------------------------------------
    def _march_segment(self, a, d, march_length, d_length) -> Optional[Point]:
        """March from ``a`` along ``d`` (of length ``d_length``) up to
        ``march_length``, bisecting the first label change."""
        label_at = self.image.label_at
        step = self._march_step
        inv = 1.0 / d_length
        ux, uy, uz = d[0] * inv, d[1] * inv, d[2] * inv
        n_steps = max(1, int(math.ceil(march_length / step)))
        prev_t = 0.0
        prev_label = label_at(a)
        for k in range(1, n_steps + 1):
            t = min(k * step, march_length)
            pt = (a[0] + ux * t, a[1] + uy * t, a[2] + uz * t)
            lab = label_at(pt)
            if lab != prev_label:
                return self._bisect(a, (ux, uy, uz), prev_t, t, prev_label)
            prev_t = t
            prev_label = lab
        return None

    def _bisect(self, a, u, t_lo, t_hi, lab_lo) -> Point:
        """Bisection refinement of a label crossing to ~1e-3 voxel."""
        label_at = self.image.label_at
        tol = 1e-3 * self.image.min_spacing
        while t_hi - t_lo > tol:
            mid = 0.5 * (t_lo + t_hi)
            pt = (a[0] + u[0] * mid, a[1] + u[1] * mid, a[2] + u[2] * mid)
            if label_at(pt) == lab_lo:
                t_lo = mid
            else:
                t_hi = mid
        t = 0.5 * (t_lo + t_hi)
        return (a[0] + u[0] * t, a[1] + u[1] * t, a[2] + u[2] * t)
