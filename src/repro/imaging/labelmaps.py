"""Segmentation preprocessing utilities.

Clinical label maps rarely arrive mesh-ready: they carry stray islands
of mislabeled voxels (the paper's Table 6 discussion blames its
imperfect Hausdorff numbers on "isolated clusters of voxels which seem
to be artifacts of the segmentation"), non-contiguous label ids, excess
background margins, and anisotropic spacing.  These helpers cover that
pre-meshing cleanup.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.imaging.image import SegmentedImage


def relabel(image: SegmentedImage, mapping: Dict[int, int]) -> SegmentedImage:
    """Apply a label mapping (ids not in ``mapping`` pass through).

    Use to merge tissues (``{3: 2}``), drop them (``{4: 0}``) or
    renumber.  Mapping background (0) to a tissue is rejected.
    """
    if mapping.get(0, 0) != 0:
        raise ValueError("background (0) cannot be relabeled to a tissue")
    out = image.labels.copy()
    for src, dst in mapping.items():
        out[image.labels == src] = dst
    return SegmentedImage(out, image.spacing, image.origin)


def compactify_labels(image: SegmentedImage) -> SegmentedImage:
    """Renumber tissues to 1..n in order of first appearance."""
    out = np.zeros_like(image.labels)
    next_id = 1
    for lab in np.unique(image.labels):
        if lab == 0:
            continue
        out[image.labels == lab] = next_id
        next_id += 1
    return SegmentedImage(out, image.spacing, image.origin)


def crop_to_foreground(image: SegmentedImage, margin_voxels: int = 2
                       ) -> SegmentedImage:
    """Trim background borders down to ``margin_voxels`` around tissue.

    Keeps world coordinates consistent by shifting the origin.
    """
    fg = np.argwhere(image.labels > 0)
    if fg.size == 0:
        raise ValueError("image has no foreground to crop to")
    lo = np.maximum(fg.min(axis=0) - margin_voxels, 0)
    hi = np.minimum(fg.max(axis=0) + 1 + margin_voxels, image.shape)
    cropped = image.labels[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]
    origin = tuple(
        image.origin[i] + lo[i] * image.spacing[i] for i in range(3)
    )
    return SegmentedImage(cropped, image.spacing, origin)


def remove_small_components(image: SegmentedImage, min_voxels: int
                            ) -> SegmentedImage:
    """Delete connected tissue components smaller than ``min_voxels``.

    Exactly the "isolated clusters of voxels" cleanup the paper wishes
    its inputs had; per-label 6-connectivity.
    """
    if min_voxels <= 0:
        raise ValueError("min_voxels must be positive")
    out = image.labels.copy()
    structure = ndimage.generate_binary_structure(3, 1)
    for lab in np.unique(image.labels):
        if lab == 0:
            continue
        comp, n = ndimage.label(image.labels == lab, structure=structure)
        if n <= 1:
            continue
        sizes = ndimage.sum_labels(
            np.ones_like(comp), comp, index=np.arange(1, n + 1)
        )
        for cid, size in enumerate(sizes, start=1):
            if size < min_voxels:
                out[comp == cid] = 0
    return SegmentedImage(out, image.spacing, image.origin)


def fill_label_holes(image: SegmentedImage) -> SegmentedImage:
    """Fill background cavities fully enclosed inside a single tissue.

    Background components that do not touch the image border and whose
    entire voxel neighborhood is one tissue get that tissue's label
    (segmentation pinholes); multi-tissue cavities are left alone.
    """
    lab = image.labels
    out = lab.copy()
    structure = ndimage.generate_binary_structure(3, 1)
    comp, n = ndimage.label(lab == 0, structure=structure)
    border_ids = set(np.unique(comp[0, :, :])) | set(np.unique(comp[-1, :, :]))
    border_ids |= set(np.unique(comp[:, 0, :])) | set(np.unique(comp[:, -1, :]))
    border_ids |= set(np.unique(comp[:, :, 0])) | set(np.unique(comp[:, :, -1]))
    dilated = {}
    for cid in range(1, n + 1):
        if cid in border_ids:
            continue
        mask = comp == cid
        ring = ndimage.binary_dilation(mask, structure=structure) & ~mask
        neighbors = set(np.unique(lab[ring])) - {0}
        if len(neighbors) == 1:
            out[mask] = neighbors.pop()
    return SegmentedImage(out, image.spacing, image.origin)


def resample_isotropic(image: SegmentedImage,
                       voxel: Optional[float] = None) -> SegmentedImage:
    """Nearest-neighbor resample onto an isotropic grid.

    ``voxel`` defaults to the finest input spacing.  Useful before
    meshing CT stacks whose slice spacing dwarfs the in-plane spacing
    (the paper's abdominal atlas is 0.96 x 0.96 x 2.4 mm).
    """
    if voxel is None:
        voxel = image.min_spacing
    if voxel <= 0:
        raise ValueError("voxel size must be positive")
    new_shape = tuple(
        max(1, int(round(image.shape[i] * image.spacing[i] / voxel)))
        for i in range(3)
    )
    idx = [
        np.minimum(
            ((np.arange(new_shape[i]) + 0.5) * voxel / image.spacing[i])
            .astype(np.int64),
            image.shape[i] - 1,
        )
        for i in range(3)
    ]
    out = image.labels[np.ix_(idx[0], idx[1], idx[2])]
    return SegmentedImage(out, (voxel, voxel, voxel), image.origin)
