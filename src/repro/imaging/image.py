"""Multi-label segmented 3D images with world-coordinate transforms.

A :class:`SegmentedImage` wraps an integer label volume together with the
voxel spacing and origin, mirroring the medical images the paper meshes
(Table 3 lists sizes like 512x512x219 at 0.96x0.96x2.4 mm).  Label 0 is
background; any positive label is a tissue.  Voxel centers sit at
``origin + (i + 0.5) * spacing`` so the image occupies the world box
``[origin, origin + shape * spacing]``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

Point = Tuple[float, float, float]


class SegmentedImage:
    """A 3D multi-label segmented image.

    Parameters
    ----------
    labels:
        Integer array of shape ``(nx, ny, nz)``; 0 is background.
    spacing:
        Physical voxel size per axis (supports anisotropy, e.g. CT slices).
    origin:
        World coordinate of the image box corner (not the first voxel
        center).
    """

    def __init__(self, labels: np.ndarray,
                 spacing: Sequence[float] = (1.0, 1.0, 1.0),
                 origin: Sequence[float] = (0.0, 0.0, 0.0)):
        labels = np.asarray(labels)
        if labels.ndim != 3:
            raise ValueError(f"labels must be 3D, got shape {labels.shape}")
        if not np.issubdtype(labels.dtype, np.integer):
            raise ValueError("labels must be an integer array")
        self.labels = np.ascontiguousarray(labels, dtype=np.int16)
        self.spacing = tuple(float(s) for s in spacing)
        if any(s <= 0 for s in self.spacing):
            raise ValueError(f"spacing must be positive, got {self.spacing}")
        self.origin = tuple(float(o) for o in origin)
        self.shape = self.labels.shape

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n_labels(self) -> int:
        """Number of distinct non-background labels present."""
        vals = np.unique(self.labels)
        return int((vals > 0).sum())

    @property
    def min_spacing(self) -> float:
        return min(self.spacing)

    def bounds(self) -> Tuple[Point, Point]:
        """World-space box ``(lo, hi)`` occupied by the image."""
        lo = self.origin
        hi = tuple(
            self.origin[i] + self.shape[i] * self.spacing[i] for i in range(3)
        )
        return lo, hi

    def foreground_bounds(self) -> Tuple[Point, Point]:
        """Tight world-space box around the non-background voxels."""
        fg = np.argwhere(self.labels > 0)
        if fg.size == 0:
            raise ValueError("image has no foreground voxels")
        lo_idx = fg.min(axis=0)
        hi_idx = fg.max(axis=0) + 1
        lo = tuple(
            self.origin[i] + lo_idx[i] * self.spacing[i] for i in range(3)
        )
        hi = tuple(
            self.origin[i] + hi_idx[i] * self.spacing[i] for i in range(3)
        )
        return lo, hi

    # ------------------------------------------------------------------
    # coordinate transforms
    # ------------------------------------------------------------------
    def voxel_of(self, p: Sequence[float]) -> Tuple[int, int, int]:
        """Index of the voxel containing world point ``p`` (clamped)."""
        ox, oy, oz = self.origin
        sx, sy, sz = self.spacing
        nx, ny, nz = self.shape
        # Relative coordinates are clamped at 0 first, so plain int()
        # truncation equals floor on the surviving range.
        rx = (p[0] - ox) / sx
        ry = (p[1] - oy) / sy
        rz = (p[2] - oz) / sz
        i = 0 if rx <= 0.0 else int(rx)
        j = 0 if ry <= 0.0 else int(ry)
        k = 0 if rz <= 0.0 else int(rz)
        if i >= nx:
            i = nx - 1
        if j >= ny:
            j = ny - 1
        if k >= nz:
            k = nz - 1
        return (i, j, k)

    def voxel_center(self, idx: Sequence[int]) -> Point:
        """World coordinate of the center of voxel ``idx``."""
        return tuple(
            self.origin[i] + (idx[i] + 0.5) * self.spacing[i] for i in range(3)
        )

    def label_at(self, p: Sequence[float]) -> int:
        """Label of the voxel containing world point ``p``.

        Points outside the image volume are background (0).  This sits
        on the refinement's hottest path (isosurface marching), hence
        the inlined arithmetic.
        """
        ox, oy, oz = self.origin
        sx, sy, sz = self.spacing
        nx, ny, nz = self.shape
        rx = (p[0] - ox) / sx
        if rx < 0.0 or rx >= nx:
            return 0
        ry = (p[1] - oy) / sy
        if ry < 0.0 or ry >= ny:
            return 0
        rz = (p[2] - oz) / sz
        if rz < 0.0 or rz >= nz:
            return 0
        return self.labels[int(rx), int(ry), int(rz)]

    def is_inside(self, p: Sequence[float]) -> bool:
        """True when ``p`` falls in a foreground (non-zero label) voxel."""
        return self.label_at(p) != 0

    def labels_at_many(self, pts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`label_at` for an ``(n, 3)`` array of points."""
        pts = np.asarray(pts, dtype=float)
        rel = (pts - np.array(self.origin)) / np.array(self.spacing)
        idx = np.floor(rel).astype(np.int64)
        in_bounds = np.all(
            (rel >= 0) & (idx < np.array(self.shape)), axis=1
        )
        idx_clamped = np.clip(idx, 0, np.array(self.shape) - 1)
        out = self.labels[
            idx_clamped[:, 0], idx_clamped[:, 1], idx_clamped[:, 2]
        ].astype(np.int32)
        out[~in_bounds] = 0
        return out

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentedImage(shape={self.shape}, spacing={self.spacing}, "
            f"labels={self.n_labels})"
        )
