"""Synthetic multi-label phantoms standing in for the paper's atlases.

The paper's inputs — the IRCAD CT abdominal atlas and the SPL MR knee /
CT head-neck atlases — are clinical segmentations that cannot be bundled
here.  These procedural phantoms reproduce their *structural* character
for the meshing algorithm: several nested and adjacent tissues, thin
curved structures, tissues of very different volumes, and anisotropic
spacing.  All generators are deterministic and resolution-parameterised.

Label maps are built by painting primitives in order, later primitives
overwriting earlier ones (the way clinical segmentations nest organs
inside the body envelope).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.imaging.image import SegmentedImage


def _grid(shape: Tuple[int, int, int], spacing, origin):
    """World coordinates of all voxel centers, as three broadcast arrays."""
    ax = [
        origin[i] + (np.arange(shape[i]) + 0.5) * spacing[i] for i in range(3)
    ]
    return np.meshgrid(*ax, indexing="ij", sparse=True)


class PhantomBuilder:
    """Paints labelled solids into a voxel volume, in order."""

    def __init__(self, shape: Sequence[int],
                 spacing: Sequence[float] = (1.0, 1.0, 1.0),
                 origin: Sequence[float] = (0.0, 0.0, 0.0)):
        self.shape = tuple(int(n) for n in shape)
        self.spacing = tuple(float(s) for s in spacing)
        self.origin = tuple(float(o) for o in origin)
        self.labels = np.zeros(self.shape, dtype=np.int16)
        self._x, self._y, self._z = _grid(self.shape, self.spacing, self.origin)

    # -- primitives ----------------------------------------------------
    def ball(self, center, radius, label):
        m = (
            (self._x - center[0]) ** 2
            + (self._y - center[1]) ** 2
            + (self._z - center[2]) ** 2
        ) <= radius ** 2
        self.labels[m] = label
        return self

    def ellipsoid(self, center, radii, label):
        m = (
            ((self._x - center[0]) / radii[0]) ** 2
            + ((self._y - center[1]) / radii[1]) ** 2
            + ((self._z - center[2]) / radii[2]) ** 2
        ) <= 1.0
        self.labels[m] = label
        return self

    def shell(self, center, r_outer, r_inner, label):
        d2 = (
            (self._x - center[0]) ** 2
            + (self._y - center[1]) ** 2
            + (self._z - center[2]) ** 2
        )
        m = (d2 <= r_outer ** 2) & (d2 >= r_inner ** 2)
        self.labels[m] = label
        return self

    def capsule(self, p0, p1, radius, label):
        """Cylinder with spherical caps between world points p0 and p1."""
        p0 = np.asarray(p0, dtype=float)
        p1 = np.asarray(p1, dtype=float)
        d = p1 - p0
        L2 = float(d @ d)
        vx = self._x - p0[0]
        vy = self._y - p0[1]
        vz = self._z - p0[2]
        t = (vx * d[0] + vy * d[1] + vz * d[2]) / (L2 if L2 > 0 else 1.0)
        t = np.clip(t, 0.0, 1.0)
        dx = vx - t * d[0]
        dy = vy - t * d[1]
        dz = vz - t * d[2]
        m = (dx * dx + dy * dy + dz * dz) <= radius ** 2
        self.labels[m] = label
        return self

    def torus(self, center, ring_radius, tube_radius, label, axis=2):
        """Torus around ``axis`` through ``center``."""
        c = center
        coords = [self._x - c[0], self._y - c[1], self._z - c[2]]
        h = coords.pop(axis)
        u, v = coords
        ring = np.sqrt(u * u + v * v) - ring_radius
        m = (ring * ring + h * h) <= tube_radius ** 2
        self.labels[m] = label
        return self

    def box(self, lo, hi, label):
        m = (
            (self._x >= lo[0]) & (self._x <= hi[0])
            & (self._y >= lo[1]) & (self._y <= hi[1])
            & (self._z >= lo[2]) & (self._z <= hi[2])
        )
        self.labels[m] = label
        return self

    def build(self) -> SegmentedImage:
        return SegmentedImage(self.labels, self.spacing, self.origin)


# ----------------------------------------------------------------------
# simple phantoms (unit tests, quickstart)
# ----------------------------------------------------------------------
def sphere_phantom(n: int = 32, radius_frac: float = 0.35) -> SegmentedImage:
    """A single ball of tissue 1 centred in an ``n**3`` volume."""
    b = PhantomBuilder((n, n, n))
    c = (n / 2.0, n / 2.0, n / 2.0)
    b.ball(c, radius_frac * n, 1)
    return b.build()


def shell_phantom(n: int = 32) -> SegmentedImage:
    """Nested tissues: ball of label 2 inside a shell of label 1."""
    b = PhantomBuilder((n, n, n))
    c = (n / 2.0, n / 2.0, n / 2.0)
    b.ball(c, 0.4 * n, 1)
    b.ball(c, 0.22 * n, 2)
    return b.build()


def two_spheres_phantom(n: int = 32) -> SegmentedImage:
    """Two touching tissues of different labels (multi-material junction)."""
    b = PhantomBuilder((n, n, n))
    r = 0.22 * n
    b.ball((n / 2.0 - r, n / 2.0, n / 2.0), r, 1)
    b.ball((n / 2.0 + r, n / 2.0, n / 2.0), r, 2)
    return b.build()


def ball_grid_phantom(n: int = 48, side: int = 2) -> SegmentedImage:
    """A ``side**3`` grid of separated balls (domain-sharding workload).

    Each ball sits in its own octant-like cell with clear space between
    them, so a block decomposition can cut along the gaps: the natural
    stress case for sharded meshing, where most work is interior to a
    block and only the seams need stitching.  Labels cycle 1..3 so the
    phantom also exercises multi-material extraction.
    """
    b = PhantomBuilder((n, n, n))
    step = n / side
    r = 0.30 * step
    k = 0
    for i in range(side):
        for j in range(side):
            for l in range(side):
                c = ((i + 0.5) * step, (j + 0.5) * step, (l + 0.5) * step)
                b.ball(c, r, 1 + (k % 3))
                k += 1
    return b.build()


def near_duplicate_phantom(n: int = 48,
                           inclusion_shift: float = 0.0) -> SegmentedImage:
    """A 2x2x2 ball grid plus one small off-grid inclusion ball.

    The pair ``near_duplicate_phantom(n)`` /
    ``near_duplicate_phantom(n, inclusion_shift=2.0)`` differs only
    where the inclusion moved — well under 1% of voxels at the default
    size — which is the incremental-meshing workload: on the shifted
    image only the block containing the inclusion changes content, the
    other blocks replay from the block cache and stitching stays
    seam-local.  The inclusion sits away from the grid balls and away
    from the occupancy-median cut planes so a small shift does not move
    the decomposition.
    """
    b = PhantomBuilder((n, n, n))
    step = n / 2.0
    r = 0.25 * step
    lab = 1
    for i in range(2):
        for j in range(2):
            for k in range(2):
                c = ((i + 0.5) * step, (j + 0.5) * step, (k + 0.5) * step)
                b.ball(c, r, lab)
                lab = lab % 3 + 1
    b.ball((0.1875 * n, 0.1875 * n, 0.5 * n + inclusion_shift),
           0.0625 * n, 2)
    return b.build()


# ----------------------------------------------------------------------
# atlas-like phantoms (benchmarks; see DESIGN.md substitution table)
# ----------------------------------------------------------------------
def abdominal_phantom(n: int = 48) -> SegmentedImage:
    """CT-abdomen-like phantom (IRCAD stand-in).

    Anisotropic spacing like the paper's abdominal atlas (0.96/0.96/2.4),
    a large body envelope, a liver-like ellipsoid, two kidneys, a spine
    column and an aorta tube.
    """
    shape = (n, n, max(8, int(n * 0.45)))
    spacing = (1.0, 1.0, 2.4 / 0.96)
    b = PhantomBuilder(shape, spacing)
    cx, cy = n / 2.0, n / 2.0
    cz = shape[2] * spacing[2] / 2.0
    # body envelope
    b.ellipsoid((cx, cy, cz), (0.45 * n, 0.38 * n, 0.48 * shape[2] * spacing[2]), 1)
    # liver: big ellipsoid, right side
    b.ellipsoid((cx + 0.18 * n, cy + 0.05 * n, cz + 0.1 * cz),
                (0.2 * n, 0.16 * n, 0.35 * cz), 2)
    # kidneys
    b.ellipsoid((cx - 0.22 * n, cy - 0.12 * n, cz), (0.07 * n, 0.05 * n, 0.25 * cz), 3)
    b.ellipsoid((cx + 0.22 * n, cy - 0.12 * n, cz - 0.2 * cz),
                (0.07 * n, 0.05 * n, 0.25 * cz), 3)
    # spine
    b.capsule((cx, cy - 0.25 * n, 0.1 * cz), (cx, cy - 0.25 * n, 1.9 * cz),
              0.06 * n, 4)
    # aorta
    b.capsule((cx - 0.05 * n, cy - 0.1 * n, 0.1 * cz),
              (cx - 0.05 * n, cy - 0.1 * n, 1.9 * cz), 0.025 * n, 5)
    return b.build()


def knee_phantom(n: int = 48) -> SegmentedImage:
    """MR-knee-like phantom (SPL knee atlas stand-in).

    Two long bones meeting at a joint, cartilage pads between them, a
    patella, and a soft-tissue envelope; thin spacing in-plane and
    thicker slices like the SPL atlas (0.27/0.27/1.4).
    """
    shape = (n, n, int(n * 1.2))
    spacing = (1.0, 1.0, 1.4 / 0.8)
    b = PhantomBuilder(shape, spacing)
    cx, cy = n / 2.0, n / 2.0
    zmax = shape[2] * spacing[2]
    zjoint = zmax / 2.0
    # soft tissue envelope
    b.capsule((cx, cy, 0.08 * zmax), (cx, cy, 0.92 * zmax), 0.42 * n, 1)
    # femur from the top, tibia from the bottom
    b.capsule((cx, cy, 0.1 * zmax), (cx, cy, zjoint - 0.08 * zmax), 0.16 * n, 2)
    b.capsule((cx + 0.02 * n, cy, zjoint + 0.08 * zmax),
              (cx + 0.02 * n, cy, 0.9 * zmax), 0.15 * n, 3)
    # cartilage pads (thin discs at the joint line)
    b.capsule((cx, cy, zjoint - 0.045 * zmax), (cx, cy, zjoint - 0.02 * zmax),
              0.17 * n, 4)
    b.capsule((cx + 0.02 * n, cy, zjoint + 0.02 * zmax),
              (cx + 0.02 * n, cy, zjoint + 0.045 * zmax), 0.16 * n, 4)
    # patella
    b.ball((cx, cy + 0.3 * n, zjoint), 0.09 * n, 5)
    return b.build()


def vascular_phantom(n: int = 48, levels: int = 3) -> SegmentedImage:
    """A bifurcating vessel tree inside a tissue block.

    Stands in for the paper's blood-flow motivation ("patient-specific
    blood flow simulations for the prevention and treatment of stroke"):
    thin, branching, high-curvature tubes are the hardest structures for
    isosurface-based meshing.  ``levels`` controls the bifurcation depth.
    """
    shape = (n, n, n)
    b = PhantomBuilder(shape)
    c = n / 2.0
    # surrounding tissue block
    b.ellipsoid((c, c, c), (0.45 * n, 0.45 * n, 0.47 * n), 1)

    def branch(p0, direction, length, radius, depth):
        d = np.asarray(direction, dtype=float)
        d /= np.linalg.norm(d)
        p1 = tuple(p0[i] + d[i] * length for i in range(3))
        b.capsule(p0, p1, radius, 2)
        if depth <= 0 or radius < 0.6:
            return
        # two children, deterministic splay in alternating planes
        axis = depth % 3
        for sign in (+1.0, -1.0):
            child = d.copy()
            child[axis] += sign * 0.8
            branch(p1, child, 0.72 * length, 0.7 * radius, depth - 1)

    branch((c, c, 0.08 * n), (0.0, 0.0, 1.0), 0.3 * n, 0.06 * n, levels)
    return b.build()


def head_neck_phantom(n: int = 48) -> SegmentedImage:
    """CT-head-neck-like phantom (SPL head-neck atlas stand-in).

    A skull shell around a brain, a neck column with airway and
    vertebrae, and a mandible-ish torus — small tissues with little
    volume, the property the paper calls out for the head-neck atlas.
    """
    shape = (n, n, int(n * 0.9))
    spacing = (1.0, 1.0, 1.4 / 0.97)
    b = PhantomBuilder(shape, spacing)
    cx, cy = n / 2.0, n / 2.0
    zmax = shape[2] * spacing[2]
    zhead = 0.65 * zmax
    # neck soft tissue
    b.capsule((cx, cy, 0.05 * zmax), (cx, cy, zhead), 0.22 * n, 1)
    # head envelope
    b.ball((cx, cy, zhead), 0.38 * n, 1)
    # skull shell
    b.shell((cx, cy, zhead), 0.34 * n, 0.28 * n, 2)
    # brain
    b.ball((cx, cy, zhead), 0.27 * n, 3)
    # vertebrae (stack of small capsules)
    for k in range(4):
        z0 = (0.08 + 0.12 * k) * zmax
        b.capsule((cx, cy - 0.1 * n, z0), (cx, cy - 0.1 * n, z0 + 0.07 * zmax),
                  0.05 * n, 4)
    # airway (carved back to background: a hole through the neck)
    b.capsule((cx, cy + 0.08 * n, 0.05 * zmax), (cx, cy + 0.08 * n, 0.6 * zmax),
              0.03 * n, 0)
    # mandible-ish torus segment
    b.torus((cx, cy + 0.05 * n, zhead - 0.3 * n), 0.18 * n, 0.04 * n, 5)
    return b.build()
