"""Final mesh extraction (paper Figure 1c / Algorithm 1 line 49).

The final mesh ``M`` is the set of tetrahedra whose circumcenter lies
inside the object ``O``; the boundary of ``M`` is the set of facets
between kept and discarded tetrahedra, which by the restricted-Delaunay
construction approximates the isosurface with the Theorem 1 guarantees.
Multi-label images keep a tissue label per element (the label at the
circumcenter) so FE solvers can assign per-tissue material properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.domain import RefineDomain
from repro.delaunay.mesh import HULL


@dataclass
class ExtractedMesh:
    """Array-of-structs output mesh.

    ``vertices`` is float64 ``(nv, 3)``; ``tets`` int64 ``(nt, 4)`` into
    ``vertices``; ``tet_labels`` int32 ``(nt,)``; ``boundary_faces``
    int64 ``(nf, 3)``; ``boundary_labels`` int32 ``(nf, 2)`` giving the
    labels on the kept / discarded side of each boundary facet.
    """

    vertices: np.ndarray
    tets: np.ndarray
    tet_labels: np.ndarray
    boundary_faces: np.ndarray
    boundary_labels: np.ndarray

    @property
    def n_tets(self) -> int:
        return len(self.tets)

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    def tet_points(self, i: int):
        return [tuple(self.vertices[v]) for v in self.tets[i]]

    def face_points(self, i: int):
        return [tuple(self.vertices[v]) for v in self.boundary_faces[i]]


def extract_mesh(domain: RefineDomain) -> ExtractedMesh:
    """Collect the tetrahedra whose circumcenter lies inside the object."""
    tri = domain.tri
    mesh = tri.mesh
    image = domain.image

    keep: Dict[int, int] = {}  # tet -> label
    for t in mesh.live_tets():
        c, _ = domain.circumball(t)
        lab = image.label_at(c)
        if lab != 0:
            keep[t] = lab

    vmap: Dict[int, int] = {}
    vertices: List[Tuple[float, float, float]] = []

    def remap(v: int) -> int:
        new = vmap.get(v)
        if new is None:
            new = len(vertices)
            vmap[v] = new
            vertices.append(mesh.points[v])
        return new

    tets = []
    tet_labels = []
    boundary_faces = []
    boundary_labels = []
    for t, lab in keep.items():
        tets.append([remap(v) for v in mesh.tet_verts_arr[t].tolist()])
        tet_labels.append(lab)
        adj = mesh.tet_adj[t]
        for i in range(4):
            nbr = adj[i]
            nbr_lab = 0
            if nbr != HULL and nbr in keep:
                nbr_lab = keep[nbr]
            if nbr_lab == lab:
                continue
            if nbr_lab != 0 and nbr < t:
                continue  # internal interface emitted once, from the lower id
            face = mesh.face_opposite(t, i)
            boundary_faces.append([remap(v) for v in face])
            boundary_labels.append((lab, nbr_lab))

    return ExtractedMesh(
        vertices=np.asarray(vertices, dtype=np.float64).reshape(-1, 3),
        tets=np.asarray(tets, dtype=np.int64).reshape(-1, 4),
        tet_labels=np.asarray(tet_labels, dtype=np.int32),
        boundary_faces=np.asarray(boundary_faces, dtype=np.int64).reshape(-1, 3),
        boundary_labels=np.asarray(boundary_labels, dtype=np.int32).reshape(-1, 2),
    )
