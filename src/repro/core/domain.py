"""Refinement domain: rules R1-R6 and their application (paper Section 3).

:class:`RefineDomain` bundles everything the refinement loop needs —
the shared triangulation, the image's surface oracle, the sampling
parameter ``delta``, the size function, per-vertex classification
(isosurface sample vs circumcenter), and the spatial grids behind the
delta-proximity checks.  Both the sequential refiner and the parallel
refiners drive the same domain object; parallel callers pass a ``touch``
callback so every vertex an operation reads gets locked first
(Section 4.2).

Rule summary (priority order):

* **R1**  circumball of ``t`` intersects the isosurface: insert the
  closest isosurface point to ``c(t)`` unless an isosurface vertex
  already lies within ``delta`` of it.
* **R2**  circumball intersects the isosurface and ``r(t) > 2*delta``:
  insert ``c(t)``.
* **R3**  a facet's Voronoi edge crosses the isosurface and the facet
  has a planar angle below 30 degrees or a vertex that is not an
  isosurface sample: insert the surface center.
* **R4**  ``c(t)`` inside the object and radius-edge ratio > 2:
  insert ``c(t)``.
* **R5**  ``c(t)`` inside the object and ``r(t) > sf(c(t))``:
  insert ``c(t)``.
* **R6**  when an isosurface vertex ``z`` is inserted, delete all
  circumcenter vertices within ``2*delta`` of ``z`` (termination).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.pointgrid import PointGrid
from repro.core.sizing import SizeFunction, unconstrained
from repro.delaunay import (
    HULL,
    InsertionError,
    PointLocationError,
    RemovalError,
    RollbackSignal,
    Triangulation3D,
)
from repro.geometry.predicates import circumcenter_tet
from repro.geometry.quality import (
    shortest_edge,
    triangle_min_angle,
)
from repro.imaging.image import SegmentedImage
from repro.imaging.isosurface import SurfaceOracle

TouchFn = Optional[Callable[[int], None]]


class VertexKind(IntEnum):
    """Paper Section 3: vertices are isosurface samples, circumcenters,
    or surface-centers; the auxiliary bounding-simplex corners are BOX."""

    BOX = 0
    ISOSURFACE = 1     # R1 samples and R3 surface-centers
    CIRCUMCENTER = 2   # R2 / R4 / R5 Steiner points


@dataclass
class OperationResult:
    """What a single refinement operation did."""

    rule: str
    inserted_vertex: Optional[int] = None
    removed_vertices: List[int] = field(default_factory=list)
    new_tets: List[int] = field(default_factory=list)
    killed_tets: List[int] = field(default_factory=list)
    skipped: bool = False
    skip_reason: str = ""
    r6_conflicts: int = 0  # R6 removals abandoned due to lock conflicts


class RefineDomain:
    """Shared refinement state + the rule engine."""

    def __init__(
        self,
        image: SegmentedImage,
        delta: Optional[float] = None,
        size_function: Optional[SizeFunction] = None,
        radius_edge_bound: float = 2.0,
        planar_angle_bound_deg: float = 30.0,
        oracle: Optional[SurfaceOracle] = None,
        edt_workers: int = 1,
        enable_r6: bool = True,
    ):
        self.enable_r6 = enable_r6
        self.image = image
        self.oracle = oracle if oracle is not None else SurfaceOracle(
            image, n_workers=edt_workers
        )
        # "delta values equal to multiples of the voxel size is sufficient"
        self.delta = float(delta) if delta is not None else 2.0 * image.min_spacing
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        self.sf = size_function if size_function is not None else unconstrained()
        self.radius_edge_bound = float(radius_edge_bound)
        self.planar_angle_bound = float(planar_angle_bound_deg)

        lo, hi = image.foreground_bounds()
        margin = max(6.0 * self.delta, 2.0 * max(image.spacing))
        self.tri = Triangulation3D(lo, hi, margin=margin)

        # Conservative slack for the circumball-vs-surface test: the EDT
        # measures voxel-center to surface-voxel-center distance.
        sp = image.spacing
        self._surface_slack = math.sqrt(
            sp[0] * sp[0] + sp[1] * sp[1] + sp[2] * sp[2]
        )

        self.vertex_kind: Dict[int, VertexKind] = {
            v: VertexKind.BOX for v in self.tri.box_vertices
        }
        self.iso_grid = PointGrid(cell=self.delta)
        self.cc_grid = PointGrid(cell=2.0 * self.delta)

        # circumball cache: tet id -> (epoch, center, radius)
        self._cc_cache: Dict[int, Tuple[int, Tuple[float, float, float], float]] = {}

        # counters consumed by benchmarks / EXPERIMENTS.md
        self.n_insertions = 0
        self.n_removals = 0
        self.n_skipped = 0

        # vertex id -> creating thread (cost-model locality; worker sets it)
        self.vertex_creator: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # geometric helpers
    # ------------------------------------------------------------------
    def circumball(self, t: int) -> Tuple[Tuple[float, float, float], float]:
        """Cached circumcenter + circumradius of live tet ``t``."""
        mesh = self.tri.mesh
        epoch = mesh.tet_epoch[t]
        hit = self._cc_cache.get(t)
        if hit is not None and hit[0] == epoch:
            return hit[1], hit[2]
        pts = mesh.points
        a, b, c, d = (pts[v] for v in mesh.tet_verts_arr[t].tolist())
        try:
            cc = circumcenter_tet(a, b, c, d)
            r = math.dist(cc, a)
        except ZeroDivisionError:
            cc = (
                (a[0] + b[0] + c[0] + d[0]) / 4.0,
                (a[1] + b[1] + c[1] + d[1]) / 4.0,
                (a[2] + b[2] + c[2] + d[2]) / 4.0,
            )
            r = math.inf
        self._cc_cache[t] = (epoch, cc, r)
        return cc, r

    def surface_distance(self, p: Sequence[float]) -> float:
        """Approximate distance from ``p`` to the isosurface.

        Looks up the nearest surface voxel of the (clamped) voxel holding
        ``p`` and measures the true world distance from ``p`` to that
        voxel's center.  Exact to within one voxel for points near the
        image; crucially, it stays accurate for points far *outside* the
        image box, where the clamped EDT value alone would be wildly
        wrong and would make every remote circumball look like it crosses
        the surface.
        """
        return math.dist(p, self._nearest_surface_site(p))

    def _nearest_surface_site(self, p: Sequence[float]):
        """World center of the surface voxel the EDT maps ``p``'s voxel to."""
        image = self.image
        i, j, k = image.voxel_of(p)
        flat = int(self.oracle.edt.feature[i, j, k])
        sh = image.shape
        si, rem = divmod(flat, sh[1] * sh[2])
        sj, sk = divmod(rem, sh[2])
        return image.voxel_center((si, sj, sk))

    def ball_intersects_surface(self, c, r: float) -> bool:
        """Conservative circumball-vs-isosurface intersection test."""
        if r == math.inf:
            return True
        return self.surface_distance(c) <= r + self._surface_slack

    def point_inside_object(self, p) -> bool:
        return self.image.label_at(p) != 0

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def is_poor(self, t: int, se: Optional[float] = None) -> bool:
        """Cheap filter: could any rule apply to live tet ``t``?

        Used when deciding whether a freshly created element goes on a
        Poor Element List.  May rarely report True for an element whose
        R1 insertion is delta-blocked; the apply step re-checks.

        ``se`` optionally supplies the tet's shortest edge length when
        the caller already computed it — the seeding pass screens all
        live tets through the vectorized batch kernel
        (:func:`repro.geometry.batch.quality_screen`) and hands the
        per-tet value down here instead of recomputing it scalar-wise.
        """
        c, r = self.circumball(t)
        if self.ball_intersects_surface(c, r):
            if r > 2.0 * self.delta:
                return True  # R2 will fire regardless of R1's sample check
            # R1: blocked if an isosurface vertex already sits within
            # delta of the candidate z (within one voxel of the nearest
            # surface site q).  Blocking is permanent — isosurface
            # samples are never removed — so a tet rejected here never
            # needs re-queueing for R1/R2.
            slack = self._surface_slack
            if not (
                self.delta > slack
                and self.iso_grid.any_within(
                    self._nearest_surface_site(c), self.delta - slack
                )
            ):
                return True
        if self.point_inside_object(c):
            if r > self.sf(c):
                return True
            if se is None:
                se = shortest_edge(*self.tri.tet_points(t))
            if se == 0.0 or r / se > self.radius_edge_bound:
                return True
        return self._restricted_facet_needing_refinement(t) is not None

    def _restricted_facet_needing_refinement(
        self, t: int, touch: TouchFn = None
    ) -> Optional[Tuple[int, int]]:
        """First facet of ``t`` that rule R3 wants refined, as (t, face).

        A facet is *restricted* when its Voronoi edge endpoints (the two
        incident circumcenters) lie in regions of different label —
        exactly the restricted-Delaunay criterion.
        """
        mesh = self.tri.mesh
        pts = mesh.points
        c_t, _ = self.circumball(t)
        lab_t = self.image.label_at(c_t)
        adj = mesh.tet_adj[t]
        for i in range(4):
            nbr = adj[i]
            if nbr == HULL:
                continue
            if touch is not None:
                for w in mesh.tet_verts_arr[nbr].tolist():
                    touch(w)
            c_n, _ = self.circumball(nbr)
            if self.image.label_at(c_n) == lab_t:
                continue
            face = mesh.face_opposite(t, i)
            fa, fb, fc = (pts[w] for w in face)
            bad_angle = triangle_min_angle(fa, fb, fc) < self.planar_angle_bound
            non_iso = any(
                self.vertex_kind.get(w, VertexKind.CIRCUMCENTER)
                != VertexKind.ISOSURFACE
                for w in face
            )
            if bad_angle or non_iso:
                return (t, i)
        return None

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def refine_tet(self, t: int, touch: TouchFn = None) -> OperationResult:
        """Apply the first applicable rule to live tet ``t``.

        Returns an :class:`OperationResult`; ``skipped`` is set when no
        rule applies (the element became acceptable) or a degenerate
        insertion had to be abandoned.  Rollback signals from ``touch``
        propagate to the caller before any mutation.
        """
        mesh = self.tri.mesh
        # Lock the element's own vertices first.  Beyond protocol
        # correctness this pins the whole 1-ring: any neighbor shares
        # three of these vertices, so neither ``t`` nor its neighbors can
        # be invalidated while we classify and compute (real-thread
        # safety for the lock-free classification reads below).
        if touch is not None:
            verts = mesh.tet_verts_arr[t].tolist()
            if verts[0] < 0:
                return OperationResult(rule="none", skipped=True,
                                       skip_reason="element died before lock")
            for w in verts:
                touch(w)
            if mesh.tet_verts_arr[t].tolist() != verts:
                raise RollbackSignal(owner=-1)
        c, r = self.circumball(t)
        intersects = self.ball_intersects_surface(c, r)

        # ---- R1 ----
        if intersects:
            # Cheap pre-check: the candidate z lies within one voxel
            # diagonal of the nearest surface-voxel center q, so an
            # isosurface vertex within (delta - slack) of q blocks R1
            # without paying for the ray march.
            slack = self._surface_slack
            skip_march = (
                self.delta > slack
                and self.iso_grid.any_within(
                    self._nearest_surface_site(c), self.delta - slack
                )
            )
            if not skip_march:
                z = self.oracle.closest_surface_point(c)
                if z is not None and not self.iso_grid.any_within(z, self.delta):
                    return self._insert_point(
                        z, VertexKind.ISOSURFACE, "R1", hint=t, touch=touch
                    )
            # ---- R2 ----
            if r > 2.0 * self.delta:
                return self._insert_circumcenter(t, c, "R2", touch=touch)

        # ---- R3 ---- (classification reads are lock-free, Section 4.3)
        facet = self._restricted_facet_needing_refinement(t)
        if facet is not None:
            ft, fi = facet
            nbr = mesh.tet_adj[ft][fi]
            c_n, _ = self.circumball(nbr)
            c_surf = self.oracle.surface_crossing(c, c_n)
            if c_surf is not None:
                return self._insert_point(
                    c_surf, VertexKind.ISOSURFACE, "R3", hint=t, touch=touch
                )

        if self.point_inside_object(c):
            # ---- R4 ----
            se = shortest_edge(*self.tri.tet_points(t))
            if se == 0.0 or r / se > self.radius_edge_bound:
                return self._insert_circumcenter(t, c, "R4", touch=touch)
            # ---- R5 ----
            if r > self.sf(c):
                return self._insert_circumcenter(t, c, "R5", touch=touch)

        return OperationResult(rule="none", skipped=True,
                               skip_reason="no rule applies")

    # ------------------------------------------------------------------
    def _insert_circumcenter(self, t: int, c, rule: str,
                             touch: TouchFn) -> OperationResult:
        """Insert ``c(t)``, falling back to the longest-edge midpoint when
        the circumcenter escapes the virtual bounding volume (possible for
        elements hugging the hull; midpoints always stay inside)."""
        if not self.tri.inside_domain(c):
            c = self._longest_edge_midpoint(t)
            rule = rule + "-midpoint"
        return self._insert_point(c, VertexKind.CIRCUMCENTER, rule,
                                  hint=t, touch=touch)

    def _longest_edge_midpoint(self, t: int):
        pts = self.tri.tet_points(t)
        best = None
        best_len = -1.0
        for i in range(4):
            for j in range(i + 1, 4):
                d = math.dist(pts[i], pts[j])
                if d > best_len:
                    best_len = d
                    best = (
                        0.5 * (pts[i][0] + pts[j][0]),
                        0.5 * (pts[i][1] + pts[j][1]),
                        0.5 * (pts[i][2] + pts[j][2]),
                    )
        return best

    def _insert_point(self, p, kind: VertexKind, rule: str, hint: int,
                      touch: TouchFn) -> OperationResult:
        try:
            v, new_tets, killed = self.tri.insert_point(p, hint=hint,
                                                        touch=touch)
        except (InsertionError, PointLocationError) as exc:
            self.n_skipped += 1
            return OperationResult(rule=rule, skipped=True,
                                   skip_reason=str(exc))
        self.n_insertions += 1
        self.vertex_kind[v] = kind
        if kind == VertexKind.ISOSURFACE:
            self.iso_grid.add(v, p)
        else:
            self.cc_grid.add(v, p)
        result = OperationResult(rule=rule, inserted_vertex=v,
                                 new_tets=list(new_tets),
                                 killed_tets=list(killed))
        # ---- R6: purge circumcenters crowding a new isosurface vertex ----
        if kind == VertexKind.ISOSURFACE and self.enable_r6:
            self._apply_r6(p, v, result, touch)
        return result

    def _apply_r6(self, z, z_vid: int, result: OperationResult,
                  touch: TouchFn) -> None:
        victims = [
            v for v in self.cc_grid.query_ball(z, 2.0 * self.delta)
            if v != z_vid
        ]
        for v in victims:
            if not self.tri.mesh.alive_vertex[v]:
                self.cc_grid.remove(v)
                continue
            try:
                new_tets, killed = self.tri.remove_vertex(v, touch=touch)
            except RemovalError:
                self.n_skipped += 1
                continue
            except RollbackSignal:
                # A parallel peer owns part of this victim's ball: the
                # enclosing insertion has already committed, so the R6
                # purge of this victim is deferred instead of unwinding
                # the whole operation.  Counted as a rollback upstream.
                result.r6_conflicts += 1
                continue
            self.n_removals += 1
            self.cc_grid.remove(v)
            self.vertex_kind.pop(v, None)
            result.removed_vertices.append(v)
            dead = set(killed)
            result.new_tets = [x for x in result.new_tets if x not in dead]
            result.new_tets.extend(new_tets)
            result.killed_tets.extend(killed)

    # ------------------------------------------------------------------
    def forget_vertex(self, v: int) -> None:
        """Drop bookkeeping for a vertex (used by rollback paths)."""
        self.vertex_kind.pop(v, None)
        self.iso_grid.remove(v)
        self.cc_grid.remove(v)
