"""Uniform spatial hash grid over vertex ids.

The refinement rules need two proximity queries that a triangulation
cannot answer cheaply:

* R1 — "is there an isosurface vertex within delta of z?"
* R6 — "which circumcenter vertices lie within 2*delta of z?"

A hash grid with cell size of the query radius answers both in O(1)
per query for the uniform densities Delaunay refinement produces.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Set, Tuple

Point = Tuple[float, float, float]


class PointGrid:
    """Hash grid mapping cells to sets of (vertex id, point)."""

    def __init__(self, cell: float):
        if cell <= 0:
            raise ValueError("cell size must be positive")
        self.cell = float(cell)
        self._cells: Dict[Tuple[int, int, int], Dict[int, Point]] = {}
        self._where: Dict[int, Tuple[int, int, int]] = {}

    def _key(self, p: Sequence[float]) -> Tuple[int, int, int]:
        c = self.cell
        return (
            int(math.floor(p[0] / c)),
            int(math.floor(p[1] / c)),
            int(math.floor(p[2] / c)),
        )

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, vid: int) -> bool:
        return vid in self._where

    def add(self, vid: int, p: Sequence[float]) -> None:
        """Register vertex ``vid`` at point ``p``; re-adding moves it."""
        if vid in self._where:
            self.remove(vid)
        key = self._key(p)
        self._cells.setdefault(key, {})[vid] = (p[0], p[1], p[2])
        self._where[vid] = key

    def remove(self, vid: int) -> None:
        """Forget vertex ``vid``; unknown ids are ignored."""
        key = self._where.pop(vid, None)
        if key is None:
            return
        cell = self._cells.get(key)
        if cell is not None:
            cell.pop(vid, None)
            if not cell:
                del self._cells[key]

    def query_ball(self, p: Sequence[float], radius: float) -> List[int]:
        """Vertex ids within ``radius`` of ``p`` (closed ball)."""
        c = self.cell
        r2 = radius * radius
        lo = [int(math.floor((p[i] - radius) / c)) for i in range(3)]
        hi = [int(math.floor((p[i] + radius) / c)) for i in range(3)]
        out: List[int] = []
        cells = self._cells
        for ix in range(lo[0], hi[0] + 1):
            for iy in range(lo[1], hi[1] + 1):
                for iz in range(lo[2], hi[2] + 1):
                    cell = cells.get((ix, iy, iz))
                    if not cell:
                        continue
                    for vid, q in cell.items():
                        dx = q[0] - p[0]
                        dy = q[1] - p[1]
                        dz = q[2] - p[2]
                        if dx * dx + dy * dy + dz * dz <= r2:
                            out.append(vid)
        return out

    def any_within(self, p: Sequence[float], radius: float,
                   exclude: int = -1) -> bool:
        """True when some vertex other than ``exclude`` is within radius."""
        c = self.cell
        r2 = radius * radius
        lo = [int(math.floor((p[i] - radius) / c)) for i in range(3)]
        hi = [int(math.floor((p[i] + radius) / c)) for i in range(3)]
        cells = self._cells
        for ix in range(lo[0], hi[0] + 1):
            for iy in range(lo[1], hi[1] + 1):
                for iz in range(lo[2], hi[2] + 1):
                    cell = cells.get((ix, iy, iz))
                    if not cell:
                        continue
                    for vid, q in cell.items():
                        if vid == exclude:
                            continue
                        dx = q[0] - p[0]
                        dy = q[1] - p[1]
                        dz = q[2] - p[2]
                        if dx * dx + dy * dy + dz * dz <= r2:
                            return True
        return False
