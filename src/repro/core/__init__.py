"""PI2M core: the paper's primary contribution.

High-level entry point: :func:`repro.api.mesh` ::

    from repro.api import MeshRequest, mesh
    from repro.imaging import sphere_phantom

    result = mesh(MeshRequest(image=sphere_phantom(32), delta=2.0,
                              mesher="sequential"))
    print(result.mesh.n_tets, result.stats["elements_per_second"])

Lower-level pieces — :class:`RefineDomain` (rules R1-R6),
:class:`SequentialRefiner`, :func:`extract_mesh` — compose the same way
the parallel refiners use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.domain import OperationResult, RefineDomain, VertexKind
from repro.core.extract import ExtractedMesh, extract_mesh
from repro.core.pel import PoorElementList
from repro.core.pointgrid import PointGrid
from repro.core.refiner import RefineStats, SequentialRefiner
from repro.core.sizing import (
    SizeFunction,
    constant,
    radial,
    surface_graded,
    unconstrained,
)
from repro.imaging.image import SegmentedImage


@dataclass
class MeshingResult:
    """Bundle returned by :func:`_mesh_image` / :func:`repro.api.mesh`."""

    mesh: ExtractedMesh
    stats: RefineStats
    domain: RefineDomain


def _mesh_image(
    image: SegmentedImage,
    delta: Optional[float] = None,
    size_function: Optional[SizeFunction] = None,
    radius_edge_bound: float = 2.0,
    planar_angle_bound_deg: float = 30.0,
    max_operations: Optional[int] = None,
    obs=None,
) -> MeshingResult:
    """Sequential meshing implementation behind ``repro.api.mesh``.

    ``obs`` is an optional :class:`repro.observability.Observability`
    bundle; when given, the domain build / refinement / extraction
    phases are traced and the refiner feeds the metrics registry.
    """
    tracer = obs.tracer if obs is not None else None
    if tracer is not None and tracer.enabled:
        with tracer.span("domain_init"):
            domain = _make_domain(image, delta, size_function,
                                  radius_edge_bound, planar_angle_bound_deg)
    else:
        domain = _make_domain(image, delta, size_function,
                              radius_edge_bound, planar_angle_bound_deg)
    refiner = SequentialRefiner(domain, max_operations=max_operations,
                                obs=obs)
    stats = refiner.refine()
    if tracer is not None and tracer.enabled:
        with tracer.span("extract"):
            mesh = extract_mesh(domain)
    else:
        mesh = extract_mesh(domain)
    return MeshingResult(mesh=mesh, stats=stats, domain=domain)


def _make_domain(image, delta, size_function, radius_edge_bound,
                 planar_angle_bound_deg) -> RefineDomain:
    return RefineDomain(
        image,
        delta=delta,
        size_function=size_function,
        radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
    )


__all__ = [
    "RefineDomain",
    "VertexKind",
    "OperationResult",
    "SequentialRefiner",
    "RefineStats",
    "PoorElementList",
    "PointGrid",
    "ExtractedMesh",
    "extract_mesh",
    "_mesh_image",
    "MeshingResult",
    "SizeFunction",
    "constant",
    "radial",
    "surface_graded",
    "unconstrained",
]
