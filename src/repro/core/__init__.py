"""PI2M core: the paper's primary contribution.

High-level entry point::

    from repro.core import mesh_image
    from repro.imaging import sphere_phantom

    result = mesh_image(sphere_phantom(32), delta=2.0)
    print(result.mesh.n_tets, result.stats.tets_per_second)

Lower-level pieces — :class:`RefineDomain` (rules R1-R6),
:class:`SequentialRefiner`, :func:`extract_mesh` — compose the same way
the parallel refiners use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.domain import OperationResult, RefineDomain, VertexKind
from repro.core.extract import ExtractedMesh, extract_mesh
from repro.core.pel import PoorElementList
from repro.core.pointgrid import PointGrid
from repro.core.refiner import RefineStats, SequentialRefiner
from repro.core.sizing import (
    SizeFunction,
    constant,
    radial,
    surface_graded,
    unconstrained,
)
from repro.imaging.image import SegmentedImage


@dataclass
class MeshingResult:
    """Bundle returned by :func:`mesh_image`."""

    mesh: ExtractedMesh
    stats: RefineStats
    domain: RefineDomain


def mesh_image(
    image: SegmentedImage,
    delta: Optional[float] = None,
    size_function: Optional[SizeFunction] = None,
    radius_edge_bound: float = 2.0,
    planar_angle_bound_deg: float = 30.0,
    max_operations: Optional[int] = None,
) -> MeshingResult:
    """One-call image-to-mesh conversion (sequential).

    Parameters mirror the paper's knobs: ``delta`` controls the surface
    sampling density (fidelity; Theorem 1 gives an O(delta^2) Hausdorff
    bound), ``radius_edge_bound`` the element quality (rule R4, paper
    value 2), ``planar_angle_bound_deg`` the boundary triangle quality
    (rule R3, paper value 30), and ``size_function`` custom element
    density (rule R5).
    """
    domain = RefineDomain(
        image,
        delta=delta,
        size_function=size_function,
        radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
    )
    refiner = SequentialRefiner(domain, max_operations=max_operations)
    stats = refiner.refine()
    mesh = extract_mesh(domain)
    return MeshingResult(mesh=mesh, stats=stats, domain=domain)


__all__ = [
    "RefineDomain",
    "VertexKind",
    "OperationResult",
    "SequentialRefiner",
    "RefineStats",
    "PoorElementList",
    "PointGrid",
    "ExtractedMesh",
    "extract_mesh",
    "mesh_image",
    "MeshingResult",
    "SizeFunction",
    "constant",
    "radial",
    "surface_graded",
    "unconstrained",
]
