"""PI2M core: the paper's primary contribution.

High-level entry point::

    from repro.core import mesh_image
    from repro.imaging import sphere_phantom

    result = mesh_image(sphere_phantom(32), delta=2.0)
    print(result.mesh.n_tets, result.stats.tets_per_second)

Lower-level pieces — :class:`RefineDomain` (rules R1-R6),
:class:`SequentialRefiner`, :func:`extract_mesh` — compose the same way
the parallel refiners use them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.domain import OperationResult, RefineDomain, VertexKind
from repro.core.extract import ExtractedMesh, extract_mesh
from repro.core.pel import PoorElementList
from repro.core.pointgrid import PointGrid
from repro.core.refiner import RefineStats, SequentialRefiner
from repro.core.sizing import (
    SizeFunction,
    constant,
    radial,
    surface_graded,
    unconstrained,
)
from repro.imaging.image import SegmentedImage


@dataclass
class MeshingResult:
    """Bundle returned by :func:`mesh_image`."""

    mesh: ExtractedMesh
    stats: RefineStats
    domain: RefineDomain


def _mesh_image(
    image: SegmentedImage,
    delta: Optional[float] = None,
    size_function: Optional[SizeFunction] = None,
    radius_edge_bound: float = 2.0,
    planar_angle_bound_deg: float = 30.0,
    max_operations: Optional[int] = None,
    obs=None,
) -> MeshingResult:
    """Implementation behind :func:`mesh_image` and ``repro.api``.

    ``obs`` is an optional :class:`repro.observability.Observability`
    bundle; when given, the domain build / refinement / extraction
    phases are traced and the refiner feeds the metrics registry.
    """
    tracer = obs.tracer if obs is not None else None
    if tracer is not None and tracer.enabled:
        with tracer.span("domain_init"):
            domain = _make_domain(image, delta, size_function,
                                  radius_edge_bound, planar_angle_bound_deg)
    else:
        domain = _make_domain(image, delta, size_function,
                              radius_edge_bound, planar_angle_bound_deg)
    refiner = SequentialRefiner(domain, max_operations=max_operations,
                                obs=obs)
    stats = refiner.refine()
    if tracer is not None and tracer.enabled:
        with tracer.span("extract"):
            mesh = extract_mesh(domain)
    else:
        mesh = extract_mesh(domain)
    return MeshingResult(mesh=mesh, stats=stats, domain=domain)


def _make_domain(image, delta, size_function, radius_edge_bound,
                 planar_angle_bound_deg) -> RefineDomain:
    return RefineDomain(
        image,
        delta=delta,
        size_function=size_function,
        radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
    )


def mesh_image(
    image: SegmentedImage,
    delta: Optional[float] = None,
    size_function: Optional[SizeFunction] = None,
    radius_edge_bound: float = 2.0,
    planar_angle_bound_deg: float = 30.0,
    max_operations: Optional[int] = None,
) -> MeshingResult:
    """One-call image-to-mesh conversion (sequential).

    .. deprecated::
        Use :func:`repro.api.mesh` with a
        :class:`repro.api.MeshRequest` — it returns a uniform
        :class:`repro.api.MeshResult` across every mesher and carries
        the observability configuration.  This shim remains for
        backward compatibility and forwards unchanged.

    Parameters mirror the paper's knobs: ``delta`` controls the surface
    sampling density (fidelity; Theorem 1 gives an O(delta^2) Hausdorff
    bound), ``radius_edge_bound`` the element quality (rule R4, paper
    value 2), ``planar_angle_bound_deg`` the boundary triangle quality
    (rule R3, paper value 30), and ``size_function`` custom element
    density (rule R5).
    """
    warnings.warn(
        "repro.core.mesh_image is deprecated; use repro.api.mesh with a "
        "MeshRequest (mesher='sequential')",
        DeprecationWarning,
        stacklevel=2,
    )
    return _mesh_image(
        image,
        delta=delta,
        size_function=size_function,
        radius_edge_bound=radius_edge_bound,
        planar_angle_bound_deg=planar_angle_bound_deg,
        max_operations=max_operations,
    )


__all__ = [
    "RefineDomain",
    "VertexKind",
    "OperationResult",
    "SequentialRefiner",
    "RefineStats",
    "PoorElementList",
    "PointGrid",
    "ExtractedMesh",
    "extract_mesh",
    "mesh_image",
    "MeshingResult",
    "SizeFunction",
    "constant",
    "radial",
    "surface_graded",
    "unconstrained",
]
