"""User size functions for rule R5.

Rule R5 refines any tetrahedron whose circumcenter lies inside the
object and whose circumradius exceeds ``sf(c(t))``.  The paper exposes
this as an arbitrary user-specified field ("our method is able to
satisfy both surface and volume custom element densities, as dictated
by the user-specified size functions").
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

SizeFunction = Callable[[Sequence[float]], float]


def unconstrained() -> SizeFunction:
    """No volume size constraint: R5 never fires."""

    def sf(p: Sequence[float]) -> float:
        return math.inf

    return sf


def constant(value: float) -> SizeFunction:
    """Uniform target circumradius everywhere."""
    if value <= 0:
        raise ValueError("size bound must be positive")

    def sf(p: Sequence[float]) -> float:
        return value

    return sf


def surface_graded(domain_or_oracle, near: float, far: float,
                   growth: float = 1.0) -> SizeFunction:
    """Sizing graded by distance to the isosurface: ``near`` at the
    surface, growing by ``growth`` per unit distance, capped at ``far``.

    This is the paper's "parts of the isosurface ... meshed with more
    elements" control expressed through the EDT the pipeline already
    owns.  Accepts a :class:`~repro.core.domain.RefineDomain` or any
    object with a ``surface_distance(p)`` method.
    """
    if near <= 0 or far < near or growth <= 0:
        raise ValueError("need 0 < near <= far and growth > 0")
    dist = domain_or_oracle.surface_distance

    def sf(p: Sequence[float]) -> float:
        return min(far, near + growth * dist(p))

    return sf


def radial(center: Sequence[float], near: float, far: float,
           radius: float) -> SizeFunction:
    """Graded sizing: ``near`` at ``center`` growing linearly to ``far``
    at distance ``radius`` — the "more elements of better quality where
    curvature is high" style of control the paper motivates."""
    if near <= 0 or far <= 0:
        raise ValueError("size bounds must be positive")
    cx, cy, cz = center

    def sf(p: Sequence[float]) -> float:
        d = math.dist(p, (cx, cy, cz))
        if d >= radius:
            return far
        t = d / radius
        return near + t * (far - near)

    return sf
