"""Poor Element Lists (paper Section 4.1).

A PEL holds the tetrahedra a thread is responsible for refining.
Entries are ``(tet id, epoch)`` pairs: tet slots are recycled by the
kernel, so the epoch detects invalidated entries lazily — the same
mechanism as the paper's "invalidation flag" that lets a thread skip
elements another thread has already destroyed without synchronising.

A validity counter tracks how many *live* entries the list holds; the
load balancer uses it to decide whether a thread has enough surplus
work to give away (the paper forbids giving work when the counter is
below a threshold, default 5).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.delaunay.mesh import MeshArrays


class PoorElementList:
    """Deque of (tet, epoch) entries with lazy invalidation."""

    def __init__(self, mesh: MeshArrays):
        self._mesh = mesh
        self._items: Deque[Tuple[int, int]] = deque()
        self.live_count = 0  # approximate count of still-valid entries

    def __len__(self) -> int:
        return len(self._items)

    def push(self, t: int) -> None:
        """Queue live tet ``t`` for refinement."""
        self._items.append((t, self._mesh.tet_epoch[t]))
        self.live_count += 1

    def pop(self) -> Optional[int]:
        """Next live tet to refine, or ``None`` when empty.

        Stale entries (killed or recycled slots) are discarded silently —
        the lazy counterpart of eager PEL removal in Section 4.3.
        """
        items = self._items
        mesh = self._mesh
        while items:
            t, epoch = items.popleft()
            if mesh.tet_verts_arr[t, 0] >= 0 and mesh.tet_epoch[t] == epoch:
                self.live_count -= 1
                return t
        self.live_count = 0
        return None

    def take_oldest(self, k: int) -> list:
        """Remove and return up to ``k`` live tets from the cold end.

        Donating the *oldest* entries hands a beggar work in regions the
        owner has long left (its hot frontier is at the other end),
        which is what makes stolen work spatially disjoint from the
        giver's and keeps the thief from immediately conflicting with
        it.
        """
        out = []
        items = self._items
        mesh = self._mesh
        while items and len(out) < k:
            t, epoch = items.popleft()
            if mesh.tet_verts_arr[t, 0] >= 0 and mesh.tet_epoch[t] == epoch:
                out.append(t)
        self.live_count = max(0, self.live_count - len(out))
        return out

    def note_invalidated(self, n: int = 1) -> None:
        """Another actor invalidated ``n`` of our entries (counter only)."""
        self.live_count = max(0, self.live_count - n)
