"""Sequential Delaunay refinement for smooth surfaces (Section 3).

This is the single-threaded reference implementation of the paper's
refinement loop: seed a Poor Element List with the virtual bounding
volume's elements, then repeatedly pop an element, apply the first
applicable rule (R1-R6 via :meth:`RefineDomain.refine_tet`), and queue
any newly created poor elements, until no rule applies anywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.domain import OperationResult, RefineDomain
from repro.core.pel import PoorElementList


@dataclass
class RefineStats:
    """Operation counts and timings for a refinement run."""

    n_operations: int = 0
    n_insertions: int = 0
    n_removals: int = 0
    n_skipped: int = 0
    rule_counts: Dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0
    final_tets: int = 0
    final_vertices: int = 0

    @property
    def tets_per_second(self) -> float:
        return self.final_tets / self.wall_time if self.wall_time > 0 else 0.0


class SequentialRefiner:
    """Single-threaded PI2M refinement driver."""

    def __init__(self, domain: RefineDomain,
                 max_operations: Optional[int] = None):
        self.domain = domain
        self.pel = PoorElementList(domain.tri.mesh)
        self.max_operations = max_operations
        self.stats = RefineStats()

    def refine(self) -> RefineStats:
        """Run refinement to completion; returns the statistics."""
        domain = self.domain
        pel = self.pel
        t_start = time.perf_counter()

        for t in domain.tri.mesh.live_tets():
            if domain.is_poor(t):
                pel.push(t)

        ops = 0
        while True:
            t = pel.pop()
            if t is None:
                break
            result = domain.refine_tet(t)
            ops += 1
            if self.max_operations is not None and ops > self.max_operations:
                raise RuntimeError(
                    f"refinement exceeded {self.max_operations} operations"
                )
            self._record(result)
            if result.skipped:
                continue
            for nt in result.new_tets:
                if domain.tri.mesh.is_live(nt) and domain.is_poor(nt):
                    pel.push(nt)

        self.stats.wall_time = time.perf_counter() - t_start
        self.stats.final_tets = domain.tri.n_tets
        self.stats.final_vertices = domain.tri.n_vertices
        self.stats.n_insertions = domain.n_insertions
        self.stats.n_removals = domain.n_removals
        self.stats.n_skipped = domain.n_skipped
        return self.stats

    def _record(self, result: OperationResult) -> None:
        self.stats.n_operations += 1
        rc = self.stats.rule_counts
        rc[result.rule] = rc.get(result.rule, 0) + 1
