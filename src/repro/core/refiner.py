"""Sequential Delaunay refinement for smooth surfaces (Section 3).

This is the single-threaded reference implementation of the paper's
refinement loop: seed a Poor Element List with the virtual bounding
volume's elements, then repeatedly pop an element, apply the first
applicable rule (R1-R6 via :meth:`RefineDomain.refine_tet`), and queue
any newly created poor elements, until no rule applies anywhere.

With an :class:`~repro.observability.Observability` bundle attached the
refiner feeds the run's metrics registry (operation / rule counters,
cavity-size histogram, per-operation latency histogram) and, when
tracing is enabled, emits one complete-span trace event per operation —
the same event stream the parallel and simulated refiners produce, so
one Chrome-trace viewer serves every backend.  Without a bundle the
per-operation cost is a single ``None`` check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.domain import OperationResult, RefineDomain
from repro.core.pel import PoorElementList
from repro.observability import Observability
from repro.observability.metrics import SIZE_BUCKETS


@dataclass
class RefineStats:
    """Operation counts and timings for a refinement run."""

    n_operations: int = 0
    n_insertions: int = 0
    n_removals: int = 0
    n_skipped: int = 0
    rule_counts: Dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0
    final_tets: int = 0
    final_vertices: int = 0

    @property
    def tets_per_second(self) -> float:
        return self.final_tets / self.wall_time if self.wall_time > 0 else 0.0


class SequentialRefiner:
    """Single-threaded PI2M refinement driver."""

    def __init__(self, domain: RefineDomain,
                 max_operations: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 seed_filter=None):
        self.domain = domain
        self.pel = PoorElementList(domain.tri.mesh)
        self.max_operations = max_operations
        self.stats = RefineStats()
        self.obs = obs
        #: ``seed_filter(live_tet_ids) -> bool mask``: restricts the
        #: initial PEL seed scan to a region of interest (the seam-local
        #: stitch).  Tets created *during* refinement are still screened
        #: unconditionally — rule side effects stay local to the seeds'
        #: cavities, so the restriction is only about skipping the
        #: per-tet scalar screen on already-refined bulk.
        self.seed_filter = seed_filter
        # Predicate-filter counters are process-wide; snapshot so the
        # published kernel stats cover exactly this run.
        self._predicates_before: Dict[str, int] = {}

    def refine(self) -> RefineStats:
        """Run refinement to completion; returns the statistics."""
        domain = self.domain
        pel = self.pel
        obs = self.obs
        from repro.geometry.predicates import STATS
        self._predicates_before = STATS.snapshot()
        t_start = time.perf_counter()

        # Hoist the instruments out of the loop: the hot path pays one
        # method call per counter, never a registry lookup.
        tracer = None
        ops_counter = rules_counters = cavity_hist = op_hist = None
        if obs is not None:
            tracer = obs.tracer
            reg = obs.registry
            ops_counter = reg.counter("refine.operations")
            cavity_hist = reg.histogram(
                "refine.cavity_size", SIZE_BUCKETS,
                help="new tets created per operation",
            )
            op_hist = reg.histogram(
                "refine.op_seconds", help="wall time per operation",
            )
            rules_counters = {}
            if tracer.enabled:
                tracer.begin("refine", 0, 0.0)

        # Seed the PEL through the vectorized quality screen: one batch
        # gather computes every live tet's shortest edge, so is_poor's
        # radius-edge branch never runs the scalar kernel here.
        from repro.geometry.batch import quality_screen

        mesh_store = domain.tri.mesh
        live = mesh_store.live_tet_ids()
        if self.seed_filter is not None and live.size:
            live = live[np.asarray(self.seed_filter(live), dtype=bool)]
        _, short_edges = quality_screen(
            mesh_store.coords, mesh_store.tet_verts_arr, live
        )
        for t, se in zip(live.tolist(), short_edges.tolist()):
            if domain.is_poor(t, se=se):
                pel.push(t)

        ops = 0
        while True:
            t = pel.pop()
            if t is None:
                break
            t_op0 = time.perf_counter()
            result = domain.refine_tet(t)
            ops += 1
            if self.max_operations is not None and ops > self.max_operations:
                raise RuntimeError(
                    f"refinement exceeded {self.max_operations} operations"
                )
            self._record(result)
            if obs is not None:
                dt_op = time.perf_counter() - t_op0
                ops_counter.inc()
                op_hist.observe(dt_op)
                if not result.skipped:
                    cavity_hist.observe(len(result.new_tets))
                rc = rules_counters.get(result.rule)
                if rc is None:
                    rc = rules_counters[result.rule] = obs.registry.counter(
                        f"refine.rule.{result.rule}"
                    )
                rc.inc()
                if tracer.enabled:
                    tracer.complete(
                        result.rule, t_op0 - t_start, dt_op, 0
                    )
            if result.skipped:
                continue
            for nt in result.new_tets:
                if domain.tri.mesh.is_live(nt) and domain.is_poor(nt):
                    pel.push(nt)

        self.stats.wall_time = time.perf_counter() - t_start
        self.stats.final_tets = domain.tri.n_tets
        self.stats.final_vertices = domain.tri.n_vertices
        self.stats.n_insertions = domain.n_insertions
        self.stats.n_removals = domain.n_removals
        self.stats.n_skipped = domain.n_skipped
        if obs is not None:
            if tracer.enabled:
                tracer.end("refine", 0, self.stats.wall_time)
            self._publish(obs)
        return self.stats

    def _publish(self, obs: Observability) -> None:
        reg = obs.registry
        s = self.stats
        reg.gauge("run.elements").set(s.final_tets)
        reg.gauge("run.vertices").set(s.final_vertices)
        reg.gauge("run.wall_seconds").set(s.wall_time)
        reg.gauge("run.elements_per_second").set(s.tets_per_second)
        reg.counter("refine.insertions").inc(s.n_insertions)
        reg.counter("refine.removals").inc(s.n_removals)
        reg.counter("refine.skipped").inc(s.n_skipped)
        from repro.geometry.predicates import STATS
        from repro.runtime.stats import publish_kernel_stats

        publish_kernel_stats(
            reg, self.domain.tri.counters,
            STATS.delta_since(self._predicates_before),
        )

    def _record(self, result: OperationResult) -> None:
        self.stats.n_operations += 1
        rc = self.stats.rule_counts
        rc[result.rule] = rc.get(result.rule, 0) + 1
