"""Fidelity: symmetric Hausdorff distance between mesh boundary and
isosurface (paper Table 6's fidelity row, Theorem 1's O(delta^2) bound).

Both directions are estimated by sampling:

* mesh -> surface: sample points on the boundary triangles, measure the
  distance to the isosurface through the image's surface oracle;
* surface -> mesh: project every surface voxel onto the isosurface and
  measure its distance to the nearest boundary triangle through a
  spatial grid of triangles.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.extract import ExtractedMesh
from repro.imaging.image import SegmentedImage
from repro.imaging.isosurface import SurfaceOracle

Point = Tuple[float, float, float]


def point_segment_distance(p: Sequence[float], a: Sequence[float],
                           b: Sequence[float]) -> float:
    """Euclidean distance from ``p`` to segment ``ab``."""
    ab = (b[0] - a[0], b[1] - a[1], b[2] - a[2])
    ap = (p[0] - a[0], p[1] - a[1], p[2] - a[2])
    denom = ab[0] * ab[0] + ab[1] * ab[1] + ab[2] * ab[2]
    if denom == 0.0:
        return math.dist(p, a)
    t = (ap[0] * ab[0] + ap[1] * ab[1] + ap[2] * ab[2]) / denom
    t = min(1.0, max(0.0, t))
    q = (a[0] + t * ab[0], a[1] + t * ab[1], a[2] + t * ab[2])
    return math.dist(p, q)


def point_triangle_distance(p: Sequence[float], a: Sequence[float],
                            b: Sequence[float], c: Sequence[float]) -> float:
    """Euclidean distance from point ``p`` to triangle ``abc``.

    Region-based projection (Ericson, Real-Time Collision Detection);
    degenerate triangles fall back to segment distances.
    """
    ab = (b[0] - a[0], b[1] - a[1], b[2] - a[2])
    ac = (c[0] - a[0], c[1] - a[1], c[2] - a[2])
    nx = ab[1] * ac[2] - ab[2] * ac[1]
    ny = ab[2] * ac[0] - ab[0] * ac[2]
    nz = ab[0] * ac[1] - ab[1] * ac[0]
    scale = max(
        abs(ab[0]) + abs(ab[1]) + abs(ab[2]),
        abs(ac[0]) + abs(ac[1]) + abs(ac[2]),
    )
    if nx * nx + ny * ny + nz * nz <= (1e-14 * scale * scale) ** 2:
        return min(
            point_segment_distance(p, a, b),
            point_segment_distance(p, b, c),
            point_segment_distance(p, a, c),
        )
    ap = (p[0] - a[0], p[1] - a[1], p[2] - a[2])
    d1 = ab[0] * ap[0] + ab[1] * ap[1] + ab[2] * ap[2]
    d2 = ac[0] * ap[0] + ac[1] * ap[1] + ac[2] * ap[2]
    if d1 <= 0 and d2 <= 0:
        return math.dist(p, a)
    bp = (p[0] - b[0], p[1] - b[1], p[2] - b[2])
    d3 = ab[0] * bp[0] + ab[1] * bp[1] + ab[2] * bp[2]
    d4 = ac[0] * bp[0] + ac[1] * bp[1] + ac[2] * bp[2]
    if d3 >= 0 and d4 <= d3:
        return math.dist(p, b)
    vc = d1 * d4 - d3 * d2
    if vc <= 0 and d1 >= 0 and d3 <= 0:
        denom_ab = d1 - d3
        t = d1 / denom_ab if denom_ab != 0.0 else 0.0
        q = (a[0] + t * ab[0], a[1] + t * ab[1], a[2] + t * ab[2])
        return math.dist(p, q)
    cp = (p[0] - c[0], p[1] - c[1], p[2] - c[2])
    d5 = ab[0] * cp[0] + ab[1] * cp[1] + ab[2] * cp[2]
    d6 = ac[0] * cp[0] + ac[1] * cp[1] + ac[2] * cp[2]
    if d6 >= 0 and d5 <= d6:
        return math.dist(p, c)
    vb = d5 * d2 - d1 * d6
    if vb <= 0 and d2 >= 0 and d6 <= 0:
        denom_ac = d2 - d6
        t = d2 / denom_ac if denom_ac != 0.0 else 0.0
        q = (a[0] + t * ac[0], a[1] + t * ac[1], a[2] + t * ac[2])
        return math.dist(p, q)
    va = d3 * d6 - d5 * d4
    if va <= 0 and (d4 - d3) >= 0 and (d5 - d6) >= 0:
        denom_bc = (d4 - d3) + (d5 - d6)
        if denom_bc == 0.0:
            return math.dist(p, b)
        t = (d4 - d3) / denom_bc
        q = (
            b[0] + t * (c[0] - b[0]),
            b[1] + t * (c[1] - b[1]),
            b[2] + t * (c[2] - b[2]),
        )
        return math.dist(p, q)
    total = va + vb + vc
    if total == 0.0:
        # Degenerate (collinear / coincident) triangle: fall back to the
        # nearest of the three edges treated as segments via vertices.
        return min(math.dist(p, a), math.dist(p, b), math.dist(p, c))
    denom = 1.0 / total
    v = vb * denom
    w = vc * denom
    q = (
        a[0] + ab[0] * v + ac[0] * w,
        a[1] + ab[1] * v + ac[1] * w,
        a[2] + ab[2] * v + ac[2] * w,
    )
    return math.dist(p, q)


class _TriangleGrid:
    """Uniform grid over triangles for nearest-triangle queries."""

    def __init__(self, tris: List[Tuple[Point, Point, Point]], cell: float):
        self.cell = cell
        self.tris = tris
        self.cells: Dict[Tuple[int, int, int], List[int]] = {}
        for i, (a, b, c) in enumerate(tris):
            lo = [min(a[k], b[k], c[k]) for k in range(3)]
            hi = [max(a[k], b[k], c[k]) for k in range(3)]
            keys = [
                (
                    int(math.floor(lo[k] / cell)),
                    int(math.floor(hi[k] / cell)),
                )
                for k in range(3)
            ]
            for ix in range(keys[0][0], keys[0][1] + 1):
                for iy in range(keys[1][0], keys[1][1] + 1):
                    for iz in range(keys[2][0], keys[2][1] + 1):
                        self.cells.setdefault((ix, iy, iz), []).append(i)

    def distance(self, p: Point, max_rings: int = 8) -> float:
        """Distance to the nearest triangle, searching outward by rings."""
        c = self.cell
        base = (
            int(math.floor(p[0] / c)),
            int(math.floor(p[1] / c)),
            int(math.floor(p[2] / c)),
        )
        best = math.inf
        for ring in range(max_rings + 1):
            found_any = False
            for ix in range(base[0] - ring, base[0] + ring + 1):
                for iy in range(base[1] - ring, base[1] + ring + 1):
                    for iz in range(base[2] - ring, base[2] + ring + 1):
                        if max(abs(ix - base[0]), abs(iy - base[1]),
                               abs(iz - base[2])) != ring:
                            continue
                        ids = self.cells.get((ix, iy, iz))
                        if not ids:
                            continue
                        found_any = True
                        for i in ids:
                            a, b, tc = self.tris[i]
                            d = point_triangle_distance(p, a, b, tc)
                            if d < best:
                                best = d
            # Once a candidate is found, one extra ring guarantees the
            # true nearest triangle has been seen.
            if best < (ring) * c and best < math.inf:
                break
        return best


def hausdorff_distance(mesh: ExtractedMesh, image: SegmentedImage,
                       oracle: SurfaceOracle = None,
                       samples_per_face: int = 4) -> float:
    """Two-sided Hausdorff distance between ``mesh``'s boundary and the
    image isosurface (world units)."""
    if oracle is None:
        oracle = SurfaceOracle(image)
    if len(mesh.boundary_faces) == 0:
        raise ValueError("mesh has no boundary faces")

    # direction 1: mesh boundary -> surface
    d_mesh_to_surf = 0.0
    verts = mesh.vertices
    tris: List[Tuple[Point, Point, Point]] = []
    for face in mesh.boundary_faces:
        a, b, c = (tuple(verts[v]) for v in face)
        tris.append((a, b, c))
        samples = [a, b, c,
                   tuple((a[k] + b[k] + c[k]) / 3.0 for k in range(3))]
        if samples_per_face > 4:
            samples += [
                tuple(0.5 * (a[k] + b[k]) for k in range(3)),
                tuple(0.5 * (b[k] + c[k]) for k in range(3)),
                tuple(0.5 * (a[k] + c[k]) for k in range(3)),
            ]
        for s in samples:
            z = oracle.closest_surface_point(s)
            if z is None:
                continue
            d = math.dist(s, z)
            if d > d_mesh_to_surf:
                d_mesh_to_surf = d

    # direction 2: surface -> mesh boundary
    cell = 2.0 * max(image.spacing)
    grid = _TriangleGrid(tris, cell)
    d_surf_to_mesh = 0.0
    surf_idx = np.argwhere(oracle.surface_mask)
    for idx in surf_idx:
        center = image.voxel_center(idx)
        z = oracle.closest_surface_point(center)
        probe = z if z is not None else center
        d = grid.distance(probe)
        if d > d_surf_to_mesh and math.isfinite(d):
            d_surf_to_mesh = d

    return max(d_mesh_to_surf, d_surf_to_mesh)
