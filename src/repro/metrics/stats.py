"""Element-quality statistics over an extracted mesh.

These are exactly the quality columns the paper reports in Table 6:
maximum radius-edge ratio, smallest boundary planar angle, and the
(min, max) dihedral angle range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.extract import ExtractedMesh
from repro.geometry.batch import (
    min_max_dihedral_many,
    radius_edge_many,
)
from repro.geometry.quality import (
    min_max_dihedral,
    radius_edge_ratio,
    triangle_min_angle,
)

__all__ = [
    "QualityReport",
    "quality_report",
    "min_max_dihedral",
    "radius_edge_ratio",
]


@dataclass
class QualityReport:
    """Summary statistics of a tetrahedral mesh."""

    n_tets: int
    n_vertices: int
    n_boundary_faces: int
    max_radius_edge: float
    min_dihedral_deg: float
    max_dihedral_deg: float
    min_boundary_planar_angle_deg: float
    total_volume: float
    labels: Dict[int, int]

    def row(self) -> str:
        """One-line summary in the paper's Table 6 style."""
        return (
            f"tets={self.n_tets} maxRE={self.max_radius_edge:.2f} "
            f"dihedral=({self.min_dihedral_deg:.1f}, "
            f"{self.max_dihedral_deg:.1f}) "
            f"minPlanar={self.min_boundary_planar_angle_deg:.1f}"
        )


def quality_report(mesh: ExtractedMesh) -> QualityReport:
    """Compute the Table 6 quality statistics for ``mesh``.

    The per-tet quality columns run through the vectorized kernels in
    :mod:`repro.geometry.batch` — one gather over the whole tet array
    instead of a Python loop of scalar kernels.  The scalar kernels in
    :mod:`repro.geometry.quality` remain the oracle the batch kernels
    are tested against.
    """
    if mesh.n_tets == 0:
        raise ValueError("cannot report quality of an empty mesh")
    verts = np.asarray(mesh.vertices, dtype=np.float64)
    quads = verts[np.asarray(mesh.tets, dtype=np.intp)]

    ratios = radius_edge_many(quads)
    finite = ratios[np.isfinite(ratios)]
    max_re = float(finite.max()) if finite.size else 0.0

    lo, hi = min_max_dihedral_many(quads)
    min_dih = float(lo.min())
    max_dih = float(hi.max())

    # |det[e1 e2 e3]| / 6 per tet, summed.
    edges = quads[:, 1:, :] - quads[:, :1, :]
    cross = np.cross(edges[:, 1, :], edges[:, 2, :])
    dets = np.einsum("ij,ij->i", edges[:, 0, :], cross)
    total_volume = float(np.abs(dets).sum() / 6.0)

    min_planar = 180.0
    for face in mesh.boundary_faces:
        pts = [tuple(verts[v]) for v in face]
        min_planar = min(min_planar, triangle_min_angle(*pts))
    if len(mesh.boundary_faces) == 0:
        min_planar = float("nan")

    labels: Dict[int, int] = {}
    for lab in mesh.tet_labels:
        labels[int(lab)] = labels.get(int(lab), 0) + 1

    return QualityReport(
        n_tets=mesh.n_tets,
        n_vertices=mesh.n_vertices,
        n_boundary_faces=len(mesh.boundary_faces),
        max_radius_edge=max_re,
        min_dihedral_deg=min_dih,
        max_dihedral_deg=max_dih,
        min_boundary_planar_angle_deg=min_planar,
        total_volume=total_volume,
        labels=labels,
    )
