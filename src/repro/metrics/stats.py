"""Element-quality statistics over an extracted mesh.

These are exactly the quality columns the paper reports in Table 6:
maximum radius-edge ratio, smallest boundary planar angle, and the
(min, max) dihedral angle range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.extract import ExtractedMesh
from repro.geometry.quality import (
    min_max_dihedral,
    radius_edge_ratio,
    tet_volume,
    triangle_min_angle,
)


@dataclass
class QualityReport:
    """Summary statistics of a tetrahedral mesh."""

    n_tets: int
    n_vertices: int
    n_boundary_faces: int
    max_radius_edge: float
    min_dihedral_deg: float
    max_dihedral_deg: float
    min_boundary_planar_angle_deg: float
    total_volume: float
    labels: Dict[int, int]

    def row(self) -> str:
        """One-line summary in the paper's Table 6 style."""
        return (
            f"tets={self.n_tets} maxRE={self.max_radius_edge:.2f} "
            f"dihedral=({self.min_dihedral_deg:.1f}, "
            f"{self.max_dihedral_deg:.1f}) "
            f"minPlanar={self.min_boundary_planar_angle_deg:.1f}"
        )


def quality_report(mesh: ExtractedMesh) -> QualityReport:
    """Compute the Table 6 quality statistics for ``mesh``."""
    if mesh.n_tets == 0:
        raise ValueError("cannot report quality of an empty mesh")
    verts = mesh.vertices
    max_re = 0.0
    min_dih = 180.0
    max_dih = 0.0
    total_volume = 0.0
    for tet in mesh.tets:
        pts = [tuple(verts[v]) for v in tet]
        re = radius_edge_ratio(*pts)
        if re > max_re and math.isfinite(re):
            max_re = re
        lo, hi = min_max_dihedral(*pts)
        min_dih = min(min_dih, lo)
        max_dih = max(max_dih, hi)
        total_volume += abs(tet_volume(*pts))

    min_planar = 180.0
    for face in mesh.boundary_faces:
        pts = [tuple(verts[v]) for v in face]
        min_planar = min(min_planar, triangle_min_angle(*pts))
    if len(mesh.boundary_faces) == 0:
        min_planar = float("nan")

    labels: Dict[int, int] = {}
    for lab in mesh.tet_labels:
        labels[int(lab)] = labels.get(int(lab), 0) + 1

    return QualityReport(
        n_tets=mesh.n_tets,
        n_vertices=mesh.n_vertices,
        n_boundary_faces=len(mesh.boundary_faces),
        max_radius_edge=max_re,
        min_dihedral_deg=min_dih,
        max_dihedral_deg=max_dih,
        min_boundary_planar_angle_deg=min_planar,
        total_volume=total_volume,
        labels=labels,
    )
