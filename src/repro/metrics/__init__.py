"""Mesh quality and fidelity metrics (paper Table 6 columns)."""

from repro.metrics.fidelity import hausdorff_distance, point_triangle_distance
from repro.metrics.stats import QualityReport, quality_report

__all__ = [
    "QualityReport",
    "quality_report",
    "hausdorff_distance",
    "point_triangle_distance",
]
