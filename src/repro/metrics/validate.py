"""Structural validation of extracted meshes (FE pre-flight checks).

A solver consuming PI2M output wants to know the mesh is *conforming*:
indices in range, no degenerate or inverted elements, every boundary
face actually a face of exactly one kept tetrahedron per side, and a
watertight boundary.  :func:`validate_extracted_mesh` returns a list of
human-readable issues (empty = valid); tests and examples assert on it.
"""

from __future__ import annotations

from collections import Counter
from typing import List

import numpy as np

from repro.core.extract import ExtractedMesh
from repro.geometry.quality import tet_volume


def validate_extracted_mesh(mesh: ExtractedMesh,
                            volume_tol: float = 0.0) -> List[str]:
    """Run all structural checks; returns a list of issue strings."""
    issues: List[str] = []
    nv = mesh.n_vertices

    # index ranges — fatal: geometry checks below would crash
    if mesh.n_tets and (mesh.tets.min() < 0 or mesh.tets.max() >= nv):
        issues.append("tet vertex index out of range")
    if len(mesh.boundary_faces) and (
        mesh.boundary_faces.min() < 0 or mesh.boundary_faces.max() >= nv
    ):
        issues.append("boundary face vertex index out of range")
    if issues:
        return issues

    # label arrays sized consistently
    if len(mesh.tet_labels) != mesh.n_tets:
        issues.append("tet_labels length mismatch")
    if len(mesh.boundary_labels) != len(mesh.boundary_faces):
        issues.append("boundary_labels length mismatch")

    # no repeated vertex inside one tet / face
    for i, tet in enumerate(mesh.tets):
        if len(set(tet.tolist())) != 4:
            issues.append(f"tet {i} repeats a vertex")
            break
    for i, face in enumerate(mesh.boundary_faces):
        if len(set(face.tolist())) != 3:
            issues.append(f"boundary face {i} repeats a vertex")
            break

    # degenerate elements
    n_degenerate = 0
    for tet in mesh.tets:
        pts = [tuple(mesh.vertices[v]) for v in tet]
        if abs(tet_volume(*pts)) <= volume_tol:
            n_degenerate += 1
    if n_degenerate:
        issues.append(f"{n_degenerate} degenerate (zero-volume) tets")

    # duplicate vertices (exact duplicates break adjacency assumptions)
    seen = {}
    n_dupes = 0
    for i, p in enumerate(mesh.vertices):
        key = (float(p[0]), float(p[1]), float(p[2]))
        if key in seen:
            n_dupes += 1
        seen[key] = i
    if n_dupes:
        issues.append(f"{n_dupes} duplicate vertex coordinates")

    # every boundary face must be a face of some tet
    tet_faces = set()
    for tet in mesh.tets:
        t = tet.tolist()
        for i in range(4):
            tet_faces.add(tuple(sorted(t[:i] + t[i + 1:])))
    missing = sum(
        1 for face in mesh.boundary_faces
        if tuple(sorted(face.tolist())) not in tet_faces
    )
    if missing:
        issues.append(f"{missing} boundary faces are not faces of any tet")

    # watertight boundary: each boundary edge on an even number of faces
    edges = Counter()
    for face in mesh.boundary_faces:
        f = sorted(int(v) for v in face)
        edges[(f[0], f[1])] += 1
        edges[(f[0], f[2])] += 1
        edges[(f[1], f[2])] += 1
    odd = sum(1 for c in edges.values() if c % 2 != 0)
    if odd:
        issues.append(f"{odd} boundary edges with odd face count "
                      "(boundary not watertight)")

    # interior conformity: every internal face shared by exactly 2 tets
    face_count = Counter()
    for tet in mesh.tets:
        t = tet.tolist()
        for i in range(4):
            face_count[tuple(sorted(t[:i] + t[i + 1:]))] += 1
    over = sum(1 for c in face_count.values() if c > 2)
    if over:
        issues.append(f"{over} faces shared by more than two tets")

    return issues
