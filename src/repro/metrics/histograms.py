"""Text histograms of element-quality distributions.

The paper reports min/max quality numbers; a downstream FE user usually
wants the whole distribution (how many near-sliver elements, where the
dihedral mass sits).  These render as terminal bar charts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.extract import ExtractedMesh
from repro.geometry.quality import min_max_dihedral, radius_edge_ratio


def text_histogram(values: Sequence[float], lo: float, hi: float,
                   n_bins: int = 12, width: int = 40,
                   title: str = "") -> str:
    """Render a fixed-range histogram as ASCII bars."""
    if n_bins <= 0 or hi <= lo:
        raise ValueError("need n_bins > 0 and hi > lo")
    counts = [0] * n_bins
    n_below = n_above = 0
    span = hi - lo
    for v in values:
        if v < lo:
            n_below += 1
            continue
        if v >= hi:
            n_above += 1
            continue
        counts[int((v - lo) / span * n_bins)] += 1
    peak = max(counts) if counts else 1
    lines = [title] if title else []
    if n_below:
        lines.append(f"   < {lo:8.2f} | {n_below}")
    for b, c in enumerate(counts):
        b_lo = lo + span * b / n_bins
        b_hi = lo + span * (b + 1) / n_bins
        bar = "#" * (0 if peak == 0 else round(width * c / peak))
        lines.append(f"{b_lo:8.2f}-{b_hi:8.2f} | {bar} {c}")
    if n_above:
        lines.append(f"  >= {hi:8.2f} | {n_above}")
    return "\n".join(lines)


def dihedral_histogram(mesh: ExtractedMesh, n_bins: int = 12) -> str:
    """Histogram of all minimum dihedral angles (degrees)."""
    mins: List[float] = []
    for tet in mesh.tets:
        pts = [tuple(mesh.vertices[v]) for v in tet]
        lo, _ = min_max_dihedral(*pts)
        mins.append(lo)
    return text_histogram(
        mins, 0.0, 90.0, n_bins=n_bins,
        title=f"min dihedral angle distribution ({len(mins)} tets)",
    )


def radius_edge_histogram(mesh: ExtractedMesh, n_bins: int = 12) -> str:
    """Histogram of radius-edge ratios (paper bound: 2)."""
    import math

    ratios = []
    for tet in mesh.tets:
        pts = [tuple(mesh.vertices[v]) for v in tet]
        r = radius_edge_ratio(*pts)
        if math.isfinite(r):
            ratios.append(r)
    return text_histogram(
        ratios, 0.5, 2.5, n_bins=n_bins,
        title=f"radius-edge ratio distribution ({len(ratios)} tets, "
              "bound 2.0)",
    )
