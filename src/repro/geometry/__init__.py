"""Geometric predicates and element-quality measures.

This package is the numerical foundation of the Delaunay kernel: robust
orientation / in-sphere predicates (float filter with an exact rational
fallback), circumcenter and circumradius computations, and the tetrahedron
and triangle quality measures the paper's refinement rules test
(radius-edge ratio, dihedral angles, boundary planar angles).
"""

from repro.geometry.predicates import (
    circumcenter_tet,
    circumcenter_tri,
    circumradius_tet,
    insphere,
    orient3d,
)
from repro.geometry.quality import (
    dihedral_angles,
    min_max_dihedral,
    radius_edge_ratio,
    tet_volume,
    triangle_angles,
    triangle_min_angle,
)

__all__ = [
    "orient3d",
    "insphere",
    "circumcenter_tet",
    "circumradius_tet",
    "circumcenter_tri",
    "tet_volume",
    "radius_edge_ratio",
    "dihedral_angles",
    "min_max_dihedral",
    "triangle_angles",
    "triangle_min_angle",
]
