"""Tetrahedron and triangle quality measures used by the refinement rules.

The paper constrains the *radius-edge ratio* of every tetrahedron
(rule R4, bound 2) and the *planar angles* of boundary triangles
(rule R3, bound 30 degrees), and reports *dihedral angles* when comparing
mesher output quality (Table 6).  All functions here take points as
3-sequences of floats and are written as scalar arithmetic because they
sit in the refinement inner loop where tiny-array numpy calls are slower
than plain floats.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.geometry.predicates import circumradius_tet

Point = Sequence[float]


def _sub(a: Point, b: Point):
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def _cross(u, v):
    return (
        u[1] * v[2] - u[2] * v[1],
        u[2] * v[0] - u[0] * v[2],
        u[0] * v[1] - u[1] * v[0],
    )


def _dot(u, v):
    return u[0] * v[0] + u[1] * v[1] + u[2] * v[2]


def _norm(u):
    return math.sqrt(u[0] * u[0] + u[1] * u[1] + u[2] * u[2])


def tet_volume(a: Point, b: Point, c: Point, d: Point) -> float:
    """Signed volume of tetrahedron ``(a, b, c, d)``.

    Positive when the tet is positively oriented under the same convention
    as :func:`repro.geometry.predicates.orient3d`.
    """
    ad = _sub(a, d)
    bd = _sub(b, d)
    cd = _sub(c, d)
    return _dot(ad, _cross(bd, cd)) / 6.0


def shortest_edge(a: Point, b: Point, c: Point, d: Point) -> float:
    """Length of the shortest of the six tetrahedron edges."""
    pts = (a, b, c, d)
    best = math.inf
    for i in range(4):
        for j in range(i + 1, 4):
            e = math.dist(pts[i], pts[j])
            if e < best:
                best = e
    return best


def radius_edge_ratio(a: Point, b: Point, c: Point, d: Point) -> float:
    """Circumradius divided by shortest edge length.

    The paper's quality rule R4 refines tetrahedra whose radius-edge ratio
    exceeds 2.  A regular tetrahedron scores ``sqrt(6)/4 ~ 0.612``;
    slivers can score close to ``1/sqrt(2)`` while still being bad in
    dihedral terms, which is why Table 6 reports dihedral angles as well.
    Returns ``inf`` for degenerate elements.
    """
    se = shortest_edge(a, b, c, d)
    if se == 0.0:
        return math.inf
    try:
        r = circumradius_tet(a, b, c, d)
    except ZeroDivisionError:
        return math.inf
    return r / se


def dihedral_angles(a: Point, b: Point, c: Point, d: Point) -> Tuple[float, ...]:
    """The six dihedral angles of a tetrahedron, in degrees.

    The dihedral angle at edge (p, q) is the angle between the two faces
    sharing that edge, measured inside the element.
    """
    pts = (a, b, c, d)
    angles = []
    # Each edge (i, j) is shared by the two faces opposite to the other
    # two vertices k and l.
    for i in range(4):
        for j in range(i + 1, 4):
            k, l = (x for x in range(4) if x != i and x != j)
            p, q = pts[i], pts[j]
            u = _sub(q, p)
            vk = _sub(pts[k], p)
            vl = _sub(pts[l], p)
            nk = _cross(u, vk)
            nl = _cross(u, vl)
            nk_len = _norm(nk)
            nl_len = _norm(nl)
            if nk_len == 0.0 or nl_len == 0.0:
                angles.append(0.0)
                continue
            cosang = _dot(nk, nl) / (nk_len * nl_len)
            cosang = min(1.0, max(-1.0, cosang))
            angles.append(math.degrees(math.acos(cosang)))
    return tuple(angles)


def min_max_dihedral(a: Point, b: Point, c: Point, d: Point) -> Tuple[float, float]:
    """Smallest and largest dihedral angle of the tetrahedron (degrees)."""
    angs = dihedral_angles(a, b, c, d)
    return (min(angs), max(angs))


def triangle_angles(a: Point, b: Point, c: Point) -> Tuple[float, float, float]:
    """The three planar angles of a triangle in 3D, in degrees."""
    out = []
    pts = (a, b, c)
    for i in range(3):
        p = pts[i]
        q = pts[(i + 1) % 3]
        r = pts[(i + 2) % 3]
        u = _sub(q, p)
        v = _sub(r, p)
        lu = _norm(u)
        lv = _norm(v)
        if lu == 0.0 or lv == 0.0:
            out.append(0.0)
            continue
        cosang = _dot(u, v) / (lu * lv)
        cosang = min(1.0, max(-1.0, cosang))
        out.append(math.degrees(math.acos(cosang)))
    return tuple(out)


def triangle_min_angle(a: Point, b: Point, c: Point) -> float:
    """Smallest planar angle of a triangle (degrees); rule R3's measure."""
    return min(triangle_angles(a, b, c))
