"""Robust geometric predicates for the 3D Delaunay kernel.

The predicates follow the classic *adaptive filtered-exact* design, in
three stages of increasing cost (and decreasing frequency):

1. **semi-static filter** — the determinant is evaluated in floating
   point and compared against a cheap error bound built from the maximum
   coordinate magnitudes (a handful of ``abs``/``max`` operations, no
   extra products).  This decides the overwhelming majority of calls.
2. **full permanent filter** — the classic Shewchuk-style forward error
   bound computed from the permanent of the determinant (every product
   re-accumulated with absolute values).  Tighter than stage 1, still
   pure floating point.
3. **exact arithmetic** — rational evaluation with
   ``fractions.Fraction``; always conclusive.

This mirrors the paper's use of CGAL's exact predicates ("PI2M adopts
the exact predicates as implemented in CGAL", Section 7) while staying
pure Python.  Every stage transition is counted in :data:`STATS` so the
observability layer can report the filter hit rate and the
exact-fallback fraction per run.

In addition to the classic point-wise predicates this module provides
*cached circumsphere entries* (:func:`circumsphere_entry`): a
precomputed ``(center, r^2, error-band)`` record that turns each
subsequent in-sphere test against the same tetrahedron into roughly ten
floating point operations plus a conservative band check, falling back
to the robust :func:`insphere` only inside the band.  The Bowyer-Watson
cavity search performs one to three in-sphere tests per tetrahedron it
examines, so the amortised saving is large.

Sign conventions
----------------
``orient3d(a, b, c, d) > 0``
    point ``d`` lies *below* the plane through ``a, b, c`` — i.e. the
    tetrahedron ``(a, b, c, d)`` is positively oriented (left-handed set
    matching Shewchuk's convention).
``insphere(a, b, c, d, e) > 0``
    point ``e`` lies strictly inside the circumsphere of the positively
    oriented tetrahedron ``(a, b, c, d)``.

Degeneracies (exact zeros) are returned as ``0`` and resolved by the
caller; the Delaunay kernel treats cospherical points as "inside" which
keeps Bowyer-Watson cavities consistent for any cospherical tie.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional, Sequence, Tuple

Point = Sequence[float]

# Forward error-bound coefficients.  These are deliberately conservative
# (larger than Shewchuk's tight constants) so that any float evaluation
# whose magnitude falls under the bound is re-done exactly.
_EPS = 2.0 ** -53
_ORIENT3D_BOUND = (16.0 + 128.0 * _EPS) * _EPS
_INSPHERE_BOUND = (64.0 + 512.0 * _EPS) * _EPS

# Semi-static stage-1 coefficients.  The orient3d permanent is a sum of
# 6 triple products, each bounded by the product of the per-axis maxima;
# insphere's is a sum of 24 quadruple products bounded by the per-axis
# maxima times the largest lift.  The constants carry an extra 2x pad
# for the rounding of the bound computation itself.
_ORIENT3D_STATIC = _ORIENT3D_BOUND * 12.0
_INSPHERE_STATIC = _INSPHERE_BOUND * 48.0

# Circumsphere-entry error model constants (see circumsphere_entry).
_CC_NUM_ERR = 32.0 * _EPS     # relative error pad on Cramer numerators
_CC_TEST_ERR = 16.0 * _EPS    # error pad on the d^2 - r^2 test itself


class PredicateStats:
    """Counters for the three filter stages, shared process-wide.

    Increments are plain int adds; under free-threaded racing they may
    lose the odd count, which is acceptable for advisory metrics.
    """

    __slots__ = (
        "orient3d_calls", "orient3d_static", "orient3d_filtered",
        "orient3d_exact",
        "insphere_calls", "insphere_static", "insphere_filtered",
        "insphere_exact",
        "cc_tests", "cc_fast", "cc_fallback",
        "batch_calls", "batch_items", "batch_exact",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def delta_since(self, before: dict) -> dict:
        return {
            name: getattr(self, name) - before.get(name, 0)
            for name in self.__slots__
        }

    @property
    def exact_fraction(self) -> float:
        """Fraction of all predicate decisions that needed exact math."""
        total = (self.orient3d_calls + self.insphere_calls + self.cc_tests
                 + self.batch_items)
        if total == 0:
            return 0.0
        exact = self.orient3d_exact + self.insphere_exact + self.batch_exact
        return exact / total


#: Process-wide predicate statistics (reset per run by the drivers).
STATS = PredicateStats()


def _orient3d_float(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz):
    """Float orient3d determinant together with its error permanent."""
    adx = ax - dx
    ady = ay - dy
    adz = az - dz
    bdx = bx - dx
    bdy = by - dy
    bdz = bz - dz
    cdx = cx - dx
    cdy = cy - dy
    cdz = cz - dz

    bdxcdy = bdx * cdy
    cdxbdy = cdx * bdy
    cdxady = cdx * ady
    adxcdy = adx * cdy
    adxbdy = adx * bdy
    bdxady = bdx * ady

    det = (
        adz * (bdxcdy - cdxbdy)
        + bdz * (cdxady - adxcdy)
        + cdz * (adxbdy - bdxady)
    )
    permanent = (
        (abs(bdxcdy) + abs(cdxbdy)) * abs(adz)
        + (abs(cdxady) + abs(adxcdy)) * abs(bdz)
        + (abs(adxbdy) + abs(bdxady)) * abs(cdz)
    )
    return det, permanent


def _orient3d_exact(a: Point, b: Point, c: Point, d: Point) -> int:
    adx = Fraction(a[0]) - Fraction(d[0])
    ady = Fraction(a[1]) - Fraction(d[1])
    adz = Fraction(a[2]) - Fraction(d[2])
    bdx = Fraction(b[0]) - Fraction(d[0])
    bdy = Fraction(b[1]) - Fraction(d[1])
    bdz = Fraction(b[2]) - Fraction(d[2])
    cdx = Fraction(c[0]) - Fraction(d[0])
    cdy = Fraction(c[1]) - Fraction(d[1])
    cdz = Fraction(c[2]) - Fraction(d[2])
    det = (
        adz * (bdx * cdy - cdx * bdy)
        + bdz * (cdx * ady - adx * cdy)
        + cdz * (adx * bdy - bdx * ady)
    )
    if det > 0:
        return 1
    if det < 0:
        return -1
    return 0


def orient3d(a: Point, b: Point, c: Point, d: Point) -> int:
    """Sign of the orientation of tetrahedron ``(a, b, c, d)``.

    Returns ``+1`` if positively oriented, ``-1`` if negatively oriented
    and ``0`` if the four points are exactly coplanar.
    """
    stats = STATS
    stats.orient3d_calls += 1
    dx = d[0]
    dy = d[1]
    dz = d[2]
    adx = a[0] - dx
    ady = a[1] - dy
    adz = a[2] - dz
    bdx = b[0] - dx
    bdy = b[1] - dy
    bdz = b[2] - dz
    cdx = c[0] - dx
    cdy = c[1] - dy
    cdz = c[2] - dz

    bdxcdy = bdx * cdy
    cdxbdy = cdx * bdy
    cdxady = cdx * ady
    adxcdy = adx * cdy
    adxbdy = adx * bdy
    bdxady = bdx * ady

    det = (
        adz * (bdxcdy - cdxbdy)
        + bdz * (cdxady - adxcdy)
        + cdz * (adxbdy - bdxady)
    )
    # Stage 1: semi-static bound from per-axis maxima.
    mx = abs(adx)
    t = abs(bdx)
    if t > mx:
        mx = t
    t = abs(cdx)
    if t > mx:
        mx = t
    my = abs(ady)
    t = abs(bdy)
    if t > my:
        my = t
    t = abs(cdy)
    if t > my:
        my = t
    mz = abs(adz)
    t = abs(bdz)
    if t > mz:
        mz = t
    t = abs(cdz)
    if t > mz:
        mz = t
    bound = _ORIENT3D_STATIC * mx * my * mz
    if det > bound:
        stats.orient3d_static += 1
        return 1
    if det < -bound:
        stats.orient3d_static += 1
        return -1
    # Stage 2: full permanent bound.
    permanent = (
        (abs(bdxcdy) + abs(cdxbdy)) * abs(adz)
        + (abs(cdxady) + abs(adxcdy)) * abs(bdz)
        + (abs(adxbdy) + abs(bdxady)) * abs(cdz)
    )
    bound = _ORIENT3D_BOUND * permanent
    if det > bound:
        stats.orient3d_filtered += 1
        return 1
    if det < -bound:
        stats.orient3d_filtered += 1
        return -1
    # Stage 3: exact.
    stats.orient3d_exact += 1
    return _orient3d_exact(a, b, c, d)


def _insphere_float(a, b, c, d, e):
    aex = a[0] - e[0]
    aey = a[1] - e[1]
    aez = a[2] - e[2]
    bex = b[0] - e[0]
    bey = b[1] - e[1]
    bez = b[2] - e[2]
    cex = c[0] - e[0]
    cey = c[1] - e[1]
    cez = c[2] - e[2]
    dex = d[0] - e[0]
    dey = d[1] - e[1]
    dez = d[2] - e[2]

    aexbey = aex * bey
    bexaey = bex * aey
    ab = aexbey - bexaey
    bexcey = bex * cey
    cexbey = cex * bey
    bc = bexcey - cexbey
    cexdey = cex * dey
    dexcey = dex * cey
    cd = cexdey - dexcey
    dexaey = dex * aey
    aexdey = aex * dey
    da = dexaey - aexdey
    aexcey = aex * cey
    cexaey = cex * aey
    ac = aexcey - cexaey
    bexdey = bex * dey
    dexbey = dex * bey
    bd = bexdey - dexbey

    abc = aez * bc - bez * ac + cez * ab
    bcd = bez * cd - cez * bd + dez * bc
    cda = cez * da + dez * ac + aez * cd
    dab = dez * ab + aez * bd + bez * da

    alift = aex * aex + aey * aey + aez * aez
    blift = bex * bex + bey * bey + bez * bez
    clift = cex * cex + cey * cey + cez * cez
    dlift = dex * dex + dey * dey + dez * dez

    det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd)

    aezplus = abs(aez)
    bezplus = abs(bez)
    cezplus = abs(cez)
    dezplus = abs(dez)
    aexbeyplus = abs(aexbey)
    bexaeyplus = abs(bexaey)
    bexceyplus = abs(bexcey)
    cexbeyplus = abs(cexbey)
    cexdeyplus = abs(cexdey)
    dexceyplus = abs(dexcey)
    dexaeyplus = abs(dexaey)
    aexdeyplus = abs(aexdey)
    aexceyplus = abs(aexcey)
    cexaeyplus = abs(cexaey)
    bexdeyplus = abs(bexdey)
    dexbeyplus = abs(dexbey)
    permanent = (
        ((cexdeyplus + dexceyplus) * bezplus
         + (dexbeyplus + bexdeyplus) * cezplus
         + (bexceyplus + cexbeyplus) * dezplus) * alift
        + ((dexaeyplus + aexdeyplus) * cezplus
           + (aexceyplus + cexaeyplus) * dezplus
           + (cexdeyplus + dexceyplus) * aezplus) * blift
        + ((aexbeyplus + bexaeyplus) * dezplus
           + (bexdeyplus + dexbeyplus) * aezplus
           + (dexaeyplus + aexdeyplus) * bezplus) * clift
        + ((bexceyplus + cexbeyplus) * aezplus
           + (cexaeyplus + aexceyplus) * bezplus
           + (aexbeyplus + bexaeyplus) * cezplus) * dlift
    )
    return det, permanent


def _insphere_exact(a: Point, b: Point, c: Point, d: Point, e: Point) -> int:
    # Mirrors the float evaluation term-for-term with exact rationals so the
    # sign convention is identical by construction.
    ex, ey, ez = Fraction(e[0]), Fraction(e[1]), Fraction(e[2])
    aex = Fraction(a[0]) - ex
    aey = Fraction(a[1]) - ey
    aez = Fraction(a[2]) - ez
    bex = Fraction(b[0]) - ex
    bey = Fraction(b[1]) - ey
    bez = Fraction(b[2]) - ez
    cex = Fraction(c[0]) - ex
    cey = Fraction(c[1]) - ey
    cez = Fraction(c[2]) - ez
    dex = Fraction(d[0]) - ex
    dey = Fraction(d[1]) - ey
    dez = Fraction(d[2]) - ez

    ab = aex * bey - bex * aey
    bc = bex * cey - cex * bey
    cd = cex * dey - dex * cey
    da = dex * aey - aex * dey
    ac = aex * cey - cex * aey
    bd = bex * dey - dex * bey

    abc = aez * bc - bez * ac + cez * ab
    bcd = bez * cd - cez * bd + dez * bc
    cda = cez * da + dez * ac + aez * cd
    dab = dez * ab + aez * bd + bez * da

    alift = aex * aex + aey * aey + aez * aez
    blift = bex * bex + bey * bey + bez * bez
    clift = cex * cex + cey * cey + cez * cez
    dlift = dex * dex + dey * dey + dez * dez

    det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd)
    if det > 0:
        return 1
    if det < 0:
        return -1
    return 0


def insphere(a: Point, b: Point, c: Point, d: Point, e: Point) -> int:
    """Sign of the in-sphere test of ``e`` against tet ``(a, b, c, d)``.

    Requires ``(a, b, c, d)`` positively oriented (``orient3d > 0``).
    Returns ``+1`` when ``e`` is strictly inside the circumsphere, ``-1``
    when strictly outside and ``0`` when exactly cospherical.
    """
    stats = STATS
    stats.insphere_calls += 1
    det, permanent = _insphere_float(a, b, c, d, e)
    bound = _INSPHERE_BOUND * permanent
    if det > bound:
        stats.insphere_filtered += 1
        return 1
    if det < -bound:
        stats.insphere_filtered += 1
        return -1
    stats.insphere_exact += 1
    return _insphere_exact(a, b, c, d, e)


# ---------------------------------------------------------------------------
# cached circumsphere entries
# ---------------------------------------------------------------------------
#
# A circumsphere entry for a live tetrahedron is the 6-tuple
#
#     (cx, cy, cz, r2, band_a, band_b)
#
# where (cx, cy, cz) is the floating point circumcenter, r2 the squared
# circumradius measured from vertex a, and the *band* is a conservative
# bound on the total rounding error of the test
#
#     s = |p - c|^2 - r2        (sign of s == -sign of insphere)
#
# as an affine function of the squared query distance:
#
#     |s_float - s_exact| <= band_a + band_b * d2
#
# The two coefficients fold together (i) the Cramer-rule error of the
# circumcenter itself, amplified by the inverse determinant (i.e. the
# tetrahedron's condition), (ii) the rounding of r2, and (iii) the
# rounding of the d2 accumulation.  The cross term 2*|p-c|*|dc| is
# linearised with 2*sqrt(d2) <= d2/r + r so no square root is paid per
# test.  Whenever |s| falls inside the band the caller must fall back to
# the robust :func:`insphere`; outside the band the cheap sign is
# guaranteed to agree with the exact predicate.

CircumsphereEntry = Tuple[float, float, float, float, float, float]


def circumsphere_entry(a: Point, b: Point, c: Point, d: Point
                       ) -> Optional[CircumsphereEntry]:
    """Precompute a filtered in-sphere record for tet ``(a, b, c, d)``.

    Returns ``None`` for (near-)degenerate tetrahedra, meaning "no fast
    path: always use the robust predicate".
    """
    ax, ay, az = a[0], a[1], a[2]
    bax = b[0] - ax
    bay = b[1] - ay
    baz = b[2] - az
    cax = c[0] - ax
    cay = c[1] - ay
    caz = c[2] - az
    dax = d[0] - ax
    day = d[1] - ay
    daz = d[2] - az

    b2 = bax * bax + bay * bay + baz * baz
    c2 = cax * cax + cay * cay + caz * caz
    d2 = dax * dax + day * day + daz * daz

    cxdx = cay * daz - caz * day
    cxdy = caz * dax - cax * daz
    cxdz = cax * day - cay * dax

    dxbx = day * baz - daz * bay
    dxby = daz * bax - dax * baz
    dxbz = dax * bay - day * bax

    bxcx = bay * caz - baz * cay
    bxcy = baz * cax - bax * caz
    bxcz = bax * cay - bay * cax

    # Permanents of the cross products (abs of the products *before* the
    # subtraction): cancellation inside a cross component can make
    # |cxdx| etc. arbitrarily smaller than the rounding error it carries,
    # so the error model must use these, not abs(cxdx).
    cxd_px = abs(cay * daz) + abs(caz * day)
    cxd_py = abs(caz * dax) + abs(cax * daz)
    cxd_pz = abs(cax * day) + abs(cay * dax)
    dxb_px = abs(day * baz) + abs(daz * bay)
    dxb_py = abs(daz * bax) + abs(dax * baz)
    dxb_pz = abs(dax * bay) + abs(day * bax)
    bxc_px = abs(bay * caz) + abs(baz * cay)
    bxc_py = abs(baz * cax) + abs(bax * caz)
    bxc_pz = abs(bax * cay) + abs(bay * cax)

    det = 2.0 * (bax * cxdx + bay * cxdy + baz * cxdz)
    det_abs = 2.0 * (abs(bax) * cxd_px + abs(bay) * cxd_py
                     + abs(baz) * cxd_pz)
    if det == 0.0 or abs(det) <= 64.0 * _EPS * det_abs:
        return None

    nx = b2 * cxdx + c2 * dxbx + d2 * bxcx
    ny = b2 * cxdy + c2 * dxby + d2 * bxcy
    nz = b2 * cxdz + c2 * dxbz + d2 * bxcz
    nx_abs = b2 * cxd_px + c2 * dxb_px + d2 * bxc_px
    ny_abs = b2 * cxd_py + c2 * dxb_py + d2 * bxc_py
    nz_abs = b2 * cxd_pz + c2 * dxb_pz + d2 * bxc_pz

    inv = 1.0 / det
    ox = nx * inv
    oy = ny * inv
    oz = nz * inv
    cx = ax + ox
    cy = ay + oy
    cz = az + oz
    r2 = ox * ox + oy * oy + oz * oz

    # Per-coordinate circumcenter error: numerator permanent plus the
    # |o| * det permanent term, both divided by |det|, with a generous
    # constant absorbing the division/additions themselves.
    err_scale = _CC_NUM_ERR * abs(inv)
    ec = (
        err_scale * (nx_abs + ny_abs + nz_abs)
        + _CC_NUM_ERR * det_abs * abs(inv) * (abs(ox) + abs(oy) + abs(oz))
        + _CC_TEST_ERR * (abs(cx) + abs(cy) + abs(cz))
    )
    r = math.sqrt(r2)
    # |s_f - s_e| <= band_a + band_b * d2 with the sqrt linearised at r.
    if r > 0.0:
        band_a = _CC_TEST_ERR * r2 + ec * r + ec * ec + 2.0 * ec * r
        band_b = _CC_TEST_ERR + ec / r
    else:
        band_a = ec * ec
        band_b = _CC_TEST_ERR + ec
    return (cx, cy, cz, r2, band_a, band_b)


def insphere_via_entry(entry: Optional[CircumsphereEntry],
                       a: Point, b: Point, c: Point, d: Point,
                       e: Point) -> int:
    """In-sphere sign using a cached circumsphere entry when conclusive.

    Exactly equivalent to ``insphere(a, b, c, d, e)``: the band check
    guarantees the fast path only answers when rounding cannot have
    flipped the sign.
    """
    stats = STATS
    if entry is not None:
        stats.cc_tests += 1
        dx = e[0] - entry[0]
        dy = e[1] - entry[1]
        dz = e[2] - entry[2]
        d2 = dx * dx + dy * dy + dz * dz
        s = d2 - entry[3]
        band = entry[4] + entry[5] * d2
        if s > band:
            stats.cc_fast += 1
            return -1
        if s < -band:
            stats.cc_fast += 1
            return 1
        stats.cc_fallback += 1
    return insphere(a, b, c, d, e)


def circumcenter_tet(a: Point, b: Point, c: Point, d: Point):
    """Circumcenter of a tetrahedron.

    Solves the 3x3 linear system expressing equidistance from the four
    vertices.  Returns a tuple ``(x, y, z)``.  Raises ``ZeroDivisionError``
    for degenerate (coplanar) tetrahedra.
    """
    bax = b[0] - a[0]
    bay = b[1] - a[1]
    baz = b[2] - a[2]
    cax = c[0] - a[0]
    cay = c[1] - a[1]
    caz = c[2] - a[2]
    dax = d[0] - a[0]
    day = d[1] - a[1]
    daz = d[2] - a[2]

    b2 = bax * bax + bay * bay + baz * baz
    c2 = cax * cax + cay * cay + caz * caz
    d2 = dax * dax + day * day + daz * daz

    # Cross products for Cramer's rule.
    cxdx = cay * daz - caz * day
    cxdy = caz * dax - cax * daz
    cxdz = cax * day - cay * dax

    dxbx = day * baz - daz * bay
    dxby = daz * bax - dax * baz
    dxbz = dax * bay - day * bax

    bxcx = bay * caz - baz * cay
    bxcy = baz * cax - bax * caz
    bxcz = bax * cay - bay * cax

    det = 2.0 * (bax * cxdx + bay * cxdy + baz * cxdz)
    if det == 0.0:
        raise ZeroDivisionError("degenerate tetrahedron in circumcenter_tet")

    ox = (b2 * cxdx + c2 * dxbx + d2 * bxcx) / det
    oy = (b2 * cxdy + c2 * dxby + d2 * bxcy) / det
    oz = (b2 * cxdz + c2 * dxbz + d2 * bxcz) / det
    return (a[0] + ox, a[1] + oy, a[2] + oz)


def circumradius_tet(a: Point, b: Point, c: Point, d: Point) -> float:
    """Circumradius of a tetrahedron."""
    cc = circumcenter_tet(a, b, c, d)
    return math.dist(cc, a)


def circumcenter_tri(a: Point, b: Point, c: Point):
    """Circumcenter of a triangle embedded in 3D space."""
    bax = b[0] - a[0]
    bay = b[1] - a[1]
    baz = b[2] - a[2]
    cax = c[0] - a[0]
    cay = c[1] - a[1]
    caz = c[2] - a[2]

    b2 = bax * bax + bay * bay + baz * baz
    c2 = cax * cax + cay * cay + caz * caz

    nx = bay * caz - baz * cay
    ny = baz * cax - bax * caz
    nz = bax * cay - bay * cax
    n2 = nx * nx + ny * ny + nz * nz
    if n2 == 0.0:
        raise ZeroDivisionError("degenerate triangle in circumcenter_tri")

    # (b2 * ca - c2 * ba) x n / (2 n.n) offset from a
    tx = b2 * cax - c2 * bax
    ty = b2 * cay - c2 * bay
    tz = b2 * caz - c2 * baz
    ox = (ty * nz - tz * ny) / (2.0 * n2)
    oy = (tz * nx - tx * nz) / (2.0 * n2)
    oz = (tx * ny - ty * nx) / (2.0 * n2)
    return (a[0] + ox, a[1] + oy, a[2] + oz)
