"""Robust geometric predicates for the 3D Delaunay kernel.

The predicates follow the classic filtered-exact design: a fast floating
point evaluation guarded by a forward error bound, falling back to exact
rational arithmetic (``fractions.Fraction``) only when the float result is
too close to zero to be trusted.  This mirrors the paper's use of CGAL's
exact predicates ("PI2M adopts the exact predicates as implemented in
CGAL", Section 7) while staying pure Python.

Sign conventions
----------------
``orient3d(a, b, c, d) > 0``
    point ``d`` lies *below* the plane through ``a, b, c`` — i.e. the
    tetrahedron ``(a, b, c, d)`` is positively oriented (left-handed set
    matching Shewchuk's convention).
``insphere(a, b, c, d, e) > 0``
    point ``e`` lies strictly inside the circumsphere of the positively
    oriented tetrahedron ``(a, b, c, d)``.

Degeneracies (exact zeros) are returned as ``0`` and resolved by the
caller; the Delaunay kernel treats cospherical points as "inside" which
keeps Bowyer-Watson cavities consistent for any cospherical tie.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

Point = Sequence[float]

# Forward error-bound coefficients.  These are deliberately conservative
# (larger than Shewchuk's tight constants) so that any float evaluation
# whose magnitude falls under the bound is re-done exactly.
_EPS = 2.0 ** -53
_ORIENT3D_BOUND = (16.0 + 128.0 * _EPS) * _EPS
_INSPHERE_BOUND = (64.0 + 512.0 * _EPS) * _EPS


def _orient3d_float(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz):
    """Float orient3d determinant together with its error permanent."""
    adx = ax - dx
    ady = ay - dy
    adz = az - dz
    bdx = bx - dx
    bdy = by - dy
    bdz = bz - dz
    cdx = cx - dx
    cdy = cy - dy
    cdz = cz - dz

    bdxcdy = bdx * cdy
    cdxbdy = cdx * bdy
    cdxady = cdx * ady
    adxcdy = adx * cdy
    adxbdy = adx * bdy
    bdxady = bdx * ady

    det = (
        adz * (bdxcdy - cdxbdy)
        + bdz * (cdxady - adxcdy)
        + cdz * (adxbdy - bdxady)
    )
    permanent = (
        (abs(bdxcdy) + abs(cdxbdy)) * abs(adz)
        + (abs(cdxady) + abs(adxcdy)) * abs(bdz)
        + (abs(adxbdy) + abs(bdxady)) * abs(cdz)
    )
    return det, permanent


def _orient3d_exact(a: Point, b: Point, c: Point, d: Point) -> int:
    adx = Fraction(a[0]) - Fraction(d[0])
    ady = Fraction(a[1]) - Fraction(d[1])
    adz = Fraction(a[2]) - Fraction(d[2])
    bdx = Fraction(b[0]) - Fraction(d[0])
    bdy = Fraction(b[1]) - Fraction(d[1])
    bdz = Fraction(b[2]) - Fraction(d[2])
    cdx = Fraction(c[0]) - Fraction(d[0])
    cdy = Fraction(c[1]) - Fraction(d[1])
    cdz = Fraction(c[2]) - Fraction(d[2])
    det = (
        adz * (bdx * cdy - cdx * bdy)
        + bdz * (cdx * ady - adx * cdy)
        + cdz * (adx * bdy - bdx * ady)
    )
    if det > 0:
        return 1
    if det < 0:
        return -1
    return 0


def orient3d(a: Point, b: Point, c: Point, d: Point) -> int:
    """Sign of the orientation of tetrahedron ``(a, b, c, d)``.

    Returns ``+1`` if positively oriented, ``-1`` if negatively oriented
    and ``0`` if the four points are exactly coplanar.
    """
    det, permanent = _orient3d_float(
        a[0], a[1], a[2], b[0], b[1], b[2], c[0], c[1], c[2], d[0], d[1], d[2]
    )
    bound = _ORIENT3D_BOUND * permanent
    if det > bound:
        return 1
    if det < -bound:
        return -1
    return _orient3d_exact(a, b, c, d)


def _insphere_float(a, b, c, d, e):
    aex = a[0] - e[0]
    aey = a[1] - e[1]
    aez = a[2] - e[2]
    bex = b[0] - e[0]
    bey = b[1] - e[1]
    bez = b[2] - e[2]
    cex = c[0] - e[0]
    cey = c[1] - e[1]
    cez = c[2] - e[2]
    dex = d[0] - e[0]
    dey = d[1] - e[1]
    dez = d[2] - e[2]

    aexbey = aex * bey
    bexaey = bex * aey
    ab = aexbey - bexaey
    bexcey = bex * cey
    cexbey = cex * bey
    bc = bexcey - cexbey
    cexdey = cex * dey
    dexcey = dex * cey
    cd = cexdey - dexcey
    dexaey = dex * aey
    aexdey = aex * dey
    da = dexaey - aexdey
    aexcey = aex * cey
    cexaey = cex * aey
    ac = aexcey - cexaey
    bexdey = bex * dey
    dexbey = dex * bey
    bd = bexdey - dexbey

    abc = aez * bc - bez * ac + cez * ab
    bcd = bez * cd - cez * bd + dez * bc
    cda = cez * da + dez * ac + aez * cd
    dab = dez * ab + aez * bd + bez * da

    alift = aex * aex + aey * aey + aez * aez
    blift = bex * bex + bey * bey + bez * bez
    clift = cex * cex + cey * cey + cez * cez
    dlift = dex * dex + dey * dey + dez * dez

    det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd)

    aezplus = abs(aez)
    bezplus = abs(bez)
    cezplus = abs(cez)
    dezplus = abs(dez)
    aexbeyplus = abs(aexbey)
    bexaeyplus = abs(bexaey)
    bexceyplus = abs(bexcey)
    cexbeyplus = abs(cexbey)
    cexdeyplus = abs(cexdey)
    dexceyplus = abs(dexcey)
    dexaeyplus = abs(dexaey)
    aexdeyplus = abs(aexdey)
    aexceyplus = abs(aexcey)
    cexaeyplus = abs(cexaey)
    bexdeyplus = abs(bexdey)
    dexbeyplus = abs(dexbey)
    permanent = (
        ((cexdeyplus + dexceyplus) * bezplus
         + (dexbeyplus + bexdeyplus) * cezplus
         + (bexceyplus + cexbeyplus) * dezplus) * alift
        + ((dexaeyplus + aexdeyplus) * cezplus
           + (aexceyplus + cexaeyplus) * dezplus
           + (cexdeyplus + dexceyplus) * aezplus) * blift
        + ((aexbeyplus + bexaeyplus) * dezplus
           + (bexdeyplus + dexbeyplus) * aezplus
           + (dexaeyplus + aexdeyplus) * bezplus) * clift
        + ((bexceyplus + cexbeyplus) * aezplus
           + (cexaeyplus + aexceyplus) * bezplus
           + (aexbeyplus + bexaeyplus) * cezplus) * dlift
    )
    return det, permanent


def _insphere_exact(a: Point, b: Point, c: Point, d: Point, e: Point) -> int:
    # Mirrors the float evaluation term-for-term with exact rationals so the
    # sign convention is identical by construction.
    ex, ey, ez = Fraction(e[0]), Fraction(e[1]), Fraction(e[2])
    aex = Fraction(a[0]) - ex
    aey = Fraction(a[1]) - ey
    aez = Fraction(a[2]) - ez
    bex = Fraction(b[0]) - ex
    bey = Fraction(b[1]) - ey
    bez = Fraction(b[2]) - ez
    cex = Fraction(c[0]) - ex
    cey = Fraction(c[1]) - ey
    cez = Fraction(c[2]) - ez
    dex = Fraction(d[0]) - ex
    dey = Fraction(d[1]) - ey
    dez = Fraction(d[2]) - ez

    ab = aex * bey - bex * aey
    bc = bex * cey - cex * bey
    cd = cex * dey - dex * cey
    da = dex * aey - aex * dey
    ac = aex * cey - cex * aey
    bd = bex * dey - dex * bey

    abc = aez * bc - bez * ac + cez * ab
    bcd = bez * cd - cez * bd + dez * bc
    cda = cez * da + dez * ac + aez * cd
    dab = dez * ab + aez * bd + bez * da

    alift = aex * aex + aey * aey + aez * aez
    blift = bex * bex + bey * bey + bez * bez
    clift = cex * cex + cey * cey + cez * cez
    dlift = dex * dex + dey * dey + dez * dez

    det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd)
    if det > 0:
        return 1
    if det < 0:
        return -1
    return 0


def insphere(a: Point, b: Point, c: Point, d: Point, e: Point) -> int:
    """Sign of the in-sphere test of ``e`` against tet ``(a, b, c, d)``.

    Requires ``(a, b, c, d)`` positively oriented (``orient3d > 0``).
    Returns ``+1`` when ``e`` is strictly inside the circumsphere, ``-1``
    when strictly outside and ``0`` when exactly cospherical.
    """
    det, permanent = _insphere_float(a, b, c, d, e)
    bound = _INSPHERE_BOUND * permanent
    if det > bound:
        return 1
    if det < -bound:
        return -1
    return _insphere_exact(a, b, c, d, e)


def circumcenter_tet(a: Point, b: Point, c: Point, d: Point):
    """Circumcenter of a tetrahedron.

    Solves the 3x3 linear system expressing equidistance from the four
    vertices.  Returns a tuple ``(x, y, z)``.  Raises ``ZeroDivisionError``
    for degenerate (coplanar) tetrahedra.
    """
    bax = b[0] - a[0]
    bay = b[1] - a[1]
    baz = b[2] - a[2]
    cax = c[0] - a[0]
    cay = c[1] - a[1]
    caz = c[2] - a[2]
    dax = d[0] - a[0]
    day = d[1] - a[1]
    daz = d[2] - a[2]

    b2 = bax * bax + bay * bay + baz * baz
    c2 = cax * cax + cay * cay + caz * caz
    d2 = dax * dax + day * day + daz * daz

    # Cross products for Cramer's rule.
    cxdx = cay * daz - caz * day
    cxdy = caz * dax - cax * daz
    cxdz = cax * day - cay * dax

    dxbx = day * baz - daz * bay
    dxby = daz * bax - dax * baz
    dxbz = dax * bay - day * bax

    bxcx = bay * caz - baz * cay
    bxcy = baz * cax - bax * caz
    bxcz = bax * cay - bay * cax

    det = 2.0 * (bax * cxdx + bay * cxdy + baz * cxdz)
    if det == 0.0:
        raise ZeroDivisionError("degenerate tetrahedron in circumcenter_tet")

    ox = (b2 * cxdx + c2 * dxbx + d2 * bxcx) / det
    oy = (b2 * cxdy + c2 * dxby + d2 * bxcy) / det
    oz = (b2 * cxdz + c2 * dxbz + d2 * bxcz) / det
    return (a[0] + ox, a[1] + oy, a[2] + oz)


def circumradius_tet(a: Point, b: Point, c: Point, d: Point) -> float:
    """Circumradius of a tetrahedron."""
    cc = circumcenter_tet(a, b, c, d)
    return math.dist(cc, a)


def circumcenter_tri(a: Point, b: Point, c: Point):
    """Circumcenter of a triangle embedded in 3D space."""
    bax = b[0] - a[0]
    bay = b[1] - a[1]
    baz = b[2] - a[2]
    cax = c[0] - a[0]
    cay = c[1] - a[1]
    caz = c[2] - a[2]

    b2 = bax * bax + bay * bay + baz * baz
    c2 = cax * cax + cay * cay + caz * caz

    nx = bay * caz - baz * cay
    ny = baz * cax - bax * caz
    nz = bax * cay - bay * cax
    n2 = nx * nx + ny * ny + nz * nz
    if n2 == 0.0:
        raise ZeroDivisionError("degenerate triangle in circumcenter_tri")

    # (b2 * ca - c2 * ba) x n / (2 n.n) offset from a
    tx = b2 * cax - c2 * bax
    ty = b2 * cay - c2 * bay
    tz = b2 * caz - c2 * baz
    ox = (ty * nz - tz * ny) / (2.0 * n2)
    oy = (tz * nx - tx * nz) / (2.0 * n2)
    oz = (tx * ny - ty * nx) / (2.0 * n2)
    return (a[0] + ox, a[1] + oy, a[2] + oz)
