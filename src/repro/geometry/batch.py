"""Vectorized batch versions of the filtered geometric predicates.

Each kernel mirrors its scalar counterpart in
:mod:`repro.geometry.predicates` *term for term*, so the same forward
error bound applies to every lane and inconclusive lanes can be resolved
by the scalar exact path with identical semantics.  (This is also why
``np.linalg.det`` is not used: an LU factorisation has a different — and
much harder to bound — error structure than the explicit cofactor
expansion the filter constants were derived for.)

The kernels operate on the mesh's struct-of-arrays storage
(``coords``/``tet_verts_arr``) and return small integer sign arrays.
Overhead is ~20 numpy calls per batch, so they pay off from roughly ten
lanes upward; the Bowyer-Watson commit phase (one orientation test per
boundary face, typically 20-50 faces) and the removal ball selection are
the intended consumers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.predicates import (
    STATS,
    _EPS,
    _INSPHERE_BOUND,
    _ORIENT3D_BOUND,
    insphere,
    orient3d,
)

_CC_NUM_ERR = 32.0 * _EPS
_CC_TEST_ERR = 16.0 * _EPS


def orient3d_signs(quads: np.ndarray) -> np.ndarray:
    """Signs of ``orient3d`` for a batch of point quadruples.

    ``quads`` is ``(k, 4, 3)`` float64; lane ``j`` holds the four points
    ``a, b, c, d`` of one orientation test.  Returns an ``(k,)`` int
    array of signs in ``{-1, 0, +1}``, identical to calling the scalar
    :func:`repro.geometry.predicates.orient3d` per lane.
    """
    k = quads.shape[0]
    if k == 0:
        return np.empty(0, dtype=np.int64)
    STATS.batch_calls += 1
    STATS.batch_items += k
    d = quads[:, 3]
    ad = quads[:, 0] - d
    bd = quads[:, 1] - d
    cd = quads[:, 2] - d
    adx, ady, adz = ad[:, 0], ad[:, 1], ad[:, 2]
    bdx, bdy, bdz = bd[:, 0], bd[:, 1], bd[:, 2]
    cdx, cdy, cdz = cd[:, 0], cd[:, 1], cd[:, 2]

    bdxcdy = bdx * cdy
    cdxbdy = cdx * bdy
    cdxady = cdx * ady
    adxcdy = adx * cdy
    adxbdy = adx * bdy
    bdxady = bdx * ady

    det = (adz * (bdxcdy - cdxbdy)
           + bdz * (cdxady - adxcdy)
           + cdz * (adxbdy - bdxady))
    permanent = ((np.abs(bdxcdy) + np.abs(cdxbdy)) * np.abs(adz)
                 + (np.abs(cdxady) + np.abs(adxcdy)) * np.abs(bdz)
                 + (np.abs(adxbdy) + np.abs(bdxady)) * np.abs(cdz))
    bound = _ORIENT3D_BOUND * permanent
    signs = np.where(det > bound, 1, np.where(det < -bound, -1, 0))
    unsure = np.flatnonzero(np.abs(det) <= bound)
    if unsure.size:
        STATS.batch_exact += int(unsure.size)
        rows = quads[unsure].tolist()
        for idx, row in zip(unsure.tolist(), rows):
            signs[idx] = orient3d(tuple(row[0]), tuple(row[1]),
                                  tuple(row[2]), tuple(row[3]))
    return signs


def insphere_many(
    coords: np.ndarray,
    tet_verts_arr: np.ndarray,
    tet_ids: np.ndarray,
    p: Sequence[float],
    points: Sequence,
) -> np.ndarray:
    """Signs of ``insphere(tet, p)`` for many tets in one vectorized call.

    ``coords``/``tet_verts_arr`` are the mesh's struct-of-arrays;
    ``tet_ids`` selects the (live, positively oriented) tets to test and
    ``points`` is the scalar tuple mirror used for exact fallbacks.
    Returns an int sign array aligned with ``tet_ids``.
    """
    k = len(tet_ids)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    STATS.batch_calls += 1
    STATS.batch_items += k
    tv = tet_verts_arr[tet_ids]
    q = coords[tv.ravel()].reshape(k, 4, 3)
    pe = np.asarray(p, dtype=np.float64)
    d = q - pe
    aex, aey, aez = d[:, 0, 0], d[:, 0, 1], d[:, 0, 2]
    bex, bey, bez = d[:, 1, 0], d[:, 1, 1], d[:, 1, 2]
    cex, cey, cez = d[:, 2, 0], d[:, 2, 1], d[:, 2, 2]
    dex, dey, dez = d[:, 3, 0], d[:, 3, 1], d[:, 3, 2]

    aexbey = aex * bey
    bexaey = bex * aey
    ab = aexbey - bexaey
    bexcey = bex * cey
    cexbey = cex * bey
    bc = bexcey - cexbey
    cexdey = cex * dey
    dexcey = dex * cey
    cd = cexdey - dexcey
    dexaey = dex * aey
    aexdey = aex * dey
    da = dexaey - aexdey
    aexcey = aex * cey
    cexaey = cex * aey
    ac = aexcey - cexaey
    bexdey = bex * dey
    dexbey = dex * bey
    bd = bexdey - dexbey

    abc = aez * bc - bez * ac + cez * ab
    bcd = bez * cd - cez * bd + dez * bc
    cda = cez * da + dez * ac + aez * cd
    dab = dez * ab + aez * bd + bez * da

    lifts = (d * d).sum(axis=2)
    alift, blift, clift, dlift = (lifts[:, 0], lifts[:, 1],
                                  lifts[:, 2], lifts[:, 3])
    det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd)

    aezp = np.abs(aez)
    bezp = np.abs(bez)
    cezp = np.abs(cez)
    dezp = np.abs(dez)
    permanent = (
        ((np.abs(cexdey) + np.abs(dexcey)) * bezp
         + (np.abs(dexbey) + np.abs(bexdey)) * cezp
         + (np.abs(bexcey) + np.abs(cexbey)) * dezp) * alift
        + ((np.abs(dexaey) + np.abs(aexdey)) * cezp
           + (np.abs(aexcey) + np.abs(cexaey)) * dezp
           + (np.abs(cexdey) + np.abs(dexcey)) * aezp) * blift
        + ((np.abs(aexbey) + np.abs(bexaey)) * dezp
           + (np.abs(bexdey) + np.abs(dexbey)) * aezp
           + (np.abs(dexaey) + np.abs(aexdey)) * bezp) * clift
        + ((np.abs(bexcey) + np.abs(cexbey)) * aezp
           + (np.abs(cexaey) + np.abs(aexcey)) * bezp
           + (np.abs(aexbey) + np.abs(bexaey)) * cezp) * dlift
    )
    bound = _INSPHERE_BOUND * permanent
    signs = np.where(det > bound, 1, np.where(det < -bound, -1, 0))
    unsure = np.flatnonzero(np.abs(det) <= bound)
    if unsure.size:
        STATS.batch_exact += int(unsure.size)
        pt = (float(pe[0]), float(pe[1]), float(pe[2]))
        verts_rows = tv[unsure].tolist()
        for idx, verts in zip(unsure.tolist(), verts_rows):
            signs[idx] = insphere(points[verts[0]], points[verts[1]],
                                  points[verts[2]], points[verts[3]], pt)
    return signs


# Error coefficient for the orientation sign extracted from the Cramer
# denominator 2 * (ba . (ca x da)): term depth ~4 roundings, padded 2x.
_ORIENT_REC_BOUND = 32.0 * _EPS


def new_tet_records(quads: np.ndarray,
                    ) -> Tuple[bool, List[Optional[tuple]]]:
    """Fused validation + circumsphere records for prospective new tets.

    ``quads`` is ``(k, 4, 3)`` float64 (one tet per lane).  Returns
    ``(all_positive, entries)`` where ``all_positive`` is True iff every
    tet is strictly positively oriented (``orient3d(a,b,c,d) > 0``,
    filtered float with exact fallback in the inconclusive band) and
    ``entries`` are the cached circumsphere records (``None`` for
    near-degenerate lanes).

    The fusion works because the Cramer denominator of the circumcenter
    solve, ``det(b-a, c-a, d-a)``, equals ``-orient3d(a, b, c, d)``'s
    determinant — so the insertion commit gets its boundary-face
    orientation validation for free from the record computation it needs
    anyway.
    """
    k = quads.shape[0]
    if k == 0:
        return True, []
    STATS.batch_calls += 1
    STATS.batch_items += k
    a = quads[:, 0]
    E = quads[:, 1:] - quads[:, :1]                 # (k,3,3): ba, ca, da
    L2 = (E * E).sum(axis=2)                        # (k,3): b2, c2, d2
    # Cross products cxd, dxb, bxc assembled from permuted views
    # (np.cross's moveaxis plumbing costs ~100us per call at this size).
    X = E[:, (1, 2, 0)]                             # rows: ca, da, ba
    Y = E[:, (2, 0, 1)]                             # rows: da, ba, ca
    t1 = X[:, :, (1, 2, 0)] * Y[:, :, (2, 0, 1)]
    t2 = X[:, :, (2, 0, 1)] * Y[:, :, (1, 2, 0)]
    C = t1 - t2                                     # (k,3,3): cxd, dxb, bxc
    T = E[:, 0] * C[:, 0]
    det = 2.0 * T.sum(axis=1)
    # Permanents of the cross products (abs of the products *before* the
    # subtraction — cancellation inside a cross component can make |C|
    # arbitrarily smaller than the rounding error it carries).
    Cp = np.abs(t1) + np.abs(t2)
    det_perm = 2.0 * (np.abs(E[:, 0]) * Cp[:, 0]).sum(axis=1)

    # Orientation: det(ba, ca, da) = -orient3d_det(a, b, c, d).
    neg = det < -_ORIENT_REC_BOUND * det_perm       # certainly positive orient
    all_positive = True
    if not neg.all():
        unsure = np.flatnonzero(~neg)
        STATS.batch_exact += int(unsure.size)
        rows = quads[unsure].tolist()
        for row in rows:
            if orient3d(tuple(row[0]), tuple(row[1]),
                        tuple(row[2]), tuple(row[3])) <= 0:
                all_positive = False
                break

    ok = np.abs(det) > 64.0 * _EPS * det_perm
    inv = 1.0 / np.where(ok, det, 1.0)
    N = np.einsum("ki,kix->kx", L2, C)              # Cramer numerators
    n_perm = (L2[:, :, None] * Cp).sum(axis=(1, 2))
    O = N * inv[:, None]
    cc = a + O
    r2 = (O * O).sum(axis=1)
    ainv = np.abs(inv)
    ec = (_CC_NUM_ERR * ainv * n_perm
          + _CC_NUM_ERR * det_perm * ainv * np.abs(O).sum(axis=1)
          + _CC_TEST_ERR * np.abs(cc).sum(axis=1))
    r = np.sqrt(r2)
    pos = r > 0.0
    band_a = np.where(pos,
                      _CC_TEST_ERR * r2 + ec * r + ec * ec + 2.0 * ec * r,
                      ec * ec)
    band_b = _CC_TEST_ERR + ec / np.where(pos, r, 1.0)
    out = np.empty((k, 6), dtype=np.float64)
    out[:, :3] = cc
    out[:, 3] = r2
    out[:, 4] = band_a
    out[:, 5] = band_b
    rows = out.tolist()
    ok_list = ok.tolist()
    entries = [tuple(rows[i]) if ok_list[i] else None for i in range(k)]
    return all_positive, entries


# ---------------------------------------------------------------------------
# vectorized quality screen (PEL seeding, Table-6 statistics)
# ---------------------------------------------------------------------------

# The six tet edges (i, j) with their opposite vertex pair (k, l), in
# the exact order of the scalar loops in repro.geometry.quality.
_EDGE_I = (0, 0, 0, 1, 1, 2)
_EDGE_J = (1, 2, 3, 2, 3, 3)
_EDGE_K = (2, 1, 1, 0, 0, 0)
_EDGE_L = (3, 3, 2, 3, 2, 1)


def shortest_edges_many(quads: np.ndarray) -> np.ndarray:
    """Shortest edge length per tet for a ``(k, 4, 3)`` batch.

    Lane-for-lane equal to
    :func:`repro.geometry.quality.shortest_edge`.
    """
    k = quads.shape[0]
    if k == 0:
        return np.empty(0, dtype=np.float64)
    d = quads[:, _EDGE_I] - quads[:, _EDGE_J]          # (k, 6, 3)
    return np.sqrt((d * d).sum(axis=2)).min(axis=1)


def circumradii_many(quads: np.ndarray) -> np.ndarray:
    """Circumradius per tet; ``inf`` for degenerate (flat) lanes.

    Matches :func:`repro.geometry.predicates.circumradius_tet` with the
    scalar path's ``ZeroDivisionError`` mapped to ``inf``.
    """
    k = quads.shape[0]
    if k == 0:
        return np.empty(0, dtype=np.float64)
    E = quads[:, 1:] - quads[:, :1]                    # ba, ca, da
    L2 = (E * E).sum(axis=2)
    X = E[:, (1, 2, 0)]
    Y = E[:, (2, 0, 1)]
    C = (X[:, :, (1, 2, 0)] * Y[:, :, (2, 0, 1)]
         - X[:, :, (2, 0, 1)] * Y[:, :, (1, 2, 0)])   # cxd, dxb, bxc
    det = 2.0 * (E[:, 0] * C[:, 0]).sum(axis=1)
    ok = det != 0.0
    inv = 1.0 / np.where(ok, det, 1.0)
    O = np.einsum("ki,kix->kx", L2, C) * inv[:, None]
    r = np.sqrt((O * O).sum(axis=1))
    r[~ok] = np.inf
    return r


def radius_edge_many(quads: np.ndarray) -> np.ndarray:
    """Radius-edge ratio per tet (``inf`` for degenerate lanes);
    the vectorized :func:`repro.geometry.quality.radius_edge_ratio`."""
    k = quads.shape[0]
    if k == 0:
        return np.empty(0, dtype=np.float64)
    se = shortest_edges_many(quads)
    r = circumradii_many(quads)
    out = np.full(k, np.inf)
    good = se > 0.0
    np.divide(r, se, out=out, where=good)
    return out


def min_max_dihedral_many(quads: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Smallest and largest dihedral angle (degrees) per tet.

    The vectorized :func:`repro.geometry.quality.min_max_dihedral`,
    including its convention that a zero-area face contributes a 0°
    angle for that edge.
    """
    k = quads.shape[0]
    if k == 0:
        e = np.empty(0, dtype=np.float64)
        return e, e.copy()
    p = quads[:, _EDGE_I]                              # (k, 6, 3)
    u = quads[:, _EDGE_J] - p
    vk = quads[:, _EDGE_K] - p
    vl = quads[:, _EDGE_L] - p
    nk = np.cross(u, vk)
    nl = np.cross(u, vl)
    nk_len = np.sqrt((nk * nk).sum(axis=2))
    nl_len = np.sqrt((nl * nl).sum(axis=2))
    denom = nk_len * nl_len
    ok = denom > 0.0
    cosang = np.clip(
        np.divide((nk * nl).sum(axis=2), np.where(ok, denom, 1.0)),
        -1.0, 1.0,
    )
    angles = np.degrees(np.arccos(cosang))
    angles[~ok] = 0.0
    return angles.min(axis=1), angles.max(axis=1)


def quality_screen(
    coords: np.ndarray,
    tet_verts_arr: np.ndarray,
    tet_ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Radius-edge ratios and shortest edges for tets of the SoA store.

    The Poor Element List seeding screen: one gather plus two
    vectorized kernels replaces the per-tet scalar
    ``shortest_edge`` / ``circumradius_tet`` pair (the refinement
    driver still applies the surface/sizing rules per element — those
    depend on EDT queries that have no batch form).
    """
    tet_ids = np.asarray(tet_ids)
    if tet_ids.size == 0:
        e = np.empty(0, dtype=np.float64)
        return e, e.copy()
    quads = coords[tet_verts_arr[tet_ids].ravel()].reshape(-1, 4, 3)
    return radius_edge_many(quads), shortest_edges_many(quads)


def circumsphere_entries(quads: np.ndarray) -> List[Optional[tuple]]:
    """Vectorized :func:`repro.geometry.predicates.circumsphere_entry`.

    ``quads`` is ``(k, 4, 3)`` float64 (tet vertex coordinates).
    Returns one entry tuple — or ``None`` for (near-)degenerate lanes —
    per tet.  Thin delegate of :func:`new_tet_records` (the orientation
    byproduct is discarded) so there is exactly one implementation of
    the record error model.
    """
    return new_tet_records(quads)[1]
