"""PI2M: parallel Delaunay image-to-mesh conversion (reproduction).

Reproduces Foteinos & Chrisochoides, "High Quality Real-Time
Image-to-Mesh Conversion for Finite Element Simulations" (SC 2012).

Quick tour
----------
>>> from repro.api import MeshRequest, mesh
>>> from repro.imaging import sphere_phantom
>>> result = mesh(MeshRequest(image=sphere_phantom(24), delta=2.5))
>>> result.mesh.n_tets > 0
True

Packages: :mod:`repro.geometry` (predicates), :mod:`repro.delaunay`
(kernel with insertions and removals), :mod:`repro.imaging` (images,
EDT, isosurface oracle), :mod:`repro.core` (rules R1-R6 and the
sequential refiner), :mod:`repro.runtime` (contention managers, begging
lists), :mod:`repro.parallel` (real threads), :mod:`repro.simnuma`
(cc-NUMA simulator), :mod:`repro.baselines`, :mod:`repro.metrics`,
:mod:`repro.postprocess`, :mod:`repro.io`, :mod:`repro.reporting`.
"""

__version__ = "1.0.0"
