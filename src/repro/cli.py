"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``phantom``   generate a synthetic segmented image (.npz)
``mesh``      image-to-mesh conversion (sequential or real threads)
``simulate``  parallel refinement on the simulated cc-NUMA machine
``report``    quality/fidelity report of a stored image + parameters
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

PHANTOMS = {
    "sphere": "sphere_phantom",
    "shell": "shell_phantom",
    "two-spheres": "two_spheres_phantom",
    "abdominal": "abdominal_phantom",
    "knee": "knee_phantom",
    "head-neck": "head_neck_phantom",
    "vascular": "vascular_phantom",
}


def _cmd_phantom(args: argparse.Namespace) -> int:
    import repro.imaging as imaging
    from repro.io import save_image_npz

    factory = getattr(imaging, PHANTOMS[args.kind])
    image = factory(args.n)
    save_image_npz(image, args.output)
    print(f"wrote {args.output}: shape={image.shape} "
          f"spacing={tuple(round(s, 3) for s in image.spacing)} "
          f"tissues={image.n_labels}")
    return 0


def _load_image(path: str):
    from repro.io import load_image_npz

    return load_image_npz(path)


def _cmd_mesh(args: argparse.Namespace) -> int:
    from repro.metrics import quality_report

    image = _load_image(args.image)
    t0 = time.perf_counter()
    if args.threads > 1:
        from repro.parallel import parallel_mesh_image

        res = parallel_mesh_image(
            image, n_threads=args.threads, delta=args.delta, cm=args.cm,
        )
        mesh = res.mesh
        extra = f" rollbacks={res.n_rollbacks}"
    else:
        from repro.core import mesh_image

        res = mesh_image(image, delta=args.delta)
        mesh = res.mesh
        extra = f" rules={res.stats.rule_counts}"
    dt = time.perf_counter() - t0

    if mesh.n_tets == 0:
        print("error: produced an empty mesh (is the image foreground "
              "empty or delta far too large?)", file=sys.stderr)
        return 1
    q = quality_report(mesh)
    print(f"{mesh.n_tets} tets in {dt:.2f}s "
          f"({mesh.n_tets / dt:,.0f} tets/s){extra}")
    print(q.row())

    if args.output:
        if args.output.endswith(".vtk"):
            from repro.io import save_vtk

            save_vtk(mesh, args.output)
        elif args.output.endswith(".off"):
            from repro.io import save_off_surface

            save_off_surface(mesh, args.output)
        else:
            from repro.io import save_tetgen

            save_tetgen(mesh, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simnuma import simulate_parallel_refinement

    image = _load_image(args.image)
    r = simulate_parallel_refinement(
        image,
        args.threads,
        delta=args.delta,
        cm=args.cm,
        lb=args.lb,
        hyperthreading=args.hyperthreading,
        seed=args.seed,
    )
    status = "LIVELOCK" if r.livelock else "ok"
    print(f"[{status}] {r.n_elements} elements in {r.virtual_time:.4f} "
          f"simulated seconds = {r.elements_per_second:,.0f} elements/s")
    print(f"rollbacks={r.rollbacks} "
          f"contention={r.totals['contention_overhead']:.4f}s "
          f"load-balance={r.totals['load_balance_overhead']:.4f}s "
          f"rollback-overhead={r.totals['rollback_overhead']:.4f}s")
    if args.utilization and not r.livelock:
        from repro.simnuma.trace import utilization_report

        print()
        print(utilization_report(r))
    return 2 if r.livelock else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core import mesh_image
    from repro.metrics import hausdorff_distance, quality_report
    from repro.metrics.histograms import (
        dihedral_histogram,
        radius_edge_histogram,
    )
    from repro.metrics.validate import validate_extracted_mesh

    image = _load_image(args.image)
    res = mesh_image(image, delta=args.delta)
    q = quality_report(res.mesh)
    d = hausdorff_distance(res.mesh, image, res.domain.oracle)
    print(q.row())
    print(f"hausdorff={d:.3f} (delta={res.domain.delta})")
    labels = ", ".join(f"{k}: {v}" for k, v in sorted(q.labels.items()))
    print(f"elements per tissue: {labels}")
    issues = validate_extracted_mesh(res.mesh)
    print("validation: " + ("OK" if not issues else "; ".join(issues)))
    if args.histograms:
        print()
        print(dihedral_histogram(res.mesh))
        print()
        print(radius_edge_histogram(res.mesh))
    return 0 if not issues else 1


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.viz import render_image_slice

    image = _load_image(args.image)
    print(render_image_slice(image, k=args.slice, axis=args.axis))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PI2M: parallel image-to-mesh conversion (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("phantom", help="generate a synthetic image")
    p.add_argument("kind", choices=sorted(PHANTOMS))
    p.add_argument("-n", type=int, default=32, help="base resolution")
    p.add_argument("-o", "--output", required=True, help=".npz path")
    p.set_defaults(func=_cmd_phantom)

    p = sub.add_parser("mesh", help="image-to-mesh conversion")
    p.add_argument("image", help="segmented image .npz")
    p.add_argument("--delta", type=float, default=None,
                   help="surface sampling parameter (default 2 voxels)")
    p.add_argument("--threads", type=int, default=1,
                   help="real threads (1 = sequential)")
    p.add_argument("--cm", default="local",
                   choices=["aggressive", "random", "global", "local"])
    p.add_argument("-o", "--output", default=None,
                   help=".vtk, .off, or TetGen basename")
    p.set_defaults(func=_cmd_mesh)

    p = sub.add_parser("simulate", help="simulated cc-NUMA refinement")
    p.add_argument("image", help="segmented image .npz")
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--delta", type=float, default=None)
    p.add_argument("--cm", default="local",
                   choices=["aggressive", "random", "global", "local"])
    p.add_argument("--lb", default="hws", choices=["rws", "hws"])
    p.add_argument("--hyperthreading", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--utilization", action="store_true",
                   help="print a per-thread-group utilization chart")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("report", help="mesh quality/fidelity report")
    p.add_argument("image", help="segmented image .npz")
    p.add_argument("--delta", type=float, default=None)
    p.add_argument("--histograms", action="store_true",
                   help="print dihedral / radius-edge distributions")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("show", help="ASCII view of an image slice")
    p.add_argument("image", help="segmented image .npz")
    p.add_argument("--slice", type=int, default=None)
    p.add_argument("--axis", type=int, default=2, choices=[0, 1, 2])
    p.set_defaults(func=_cmd_show)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
