"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``phantom``   generate a synthetic segmented image (.npz)
``mesh``      image-to-mesh conversion (any mesher, via ``repro.api``)
``serve``     long-running meshing service (NDJSON on stdio or a
              Unix socket, or the HTTP gateway via ``--http``;
              see ``repro.service``)
``simulate``  parallel refinement on the simulated cc-NUMA machine
``report``    quality/fidelity report of a stored image + parameters
``show``      ASCII view of an image slice

Every meshing command runs through the unified :mod:`repro.api` path
and accepts ``--trace-out`` (Chrome-trace JSON, loadable in
``chrome://tracing`` / Perfetto) and ``--metrics-out`` (flat metrics
JSON) flags.

Exit codes: 0 success, 1 empty/invalid mesh (or simulated livelock),
2 bad arguments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EXIT_OK = 0
EXIT_INVALID_MESH = 1
EXIT_BAD_ARGS = 2

PHANTOMS = {
    "sphere": "sphere_phantom",
    "shell": "shell_phantom",
    "two-spheres": "two_spheres_phantom",
    "ball-grid": "ball_grid_phantom",
    "abdominal": "abdominal_phantom",
    "knee": "knee_phantom",
    "head-neck": "head_neck_phantom",
    "vascular": "vascular_phantom",
}

MESHER_CHOICES = ["auto", "sequential", "threaded", "cgal-like",
                  "tetgen-like"]


def _cmd_phantom(args: argparse.Namespace) -> int:
    import repro.imaging as imaging
    from repro.io import save_image_npz

    factory = getattr(imaging, PHANTOMS[args.kind])
    image = factory(args.n)
    save_image_npz(image, args.output)
    print(f"wrote {args.output}: shape={image.shape} "
          f"spacing={tuple(round(s, 3) for s in image.spacing)} "
          f"tissues={image.n_labels}")
    return EXIT_OK


def _load_image(path: str):
    from repro.io import load_image_npz

    return load_image_npz(path)


def _parse_shards(raw):
    """``--shards`` value: ``None``, ``"auto"`` or a positive int."""
    if raw is None:
        return None
    if isinstance(raw, str) and raw.strip().lower() == "auto":
        return "auto"
    try:
        n = int(raw)
    except (TypeError, ValueError):
        raise argparse.ArgumentTypeError(
            f"--shards expects a positive integer or 'auto', got {raw!r}"
        ) from None
    if n < 1:
        raise argparse.ArgumentTypeError(
            f"--shards expects a positive integer or 'auto', got {raw!r}"
        )
    return n


def _build_request(args: argparse.Namespace, image, mesher: str):
    from repro.api import MeshRequest
    from repro.observability import ObservabilityConfig

    return MeshRequest(
        image=image,
        mesher=mesher,
        delta=args.delta,
        shards=getattr(args, "shards", None),
        incremental=not getattr(args, "no_incremental", False),
        n_threads=getattr(args, "threads", 1),
        cm=getattr(args, "cm", "local"),
        lb=getattr(args, "lb", "hws"),
        hyperthreading=getattr(args, "hyperthreading", False),
        seed=getattr(args, "seed", 0),
        observability=ObservabilityConfig(
            tracing=bool(getattr(args, "trace_out", None)),
        ),
    )


def _export_observability(result, args: argparse.Namespace) -> None:
    obs = result.observability
    if obs is None:
        return
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        obs.write_trace(trace_out, process_name=f"repro-{result.mesher}")
        print(f"wrote trace {trace_out}")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        obs.write_metrics(metrics_out, extra={
            "mesher": result.mesher,
            "stats": {k: v for k, v in result.stats.items()
                      if not isinstance(v, dict)},
            "timings": result.timings,
        })
        print(f"wrote metrics {metrics_out}")


def _empty_mesh_error() -> int:
    print("error: produced an empty mesh (is the image foreground "
          "empty or delta far too large?)", file=sys.stderr)
    return EXIT_INVALID_MESH


def _cmd_mesh(args: argparse.Namespace) -> int:
    from repro.api import mesh
    from repro.metrics import quality_report

    image = _load_image(args.image)
    mesher = args.mesher.replace("-", "_")
    if mesher == "auto" and args.threads > 1:
        mesher = "threaded"
    result = mesh(_build_request(args, image, mesher))
    _export_observability(result, args)

    if result.mesh.n_tets == 0:
        return _empty_mesh_error()
    dt = result.timings["wall_seconds"]
    if result.mesher == "threaded":
        extra = f" rollbacks={int(result.stats.get('rollbacks', 0))}"
    elif result.mesher == "sequential":
        extra = f" rules={result.stats.get('rule_counts', {})}"
    else:
        extra = f" mesher={result.mesher}"
    q = quality_report(result.mesh)
    print(f"{result.mesh.n_tets} tets in {dt:.2f}s "
          f"({result.mesh.n_tets / dt:,.0f} tets/s){extra}")
    print(q.row())

    if getattr(args, "kernel_stats", False):
        domain = result.extras.get("domain")
        if domain is not None:
            from repro.geometry.predicates import STATS
            from repro.runtime.stats import kernel_report

            print()
            print(kernel_report(domain.tri.counters, STATS.snapshot()))

    if args.output:
        if args.output.endswith(".vtk"):
            from repro.io import save_vtk

            save_vtk(result.mesh, args.output)
        elif args.output.endswith(".off"):
            from repro.io import save_off_surface

            save_off_surface(result.mesh, args.output)
        else:
            from repro.io import save_tetgen

            save_tetgen(result.mesh, args.output)
        print(f"wrote {args.output}")
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import MeshingService, ServiceConfig
    from repro.service.frontend import UnixSocketFrontend, serve_stdio

    config = ServiceConfig(
        n_workers=args.workers,
        queue_capacity=args.queue_capacity,
        cache_dir=args.cache_dir,
        max_retries=args.retries,
        default_deadline=args.deadline,
        tracing=bool(getattr(args, "trace_out", None)),
        executor=args.executor,
        max_shards=args.max_shards,
        shard_retries=args.shard_retries,
        memory_cache_bytes=args.memory_cache_bytes,
        coalesce=not args.no_coalesce,
        incremental=not getattr(args, "no_incremental", False),
    )
    service = MeshingService(config).start()
    if service.executor_fallback:
        print("process executor unavailable (no shared memory); "
              "falling back to threads", file=sys.stderr)
    try:
        if args.http:
            from repro.service.http import MeshHTTPServer

            host, _, port = args.http.rpartition(":")
            if not port.isdigit():
                print(f"--http wants HOST:PORT, got {args.http!r}",
                      file=sys.stderr)
                return EXIT_BAD_ARGS
            server = MeshHTTPServer(service, host=host or "127.0.0.1",
                                    port=int(port))
            print(f"serving http on {server.url} "
                  f"({args.workers} {service.executor} workers)",
                  file=sys.stderr, flush=True)
            try:
                server.serve_forever()
                code = EXIT_OK
            except KeyboardInterrupt:
                code = EXIT_OK
            finally:
                server.close()
        elif args.socket:
            print(f"serving on unix socket {args.socket} "
                  f"({args.workers} {service.executor} workers)",
                  file=sys.stderr)
            frontend = UnixSocketFrontend(service, args.socket)
            try:
                code = frontend.serve_forever()
            except KeyboardInterrupt:
                frontend.stop()
                code = EXIT_OK
        else:
            try:
                code = serve_stdio(service)
            except KeyboardInterrupt:
                code = EXIT_OK
    finally:
        service.shutdown(wait=False)
        if getattr(args, "metrics_out", None):
            service.obs.write_metrics(args.metrics_out)
            print(f"wrote metrics {args.metrics_out}", file=sys.stderr)
        if getattr(args, "trace_out", None):
            service.obs.write_trace(args.trace_out,
                                    process_name="repro-serve")
            print(f"wrote trace {args.trace_out}", file=sys.stderr)
    return code


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.api import mesh

    image = _load_image(args.image)
    result = mesh(_build_request(args, image, "simulated"))
    _export_observability(result, args)

    r = result.extras["raw"]
    status = "LIVELOCK" if r.livelock else "ok"
    print(f"[{status}] {r.n_elements} elements in {r.virtual_time:.4f} "
          f"simulated seconds = {r.elements_per_second:,.0f} elements/s")
    print(f"rollbacks={r.rollbacks} "
          f"contention={r.totals['contention_overhead']:.4f}s "
          f"load-balance={r.totals['load_balance_overhead']:.4f}s "
          f"rollback-overhead={r.totals['rollback_overhead']:.4f}s")
    if args.utilization and not r.livelock:
        from repro.simnuma.trace import utilization_report

        print()
        print(utilization_report(r))
    if r.livelock or result.mesh.n_tets == 0:
        if result.mesh.n_tets == 0 and not r.livelock:
            return _empty_mesh_error()
        return EXIT_INVALID_MESH
    return EXIT_OK


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.api import mesh
    from repro.metrics import hausdorff_distance, quality_report
    from repro.metrics.histograms import (
        dihedral_histogram,
        radius_edge_histogram,
    )
    from repro.metrics.validate import validate_extracted_mesh

    image = _load_image(args.image)
    result = mesh(_build_request(args, image, "sequential"))
    _export_observability(result, args)
    if result.mesh.n_tets == 0:
        return _empty_mesh_error()

    domain = result.extras["domain"]
    q = quality_report(result.mesh)
    d = hausdorff_distance(result.mesh, image, domain.oracle)
    print(q.row())
    print(f"hausdorff={d:.3f} (delta={domain.delta})")
    labels = ", ".join(f"{k}: {v}" for k, v in sorted(q.labels.items()))
    print(f"elements per tissue: {labels}")
    issues = validate_extracted_mesh(result.mesh)
    print("validation: " + ("OK" if not issues else "; ".join(issues)))
    if args.histograms:
        print()
        print(dihedral_histogram(result.mesh))
        print()
        print(radius_edge_histogram(result.mesh))
    return EXIT_OK if not issues else EXIT_INVALID_MESH


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.viz import render_image_slice

    image = _load_image(args.image)
    print(render_image_slice(image, k=args.slice, axis=args.axis))
    return EXIT_OK


def _add_observability_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write a Chrome-trace JSON of the run")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's metrics registry as JSON")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PI2M: parallel image-to-mesh conversion (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("phantom", help="generate a synthetic image")
    p.add_argument("kind", choices=sorted(PHANTOMS))
    p.add_argument("-n", type=int, default=32, help="base resolution")
    p.add_argument("-o", "--output", required=True, help=".npz path")
    p.set_defaults(func=_cmd_phantom)

    p = sub.add_parser("mesh", help="image-to-mesh conversion")
    p.add_argument("image", help="segmented image .npz")
    p.add_argument("--delta", type=float, default=None,
                   help="surface sampling parameter (default 2 voxels)")
    p.add_argument("--threads", type=int, default=1,
                   help="real threads (1 = sequential)")
    p.add_argument("--mesher", default="auto", choices=MESHER_CHOICES,
                   help="which mesher to run (default: sequential, or "
                        "threaded when --threads > 1)")
    p.add_argument("--cm", default="local",
                   choices=["aggressive", "random", "global", "local"])
    p.add_argument("-o", "--output", default=None,
                   help=".vtk, .off, or TetGen basename")
    p.add_argument("--shards", type=_parse_shards, default=None,
                   metavar="N|auto",
                   help="domain-sharded meshing: partition the image "
                        "into N blocks meshed in parallel processes "
                        "and stitched ('auto' sizes to the CPU count; "
                        "sequential mesher only)")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable the per-block content cache for "
                        "sharded meshing (every block re-meshes even "
                        "on a near-duplicate image)")
    p.add_argument("--kernel-stats", action="store_true",
                   help="print hot-path kernel statistics (filter hit "
                        "rate, walk lengths, cavity sizes)")
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_mesh)

    p = sub.add_parser(
        "serve",
        help="run the meshing service (NDJSON jobs on stdio or a "
             "socket, or HTTP via --http)",
    )
    p.add_argument("--workers", type=int, default=4,
                   help="worker threads/processes (default 4)")
    p.add_argument("--executor", choices=("thread", "process"),
                   default=None,
                   help="run meshing in worker threads (default) or in "
                        "spawned processes over shared-memory arenas; "
                        "also settable via REPRO_EXECUTOR")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="admission queue bound; overflow is REJECTED")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist the content-addressed artifact cache "
                        "here (default: in-memory only)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="serve a Unix domain socket instead of stdio")
    p.add_argument("--http", default=None, metavar="HOST:PORT",
                   help="serve the HTTP gateway (POST /v1/mesh, "
                        "GET /v1/jobs/<id>, /healthz, /metricsz) "
                        "instead of stdio")
    p.add_argument("--no-coalesce", action="store_true",
                   help="run identical concurrent requests as "
                        "independent jobs instead of coalescing them "
                        "onto one mesh run")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget for transient job failures")
    p.add_argument("--max-shards", type=int, default=None,
                   metavar="N",
                   help="cap the shard count any one job may request")
    p.add_argument("--shard-retries", type=int, default=1, metavar="N",
                   help="re-runs granted to a crashed/transient shard "
                        "(default 1)")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable per-block content caching and "
                        "seam-local stitching for sharded jobs")
    p.add_argument("--memory-cache-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="bound the in-memory artifact cache by total "
                        "result size (LRU eviction; default unbounded)")
    p.add_argument("--deadline", type=float, default=None,
                   help="default per-job deadline in seconds")
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("simulate", help="simulated cc-NUMA refinement")
    p.add_argument("image", help="segmented image .npz")
    p.add_argument("--threads", type=int, default=16)
    p.add_argument("--delta", type=float, default=None)
    p.add_argument("--cm", default="local",
                   choices=["aggressive", "random", "global", "local"])
    p.add_argument("--lb", default="hws", choices=["rws", "hws"])
    p.add_argument("--hyperthreading", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--utilization", action="store_true",
                   help="print a per-thread-group utilization chart")
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("report", help="mesh quality/fidelity report")
    p.add_argument("image", help="segmented image .npz")
    p.add_argument("--delta", type=float, default=None)
    p.add_argument("--histograms", action="store_true",
                   help="print dihedral / radius-edge distributions")
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("show", help="ASCII view of an image slice")
    p.add_argument("image", help="segmented image .npz")
    p.add_argument("--slice", type=int, default=None)
    p.add_argument("--axis", type=int, default=2, choices=[0, 1, 2])
    p.set_defaults(func=_cmd_show)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_ARGS
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_ARGS
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
