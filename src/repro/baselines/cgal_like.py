"""CGAL-Mesh_3-style isosurface-based baseline.

Restricted Delaunay refinement with CGAL's criteria set:

* facet criteria — minimum facet angle (default 30 degrees), facet
  distance (the facet's surface center may not be farther than
  ``facet_distance`` from the facet circumcenter), facet size;
* cell criteria — radius-edge bound (default 2) and cell size.

Like Mesh_3 (and unlike PI2M) the refinement is insertion-only, scans
facet work before cell work, and computes every surface intersection by
marching the dual segment without a distance-transform accelerator —
the structural differences the paper's Table 6 speed comparison
reflects.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.extract import ExtractedMesh
from repro.delaunay import (
    HULL,
    InsertionError,
    PointLocationError,
    Triangulation3D,
)
from repro.geometry.predicates import circumcenter_tet
from repro.geometry.quality import shortest_edge, triangle_min_angle
from repro.imaging.image import SegmentedImage


@dataclass
class BaselineStats:
    wall_time: float = 0.0
    n_insertions: int = 0
    n_operations: int = 0

    @property
    def tets_per_second(self) -> float:
        return 0.0  # overwritten by callers that know the final count


class CGALLikeMesher:
    """Isosurface-based restricted-Delaunay mesher (Mesh_3 style)."""

    def __init__(
        self,
        image: SegmentedImage,
        facet_angle_deg: float = 30.0,
        facet_distance: Optional[float] = None,
        facet_size: Optional[float] = None,
        cell_radius_edge: float = 2.0,
        cell_size: Optional[float] = None,
        n_initial_points: int = 24,
        max_operations: int = 2_000_000,
    ):
        self.image = image
        self.facet_angle = facet_angle_deg
        self.facet_distance = (
            facet_distance if facet_distance is not None
            else 1.5 * image.min_spacing
        )
        self.facet_size = facet_size if facet_size is not None else math.inf
        self.cell_radius_edge = cell_radius_edge
        self.cell_size = cell_size if cell_size is not None else math.inf
        self.n_initial_points = n_initial_points
        self.max_operations = max_operations

        lo, hi = image.foreground_bounds()
        self.tri = Triangulation3D(lo, hi, margin=2.0 * max(image.spacing))
        self._cc_cache: Dict[int, Tuple[int, Tuple[float, float, float], float]] = {}
        self.stats = BaselineStats()

    # ------------------------------------------------------------------
    # oracle without EDT: pure segment marching (Mesh_3's structure)
    # ------------------------------------------------------------------
    def _segment_crossing(self, a, b):
        """First label change on segment a-b, bisected; None otherwise."""
        label_at = self.image.label_at
        step = 0.4 * self.image.min_spacing
        d = (b[0] - a[0], b[1] - a[1], b[2] - a[2])
        length = math.sqrt(d[0] ** 2 + d[1] ** 2 + d[2] ** 2)
        if length == 0:
            return None
        ux, uy, uz = d[0] / length, d[1] / length, d[2] / length
        n = max(1, int(math.ceil(length / step)))
        prev_lab = label_at(a)
        prev_t = 0.0
        for k in range(1, n + 1):
            t = min(k * step, length)
            lab = label_at((a[0] + ux * t, a[1] + uy * t, a[2] + uz * t))
            if lab != prev_lab:
                lo_t, hi_t = prev_t, t
                tol = 1e-3 * self.image.min_spacing
                while hi_t - lo_t > tol:
                    mid = 0.5 * (lo_t + hi_t)
                    m_lab = label_at(
                        (a[0] + ux * mid, a[1] + uy * mid, a[2] + uz * mid)
                    )
                    if m_lab == prev_lab:
                        lo_t = mid
                    else:
                        hi_t = mid
                t_hit = 0.5 * (lo_t + hi_t)
                return (a[0] + ux * t_hit, a[1] + uy * t_hit, a[2] + uz * t_hit)
            prev_lab = lab
            prev_t = t
        return None

    # ------------------------------------------------------------------
    def _circumball(self, t: int):
        mesh = self.tri.mesh
        epoch = mesh.tet_epoch[t]
        hit = self._cc_cache.get(t)
        if hit is not None and hit[0] == epoch:
            return hit[1], hit[2]
        pts = mesh.points
        a, b, c, d = (pts[v] for v in mesh.tet_verts_arr[t].tolist())
        try:
            cc = circumcenter_tet(a, b, c, d)
            r = math.dist(cc, a)
        except ZeroDivisionError:
            cc = tuple((a[i] + b[i] + c[i] + d[i]) / 4.0 for i in range(3))
            r = math.inf
        self._cc_cache[t] = (epoch, cc, r)
        return cc, r

    def _initial_surface_points(self) -> List[Tuple[float, float, float]]:
        """Scan rays through the volume to seed the surface (Mesh_3's
        initial-point construction)."""
        lo, hi = self.image.foreground_bounds()
        center = tuple(0.5 * (lo[i] + hi[i]) for i in range(3))
        pts = []
        rng = np.random.default_rng(1234)
        tries = 0
        while len(pts) < self.n_initial_points and tries < 40 * self.n_initial_points:
            tries += 1
            u = rng.normal(size=3)
            u /= np.linalg.norm(u)
            far = tuple(
                center[i] + u[i] * max(hi[j] - lo[j] for j in range(3))
                for i in range(3)
            )
            hit = self._segment_crossing(center, far)
            if hit is not None:
                pts.append(hit)
        return pts

    # ------------------------------------------------------------------
    def refine(self) -> ExtractedMesh:
        """Run refinement to completion and extract the mesh."""
        t0 = time.perf_counter()
        # Batched insertion: one ctypes crossing carries runs of sample
        # points through the C kernel (scalar fallback per stopper);
        # semantically identical to a hint-chained insert_point loop.
        inserted = self.tri.insert_many(self._initial_surface_points())
        self.stats.n_insertions += sum(1 for v in inserted if v is not None)

        from collections import deque

        mesh = self.tri.mesh
        queue = deque((t, mesh.tet_epoch[t]) for t in mesh.live_tets())
        ops = 0
        while queue:
            t, epoch = queue.popleft()
            if mesh.tet_verts_arr[t, 0] < 0 or mesh.tet_epoch[t] != epoch:
                continue
            point = self._refinement_point(t)
            ops += 1
            if ops > self.max_operations:
                raise RuntimeError("cgal_like baseline exceeded max operations")
            if point is None:
                continue
            try:
                _, new_tets, _ = self.tri.insert_point(point, hint=t)
            except (InsertionError, PointLocationError):
                continue
            self.stats.n_insertions += 1
            for nt in new_tets:
                queue.append((nt, mesh.tet_epoch[nt]))
                for nbr in mesh.tet_adj[nt]:
                    if nbr != HULL and mesh.is_live(nbr):
                        queue.append((nbr, mesh.tet_epoch[nbr]))
        self.stats.n_operations = ops
        self.stats.wall_time = time.perf_counter() - t0
        return self.extract()

    def _refinement_point(self, t: int):
        """First refinement point this element demands, facets first."""
        mesh = self.tri.mesh
        pts = mesh.points
        c_t, r_t = self._circumball(t)
        lab_t = self.image.label_at(c_t)

        # facet criteria (restricted facets only)
        adj = mesh.tet_adj[t]
        for i in range(4):
            nbr = adj[i]
            if nbr == HULL:
                continue
            c_n, _ = self._circumball(nbr)
            if self.image.label_at(c_n) == lab_t:
                continue
            c_surf = self._segment_crossing(c_t, c_n)
            if c_surf is None:
                continue
            face = mesh.face_opposite(t, i)
            fa, fb, fc = (pts[w] for w in face)
            bad_angle = triangle_min_angle(fa, fb, fc) < self.facet_angle
            from repro.geometry.predicates import circumcenter_tri

            try:
                fcc = circumcenter_tri(fa, fb, fc)
            except ZeroDivisionError:
                return c_surf
            too_far = math.dist(fcc, c_surf) > self.facet_distance
            too_big = math.dist(c_surf, fa) > self.facet_size
            if bad_angle or too_far or too_big:
                return c_surf

        # cell criteria
        if lab_t != 0:
            se = shortest_edge(*self.tri.tet_points(t))
            if se == 0.0 or r_t / se > self.cell_radius_edge or r_t > self.cell_size:
                if self.tri.inside_domain(c_t):
                    return c_t
        return None

    # ------------------------------------------------------------------
    def extract(self) -> ExtractedMesh:
        mesh = self.tri.mesh
        keep: Dict[int, int] = {}
        for t in mesh.live_tets():
            c, _ = self._circumball(t)
            lab = self.image.label_at(c)
            if lab != 0:
                keep[t] = int(lab)

        vmap: Dict[int, int] = {}
        vertices: List[Tuple[float, float, float]] = []

        def remap(v):
            new = vmap.get(v)
            if new is None:
                new = len(vertices)
                vmap[v] = new
                vertices.append(mesh.points[v])
            return new

        tets, labels, bfaces, blabels = [], [], [], []
        for t, lab in keep.items():
            tets.append([remap(v) for v in mesh.tet_verts_arr[t].tolist()])
            labels.append(lab)
            for i in range(4):
                nbr = mesh.tet_adj[t][i]
                nbr_lab = keep.get(nbr, 0) if nbr != HULL else 0
                if nbr_lab == lab:
                    continue
                if nbr_lab != 0 and nbr < t:
                    continue
                bfaces.append([remap(v) for v in mesh.face_opposite(t, i)])
                blabels.append((lab, nbr_lab))
        return ExtractedMesh(
            vertices=np.asarray(vertices, dtype=np.float64).reshape(-1, 3),
            tets=np.asarray(tets, dtype=np.int64).reshape(-1, 4),
            tet_labels=np.asarray(labels, dtype=np.int32),
            boundary_faces=np.asarray(bfaces, dtype=np.int64).reshape(-1, 3),
            boundary_labels=np.asarray(blabels, dtype=np.int32).reshape(-1, 2),
        )
