"""TetGen-style PLC-based baseline.

TetGen meshes a piecewise-linear complex: in the paper's Table 6 setup
it receives *the triangulated isosurfaces recovered by PI2M* and fills
the volume, refining on the radius-edge ratio only (TetGen exposes no
boundary planar-angle control, which is why its dihedral quality trails
PI2M's in Table 6).

This implementation mirrors that structure on our kernel:

1. insert every PLC (boundary) vertex — since the PLC is a restricted
   Delaunay surface, its facets re-appear in the Delaunay triangulation
   of its vertices;
2. assign each tetrahedron to a region through user seed points
   (nearest-seed label at the circumcenter), the same seed mechanism the
   paper describes (and whose fragility it discusses for Figure 9);
3. refine: insert circumcenters of interior tetrahedra whose
   radius-edge ratio exceeds the bound.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.cgal_like import BaselineStats
from repro.core.extract import ExtractedMesh
from repro.delaunay import (
    HULL,
    InsertionError,
    PointLocationError,
    Triangulation3D,
)
from repro.geometry.predicates import circumcenter_tet
from repro.geometry.quality import shortest_edge


class TetGenLikeMesher:
    """PLC-based quality tetrahedralisation (TetGen style)."""

    def __init__(
        self,
        plc_vertices: np.ndarray,
        plc_faces: np.ndarray,
        region_seeds: Sequence[Tuple[Tuple[float, float, float], int]],
        radius_edge_bound: float = 2.0,
        max_operations: int = 2_000_000,
    ):
        """``region_seeds`` is a list of (point, label) pairs, one seed
        strictly inside each region (the paper's seed-point mechanism)."""
        self.plc_vertices = np.asarray(plc_vertices, dtype=np.float64)
        self.plc_faces = np.asarray(plc_faces, dtype=np.int64)
        self.region_seeds = list(region_seeds)
        if not self.region_seeds:
            raise ValueError("TetGen-like mesher needs at least one region seed")
        self.radius_edge_bound = radius_edge_bound
        self.max_operations = max_operations

        lo = self.plc_vertices.min(axis=0)
        hi = self.plc_vertices.max(axis=0)
        self.tri = Triangulation3D(tuple(lo), tuple(hi))
        self._cc_cache: Dict[int, Tuple[int, Tuple[float, float, float], float]] = {}
        self.stats = BaselineStats()

    # ------------------------------------------------------------------
    def _circumball(self, t: int):
        mesh = self.tri.mesh
        epoch = mesh.tet_epoch[t]
        hit = self._cc_cache.get(t)
        if hit is not None and hit[0] == epoch:
            return hit[1], hit[2]
        pts = mesh.points
        a, b, c, d = (pts[v] for v in mesh.tet_verts_arr[t].tolist())
        try:
            cc = circumcenter_tet(a, b, c, d)
            r = math.dist(cc, a)
        except ZeroDivisionError:
            cc = tuple((a[i] + b[i] + c[i] + d[i]) / 4.0 for i in range(3))
            r = math.inf
        self._cc_cache[t] = (epoch, cc, r)
        return cc, r

    def _label_of_point(self, p) -> int:
        """Region label by nearest seed on the same side of the PLC.

        The full point-in-region test walks the PLC; the nearest-seed
        approximation matches how the paper describes computing seeds by
        scanning the image, and is exactly the mechanism whose
        inaccuracy the paper observed in TetGen's colorings (Figure 9).
        """
        best_label = 0
        best_d = math.inf
        for seed, lab in self.region_seeds:
            d = (
                (p[0] - seed[0]) ** 2
                + (p[1] - seed[1]) ** 2
                + (p[2] - seed[2]) ** 2
            )
            if d < best_d:
                best_d = d
                best_label = lab
        return best_label

    def _inside_plc(self, p) -> bool:
        """Crude interiority: inside the PLC vertex cloud's inflated hull.

        TetGen decides interiority from the PLC's facets; here the
        boundary vertices came from a closed restricted-Delaunay surface,
        so a distance-to-vertex-cloud test against the local facet scale
        is a faithful, cheap stand-in."""
        d = np.linalg.norm(self.plc_vertices - np.asarray(p), axis=1).min()
        return bool(d < self._interior_probe)

    # ------------------------------------------------------------------
    def refine(self) -> ExtractedMesh:
        t0 = time.perf_counter()
        mesh = self.tri.mesh

        # Step 1: Delaunay triangulation of the PLC vertex set (batched
        # through the C kernel when available; scalar per stopper).
        inserted = self.tri.insert_many(
            [tuple(p) for p in self.plc_vertices]
        )
        self.stats.n_insertions += sum(1 for v in inserted if v is not None)

        # Local scale used by interiority probes: median PLC edge length.
        edges = self.plc_vertices[self.plc_faces[:, 0]] - \
            self.plc_vertices[self.plc_faces[:, 1]]
        self._interior_probe = 4.0 * float(
            np.median(np.linalg.norm(edges, axis=1))
        ) if len(edges) else 1.0

        # Step 2+3: quality refinement of interior tetrahedra.
        queue = deque((t, mesh.tet_epoch[t]) for t in mesh.live_tets())
        ops = 0
        while queue:
            t, epoch = queue.popleft()
            if mesh.tet_verts_arr[t, 0] < 0 or mesh.tet_epoch[t] != epoch:
                continue
            ops += 1
            if ops > self.max_operations:
                raise RuntimeError("tetgen_like baseline exceeded max operations")
            c, r = self._circumball(t)
            if not self._keep_tet(t):
                continue
            se = shortest_edge(*self.tri.tet_points(t))
            if se > 0.0 and r / se <= self.radius_edge_bound:
                continue
            if not self.tri.inside_domain(c) or not self._inside_plc(c):
                continue
            try:
                _, new_tets, _ = self.tri.insert_point(c, hint=t)
            except (InsertionError, PointLocationError):
                continue
            self.stats.n_insertions += 1
            for nt in new_tets:
                queue.append((nt, mesh.tet_epoch[nt]))
        self.stats.n_operations = ops
        self.stats.wall_time = time.perf_counter() - t0
        return self.extract()

    def _keep_tet(self, t: int) -> bool:
        c, _ = self._circumball(t)
        return self._inside_plc(c)

    # ------------------------------------------------------------------
    def extract(self) -> ExtractedMesh:
        mesh = self.tri.mesh
        keep: Dict[int, int] = {}
        for t in mesh.live_tets():
            if any(self.tri.is_box_vertex(v) for v in mesh.tet_verts_arr[t].tolist()):
                continue
            if not self._keep_tet(t):
                continue
            c, _ = self._circumball(t)
            keep[t] = self._label_of_point(c)

        vmap: Dict[int, int] = {}
        vertices: List[Tuple[float, float, float]] = []

        def remap(v):
            new = vmap.get(v)
            if new is None:
                new = len(vertices)
                vmap[v] = new
                vertices.append(mesh.points[v])
            return new

        tets, labels, bfaces, blabels = [], [], [], []
        for t, lab in keep.items():
            tets.append([remap(v) for v in mesh.tet_verts_arr[t].tolist()])
            labels.append(lab)
            for i in range(4):
                nbr = mesh.tet_adj[t][i]
                nbr_lab = keep.get(nbr, 0) if nbr != HULL else 0
                if nbr_lab == lab:
                    continue
                if nbr_lab != 0 and nbr < t:
                    continue
                bfaces.append([remap(v) for v in mesh.face_opposite(t, i)])
                blabels.append((lab, nbr_lab))
        return ExtractedMesh(
            vertices=np.asarray(vertices, dtype=np.float64).reshape(-1, 3),
            tets=np.asarray(tets, dtype=np.int64).reshape(-1, 4),
            tet_labels=np.asarray(labels, dtype=np.int32),
            boundary_faces=np.asarray(bfaces, dtype=np.int64).reshape(-1, 3),
            boundary_labels=np.asarray(blabels, dtype=np.int32).reshape(-1, 2),
        )
