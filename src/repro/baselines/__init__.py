"""Baseline meshers for the paper's Table 6 comparison.

* :mod:`repro.baselines.cgal_like` — an isosurface-based restricted
  Delaunay refiner in the style of CGAL's Mesh_3 (facet criteria first,
  then cell criteria; insertions only, no removals);
* :mod:`repro.baselines.tetgen_like` — a PLC-based mesher in the style
  of TetGen: it takes the triangulated isosurface recovered by PI2M as
  input (exactly the paper's setup), tetrahedralises its vertex set and
  refines the volume on radius-edge quality only (TetGen has no boundary
  planar-angle control, which is why its dihedral angles trail in
  Table 6).

Both baselines run on this repository's own Delaunay kernel, so the
comparison measures *algorithm structure*, not kernel implementation
differences — the same spirit as the paper's observation that all three
meshers share the Bowyer-Watson insertion kernel.
"""

from repro.baselines.cgal_like import CGALLikeMesher
from repro.baselines.tetgen_like import TetGenLikeMesher

__all__ = ["CGALLikeMesher", "TetGenLikeMesher"]
