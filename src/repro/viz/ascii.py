"""ASCII renderings of image slices and mesh cross-sections."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.extract import ExtractedMesh
from repro.imaging.image import SegmentedImage

# Distinct glyphs per label; background is '.'.
_GLYPHS = ".#oxs%@+=*ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _glyph(label: int) -> str:
    if label <= 0:
        return "."
    return _GLYPHS[1 + (label - 1) % (len(_GLYPHS) - 1)]


def render_image_slice(image: SegmentedImage, k: Optional[int] = None,
                       axis: int = 2, max_width: int = 96) -> str:
    """Render one slice of a segmented image as text.

    ``k`` is the slice index along ``axis`` (default: middle slice).
    Larger images are downsampled to ``max_width`` columns.
    """
    if not 0 <= axis <= 2:
        raise ValueError("axis must be 0, 1, or 2")
    n = image.shape[axis]
    if k is None:
        k = n // 2
    if not 0 <= k < n:
        raise ValueError(f"slice {k} out of range (axis size {n})")
    sl = np.take(image.labels, k, axis=axis)

    step = max(1, int(np.ceil(sl.shape[0] / max_width)))
    sl = sl[::step, ::step]

    lines = [f"slice axis={axis} k={k} shape={image.shape} "
             f"(downsample x{step})"]
    # transpose so the first image axis runs horizontally
    for row in sl.T[::-1]:
        lines.append("".join(_glyph(int(v)) for v in row))
    return "\n".join(lines)


def render_mesh_slice(mesh: ExtractedMesh, z: float, width: int = 72,
                      height: int = 36) -> str:
    """Render the mesh cross-section at plane ``z`` as text.

    Each character cell shows the label of a tetrahedron whose bounding
    box straddles the plane and covers the cell center — a quick look at
    tissue layout, not an exact slice.
    """
    if mesh.n_tets == 0:
        raise ValueError("cannot render an empty mesh")
    verts = mesh.vertices
    lo = verts.min(axis=0)
    hi = verts.max(axis=0)
    if not (lo[2] <= z <= hi[2]):
        raise ValueError(f"z={z} outside mesh range [{lo[2]}, {hi[2]}]")

    grid = np.zeros((height, width), dtype=np.int32)
    xs = np.linspace(lo[0], hi[0], width)
    ys = np.linspace(lo[1], hi[1], height)

    for tet, lab in zip(mesh.tets, mesh.tet_labels):
        pts = verts[tet]
        zmin, zmax = pts[:, 2].min(), pts[:, 2].max()
        if not (zmin <= z <= zmax):
            continue
        x0, x1 = pts[:, 0].min(), pts[:, 0].max()
        y0, y1 = pts[:, 1].min(), pts[:, 1].max()
        ci = np.searchsorted(xs, [x0, x1])
        cj = np.searchsorted(ys, [y0, y1])
        grid[cj[0]:cj[1] + 1, ci[0]:ci[1] + 1] = int(lab)

    lines = [f"mesh cross-section at z={z:.2f} "
             f"({mesh.n_tets} tets, bounds x[{lo[0]:.1f},{hi[0]:.1f}] "
             f"y[{lo[1]:.1f},{hi[1]:.1f}])"]
    for row in grid[::-1]:
        lines.append("".join(_glyph(int(v)) for v in row))
    return "\n".join(lines)
