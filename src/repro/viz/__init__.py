"""Terminal visualization helpers.

A headless library still needs eyes: these render segmented-image
slices and mesh cross-sections as ASCII/ANSI text, so users can sanity-
check inputs and outputs over SSH without a VTK viewer.
"""

from repro.viz.ascii import render_image_slice, render_mesh_slice

__all__ = ["render_image_slice", "render_mesh_slice"]
