"""Post-processing extensions.

The paper leaves "the computationally expensive step of
volume-conserving smoothing [37] and scale invariance [38]" for future
work (Sections 2 and 8).  :mod:`repro.postprocess.smoothing` implements
that extension: quality-guarded Laplacian smoothing whose boundary
vertices are re-projected onto the image isosurface, so CFD-style
surface smoothness is gained without sacrificing the fidelity
guarantee.
"""

from repro.postprocess.smoothing import SmoothingStats, smooth_mesh

__all__ = ["smooth_mesh", "SmoothingStats"]
