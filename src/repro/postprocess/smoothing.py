"""Quality-guarded mesh smoothing (the paper's future-work extension).

Laplacian smoothing with two safeguards the FE use case demands:

* **no quality regression** — a vertex moves only if the worst quality
  (minimum dihedral angle) over its incident tetrahedra does not
  decrease, and no element inverts;
* **fidelity preservation** — boundary vertices are smoothed along the
  surface: the averaged position is re-projected onto the image
  isosurface through the surface oracle, keeping Theorem 1's guarantee
  meaningful after smoothing (the volume-conserving idea of [37]).

Interior interface vertices (between two tissues) are treated as
boundary vertices of their interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.extract import ExtractedMesh
from repro.geometry.quality import min_max_dihedral, tet_volume
from repro.imaging.isosurface import SurfaceOracle


@dataclass
class SmoothingStats:
    """What a smoothing pass did."""

    iterations: int = 0
    moves_accepted: int = 0
    moves_rejected: int = 0
    boundary_projected: int = 0


def _vertex_adjacency(mesh: ExtractedMesh):
    """vertex -> incident tet ids, and vertex -> neighbor vertices."""
    v2t: Dict[int, List[int]] = {}
    v2v: Dict[int, Set[int]] = {}
    for ti, tet in enumerate(mesh.tets):
        for v in tet:
            v2t.setdefault(int(v), []).append(ti)
        for v in tet:
            s = v2v.setdefault(int(v), set())
            for w in tet:
                if w != v:
                    s.add(int(w))
    return v2t, v2v


def _min_quality(verts: np.ndarray, tets: np.ndarray, tet_ids) -> float:
    worst = 180.0
    for ti in tet_ids:
        pts = [tuple(verts[v]) for v in tets[ti]]
        if tet_volume(*pts) == 0.0:
            return -1.0
        lo, _ = min_max_dihedral(*pts)
        worst = min(worst, lo)
    return worst


def _orientations_ok(verts: np.ndarray, tets: np.ndarray, tet_ids,
                     reference_signs) -> bool:
    for ti in tet_ids:
        pts = [tuple(verts[v]) for v in tets[ti]]
        vol = tet_volume(*pts)
        if vol == 0.0 or (vol > 0) != reference_signs[ti]:
            return False
    return True


def smooth_mesh(
    mesh: ExtractedMesh,
    oracle: Optional[SurfaceOracle] = None,
    iterations: int = 3,
    boundary: str = "project",
) -> "tuple[ExtractedMesh, SmoothingStats]":
    """Smooth ``mesh`` in place-copy; returns (new mesh, stats).

    ``boundary`` is ``"project"`` (smooth boundary vertices and
    re-project them onto the isosurface; requires ``oracle``) or
    ``"fixed"`` (boundary vertices do not move).
    """
    if boundary not in ("project", "fixed"):
        raise ValueError("boundary must be 'project' or 'fixed'")
    if boundary == "project" and oracle is None:
        raise ValueError("boundary='project' requires a SurfaceOracle")

    verts = mesh.vertices.copy()
    tets = mesh.tets
    v2t, v2v = _vertex_adjacency(mesh)
    boundary_verts = {int(v) for face in mesh.boundary_faces for v in face}
    reference_signs = [
        tet_volume(*[tuple(verts[v]) for v in tet]) > 0 for tet in tets
    ]

    stats = SmoothingStats()
    for _ in range(iterations):
        stats.iterations += 1
        for v, neighbors in v2v.items():
            if not neighbors:
                continue
            is_boundary = v in boundary_verts
            if is_boundary and boundary == "fixed":
                continue
            if is_boundary:
                ring = [w for w in neighbors if w in boundary_verts]
                if len(ring) < 3:
                    continue
            else:
                ring = list(neighbors)
            target = verts[list(ring)].mean(axis=0)
            if is_boundary:
                projected = oracle.closest_surface_point(tuple(target))
                if projected is None:
                    continue
                target = np.asarray(projected)
                stats.boundary_projected += 1

            old = verts[v].copy()
            incident = v2t[v]
            before = _min_quality(verts, tets, incident)
            verts[v] = target
            if (
                _orientations_ok(verts, tets, incident, reference_signs)
                and _min_quality(verts, tets, incident) >= before - 1e-12
            ):
                stats.moves_accepted += 1
            else:
                verts[v] = old
                stats.moves_rejected += 1

    smoothed = ExtractedMesh(
        vertices=verts,
        tets=mesh.tets.copy(),
        tet_labels=mesh.tet_labels.copy(),
        boundary_faces=mesh.boundary_faces.copy(),
        boundary_labels=mesh.boundary_labels.copy(),
    )
    return smoothed, stats
