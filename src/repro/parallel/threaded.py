"""Threading-based execution context and driver.

Vertex try-locks use ``dict.setdefault``, which is atomic under the GIL
— the cheap atomic primitive playing the role of the paper's GCC atomic
built-ins (Section 4.2 reports those beat pthread try-locks by ~4%).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.domain import RefineDomain
from repro.core.extract import ExtractedMesh, extract_mesh
from repro.core.pel import PoorElementList
from repro.core.sizing import SizeFunction
from repro.imaging.image import SegmentedImage
from repro.runtime.begging import BeggingList, HierarchicalBeggingList
from repro.runtime.contention import make_contention_manager
from repro.runtime.context import ExecutionContext
from repro.runtime.placement import Placement, flat_placement
from repro.runtime.shared import SharedState
from repro.runtime.stats import OverheadKind, ThreadStats, aggregate
from repro.runtime.worker import WorkerEnv, refinement_worker

_SPIN_SLEEP = 20e-6  # polite spin granularity


class RealContext(ExecutionContext):
    """Execution context backed by a real OS thread."""

    def __init__(self, thread_id: int, lock_table: Dict[int, int],
                 shared: SharedState, seed: int = 0, obs=None):
        self.thread_id = thread_id
        self.stats = ThreadStats(thread_id=thread_id, obs=obs)
        self._locks = lock_table
        self._shared = shared
        self._t0 = time.perf_counter()
        self.op_locks: List[int] = []
        import random as _random

        self._rng = _random.Random((seed << 8) ^ thread_id)

    # -- locks ----------------------------------------------------------
    def try_lock_vertex(self, vid: int) -> int:
        owner = self._locks.setdefault(vid, self.thread_id)  # GIL-atomic
        if owner == self.thread_id:
            self.op_locks.append(vid)
            return -1
        return owner

    def _release_op_locks(self) -> None:
        locks = self._locks
        for vid in self.op_locks:
            if locks.get(vid) == self.thread_id:
                try:
                    del locks[vid]
                except KeyError:
                    pass
        self.op_locks.clear()

    def commit_operation(self, cost: float) -> None:
        self.stats.busy_time += cost
        self._release_op_locks()

    def abort_operation(self, wasted_cost: float) -> None:
        self.stats.add_overhead(OverheadKind.ROLLBACK, wasted_cost, self.now())
        self._release_op_locks()

    # -- time / waiting ---------------------------------------------------
    def now(self) -> float:
        return time.perf_counter() - self._t0

    def wait_until(self, predicate: Callable[[], bool],
                   kind: OverheadKind) -> None:
        start = time.perf_counter()
        while not predicate():
            if self._shared.done:
                break
            time.sleep(_SPIN_SLEEP)
        self.stats.add_overhead(
            kind, time.perf_counter() - start, self.now()
        )

    def sleep(self, seconds: float, kind: OverheadKind) -> None:
        time.sleep(seconds)
        self.stats.add_overhead(kind, seconds, self.now())

    def charge(self, seconds: float) -> None:
        self.stats.busy_time += seconds

    def make_mutex(self):
        return threading.Lock()

    def random(self) -> float:
        return self._rng.random()


@dataclass
class ParallelResult:
    """Outcome of a real-thread parallel meshing run."""

    mesh: ExtractedMesh
    domain: RefineDomain
    n_threads: int
    wall_time: float
    thread_stats: List[ThreadStats]
    totals: Dict[str, float] = field(default_factory=dict)

    @property
    def n_rollbacks(self) -> int:
        return int(self.totals.get("rollbacks", 0))


def _parallel_mesh_image(
    image: SegmentedImage,
    n_threads: int = 4,
    delta: Optional[float] = None,
    size_function: Optional[SizeFunction] = None,
    cm: str = "local",
    lb: str = "rws",
    placement: Optional[Placement] = None,
    seed: int = 0,
    timeout: Optional[float] = None,
    obs=None,
) -> ParallelResult:
    """Implementation behind :func:`parallel_mesh_image` / ``repro.api``.

    ``timeout`` (seconds) guards against protocol bugs in CI; expiry
    raises ``TimeoutError``.  ``obs`` is an optional
    :class:`repro.observability.Observability` bundle shared by every
    worker thread (the tracer's ring buffer takes GIL-atomic appends).
    """
    domain = RefineDomain(image, delta=delta, size_function=size_function)
    # Real threads use the two-phase insertion protocol: compute the
    # cavity optimistically without locks, acquire every vertex lock up
    # front, validate, then commit — through the C kernel when
    # available.  The protocol is identical with and without the
    # accelerator (the commit falls back to the Python batch commit), so
    # REPRO_ACCEL=0 produces the same meshes.
    domain.tri._two_phase = True
    if placement is None:
        placement = flat_placement(n_threads)
    shared = SharedState(n_threads, obs=obs)
    manager = make_contention_manager(cm, n_threads, shared)
    if lb == "hws":
        begging = HierarchicalBeggingList(n_threads, shared, placement)
    else:
        begging = BeggingList(n_threads, shared, placement)

    mesh = domain.tri.mesh
    pels = [PoorElementList(mesh) for _ in range(n_threads)]
    for t in mesh.live_tets():
        if domain.is_poor(t):
            pels[0].push(t)

    lock_table: Dict[int, int] = {}
    contexts = [
        RealContext(tid, lock_table, shared, seed=seed, obs=obs)
        for tid in range(n_threads)
    ]

    def cost_of(result, elapsed, ctx):
        return elapsed  # real backend charges measured wall time

    env = WorkerEnv(
        domain=domain,
        pels=pels,
        cm=manager,
        bl=begging,
        shared=shared,
        placement=placement,
        cost_of=cost_of,
        obs=obs,
    )

    errors: List[BaseException] = []

    # Per-thread allocation arenas: each worker allocates/recycles mesh
    # slots from a private slice, so validated commits from threads with
    # disjoint lock sets proceed concurrently instead of serializing on
    # the old global commit lock.
    arenas = mesh.begin_thread_arenas(n_threads)

    def guarded_worker(ctx):
        try:
            mesh.adopt_alloc_arena(arenas[ctx.thread_id])
            refinement_worker(ctx, env)
        except BaseException as exc:  # noqa: BLE001 - re-raised by driver
            errors.append(exc)
            shared.done = True  # a dead worker must not hang the fleet

    threads = [
        threading.Thread(
            target=guarded_worker, args=(contexts[tid],), daemon=True
        )
        for tid in range(n_threads)
    ]
    from repro.geometry.predicates import STATS

    predicates_before = STATS.snapshot()
    t0 = time.perf_counter()
    for th in threads:
        th.start()
    deadline = None if timeout is None else t0 + timeout
    try:
        for th in threads:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.perf_counter()))
            th.join(remaining)
            if th.is_alive():
                shared.done = True
                for th2 in threads:
                    th2.join(5.0)
                raise TimeoutError(
                    f"parallel refinement exceeded {timeout}s "
                    f"({mesh.n_live_tets} tets so far)"
                )
    finally:
        # Merge even on timeout/crash: the mesh must be left in the
        # canonical single-owner state (free lists whole, tail trimmed)
        # for extraction or post-mortem inspection.
        mesh.end_thread_arenas(arenas)
    wall = time.perf_counter() - t0
    if errors:
        raise RuntimeError(
            f"a refinement thread crashed: {errors[0]!r}"
        ) from errors[0]

    stats = [c.stats for c in contexts]
    extracted = extract_mesh(domain)
    registry = obs.registry if obs is not None else None
    totals = aggregate(stats, registry=registry)
    if registry is not None:
        registry.gauge("run.threads").set(n_threads)
        registry.gauge("run.elements").set(extracted.n_tets)
        registry.gauge("run.vertices").set(extracted.n_vertices)
        registry.gauge("run.wall_seconds").set(wall)
        registry.gauge("run.elements_per_second").set(
            extracted.n_tets / wall if wall > 0 else 0.0
        )
        from repro.runtime.stats import publish_kernel_stats

        publish_kernel_stats(
            registry, domain.tri.counters,
            STATS.delta_since(predicates_before),
        )
    return ParallelResult(
        mesh=extracted,
        domain=domain,
        n_threads=n_threads,
        wall_time=wall,
        thread_stats=stats,
        totals=totals,
    )
