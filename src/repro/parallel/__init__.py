"""Real-thread parallel refinement backend.

Runs the same worker loop, contention managers and begging lists as the
simulator, but on actual ``threading`` threads with wall-clock time and
spin waits.  CPython's GIL caps the achievable speedup (the scaling
*experiments* therefore run on :mod:`repro.simnuma`); this backend
demonstrates that the speculative protocol is correct under true
asynchronous interleaving — the final mesh passes the same validity
checks as a sequential run.
"""

from repro.parallel.threaded import ParallelResult, _parallel_mesh_image

__all__ = ["ParallelResult", "_parallel_mesh_image"]
