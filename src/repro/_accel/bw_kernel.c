/* Bowyer-Watson kernels: insertion, batched insertion, pre-validated
 * commit, and vertex-removal hole filling.
 *
 * Compiled on demand (see __init__.py) and driven through ctypes on the
 * mesh's struct-of-arrays buffers.  Four entry points share the same
 * building blocks:
 *
 * - bw_insert        one insertion attempt: remembering walk -> cavity
 *                    search -> validation -> closure check -> commit.
 * - bw_insert_many   a batch of insertion attempts amortizing the
 *                    ctypes crossing; stops (with progress) at the
 *                    first point it cannot finish conclusively.
 * - bw_commit        validation + closure + commit of a cavity the
 *                    caller already computed (the two-phase speculative
 *                    path: Python acquires every vertex lock first,
 *                    then this commits lock-free).
 * - bw_remove        gift-wrap hole filling for vertex removal (the
 *                    predicate-heavy inner loop of the removal path).
 *
 * Contract with the Python kernel (delaunay/triangulation.py):
 *
 * - Every floating point predicate is *filtered*: evaluated in double
 *   with a Shewchuk-style forward error bound.  A conclusive filter
 *   result is guaranteed to equal the exact predicate's sign, so every
 *   decision taken here is identical to the pure-Python filtered/exact
 *   path.  The moment ANY predicate is inconclusive the routine returns
 *   BW_RETRY without having mutated anything and the caller re-runs the
 *   Python path (which has the exact Fraction fallback).  This file must
 *   be compiled with -ffp-contract=off: FMA contraction would change
 *   the rounding behaviour the error bounds were derived for.
 * - Traversal orders replicate the Python implementation exactly — the
 *   walk's face order comes from the same inline LCG state, the cavity
 *   is enumerated by the same depth-first stack discipline, boundary
 *   faces are emitted in the same sequence, new tet slots are drawn
 *   from the free-list top (LIFO) before fresh tail slots, and the
 *   removal front replicates dict popitem()/del semantics.  These
 *   orders determine new tet ids and therefore the entire downstream
 *   mesh, so they are part of the deterministic output contract
 *   (tests/test_kernel_parity.py).
 * - Mutation is strictly deferred: the read phases (walk, cavity,
 *   validation, closure, hole filling) only read mesh arrays and write
 *   caller-owned scratch; the commit phase writes the mesh arrays and
 *   cannot fail.  Error returns (duplicate point / point on a cavity
 *   face / open boundary) are decided before any mutation, mirroring
 *   InsertionError semantics.
 *
 * The edge hash table and the cavity tag array are epoch-stamped with
 * the caller's generation counter, so they are never cleared between
 * calls.
 */

#include <math.h>
#include <stdint.h>

#define BW_OK 0
#define BW_RETRY 1
#define BW_ERR_DUP 2
#define BW_ERR_FACE 3
#define BW_ERR_CLOSED 4

#define EPSILON 1.1102230246251565e-16 /* 2^-53 */

static const double ORIENT3D_BOUND = (16.0 + 128.0 * EPSILON) * EPSILON;
static const double INSPHERE_BOUND = (64.0 + 512.0 * EPSILON) * EPSILON;

/* Sign of orient3d(a, b, c, d), or 2 when the filter is inconclusive
 * (which includes every exact zero).  Mirrors predicates._orient3d_float
 * term for term. */
static int orient3d_f(const double *a, const double *b, const double *c,
                      const double *d)
{
    double adx = a[0] - d[0], ady = a[1] - d[1], adz = a[2] - d[2];
    double bdx = b[0] - d[0], bdy = b[1] - d[1], bdz = b[2] - d[2];
    double cdx = c[0] - d[0], cdy = c[1] - d[1], cdz = c[2] - d[2];

    double bdxcdy = bdx * cdy, cdxbdy = cdx * bdy;
    double cdxady = cdx * ady, adxcdy = adx * cdy;
    double adxbdy = adx * bdy, bdxady = bdx * ady;

    double det = adz * (bdxcdy - cdxbdy)
               + bdz * (cdxady - adxcdy)
               + cdz * (adxbdy - bdxady);
    double permanent = (fabs(bdxcdy) + fabs(cdxbdy)) * fabs(adz)
                     + (fabs(cdxady) + fabs(adxcdy)) * fabs(bdz)
                     + (fabs(adxbdy) + fabs(bdxady)) * fabs(cdz);
    double bound = ORIENT3D_BOUND * permanent;
    if (det > bound)
        return 1;
    if (det < -bound)
        return -1;
    return 2;
}

/* Sign of insphere(a, b, c, d, e) for a positively oriented tet, or 2
 * when inconclusive.  Mirrors predicates._insphere_float term for term. */
static int insphere_f(const double *a, const double *b, const double *c,
                      const double *d, double ex, double ey, double ez)
{
    double aex = a[0] - ex, aey = a[1] - ey, aez = a[2] - ez;
    double bex = b[0] - ex, bey = b[1] - ey, bez = b[2] - ez;
    double cex = c[0] - ex, cey = c[1] - ey, cez = c[2] - ez;
    double dex = d[0] - ex, dey = d[1] - ey, dez = d[2] - ez;

    double aexbey = aex * bey, bexaey = bex * aey;
    double ab = aexbey - bexaey;
    double bexcey = bex * cey, cexbey = cex * bey;
    double bc = bexcey - cexbey;
    double cexdey = cex * dey, dexcey = dex * cey;
    double cd = cexdey - dexcey;
    double dexaey = dex * aey, aexdey = aex * dey;
    double da = dexaey - aexdey;
    double aexcey = aex * cey, cexaey = cex * aey;
    double ac = aexcey - cexaey;
    double bexdey = bex * dey, dexbey = dex * bey;
    double bd = bexdey - dexbey;

    double abc = aez * bc - bez * ac + cez * ab;
    double bcd = bez * cd - cez * bd + dez * bc;
    double cda = cez * da + dez * ac + aez * cd;
    double dab = dez * ab + aez * bd + bez * da;

    double alift = aex * aex + aey * aey + aez * aez;
    double blift = bex * bex + bey * bey + bez * bez;
    double clift = cex * cex + cey * cey + cez * cez;
    double dlift = dex * dex + dey * dey + dez * dez;

    double det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

    double aezp = fabs(aez), bezp = fabs(bez);
    double cezp = fabs(cez), dezp = fabs(dez);
    double permanent =
        ((fabs(cexdey) + fabs(dexcey)) * bezp
         + (fabs(dexbey) + fabs(bexdey)) * cezp
         + (fabs(bexcey) + fabs(cexbey)) * dezp) * alift
        + ((fabs(dexaey) + fabs(aexdey)) * cezp
           + (fabs(aexcey) + fabs(cexaey)) * dezp
           + (fabs(cexdey) + fabs(dexcey)) * aezp) * blift
        + ((fabs(aexbey) + fabs(bexaey)) * dezp
           + (fabs(bexdey) + fabs(dexbey)) * aezp
           + (fabs(dexaey) + fabs(aexdey)) * bezp) * clift
        + ((fabs(bexcey) + fabs(cexbey)) * aezp
           + (fabs(cexaey) + fabs(aexcey)) * bezp
           + (fabs(aexbey) + fabs(bexaey)) * cezp) * dlift;
    double bound = INSPHERE_BOUND * permanent;
    if (det > bound)
        return 1;
    if (det < -bound)
        return -1;
    return 2;
}

static int insphere_tet(const double *coords, const int32_t *v,
                        double ex, double ey, double ez)
{
    return insphere_f(coords + 3 * (int64_t)v[0],
                      coords + 3 * (int64_t)v[1],
                      coords + 3 * (int64_t)v[2],
                      coords + 3 * (int64_t)v[3], ex, ey, ez);
}

/* ---- phase A1: remembering walk (read-only).  *t_io / *state_io are
 * updated in place; returns BW_OK when *t_io contains the point. ---- */
static int64_t walk_locate(const double *coords, const int32_t *tv,
                           const int32_t *adj, double px, double py,
                           double pz, int64_t n_live, int64_t *t_io,
                           uint64_t *state_io, int64_t *steps_io,
                           int64_t *n_orient_io)
{
    int64_t t = *t_io;
    uint64_t state = *state_io;
    const int64_t max_steps = n_live * 2 + 64;
    int64_t steps = 0;
    for (;;) {
        if (steps >= max_steps)
            return BW_RETRY; /* cycling: let Python raise */
        steps++;
        const int32_t *v = tv + 4 * t;
        if (v[0] < 0) {
            *steps_io += steps;
            return BW_RETRY; /* tet died under our feet */
        }
        double pq[3] = {px, py, pz};
        const double *q[4] = {coords + 3 * (int64_t)v[0],
                              coords + 3 * (int64_t)v[1],
                              coords + 3 * (int64_t)v[2],
                              coords + 3 * (int64_t)v[3]};
        state = (state * 1103515245ULL + 12345ULL) & 0x7FFFFFFFULL;
        int start = (int)((state >> 13) & 3);
        int moved = 0;
        for (int k = 0; k < 4; k++) {
            int i = (start + k) & 3;
            const double *save = q[i];
            q[i] = pq;
            int s = orient3d_f(q[0], q[1], q[2], q[3]);
            q[i] = save;
            (*n_orient_io)++;
            if (s == 2) {
                *steps_io += steps;
                return BW_RETRY;
            }
            if (s < 0) {
                int32_t nbr = adj[4 * t + i];
                if (nbr < 0) {
                    *steps_io += steps;
                    return BW_RETRY; /* escapes the box: Python raises */
                }
                t = nbr;
                moved = 1;
                break;
            }
        }
        if (!moved)
            break;
    }
    *t_io = t;
    *state_io = state;
    *steps_io += steps;
    return BW_OK;
}

/* ---- phase A2: cavity search (reads mesh, writes scratch).  Emits the
 * cavity tets into cav[] and boundary codes (tt*4+i) into bnd[] in the
 * exact depth-first order of the Python kernel. ---- */
static int64_t cavity_search(const double *coords, const int32_t *tv,
                             const int32_t *adj, int64_t *tag, int32_t *cav,
                             int32_t *bnd, int32_t *stk, double px, double py,
                             double pz, int64_t t0, int64_t gen, int64_t scap,
                             int64_t *ncav_out, int64_t *nb_out,
                             int64_t *n_insphere_io)
{
    const int64_t genout = gen + 1;
    int64_t ncav = 0, nb = 0;
    {
        int s0 = insphere_tet(coords, tv + 4 * t0, px, py, pz);
        (*n_insphere_io)++;
        if (s0 == 2)
            return BW_RETRY;
        if (s0 < 0)
            return BW_ERR_DUP; /* located tet not in conflict */
    }
    tag[t0] = gen;
    cav[ncav++] = (int32_t)t0;
    int64_t sp = 0;
    stk[sp++] = (int32_t)t0;
    while (sp > 0) {
        int64_t tt = stk[--sp];
        const int32_t *arow = adj + 4 * tt;
        for (int i = 0; i < 4; i++) {
            int32_t nbr = arow[i];
            if (nbr < 0) { /* HULL */
                if (nb >= scap)
                    return BW_RETRY;
                bnd[nb++] = (int32_t)(tt * 4 + i);
                continue;
            }
            int64_t tg = tag[nbr];
            if (tg == gen)
                continue;
            if (tg == genout) {
                if (nb >= scap)
                    return BW_RETRY;
                bnd[nb++] = (int32_t)(tt * 4 + i);
                continue;
            }
            int s = insphere_tet(coords, tv + 4 * (int64_t)nbr, px, py, pz);
            (*n_insphere_io)++;
            if (s == 2)
                return BW_RETRY;
            if (s > 0) {
                if (ncav >= scap || sp >= scap)
                    return BW_RETRY;
                tag[nbr] = gen;
                cav[ncav++] = nbr;
                stk[sp++] = nbr;
            } else {
                if (nb >= scap)
                    return BW_RETRY;
                tag[nbr] = genout;
                bnd[nb++] = (int32_t)(tt * 4 + i);
            }
        }
    }
    *ncav_out = ncav;
    *nb_out = nb;
    return BW_OK;
}

/* ---- phases A3-B: validation, closure check, slot allocation, commit.
 * cav/bnd hold a precomputed cavity; nothing is mutated on a non-OK
 * return.  free_top holds the next n_avail free-list pops (top first)
 * out of n_free_total total entries; allocation beyond the visible
 * window (or past cap_t) RETRYs. ---- */
static int64_t commit_cavity(const double *coords, int32_t *tv, int32_t *adj,
                             const int32_t *free_top, const int32_t *cav,
                             const int32_t *bnd, int32_t *newt, int64_t *ekey,
                             int64_t *estamp, int32_t *eval, int32_t *pairs,
                             double px, double py, double pz, int64_t gen,
                             int32_t vnew, int64_t tail, int64_t cap_t,
                             int64_t n_avail, int64_t n_free_total,
                             int64_t tcap, int64_t ncav, int64_t nb,
                             int64_t *consumed_out, int64_t *nfresh_out,
                             int64_t *n_orient_io)
{
    int64_t consumed = 0, nfresh = 0;

    /* A3: every new tet (boundary face with the cavity-side vertex
     * replaced by p) must be strictly positively oriented, i.e. the
     * cavity is star-shaped around p. */
    for (int64_t r = 0; r < nb; r++) {
        int64_t tt = bnd[r] >> 2;
        int ii = bnd[r] & 3;
        const int32_t *w = tv + 4 * tt;
        double pq[3] = {px, py, pz};
        const double *q[4];
        for (int j = 0; j < 4; j++)
            q[j] = (j == ii) ? pq : coords + 3 * (int64_t)w[j];
        int o = orient3d_f(q[0], q[1], q[2], q[3]);
        (*n_orient_io)++;
        if (o == 2)
            return BW_RETRY;
        if (o < 0)
            return BW_ERR_FACE;
    }

    /* A4: closed-surface check + internal-face pairing.  Each
     * boundary-triangle edge must be shared by exactly two boundary
     * faces; the two new tets over those faces are adjacent across the
     * local slot opposite the edge. */
    if (3 * nb > tcap / 2)
        return BW_RETRY; /* keep the open-addressing table sparse */
    const uint64_t mask = (uint64_t)(tcap - 1);
    int64_t npairs = 0;
    for (int64_t r = 0; r < nb; r++) {
        int64_t tt = bnd[r] >> 2;
        int ii = bnd[r] & 3;
        const int32_t *w = tv + 4 * tt;
        int kept[3];
        int nk = 0;
        for (int j = 0; j < 4; j++)
            if (j != ii)
                kept[nk++] = j;
        for (int m = 0; m < 3; m++) {
            /* edges (kept0,kept1), (kept0,kept2), (kept1,kept2) sit
             * opposite local slots kept2, kept1, kept0 respectively */
            int ja = kept[m == 2 ? 1 : 0];
            int jb = kept[m == 0 ? 1 : 2];
            int slot = kept[2 - m];
            int64_t ga = w[ja], gb = w[jb];
            int64_t lo = ga < gb ? ga : gb;
            int64_t hi = ga < gb ? gb : ga;
            int64_t key = (lo << 32) | hi;
            uint64_t idx = ((uint64_t)key * 0x9E3779B97F4A7C15ULL >> 32)
                           & mask;
            for (;;) {
                if (estamp[idx] != gen) { /* empty (this call) */
                    estamp[idx] = gen;
                    ekey[idx] = key;
                    eval[idx] = (int32_t)(r * 4 + slot);
                    break;
                }
                if (ekey[idx] == key) {
                    int32_t prev = eval[idx];
                    if (prev < 0) /* third face on one edge */
                        return BW_ERR_CLOSED;
                    pairs[2 * npairs] = prev;
                    pairs[2 * npairs + 1] = (int32_t)(r * 4 + slot);
                    npairs++;
                    eval[idx] = -2;
                    break;
                }
                idx = (idx + 1) & mask;
            }
        }
    }
    if (npairs * 2 != 3 * nb)
        return BW_ERR_CLOSED; /* some edge only appeared once */

    /* A5: slot allocation (scratch only; mirrors the free-list LIFO
     * pops then fresh tail slots of add_tets_batch). */
    for (int64_t r = 0; r < nb; r++) {
        int32_t slot;
        if (consumed < n_avail) {
            slot = free_top[consumed++];
        } else if (consumed < n_free_total) {
            return BW_RETRY; /* free-list window smaller than the cavity */
        } else {
            if (tail + nfresh >= cap_t)
                return BW_RETRY; /* arrays need growth: Python path */
            slot = (int32_t)(tail + nfresh);
            nfresh++;
        }
        newt[r] = slot;
    }

    /* phase B: commit (cannot fail). */
    for (int64_t r = 0; r < nb; r++) {
        int64_t tt = bnd[r] >> 2;
        int ii = bnd[r] & 3;
        int64_t nt = newt[r];
        const int32_t *src = tv + 4 * tt; /* cavity rows stay intact here */
        int32_t *dv = tv + 4 * nt;
        int32_t *da = adj + 4 * nt;
        for (int j = 0; j < 4; j++) {
            dv[j] = (j == ii) ? vnew : src[j];
            da[j] = -1;
        }
        int32_t ext = adj[4 * tt + ii];
        da[ii] = ext;
        if (ext >= 0) {
            /* redirect the outside neighbor's back-pointer */
            int32_t *erow = adj + 4 * (int64_t)ext;
            for (int f = 0; f < 4; f++) {
                if (erow[f] == (int32_t)tt) {
                    erow[f] = (int32_t)nt;
                    break;
                }
            }
        }
    }
    for (int64_t m = 0; m < npairs; m++) {
        int32_t a = pairs[2 * m], b = pairs[2 * m + 1];
        adj[4 * (int64_t)newt[a >> 2] + (a & 3)] = newt[b >> 2];
        adj[4 * (int64_t)newt[b >> 2] + (b & 3)] = newt[a >> 2];
    }
    for (int64_t j = 0; j < ncav; j++) {
        int32_t *q = tv + 4 * (int64_t)cav[j];
        q[0] = q[1] = q[2] = q[3] = -1;
    }
    *consumed_out = consumed;
    *nfresh_out = nfresh;
    return BW_OK;
}

/* One insertion attempt.
 *
 * in_f:  [px, py, pz]
 * in_i:  [seed_tet, rng_state, n_live_tets, gen, vnew, tail, cap_t,
 *         n_free_avail, n_free_total, scratch_cap, table_cap]
 * out_i: [ncav, nb, consumed_free, n_fresh, walk_steps, rng_state_out,
 *         located_tet, n_orient, n_insphere]
 *
 * tag is an epoch-stamped per-tet scratch (>= cap_t entries); gen and
 * gen+1 mark in-cavity / checked-out for this call only.  ekey/estamp/
 * eval form the epoch-stamped edge hash table (table_cap a power of 2).
 * free_top holds the next n_free_avail free-list pops (top first) out
 * of n_free_total total entries.
 */
int64_t bw_insert(const double *coords, int32_t *tv, int32_t *adj,
                  int64_t *tag, const int32_t *free_top, int32_t *cav,
                  int32_t *bnd, int32_t *newt, int32_t *stk, int64_t *ekey,
                  int64_t *estamp, int32_t *eval, int32_t *pairs,
                  const double *in_f, const int64_t *in_i, int64_t *out_i)
{
    const double px = in_f[0], py = in_f[1], pz = in_f[2];
    int64_t t = in_i[0];
    uint64_t state = (uint64_t)in_i[1];
    const int64_t gen = in_i[3];

    int64_t ncav = 0, nb = 0, consumed = 0, nfresh = 0;
    int64_t steps = 0, n_orient = 0, n_insphere = 0;
    int64_t code;

#define FINISH(c)                                                           \
    do {                                                                    \
        out_i[0] = ncav; out_i[1] = nb;                                     \
        out_i[2] = consumed; out_i[3] = nfresh;                             \
        out_i[4] = steps; out_i[5] = (int64_t)state;                        \
        out_i[6] = t; out_i[7] = n_orient; out_i[8] = n_insphere;           \
        return (c);                                                         \
    } while (0)

    code = walk_locate(coords, tv, adj, px, py, pz, in_i[2], &t, &state,
                       &steps, &n_orient);
    if (code != BW_OK)
        return code;
    code = cavity_search(coords, tv, adj, tag, cav, bnd, stk, px, py, pz, t,
                         gen, in_i[9], &ncav, &nb, &n_insphere);
    if (code == BW_RETRY)
        return code;
    if (code != BW_OK)
        FINISH(code);
    code = commit_cavity(coords, tv, adj, free_top, cav, bnd, newt, ekey,
                         estamp, eval, pairs, px, py, pz, gen,
                         (int32_t)in_i[4], in_i[5], in_i[6], in_i[7],
                         in_i[8], in_i[10], ncav, nb, &consumed, &nfresh,
                         &n_orient);
    if (code == BW_RETRY)
        return code;
    FINISH(code);
#undef FINISH
}

/* Commit a cavity the caller already computed and lock-validated (the
 * two-phase speculative path).  cav holds ncav cavity tet ids, bnd the
 * nb boundary codes (tt*4+i) in Python's emission order.
 *
 * in_f:  [px, py, pz]
 * in_i:  [gen, vnew, tail, cap_t, n_avail, n_free_total, table_cap,
 *         ncav, nb]
 * out_i: [consumed_free, n_fresh, n_orient]
 */
int64_t bw_commit(const double *coords, int32_t *tv, int32_t *adj,
                  const int32_t *free_top, const int32_t *cav,
                  const int32_t *bnd, int32_t *newt, int64_t *ekey,
                  int64_t *estamp, int32_t *eval, int32_t *pairs,
                  const double *in_f, const int64_t *in_i, int64_t *out_i)
{
    int64_t consumed = 0, nfresh = 0, n_orient = 0;
    int64_t code = commit_cavity(
        coords, tv, adj, free_top, cav, bnd, newt, ekey, estamp, eval, pairs,
        in_f[0], in_f[1], in_f[2], in_i[0], (int32_t)in_i[1], in_i[2],
        in_i[3], in_i[4], in_i[5], in_i[6], in_i[7], in_i[8], &consumed,
        &nfresh, &n_orient);
    out_i[0] = consumed;
    out_i[1] = nfresh;
    out_i[2] = n_orient;
    return code;
}

/* A batch of insertion attempts (the initial-sampling fast path).
 *
 * Caller guarantees the vertex free list is empty, so the k-th
 * committed point gets vertex id v_base + k; this routine writes the
 * new coords rows itself so later points' predicates see them.  The tet
 * free list is maintained internally in fstk (initialized from the
 * top-first window free_top); the batch stops — reporting progress —
 * at the first point needing anything it cannot do conclusively
 * in-place (filter failure, growth, deep free-list entries, scratch
 * overflow, any error status).  The walk seed for point k+1 is the tet
 * located for point k (remembering walk).
 *
 * Per committed insert, rec receives
 *   [ncav, nb, consumed, cav ids..., new tet ids..., 4*nb vert ids...]
 * which is exactly what the Python side needs to replay its own
 * bookkeeping (free lists, epochs, v2t anchors) in order.
 *
 * in_f:  the (npts, 3) points
 * in_i:  [seed_tet, rng_state, n_live, gen0, v_base, tail, cap_t,
 *         n_avail, n_free_total, scratch_cap, table_cap, npts, cap_v,
 *         fstk_cap, rec_cap]
 * out_i: [n_done, n_gens, rng_state_out, last_located, walk_steps,
 *         n_orient, n_insphere, cavity_tets_total, rec_len, n_live_out,
 *         tail_out]
 */
int64_t bw_insert_many(double *coords, int32_t *tv, int32_t *adj,
                       int64_t *tag, const int32_t *free_top, int32_t *cav,
                       int32_t *bnd, int32_t *newt, int32_t *stk,
                       int64_t *ekey, int64_t *estamp, int32_t *eval,
                       int32_t *pairs, int32_t *fstk, int32_t *fwin,
                       int32_t *rec, const double *in_f, const int64_t *in_i,
                       int64_t *out_i)
{
    int64_t t = in_i[0];
    uint64_t state = (uint64_t)in_i[1];
    int64_t n_live = in_i[2];
    int64_t gen = in_i[3];
    int64_t vnew = in_i[4];
    int64_t tail = in_i[5];
    const int64_t cap_t = in_i[6];
    const int64_t n_avail = in_i[7];
    const int64_t deep = in_i[8] - in_i[7]; /* free entries below window */
    const int64_t scap = in_i[9];
    const int64_t tcap = in_i[10];
    const int64_t npts = in_i[11];
    const int64_t cap_v = in_i[12];
    const int64_t fstk_cap = in_i[13];
    const int64_t rec_cap = in_i[14];

    int64_t sp = 0;
    for (int64_t j = 0; j < n_avail; j++) /* bottom-up: top ends last */
        fstk[sp++] = free_top[n_avail - 1 - j];

    int64_t n_done = 0, n_gens = 0, steps = 0;
    int64_t n_orient = 0, n_insphere = 0, cav_total = 0, rec_len = 0;

    for (int64_t k = 0; k < npts; k++) {
        if (vnew >= cap_v)
            break; /* coords need growth: Python path */
        const double px = in_f[3 * k];
        const double py = in_f[3 * k + 1];
        const double pz = in_f[3 * k + 2];
        int64_t ncav = 0, nb = 0, consumed = 0, nfresh = 0;
        int64_t t_try = t;
        uint64_t state_try = state;
        n_gens++;
        if (walk_locate(coords, tv, adj, px, py, pz, n_live, &t_try,
                        &state_try, &steps, &n_orient) != BW_OK)
            break;
        if (cavity_search(coords, tv, adj, tag, cav, bnd, stk, px, py, pz,
                          t_try, gen, scap, &ncav, &nb,
                          &n_insphere) != BW_OK)
            break; /* RETRY and ERR_DUP both resolve on the scalar path */
        /* Visible free window for this insert: the top min(sp, nb)
         * stack entries, top first. */
        int64_t win = sp < nb ? sp : nb;
        for (int64_t j = 0; j < win; j++)
            fwin[j] = fstk[sp - 1 - j];
        if (rec_len + 3 + ncav + 5 * nb > rec_cap)
            break;
        if (sp + ncav > fstk_cap)
            break;
        if (commit_cavity(coords, tv, adj, fwin, cav, bnd, newt, ekey,
                          estamp, eval, pairs, px, py, pz, gen,
                          (int32_t)vnew, tail, cap_t, win, sp + deep, tcap,
                          ncav, nb, &consumed, &nfresh, &n_orient) != BW_OK)
            break;
        /* committed: update the local allocator state + replay record */
        sp -= consumed;
        for (int64_t j = 0; j < ncav; j++)
            fstk[sp++] = cav[j];
        rec[rec_len++] = (int32_t)ncav;
        rec[rec_len++] = (int32_t)nb;
        rec[rec_len++] = (int32_t)consumed;
        for (int64_t j = 0; j < ncav; j++)
            rec[rec_len++] = cav[j];
        for (int64_t r = 0; r < nb; r++)
            rec[rec_len++] = newt[r];
        for (int64_t r = 0; r < nb; r++) {
            const int32_t *dv = tv + 4 * (int64_t)newt[r];
            rec[rec_len++] = dv[0];
            rec[rec_len++] = dv[1];
            rec[rec_len++] = dv[2];
            rec[rec_len++] = dv[3];
        }
        double *cr = coords + 3 * vnew;
        cr[0] = px;
        cr[1] = py;
        cr[2] = pz;
        vnew++;
        tail += nfresh;
        n_live += nb - ncav;
        cav_total += ncav;
        /* The located tet just died with the cavity; seed the next walk
         * from the first new tet (the scalar path's hint convention). */
        t = newt[0];
        state = state_try;
        gen += 2;
        n_done++;
    }

    out_i[0] = n_done;
    out_i[1] = n_gens;
    out_i[2] = (int64_t)state;
    out_i[3] = t;
    out_i[4] = steps;
    out_i[5] = n_orient;
    out_i[6] = n_insphere;
    out_i[7] = cav_total;
    out_i[8] = rec_len;
    out_i[9] = n_live;
    out_i[10] = tail;
    return n_done;
}

/* ---- vertex removal: gift-wrap hole filling ----------------------------
 *
 * Replicates Triangulation3D._fill_hole_giftwrap exactly for the
 * conclusive case: an advancing front seeded with the hole's boundary
 * faces, apex selection by empty-circumsphere sweep over the sorted
 * link.  ANY inconclusive filter — which includes every exact zero, and
 * therefore every cospherical tie and every degenerate sweep the Python
 * code has special handling for — returns BW_REMOVE_RETRY, and the
 * caller re-runs the pure-Python strategies.  Nothing is mutated: the
 * routine only reads coords and writes caller-owned scratch.
 *
 * The front replicates Python dict semantics: entries are appended in
 * insertion order, popitem() takes the most recently inserted alive
 * entry, cancellation tombstones an entry in place.  Lookups scan the
 * alive entries linearly — fronts are tens of faces, so this beats a
 * hash table's constant factor.
 *
 * faces:  nh * 5 ints: [template0..3, slot] per hole face, in
 *         hole_faces insertion order (= ball order).
 * link:   nl sorted link vertex ids.
 * ents:   entry scratch, ent_cap * 9 ints:
 *         [key0, key1, key2, t0, t1, t2, t3, slot, alive].
 * cand:   nl ints (candidate scratch).
 * fill:   fill_cap * 4 output tet ids (template order, apex at slot).
 * canon:  fill_cap * 4 sorted tet ids (duplicate detection).
 * in_i:   [nh, nl, n_ball, ent_cap, fill_cap]
 * out_i:  [n_orient, n_insphere]
 * Returns n_fill >= 0, or -1 (retry: run the Python strategies).
 */
#define BW_REMOVE_RETRY (-1)

int64_t bw_remove(const double *coords, const int32_t *faces,
                  const int32_t *link, int32_t *ents, int32_t *cand,
                  int32_t *fill, int32_t *canon, const int64_t *in_i,
                  int64_t *out_i)
{
    const int64_t nh = in_i[0];
    const int64_t nl = in_i[1];
    const int64_t n_ball = in_i[2];
    const int64_t ent_cap = in_i[3];
    const int64_t fill_cap = in_i[4];
    int64_t n_orient = 0, n_insphere = 0;
    int64_t n_ents = 0, n_alive = 0, n_fill = 0;

#define REMOVE_DONE(r)                                                      \
    do {                                                                    \
        out_i[0] = n_orient; out_i[1] = n_insphere;                         \
        return (r);                                                         \
    } while (0)

    if (nh > ent_cap)
        REMOVE_DONE(BW_REMOVE_RETRY);
    for (int64_t f = 0; f < nh; f++) {
        const int32_t *src = faces + 5 * f;
        int32_t *e = ents + 9 * n_ents;
        int32_t k[3];
        int nk = 0;
        for (int j = 0; j < 4; j++)
            if (j != src[4])
                k[nk++] = src[j];
        /* sort the 3 face ids (the dict key) */
        int32_t tmp;
        if (k[0] > k[1]) { tmp = k[0]; k[0] = k[1]; k[1] = tmp; }
        if (k[1] > k[2]) { tmp = k[1]; k[1] = k[2]; k[2] = tmp; }
        if (k[0] > k[1]) { tmp = k[0]; k[0] = k[1]; k[1] = tmp; }
        e[0] = k[0]; e[1] = k[1]; e[2] = k[2];
        e[3] = src[0]; e[4] = src[1]; e[5] = src[2]; e[6] = src[3];
        e[7] = src[4];
        e[8] = 1;
        n_ents++;
        n_alive++;
    }

    const int64_t max_iter = 8 * n_ball + 64;
    int64_t it = 0;
    int64_t top = n_ents - 1;
    while (n_alive > 0) {
        if (++it > max_iter)
            REMOVE_DONE(BW_REMOVE_RETRY); /* did not converge */
        while (top >= 0 && !ents[9 * top + 8])
            top--;
        int32_t *e = ents + 9 * top;
        e[8] = 0;
        n_alive--;
        top--; /* the next popitem starts below (appends move it back up) */
        int32_t template_[4] = {e[3], e[4], e[5], e[6]};
        const int slot = e[7];

        const double *q[4];
        for (int j = 0; j < 4; j++)
            q[j] = coords + 3 * (int64_t)template_[j];

        int64_t n_cand = 0;
        int32_t best = -1;
        for (int64_t w = 0; w < nl; w++) {
            int32_t cv = link[w];
            if (cv == template_[(slot + 1) & 3]
                || cv == template_[(slot + 2) & 3]
                || cv == template_[(slot + 3) & 3])
                continue; /* face vertex */
            const double *save = q[slot];
            q[slot] = coords + 3 * (int64_t)cv;
            int o = orient3d_f(q[0], q[1], q[2], q[3]);
            q[slot] = save;
            n_orient++;
            if (o == 2)
                REMOVE_DONE(BW_REMOVE_RETRY);
            if (o < 0)
                continue;
            cand[n_cand++] = cv;
            if (best < 0) {
                best = cv;
                continue;
            }
            const double *b0 = q[0], *b1 = q[1], *b2 = q[2], *b3 = q[3];
            const double *bq[4] = {b0, b1, b2, b3};
            bq[slot] = coords + 3 * (int64_t)best;
            const double *cp = coords + 3 * (int64_t)cv;
            int s = insphere_f(bq[0], bq[1], bq[2], bq[3], cp[0], cp[1],
                               cp[2]);
            n_insphere++;
            if (s == 2)
                REMOVE_DONE(BW_REMOVE_RETRY);
            if (s > 0)
                best = cv;
        }
        if (best < 0) /* no apex: Python raises -> strategy fallback */
            REMOVE_DONE(BW_REMOVE_RETRY);
        /* Dominance re-check.  A conclusive s > 0 makes Python raise
         * (strategy fallback); an exact zero (cospherical tie) is never
         * conclusive here, so the tie handling stays in Python. */
        {
            const double *bq[4];
            for (int j = 0; j < 4; j++)
                bq[j] = (j == slot) ? coords + 3 * (int64_t)best : q[j];
            for (int64_t w = 0; w < n_cand; w++) {
                if (cand[w] == best)
                    continue;
                const double *cp = coords + 3 * (int64_t)cand[w];
                int s = insphere_f(bq[0], bq[1], bq[2], bq[3], cp[0], cp[1],
                                   cp[2]);
                n_insphere++;
                if (s != -1)
                    REMOVE_DONE(BW_REMOVE_RETRY);
            }
        }

        int32_t nv[4] = {template_[0], template_[1], template_[2],
                         template_[3]};
        nv[slot] = best;
        if (n_fill >= fill_cap)
            REMOVE_DONE(BW_REMOVE_RETRY);
        {
            int32_t c[4] = {nv[0], nv[1], nv[2], nv[3]};
            int32_t tmp;
            for (int a = 0; a < 3; a++)
                for (int b = 0; b < 3 - a; b++)
                    if (c[b] > c[b + 1]) {
                        tmp = c[b]; c[b] = c[b + 1]; c[b + 1] = tmp;
                    }
            for (int64_t m = 0; m < n_fill; m++) {
                const int32_t *cm = canon + 4 * m;
                if (cm[0] == c[0] && cm[1] == c[1] && cm[2] == c[2]
                    && cm[3] == c[3])
                    REMOVE_DONE(BW_REMOVE_RETRY); /* repeated tet */
            }
            int32_t *cm = canon + 4 * n_fill;
            cm[0] = c[0]; cm[1] = c[1]; cm[2] = c[2]; cm[3] = c[3];
        }
        int32_t *out = fill + 4 * n_fill;
        out[0] = nv[0]; out[1] = nv[1]; out[2] = nv[2]; out[3] = nv[3];
        n_fill++;

        /* Push / cancel the three faces containing the new apex. */
        for (int j = 0; j < 4; j++) {
            if (j == slot)
                continue;
            int32_t k[3];
            int nk = 0;
            for (int m = 0; m < 4; m++)
                if (m != j)
                    k[nk++] = nv[m];
            int32_t tmp;
            if (k[0] > k[1]) { tmp = k[0]; k[0] = k[1]; k[1] = tmp; }
            if (k[1] > k[2]) { tmp = k[1]; k[1] = k[2]; k[2] = tmp; }
            if (k[0] > k[1]) { tmp = k[0]; k[0] = k[1]; k[1] = tmp; }
            int64_t found = -1;
            for (int64_t m = n_ents - 1; m >= 0; m--) {
                int32_t *em = ents + 9 * m;
                if (em[8] && em[0] == k[0] && em[1] == k[1] && em[2] == k[2]) {
                    found = m;
                    break;
                }
            }
            if (found >= 0) {
                ents[9 * found + 8] = 0;
                n_alive--;
            } else {
                if (n_ents >= ent_cap)
                    REMOVE_DONE(BW_REMOVE_RETRY);
                /* Flip parity so an apex beyond this face orients
                 * positively: swap two slots other than j. */
                int32_t fv[4] = {nv[0], nv[1], nv[2], nv[3]};
                int o0 = -1, o1 = -1;
                for (int m = 0; m < 4; m++) {
                    if (m == j)
                        continue;
                    if (o0 < 0)
                        o0 = m;
                    else if (o1 < 0)
                        o1 = m;
                }
                tmp = fv[o0]; fv[o0] = fv[o1]; fv[o1] = tmp;
                int32_t *en = ents + 9 * n_ents;
                en[0] = k[0]; en[1] = k[1]; en[2] = k[2];
                en[3] = fv[0]; en[4] = fv[1]; en[5] = fv[2]; en[6] = fv[3];
                en[7] = j;
                en[8] = 1;
                if (n_ents > top)
                    top = n_ents;
                n_ents++;
                n_alive++;
            }
        }
    }
    REMOVE_DONE(n_fill);
#undef REMOVE_DONE
}
