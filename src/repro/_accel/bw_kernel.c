/* Bowyer-Watson insertion hot path.
 *
 * Compiled on demand (see __init__.py) and driven through ctypes on the
 * mesh's struct-of-arrays buffers.  The routine performs ONE insertion
 * attempt: remembering walk -> cavity search -> validation -> closure
 * check -> commit.
 *
 * Contract with the Python kernel (delaunay/triangulation.py):
 *
 * - Every floating point predicate is *filtered*: evaluated in double
 *   with a Shewchuk-style forward error bound.  A conclusive filter
 *   result is guaranteed to equal the exact predicate's sign, so every
 *   decision taken here is identical to the pure-Python filtered/exact
 *   path.  The moment ANY predicate is inconclusive the routine returns
 *   BW_RETRY without having mutated anything and the caller re-runs the
 *   Python path (which has the exact Fraction fallback).  This file must
 *   be compiled with -ffp-contract=off: FMA contraction would change
 *   the rounding behaviour the error bounds were derived for.
 * - Traversal orders replicate the Python implementation exactly — the
 *   walk's face order comes from the same inline LCG state, the cavity
 *   is enumerated by the same depth-first stack discipline, boundary
 *   faces are emitted in the same sequence, and new tet slots are drawn
 *   from the free-list top (LIFO) before fresh tail slots.  These orders
 *   determine new tet ids and therefore the entire downstream mesh, so
 *   they are part of the deterministic output contract
 *   (tests/test_kernel_parity.py).
 * - Mutation is strictly deferred: phase A (walk, cavity, validation,
 *   closure) only reads mesh arrays and writes caller-owned scratch;
 *   phase B writes the mesh arrays and cannot fail.  Error returns
 *   (duplicate point / point on a cavity face / open boundary) are
 *   decided before any mutation, mirroring InsertionError semantics.
 *
 * The edge hash table and the cavity tag array are epoch-stamped with
 * the caller's generation counter, so they are never cleared between
 * calls.
 */

#include <math.h>
#include <stdint.h>

#define BW_OK 0
#define BW_RETRY 1
#define BW_ERR_DUP 2
#define BW_ERR_FACE 3
#define BW_ERR_CLOSED 4

#define EPSILON 1.1102230246251565e-16 /* 2^-53 */

static const double ORIENT3D_BOUND = (16.0 + 128.0 * EPSILON) * EPSILON;
static const double INSPHERE_BOUND = (64.0 + 512.0 * EPSILON) * EPSILON;

/* Sign of orient3d(a, b, c, d), or 2 when the filter is inconclusive
 * (which includes every exact zero).  Mirrors predicates._orient3d_float
 * term for term. */
static int orient3d_f(const double *a, const double *b, const double *c,
                      const double *d)
{
    double adx = a[0] - d[0], ady = a[1] - d[1], adz = a[2] - d[2];
    double bdx = b[0] - d[0], bdy = b[1] - d[1], bdz = b[2] - d[2];
    double cdx = c[0] - d[0], cdy = c[1] - d[1], cdz = c[2] - d[2];

    double bdxcdy = bdx * cdy, cdxbdy = cdx * bdy;
    double cdxady = cdx * ady, adxcdy = adx * cdy;
    double adxbdy = adx * bdy, bdxady = bdx * ady;

    double det = adz * (bdxcdy - cdxbdy)
               + bdz * (cdxady - adxcdy)
               + cdz * (adxbdy - bdxady);
    double permanent = (fabs(bdxcdy) + fabs(cdxbdy)) * fabs(adz)
                     + (fabs(cdxady) + fabs(adxcdy)) * fabs(bdz)
                     + (fabs(adxbdy) + fabs(bdxady)) * fabs(cdz);
    double bound = ORIENT3D_BOUND * permanent;
    if (det > bound)
        return 1;
    if (det < -bound)
        return -1;
    return 2;
}

/* Sign of insphere(a, b, c, d, e) for a positively oriented tet, or 2
 * when inconclusive.  Mirrors predicates._insphere_float term for term. */
static int insphere_f(const double *a, const double *b, const double *c,
                      const double *d, double ex, double ey, double ez)
{
    double aex = a[0] - ex, aey = a[1] - ey, aez = a[2] - ez;
    double bex = b[0] - ex, bey = b[1] - ey, bez = b[2] - ez;
    double cex = c[0] - ex, cey = c[1] - ey, cez = c[2] - ez;
    double dex = d[0] - ex, dey = d[1] - ey, dez = d[2] - ez;

    double aexbey = aex * bey, bexaey = bex * aey;
    double ab = aexbey - bexaey;
    double bexcey = bex * cey, cexbey = cex * bey;
    double bc = bexcey - cexbey;
    double cexdey = cex * dey, dexcey = dex * cey;
    double cd = cexdey - dexcey;
    double dexaey = dex * aey, aexdey = aex * dey;
    double da = dexaey - aexdey;
    double aexcey = aex * cey, cexaey = cex * aey;
    double ac = aexcey - cexaey;
    double bexdey = bex * dey, dexbey = dex * bey;
    double bd = bexdey - dexbey;

    double abc = aez * bc - bez * ac + cez * ab;
    double bcd = bez * cd - cez * bd + dez * bc;
    double cda = cez * da + dez * ac + aez * cd;
    double dab = dez * ab + aez * bd + bez * da;

    double alift = aex * aex + aey * aey + aez * aez;
    double blift = bex * bex + bey * bey + bez * bez;
    double clift = cex * cex + cey * cey + cez * cez;
    double dlift = dex * dex + dey * dey + dez * dez;

    double det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

    double aezp = fabs(aez), bezp = fabs(bez);
    double cezp = fabs(cez), dezp = fabs(dez);
    double permanent =
        ((fabs(cexdey) + fabs(dexcey)) * bezp
         + (fabs(dexbey) + fabs(bexdey)) * cezp
         + (fabs(bexcey) + fabs(cexbey)) * dezp) * alift
        + ((fabs(dexaey) + fabs(aexdey)) * cezp
           + (fabs(aexcey) + fabs(cexaey)) * dezp
           + (fabs(cexdey) + fabs(dexcey)) * aezp) * blift
        + ((fabs(aexbey) + fabs(bexaey)) * dezp
           + (fabs(bexdey) + fabs(dexbey)) * aezp
           + (fabs(dexaey) + fabs(aexdey)) * bezp) * clift
        + ((fabs(bexcey) + fabs(cexbey)) * aezp
           + (fabs(cexaey) + fabs(aexcey)) * bezp
           + (fabs(aexbey) + fabs(bexaey)) * cezp) * dlift;
    double bound = INSPHERE_BOUND * permanent;
    if (det > bound)
        return 1;
    if (det < -bound)
        return -1;
    return 2;
}

static int insphere_tet(const double *coords, const int32_t *v,
                        double ex, double ey, double ez)
{
    return insphere_f(coords + 3 * (int64_t)v[0],
                      coords + 3 * (int64_t)v[1],
                      coords + 3 * (int64_t)v[2],
                      coords + 3 * (int64_t)v[3], ex, ey, ez);
}

/* One insertion attempt.
 *
 * in_f:  [px, py, pz]
 * in_i:  [seed_tet, rng_state, n_live_tets, gen, vnew, tail, cap_t,
 *         n_free_avail, n_free_total, scratch_cap, table_cap]
 * out_i: [ncav, nb, consumed_free, n_fresh, walk_steps, rng_state_out,
 *         located_tet, n_orient, n_insphere]
 *
 * tag is an epoch-stamped per-tet scratch (>= cap_t entries); gen and
 * gen+1 mark in-cavity / checked-out for this call only.  ekey/estamp/
 * eval form the epoch-stamped edge hash table (table_cap a power of 2).
 * free_top holds the next n_free_avail free-list pops (top first) out
 * of n_free_total total entries.
 */
int64_t bw_insert(const double *coords, int32_t *tv, int32_t *adj,
                  int64_t *tag, const int32_t *free_top, int32_t *cav,
                  int32_t *bnd, int32_t *newt, int32_t *stk, int64_t *ekey,
                  int64_t *estamp, int32_t *eval, int32_t *pairs,
                  const double *in_f, const int64_t *in_i, int64_t *out_i)
{
    const double px = in_f[0], py = in_f[1], pz = in_f[2];
    int64_t t = in_i[0];
    uint64_t state = (uint64_t)in_i[1];
    const int64_t n_live = in_i[2];
    const int64_t gen = in_i[3];
    const int64_t genout = gen + 1;
    const int32_t vnew = (int32_t)in_i[4];
    const int64_t tail = in_i[5];
    const int64_t cap_t = in_i[6];
    const int64_t n_avail = in_i[7];
    const int64_t n_free_total = in_i[8];
    const int64_t scap = in_i[9];
    const int64_t tcap = in_i[10];

    int64_t ncav = 0, nb = 0, consumed = 0, nfresh = 0;
    int64_t steps = 0, n_orient = 0, n_insphere = 0;

#define FINISH(code)                                                        \
    do {                                                                    \
        out_i[0] = ncav; out_i[1] = nb;                                     \
        out_i[2] = consumed; out_i[3] = nfresh;                             \
        out_i[4] = steps; out_i[5] = (int64_t)state;                        \
        out_i[6] = t; out_i[7] = n_orient; out_i[8] = n_insphere;           \
        return (code);                                                      \
    } while (0)

    /* ---- phase A1: remembering walk (read-only) ---- */
    const int64_t max_steps = n_live * 2 + 64;
    for (;;) {
        if (steps >= max_steps)
            return BW_RETRY; /* cycling: let Python raise */
        steps++;
        const int32_t *v = tv + 4 * t;
        if (v[0] < 0)
            return BW_RETRY; /* tet died under our feet */
        double pq[3] = {px, py, pz};
        const double *q[4] = {coords + 3 * (int64_t)v[0],
                              coords + 3 * (int64_t)v[1],
                              coords + 3 * (int64_t)v[2],
                              coords + 3 * (int64_t)v[3]};
        state = (state * 1103515245ULL + 12345ULL) & 0x7FFFFFFFULL;
        int start = (int)((state >> 13) & 3);
        int moved = 0;
        for (int k = 0; k < 4; k++) {
            int i = (start + k) & 3;
            const double *save = q[i];
            q[i] = pq;
            int s = orient3d_f(q[0], q[1], q[2], q[3]);
            q[i] = save;
            n_orient++;
            if (s == 2)
                return BW_RETRY;
            if (s < 0) {
                int32_t nbr = adj[4 * t + i];
                if (nbr < 0)
                    return BW_RETRY; /* escapes the box: Python raises */
                t = nbr;
                moved = 1;
                break;
            }
        }
        if (!moved)
            break;
    }

    /* ---- phase A2: cavity search (reads mesh, writes scratch) ---- */
    {
        int s0 = insphere_tet(coords, tv + 4 * t, px, py, pz);
        n_insphere++;
        if (s0 == 2)
            return BW_RETRY;
        if (s0 < 0)
            FINISH(BW_ERR_DUP); /* located tet not in conflict */
    }
    tag[t] = gen;
    cav[ncav++] = (int32_t)t;
    int64_t sp = 0;
    stk[sp++] = (int32_t)t;
    while (sp > 0) {
        int64_t tt = stk[--sp];
        const int32_t *arow = adj + 4 * tt;
        for (int i = 0; i < 4; i++) {
            int32_t nbr = arow[i];
            if (nbr < 0) { /* HULL */
                if (nb >= scap)
                    return BW_RETRY;
                bnd[nb++] = (int32_t)(tt * 4 + i);
                continue;
            }
            int64_t tg = tag[nbr];
            if (tg == gen)
                continue;
            if (tg == genout) {
                if (nb >= scap)
                    return BW_RETRY;
                bnd[nb++] = (int32_t)(tt * 4 + i);
                continue;
            }
            int s = insphere_tet(coords, tv + 4 * (int64_t)nbr, px, py, pz);
            n_insphere++;
            if (s == 2)
                return BW_RETRY;
            if (s > 0) {
                if (ncav >= scap || sp >= scap)
                    return BW_RETRY;
                tag[nbr] = gen;
                cav[ncav++] = nbr;
                stk[sp++] = nbr;
            } else {
                if (nb >= scap)
                    return BW_RETRY;
                tag[nbr] = genout;
                bnd[nb++] = (int32_t)(tt * 4 + i);
            }
        }
    }

    /* ---- phase A3: validation — every new tet (boundary face with the
     * cavity-side vertex replaced by p) must be strictly positively
     * oriented, i.e. the cavity is star-shaped around p. ---- */
    for (int64_t r = 0; r < nb; r++) {
        int64_t tt = bnd[r] >> 2;
        int ii = bnd[r] & 3;
        const int32_t *w = tv + 4 * tt;
        double pq[3] = {px, py, pz};
        const double *q[4];
        for (int j = 0; j < 4; j++)
            q[j] = (j == ii) ? pq : coords + 3 * (int64_t)w[j];
        int o = orient3d_f(q[0], q[1], q[2], q[3]);
        n_orient++;
        if (o == 2)
            return BW_RETRY;
        if (o < 0)
            FINISH(BW_ERR_FACE);
    }

    /* ---- phase A4: closed-surface check + internal-face pairing.
     * Each boundary-triangle edge must be shared by exactly two
     * boundary faces; the two new tets over those faces are adjacent
     * across the local slot opposite the edge. ---- */
    if (3 * nb > tcap / 2)
        return BW_RETRY; /* keep the open-addressing table sparse */
    const uint64_t mask = (uint64_t)(tcap - 1);
    int64_t npairs = 0;
    for (int64_t r = 0; r < nb; r++) {
        int64_t tt = bnd[r] >> 2;
        int ii = bnd[r] & 3;
        const int32_t *w = tv + 4 * tt;
        int kept[3];
        int nk = 0;
        for (int j = 0; j < 4; j++)
            if (j != ii)
                kept[nk++] = j;
        for (int m = 0; m < 3; m++) {
            /* edges (kept0,kept1), (kept0,kept2), (kept1,kept2) sit
             * opposite local slots kept2, kept1, kept0 respectively */
            int ja = kept[m == 2 ? 1 : 0];
            int jb = kept[m == 0 ? 1 : 2];
            int slot = kept[2 - m];
            int64_t ga = w[ja], gb = w[jb];
            int64_t lo = ga < gb ? ga : gb;
            int64_t hi = ga < gb ? gb : ga;
            int64_t key = (lo << 32) | hi;
            uint64_t idx = ((uint64_t)key * 0x9E3779B97F4A7C15ULL >> 32)
                           & mask;
            for (;;) {
                if (estamp[idx] != gen) { /* empty (this call) */
                    estamp[idx] = gen;
                    ekey[idx] = key;
                    eval[idx] = (int32_t)(r * 4 + slot);
                    break;
                }
                if (ekey[idx] == key) {
                    int32_t prev = eval[idx];
                    if (prev < 0) /* third face on one edge */
                        FINISH(BW_ERR_CLOSED);
                    pairs[2 * npairs] = prev;
                    pairs[2 * npairs + 1] = (int32_t)(r * 4 + slot);
                    npairs++;
                    eval[idx] = -2;
                    break;
                }
                idx = (idx + 1) & mask;
            }
        }
    }
    if (npairs * 2 != 3 * nb)
        FINISH(BW_ERR_CLOSED); /* some edge only appeared once */

    /* ---- phase A5: slot allocation (scratch only; mirrors the
     * free-list LIFO pops then fresh tail slots of add_tets_batch) ---- */
    for (int64_t r = 0; r < nb; r++) {
        int32_t slot;
        if (consumed < n_avail) {
            slot = free_top[consumed++];
        } else if (consumed < n_free_total) {
            return BW_RETRY; /* free-list window smaller than the cavity */
        } else {
            if (tail + nfresh >= cap_t)
                return BW_RETRY; /* arrays need growth: Python path */
            slot = (int32_t)(tail + nfresh);
            nfresh++;
        }
        newt[r] = slot;
    }

    /* ---- phase B: commit (cannot fail) ---- */
    for (int64_t r = 0; r < nb; r++) {
        int64_t tt = bnd[r] >> 2;
        int ii = bnd[r] & 3;
        int64_t nt = newt[r];
        const int32_t *src = tv + 4 * tt; /* cavity rows stay intact here */
        int32_t *dv = tv + 4 * nt;
        int32_t *da = adj + 4 * nt;
        for (int j = 0; j < 4; j++) {
            dv[j] = (j == ii) ? vnew : src[j];
            da[j] = -1;
        }
        int32_t ext = adj[4 * tt + ii];
        da[ii] = ext;
        if (ext >= 0) {
            /* redirect the outside neighbor's back-pointer */
            int32_t *erow = adj + 4 * (int64_t)ext;
            for (int f = 0; f < 4; f++) {
                if (erow[f] == (int32_t)tt) {
                    erow[f] = (int32_t)nt;
                    break;
                }
            }
        }
    }
    for (int64_t m = 0; m < npairs; m++) {
        int32_t a = pairs[2 * m], b = pairs[2 * m + 1];
        adj[4 * (int64_t)newt[a >> 2] + (a & 3)] = newt[b >> 2];
        adj[4 * (int64_t)newt[b >> 2] + (b & 3)] = newt[a >> 2];
    }
    for (int64_t j = 0; j < ncav; j++) {
        int32_t *q = tv + 4 * (int64_t)cav[j];
        q[0] = q[1] = q[2] = q[3] = -1;
    }
    FINISH(BW_OK);
#undef FINISH
}
