"""Optional C accelerator for the Bowyer-Watson insertion hot path.

When a C compiler is available, :data:`bw_insert` holds a ctypes handle
to the kernel in ``bw_kernel.c`` (compiled once, cached by source hash);
otherwise it is ``None`` and the pure-Python kernel runs unchanged.  The
C routine drives one whole sequential insert attempt (walk, cavity
search, validation, commit) directly on the mesh's struct-of-arrays
buffers.  On any inconclusive floating point filter it returns *without
mutating anything* and the caller re-runs the Python filtered/exact
path, so meshes are bit-identical with and without the accelerator —
the C path is purely an execution strategy, never a semantic change.

Set ``REPRO_NO_ACCEL=1`` to disable the accelerator (e.g. to benchmark
the pure-Python kernel, or to rule it out while debugging).  Compile
and load failures degrade silently to the Python path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

# Status codes returned by bw_insert (keep in sync with bw_kernel.c).
OK = 0
RETRY = 1
ERR_DUP = 2
ERR_FACE = 3
ERR_CLOSED = 4

_SRC = Path(__file__).with_name("bw_kernel.c")

# Scratch sizing.  Cavities larger than _SCRATCH_CAP tets/faces (or
# needing more than _FREE_CAP free-list pops) RETRY into the Python
# path, which has no such limits; typical cavities are 20-60 faces.
_SCRATCH_CAP = 4096
_TABLE_CAP = 16384  # power of two; >= 2 * 3 * _SCRATCH_CAP for sparsity
_FREE_CAP = 256


def _compile():
    """Compile (cached) and load the kernel; None on any failure."""
    if os.environ.get("REPRO_NO_ACCEL"):
        return None
    try:
        source = _SRC.read_bytes()
    except OSError:
        return None
    cc = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        return None
    tag = hashlib.sha256(source).hexdigest()[:16]
    cache_root = os.environ.get("REPRO_ACCEL_CACHE")
    if cache_root:
        cache = Path(cache_root)
    else:
        uid = getattr(os, "getuid", lambda: 0)()
        cache = Path(tempfile.gettempdir()) / f"repro-accel-{uid}"
    so = cache / f"bw_kernel-{tag}.so"
    if not so.exists():
        try:
            cache.mkdir(parents=True, exist_ok=True)
            tmp = so.with_name(f".{so.name}.{os.getpid()}.tmp")
            # -ffp-contract=off is load-bearing: the filter error bounds
            # assume every double operation is individually rounded, and
            # FMA contraction breaks that.  No -ffast-math for the same
            # reason.
            subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-ffp-contract=off",
                 "-fno-math-errno", str(_SRC), "-o", str(tmp)],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(tmp, so)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        fn = ctypes.CDLL(str(so)).bw_insert
    except (OSError, AttributeError):
        return None
    fn.restype = ctypes.c_int64
    fn.argtypes = [ctypes.c_void_p] * 16
    return fn


bw_insert = _compile()
AVAILABLE = bw_insert is not None


class AccelScratch:
    """Per-triangulation scratch buffers + cached pointers for bw_insert.

    The argument tuple of raw pointers is rebuilt only when one of the
    mesh's arrays is reallocated (growth), which keeps the per-call
    ctypes overhead to the function call itself.  The tag array and the
    edge hash table are epoch-stamped by the caller's generation
    counter, so they are never cleared.
    """

    __slots__ = (
        "cav", "bnd", "newt", "stk", "ekey", "estamp", "eval_", "pairs",
        "free_top", "in_f", "in_i", "out_i", "tag",
        "_coords", "_tv", "_adj", "_args",
    )

    def __init__(self) -> None:
        self.cav = np.empty(_SCRATCH_CAP, dtype=np.int32)
        self.bnd = np.empty(_SCRATCH_CAP, dtype=np.int32)
        self.newt = np.empty(_SCRATCH_CAP, dtype=np.int32)
        self.stk = np.empty(_SCRATCH_CAP, dtype=np.int32)
        self.ekey = np.empty(_TABLE_CAP, dtype=np.int64)
        self.estamp = np.zeros(_TABLE_CAP, dtype=np.int64)
        self.eval_ = np.empty(_TABLE_CAP, dtype=np.int32)
        self.pairs = np.empty(3 * _SCRATCH_CAP, dtype=np.int32)
        self.free_top = np.empty(_FREE_CAP, dtype=np.int32)
        self.in_f = np.empty(3, dtype=np.float64)
        self.in_i = np.zeros(16, dtype=np.int64)
        self.out_i = np.zeros(16, dtype=np.int64)
        self.tag = None
        self._coords = None
        self._tv = None
        self._adj = None
        self._args = None

    def _bind(self, mesh) -> None:
        coords = mesh.coords
        tv = mesh.tet_verts_arr
        adj = mesh.tet_adj
        if coords is self._coords and tv is self._tv and adj is self._adj:
            return
        cap_t = adj.shape[0]
        if self.tag is None or self.tag.shape[0] < cap_t:
            # Fresh zeros are fine: the generation counter only grows,
            # so stale stamps can never collide with a future call.
            self.tag = np.zeros(cap_t, dtype=np.int64)
        self._coords = coords
        self._tv = tv
        self._adj = adj
        p = ctypes.c_void_p
        self._args = tuple(
            p(arr.ctypes.data)
            for arr in (coords, tv, adj, self.tag, self.free_top,
                        self.cav, self.bnd, self.newt, self.stk,
                        self.ekey, self.estamp, self.eval_, self.pairs,
                        self.in_f, self.in_i, self.out_i)
        )

    def insert(self, mesh, px, py, pz, seed_tet, rng_state, gen, vnew,
               n_free_total) -> int:
        """Run one C insert attempt; returns a BW_* status code."""
        self._bind(mesh)
        in_f = self.in_f
        in_f[0] = px
        in_f[1] = py
        in_f[2] = pz
        n_avail = n_free_total if n_free_total < _FREE_CAP else _FREE_CAP
        if n_avail:
            self.free_top[:n_avail] = mesh._free_tets[-n_avail:][::-1]
        in_i = self.in_i
        in_i[0] = seed_tet
        in_i[1] = rng_state
        in_i[2] = mesh.n_live_tets
        in_i[3] = gen
        in_i[4] = vnew
        in_i[5] = len(mesh.tet_verts)
        in_i[6] = self._adj.shape[0]
        in_i[7] = n_avail
        in_i[8] = n_free_total
        in_i[9] = _SCRATCH_CAP
        in_i[10] = _TABLE_CAP
        return bw_insert(*self._args)
