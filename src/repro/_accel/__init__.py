"""Optional C accelerator for the Bowyer-Watson hot paths.

When a C compiler is available, :data:`bw_insert`, :data:`bw_commit`,
:data:`bw_insert_many` and :data:`bw_remove` hold ctypes handles to the
kernels in ``bw_kernel.c`` (compiled once, cached by source hash);
otherwise they are ``None`` and the pure-Python kernels run unchanged.
The C routines drive whole hot-loop bodies (walk, cavity search,
validation, commit; batched insertion; gift-wrap hole filling) directly
on the mesh's struct-of-arrays buffers.  On any inconclusive floating
point filter they return *without mutating anything* and the caller
re-runs the Python filtered/exact path, so meshes are bit-identical
with and without the accelerator — the C path is purely an execution
strategy, never a semantic change.

Set ``REPRO_ACCEL=0`` (or the older ``REPRO_NO_ACCEL=1``) to disable
the accelerator (e.g. to benchmark the pure-Python kernel, or to rule
it out while debugging).  Compile and load failures degrade silently to
the Python path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

# Status codes returned by bw_insert / bw_commit (keep in sync with
# bw_kernel.c).
OK = 0
RETRY = 1
ERR_DUP = 2
ERR_FACE = 3
ERR_CLOSED = 4

# bw_remove returns a fill-tet count >= 0 or this retry sentinel.
REMOVE_RETRY = -1

_SRC = Path(__file__).with_name("bw_kernel.c")

# Scratch sizing.  Cavities larger than _SCRATCH_CAP tets/faces (or
# needing more than _FREE_CAP free-list pops) RETRY into the Python
# path, which has no such limits; typical cavities are 20-60 faces.
_SCRATCH_CAP = 4096
_TABLE_CAP = 16384  # power of two; >= 2 * 3 * _SCRATCH_CAP for sparsity
_FREE_CAP = 256

# Batched insertion: points per ctypes crossing, internal free-stack
# depth, and replay-record capacity (the batch stops early, with
# progress, when a record would overflow).
_BATCH_CAP = 512
_FSTK_CAP = 8192
_REC_CAP = 1 << 16

# Vertex removal: advancing-front entry slots (9 ints each), fill-tet
# capacity, and the largest link the C path accepts.
_ENT_CAP = 8192
_FILL_CAP = 2048
_LINK_CAP = 4096


def _disabled() -> bool:
    if os.environ.get("REPRO_NO_ACCEL"):
        return True
    return os.environ.get("REPRO_ACCEL", "").strip() == "0"


def _load():
    """Compile (cached) and load the kernel library; None on failure."""
    if _disabled():
        return None
    try:
        source = _SRC.read_bytes()
    except OSError:
        return None
    cc = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        return None
    tag = hashlib.sha256(source).hexdigest()[:16]
    cache_root = os.environ.get("REPRO_ACCEL_CACHE")
    if cache_root:
        cache = Path(cache_root)
    else:
        uid = getattr(os, "getuid", lambda: 0)()
        cache = Path(tempfile.gettempdir()) / f"repro-accel-{uid}"
    so = cache / f"bw_kernel-{tag}.so"
    if not so.exists():
        try:
            cache.mkdir(parents=True, exist_ok=True)
            tmp = so.with_name(f".{so.name}.{os.getpid()}.tmp")
            # -ffp-contract=off is load-bearing: the filter error bounds
            # assume every double operation is individually rounded, and
            # FMA contraction breaks that.  No -ffast-math for the same
            # reason.
            subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-ffp-contract=off",
                 "-fno-math-errno", str(_SRC), "-o", str(tmp)],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(tmp, so)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        return ctypes.CDLL(str(so))
    except OSError:
        return None


def _handle(lib, name: str, nargs: int):
    if lib is None:
        return None
    try:
        fn = getattr(lib, name)
    except AttributeError:
        return None
    fn.restype = ctypes.c_int64
    fn.argtypes = [ctypes.c_void_p] * nargs
    return fn


_LIB = _load()
bw_insert = _handle(_LIB, "bw_insert", 16)
bw_commit = _handle(_LIB, "bw_commit", 14)
bw_insert_many = _handle(_LIB, "bw_insert_many", 19)
bw_remove = _handle(_LIB, "bw_remove", 9)
AVAILABLE = bw_insert is not None


class AccelScratch:
    """Per-consumer scratch buffers + cached pointers for the kernels.

    The argument tuples of raw pointers are rebuilt only when one of the
    mesh's arrays is reallocated (growth), which keeps the per-call
    ctypes overhead to the function call itself.  The tag array and the
    edge hash table are epoch-stamped by the caller's generation
    counter, so they are never cleared.  The batched-insertion and
    removal buffers are allocated lazily on first use.
    """

    __slots__ = (
        "cav", "bnd", "newt", "stk", "ekey", "estamp", "eval_", "pairs",
        "free_top", "in_f", "in_i", "out_i", "tag",
        "fstk", "fwin", "rec", "pts",
        "faces", "link", "ents", "cand", "fill", "canon",
        "_coords", "_tv", "_adj", "_args", "_args_commit", "_args_many",
        "_args_remove",
    )

    def __init__(self) -> None:
        self.cav = np.empty(_SCRATCH_CAP, dtype=np.int32)
        self.bnd = np.empty(_SCRATCH_CAP, dtype=np.int32)
        self.newt = np.empty(_SCRATCH_CAP, dtype=np.int32)
        self.stk = np.empty(_SCRATCH_CAP, dtype=np.int32)
        self.ekey = np.empty(_TABLE_CAP, dtype=np.int64)
        self.estamp = np.zeros(_TABLE_CAP, dtype=np.int64)
        self.eval_ = np.empty(_TABLE_CAP, dtype=np.int32)
        self.pairs = np.empty(3 * _SCRATCH_CAP, dtype=np.int32)
        self.free_top = np.empty(_FREE_CAP, dtype=np.int32)
        self.in_f = np.empty(3, dtype=np.float64)
        self.in_i = np.zeros(16, dtype=np.int64)
        self.out_i = np.zeros(16, dtype=np.int64)
        self.tag = None
        self.fstk = None
        self.fwin = None
        self.rec = None
        self.pts = None
        self.faces = None
        self.link = None
        self.ents = None
        self.cand = None
        self.fill = None
        self.canon = None
        self._coords = None
        self._tv = None
        self._adj = None
        self._args = None
        self._args_commit = None
        self._args_many = None
        self._args_remove = None

    def _bind(self, mesh) -> None:
        coords = mesh.coords
        tv = mesh.tet_verts_arr
        adj = mesh.tet_adj
        if coords is self._coords and tv is self._tv and adj is self._adj:
            return
        cap_t = adj.shape[0]
        if self.tag is None or self.tag.shape[0] < cap_t:
            # Fresh zeros are fine: the generation counter only grows,
            # so stale stamps can never collide with a future call.
            self.tag = np.zeros(cap_t, dtype=np.int64)
        self._coords = coords
        self._tv = tv
        self._adj = adj
        p = ctypes.c_void_p
        self._args = tuple(
            p(arr.ctypes.data)
            for arr in (coords, tv, adj, self.tag, self.free_top,
                        self.cav, self.bnd, self.newt, self.stk,
                        self.ekey, self.estamp, self.eval_, self.pairs,
                        self.in_f, self.in_i, self.out_i)
        )
        self._args_commit = tuple(
            p(arr.ctypes.data)
            for arr in (coords, tv, adj, self.free_top, self.cav,
                        self.bnd, self.newt, self.ekey, self.estamp,
                        self.eval_, self.pairs, self.in_f, self.in_i,
                        self.out_i)
        )
        self._args_many = None  # rebuilt lazily (batch buffers)
        self._args_remove = None

    def _fill_window(self, mesh, n_free_total: int, free_list=None) -> int:
        if free_list is None:
            free_list = mesh._free_tets
        n_avail = n_free_total if n_free_total < _FREE_CAP else _FREE_CAP
        if n_avail:
            self.free_top[:n_avail] = free_list[-n_avail:][::-1]
        return n_avail

    def insert(self, mesh, px, py, pz, seed_tet, rng_state, gen, vnew,
               n_free_total) -> int:
        """Run one C insert attempt; returns a BW_* status code."""
        self._bind(mesh)
        in_f = self.in_f
        in_f[0] = px
        in_f[1] = py
        in_f[2] = pz
        n_avail = self._fill_window(mesh, n_free_total)
        in_i = self.in_i
        in_i[0] = seed_tet
        in_i[1] = rng_state
        in_i[2] = mesh.n_live_tets
        in_i[3] = gen
        in_i[4] = vnew
        in_i[5] = mesh.tet_top
        in_i[6] = self._adj.shape[0]
        in_i[7] = n_avail
        in_i[8] = n_free_total
        in_i[9] = _SCRATCH_CAP
        in_i[10] = _TABLE_CAP
        return bw_insert(*self._args)

    def commit(self, mesh, px, py, pz, gen, vnew, n_free_total,
               cavity, boundary_codes, tail=None, cap=None,
               free_list=None) -> int:
        """Commit a precomputed cavity (two-phase path); BW_* status.

        ``cavity`` is the list of cavity tet ids, ``boundary_codes`` the
        ``t*4+i`` codes in the Python kernel's emission order.  Returns
        ``RETRY`` without calling C when the cavity exceeds the scratch.

        ``tail``/``cap``/``free_list`` override where fresh slots come
        from: per-thread arena commits pass the arena's chunk cursor,
        chunk end and private free list, so the kernel allocates only
        from slots this thread owns (it RETRYs instead of writing at or
        past ``cap``).  Defaults are the mesh-global tail and free list.
        """
        ncav = len(cavity)
        nb = len(boundary_codes)
        if ncav > _SCRATCH_CAP or nb > _SCRATCH_CAP:
            return RETRY
        self._bind(mesh)
        self.cav[:ncav] = cavity
        self.bnd[:nb] = boundary_codes
        in_f = self.in_f
        in_f[0] = px
        in_f[1] = py
        in_f[2] = pz
        n_avail = self._fill_window(mesh, n_free_total, free_list)
        in_i = self.in_i
        in_i[0] = gen
        in_i[1] = vnew
        in_i[2] = mesh.tet_top if tail is None else tail
        in_i[3] = self._adj.shape[0] if cap is None else cap
        in_i[4] = n_avail
        in_i[5] = n_free_total
        in_i[6] = _TABLE_CAP
        in_i[7] = ncav
        in_i[8] = nb
        return bw_commit(*self._args_commit)

    def _bind_many(self) -> None:
        if self.fstk is None:
            self.fstk = np.empty(_FSTK_CAP, dtype=np.int32)
            self.fwin = np.empty(_SCRATCH_CAP, dtype=np.int32)
            self.rec = np.empty(_REC_CAP, dtype=np.int32)
            self.pts = np.empty((_BATCH_CAP, 3), dtype=np.float64)
        if self._args_many is None:
            p = ctypes.c_void_p
            self._args_many = tuple(
                p(arr.ctypes.data)
                for arr in (self._coords, self._tv, self._adj, self.tag,
                            self.free_top, self.cav, self.bnd, self.newt,
                            self.stk, self.ekey, self.estamp, self.eval_,
                            self.pairs, self.fstk, self.fwin, self.rec,
                            self.pts, self.in_i, self.out_i)
            )

    def insert_many(self, mesh, points, seed_tet, rng_state, gen0,
                    v_base, n_free_total) -> np.ndarray:
        """Run one batched insertion crossing over ``points``.

        ``points`` is a sequence of (x, y, z); at most ``_BATCH_CAP``
        are attempted.  Returns the ``out_i`` array (``n_done``,
        ``n_gens``, rng state, last located tet, counter totals, record
        length, live/tail totals); replay records are in ``self.rec``.
        """
        self._bind(mesh)
        self._bind_many()
        npts = min(len(points), _BATCH_CAP)
        self.pts[:npts] = points[:npts]
        n_avail = n_free_total if n_free_total < _FSTK_CAP else _FSTK_CAP
        if n_avail > _FREE_CAP:
            free = np.asarray(mesh._free_tets[-n_avail:], dtype=np.int32)
            if self.free_top.shape[0] < n_avail:
                self.free_top = np.empty(n_avail, dtype=np.int32)
                self._args = None
                self._coords = None  # force pointer rebuild
                self._bind(mesh)
                self._bind_many()
            self.free_top[:n_avail] = free[::-1]
        else:
            n_avail = self._fill_window(mesh, n_free_total)
        in_i = self.in_i
        in_i[0] = seed_tet
        in_i[1] = rng_state
        in_i[2] = mesh.n_live_tets
        in_i[3] = gen0
        in_i[4] = v_base
        in_i[5] = mesh.tet_top
        in_i[6] = self._adj.shape[0]
        in_i[7] = n_avail
        in_i[8] = n_free_total
        in_i[9] = _SCRATCH_CAP
        in_i[10] = _TABLE_CAP
        in_i[11] = npts
        in_i[12] = mesh.coords.shape[0]
        in_i[13] = _FSTK_CAP
        in_i[14] = _REC_CAP
        bw_insert_many(*self._args_many)
        return self.out_i

    def _bind_remove(self, mesh) -> None:
        self._bind(mesh)
        if self.ents is None:
            self.ents = np.empty(9 * _ENT_CAP, dtype=np.int32)
            self.cand = np.empty(_LINK_CAP, dtype=np.int32)
            self.fill = np.empty(4 * _FILL_CAP, dtype=np.int32)
            self.canon = np.empty(4 * _FILL_CAP, dtype=np.int32)
            self.faces = np.empty(5 * _ENT_CAP, dtype=np.int32)
            self.link = np.empty(_LINK_CAP, dtype=np.int32)
        if self._args_remove is None:
            p = ctypes.c_void_p
            self._args_remove = tuple(
                p(arr.ctypes.data)
                for arr in (self._coords, self.faces, self.link, self.ents,
                            self.cand, self.fill, self.canon, self.in_i,
                            self.out_i)
            )

    def remove(self, mesh, faces_flat, link_sorted, n_ball) -> int:
        """Run the gift-wrap hole-filling kernel.

        ``faces_flat`` is ``nh*5`` ints ([template0..3, slot] per hole
        face in insertion order), ``link_sorted`` the sorted link vertex
        ids.  Returns the fill-tet count (rows in ``self.fill``) or
        ``REMOVE_RETRY``; never mutates the mesh.
        """
        nh = len(faces_flat) // 5
        nl = len(link_sorted)
        if nh > _ENT_CAP or nl > _LINK_CAP:
            return REMOVE_RETRY
        self._bind_remove(mesh)
        self.faces[:5 * nh] = faces_flat
        self.link[:nl] = link_sorted
        in_i = self.in_i
        in_i[0] = nh
        in_i[1] = nl
        in_i[2] = n_ball
        in_i[3] = _ENT_CAP
        in_i[4] = _FILL_CAP
        return bw_remove(*self._args_remove)
