"""Shared fixtures and result-file plumbing for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at laptop
scale (see DESIGN.md's scale-down policy): it prints the same rows the
paper reports and writes them under ``benchmarks/results/`` so
EXPERIMENTS.md can reference them.  Problem sizes are controlled by
``REPRO_BENCH_SCALE`` (small | medium); "small" keeps the full suite in
the tens of minutes on a laptop.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.imaging import abdominal_phantom, head_neck_phantom, knee_phantom

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
if SCALE not in ("small", "medium"):
    raise ValueError(f"REPRO_BENCH_SCALE must be small|medium, got {SCALE!r}")

# phantom resolutions per scale
PHANTOM_N = {"small": 24, "medium": 40}[SCALE]
# target elements per thread for weak scaling (Table 4's knob)
WEAK_TARGET = {"small": 120, "medium": 300}[SCALE]
# thread counts used by scaling tables (paper: 1..176)
THREAD_STEPS = {
    "small": (1, 16, 32, 64, 128, 144, 160, 176),
    "medium": (1, 16, 32, 64, 128, 144, 160, 176),
}[SCALE]


@pytest.fixture(scope="session")
def abdominal():
    return abdominal_phantom(PHANTOM_N)


@pytest.fixture(scope="session")
def knee():
    return knee_phantom(PHANTOM_N)


@pytest.fixture(scope="session")
def head_neck():
    return head_neck_phantom(PHANTOM_N)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered table and persist it for EXPERIMENTS.md."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n")
