"""Figures 7-9 — output meshes of the three meshers on both atlases.

The paper shows rendered meshes of PI2M (Fig 7), CGAL (Fig 8) and
TetGen (Fig 9) on the knee and head-neck atlases.  The bench exports
the equivalent meshes (VTK volume + OFF surface) under
``benchmarks/results/`` for rendering, and reports per-label element
counts — including the seed-label discrepancy the paper discusses for
TetGen's coloring.
"""

import pytest

from benchmarks.conftest import publish
from repro.baselines import CGALLikeMesher, TetGenLikeMesher
from repro.core import _mesh_image as mesh_image
from repro.io import save_off_surface, save_vtk
from repro.reporting import Table


def run_outputs(image, tag, results_dir):
    out = {}
    pi2m = mesh_image(image, delta=2.0 * image.min_spacing)
    out["pi2m"] = pi2m.mesh
    save_vtk(pi2m.mesh, str(results_dir / f"fig7_{tag}_pi2m.vtk"))
    save_off_surface(pi2m.mesh, str(results_dir / f"fig7_{tag}_pi2m.off"))

    cgal = CGALLikeMesher(
        image,
        facet_distance=0.8 * image.min_spacing,
        cell_size=3.5 * image.min_spacing,
    ).refine()
    out["cgal"] = cgal
    save_vtk(cgal, str(results_dir / f"fig8_{tag}_cgal_like.vtk"))

    lo, hi = image.foreground_bounds()
    seeds = [(tuple(0.5 * (lo[i] + hi[i]) for i in range(3)), 1)]
    tg = TetGenLikeMesher(
        pi2m.mesh.vertices, pi2m.mesh.boundary_faces, seeds
    ).refine()
    out["tetgen"] = tg
    save_vtk(tg, str(results_dir / f"fig9_{tag}_tetgen_like.vtk"))
    return out


@pytest.mark.benchmark(group="figs7to9")
def test_figs7to9_mesh_outputs(benchmark, knee, results_dir):
    out = benchmark.pedantic(
        run_outputs, args=(knee, "knee", results_dir), rounds=1, iterations=1
    )
    table = Table(
        "Figures 7-9 — exported meshes (knee phantom)",
        ["mesher", "tets", "labels recovered"],
    )
    for name, mesh in out.items():
        labels = sorted(set(mesh.tet_labels.tolist()))
        table.add_row([name, mesh.n_tets, str(labels)])
    publish(results_dir, "figs7to9_outputs.txt", table.render())

    # PI2M and CGAL-like recover the same label set from the image; the
    # TetGen-like mesher's labels come from user seeds and may not match
    # (the paper's Figure 9 coloring discussion).
    assert set(out["pi2m"].tet_labels.tolist()) == \
        set(out["cgal"].tet_labels.tolist())
    assert len(set(out["tetgen"].tet_labels.tolist())) <= \
        len(set(out["pi2m"].tet_labels.tolist()))
    # Files exist for rendering.
    assert (results_dir / "fig7_knee_pi2m.vtk").exists()
    assert (results_dir / "fig8_knee_cgal_like.vtk").exists()
    assert (results_dir / "fig9_knee_tetgen_like.vtk").exists()
