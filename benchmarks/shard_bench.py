"""Domain-sharded meshing benchmark: sharded vs unsharded wall-clock.

Meshes the same image twice through a process-executor
:class:`~repro.service.MeshingService` — once unsharded (the whole
job in one worker process) and once with ``shards=N`` fanned out over
the pool — and writes ``BENCH_shard.json`` with both wall-clocks and
their ratio.

The speedup gate scales with the machine, because stitching is serial
overhead that parallel shard meshing must first buy back:

* ``>= 4`` usable CPUs: sharded must beat unsharded by ``>= 1.4x``
  (enforced);
* 2–3 CPUs: sharded must at least break even, ``>= 1.0x`` (enforced);
* 1 CPU (or no process support): recorded but advisory — blocks mesh
  serially, so sharding is pure overhead there by construction.

A second, *near-duplicate* workload measures the incremental path: a
ball-grid phantom with one small inclusion is meshed cold, then meshed
again with the inclusion displaced (well under 10% of voxels change).
On the second request only the block containing the inclusion misses
the block content cache; the rest replay their refined point sets and
stitching stays seam-local.  With ``>= 4`` usable CPUs the incremental
request must beat the cold one by ``>= 3x`` (enforced); below that the
ratio is recorded but advisory — with fewer workers the cold request
cannot overlap its block meshes, which deflates the very denominator
the gate divides by.

Exit code 0 iff every enforced check holds::

    PYTHONPATH=src python benchmarks/shard_bench.py
    PYTHONPATH=src python benchmarks/shard_bench.py --fast
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

from repro.api import MeshRequest
from repro.imaging import ball_grid_phantom, near_duplicate_phantom
from repro.service import (
    JobState,
    MeshingService,
    ServiceConfig,
    process_support_available,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
DEFAULT_BENCH = RESULTS_DIR / "BENCH_shard.json"

#: enforced sharded-over-unsharded speedups by usable CPU count.
GATE_4CPU = 1.4
GATE_2CPU = 1.0

#: enforced incremental-over-cold speedup on >= 4 usable CPUs.
GATE_INCREMENTAL = 3.0
#: near-duplicate phantom size (fixed: the workload geometry is tuned
#: so the inclusion shift keeps the decomposition cut planes put).
INCR_PHANTOM_N = 48
INCR_SHIFT = 2.0
INCR_DELTA = 2.0
INCR_SHARDS = 4

FAILURES = []


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {name}" + (f"  ({detail})" if detail else ""))
    if not cond:
        FAILURES.append(name)


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_job(service, request):
    t0 = time.perf_counter()
    job = service.submit(request)
    job.wait(1200.0)
    seconds = time.perf_counter() - t0
    if job.state is not JobState.DONE:
        raise RuntimeError(
            f"benchmark job {job.state}: {job.error or 'no error'}"
        )
    return seconds, job


def run_near_duplicate(service, enforced: bool) -> dict:
    """Cold vs incremental on the near-duplicate inclusion workload."""
    base = near_duplicate_phantom(INCR_PHANTOM_N)
    shifted = near_duplicate_phantom(INCR_PHANTOM_N,
                                     inclusion_shift=INCR_SHIFT)
    changed = int((base.labels != shifted.labels).sum())
    frac = changed / base.labels.size
    print(f"  near-duplicate: {changed} voxels changed ({frac:.3%})")

    cold_s, cold = _timed_job(service, MeshRequest(
        image=base, mesher="sequential", delta=INCR_DELTA,
        shards=INCR_SHARDS))
    incr_s, incr = _timed_job(service, MeshRequest(
        image=shifted, mesher="sequential", delta=INCR_DELTA,
        shards=INCR_SHARDS))
    bc = incr.result.stats.get("block_cache", {})
    stitch = incr.result.stats.get("stitch", {})
    speedup = cold_s / incr_s if incr_s > 0 else 0.0
    print(f"  cold       : {cold_s:.2f}s ({cold.result.mesh.n_tets} tets)")
    print(f"  incremental: {incr_s:.2f}s ({incr.result.mesh.n_tets} tets, "
          f"{bc.get('hits', 0)} block hits / {bc.get('misses', 0)} "
          f"misses, stitch {stitch.get('mode', '?')}, tier {incr.tier})")

    check("incremental run replayed cached blocks",
          bc.get("hits", 0) >= 1 and bc.get("misses", 0) >= 1,
          f"hits={bc.get('hits', 0)} misses={bc.get('misses', 0)}")
    check("incremental job landed on block_hit tier",
          incr.tier == "block_hit", str(incr.tier))
    passed = speedup >= GATE_INCREMENTAL
    print(f"  incremental speedup: {speedup:.2f}x "
          f"(required {GATE_INCREMENTAL}x, "
          f"{'enforced' if enforced else 'advisory'})")
    if enforced:
        check(f"incremental >= {GATE_INCREMENTAL}x cold", passed,
              f"{speedup:.2f}x")
    return {
        "workload": {"phantom": "near_duplicate",
                     "phantom_n": INCR_PHANTOM_N,
                     "inclusion_shift": INCR_SHIFT,
                     "delta": INCR_DELTA, "shards": INCR_SHARDS,
                     "changed_voxels": changed,
                     "changed_fraction": frac},
        "cold": {"seconds": cold_s, "tets": cold.result.mesh.n_tets},
        "incremental": {"seconds": incr_s,
                        "tets": incr.result.mesh.n_tets,
                        "block_hits": bc.get("hits", 0),
                        "block_misses": bc.get("misses", 0),
                        "stitch_mode": stitch.get("mode"),
                        "tier": incr.tier},
        "speedup_incremental_over_cold": speedup,
        "gate": {"required": GATE_INCREMENTAL, "enforced": enforced,
                 "passed": passed},
    }


def run(out_path: pathlib.Path, phantom_n: int, shards: int) -> None:
    cpus = usable_cpus()
    procs = process_support_available()
    if cpus >= 4:
        required, enforced = GATE_4CPU, procs
    elif cpus >= 2:
        required, enforced = GATE_2CPU, procs
    else:
        required, enforced = GATE_2CPU, False
    print(f"shard bench: ball-grid n={phantom_n}, shards={shards}, "
          f"{cpus} usable CPU(s), gate "
          f"{'ENFORCED' if enforced else 'advisory'}")

    image = ball_grid_phantom(phantom_n)
    tmp = tempfile.mkdtemp(prefix="repro-shard-bench-")
    n_workers = max(2, min(shards, cpus))
    service = MeshingService(ServiceConfig(
        n_workers=n_workers, cache_dir=tmp, executor="process",
    )).start()
    try:
        # Warmup off the clock: spawn workers, prime imports and EDT.
        service.mesh(MeshRequest(image=ball_grid_phantom(16),
                                 mesher="sequential"))
        plain_s, plain_job = _timed_job(service, MeshRequest(
            image=image, mesher="sequential"))
        plain = plain_job.result
        print(f"  unsharded: {plain_s:.2f}s "
              f"({plain.mesh.n_tets} tets)")
        shard_s, shard_job = _timed_job(service, MeshRequest(
            image=image, mesher="sequential", shards=shards))
        sharded = shard_job.result
        n_blocks = sharded.stats.get("shards", 1)
        print(f"  sharded  : {shard_s:.2f}s "
              f"({sharded.mesh.n_tets} tets, {n_blocks} blocks)")
        near_dup = run_near_duplicate(service, enforced=cpus >= 4 and procs)
        fallback = service.executor_fallback
    finally:
        service.shutdown()

    speedup = plain_s / shard_s if shard_s > 0 else 0.0
    passed = speedup >= required
    doc = {
        "schema": 2,
        "workload": {"phantom": "ball_grid", "phantom_n": phantom_n,
                     "shards_requested": shards, "blocks": n_blocks,
                     "n_workers": n_workers, "mesher": "sequential"},
        "cpus": cpus,
        "process_fallback": bool(fallback),
        "unsharded": {"seconds": plain_s, "tets": plain.mesh.n_tets},
        "sharded": {"seconds": shard_s, "tets": sharded.mesh.n_tets,
                    "stitch": sharded.stats.get("stitch", {})},
        "speedup_sharded_over_unsharded": speedup,
        "gate": {"required": required, "enforced": enforced,
                 "passed": passed},
        "near_duplicate": near_dup,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  speedup: {speedup:.2f}x (required {required}x, "
          f"{'enforced' if enforced else 'advisory'}) -> {out_path}")

    check("sharded job actually sharded", n_blocks >= 2, str(n_blocks))
    if enforced:
        check(f"sharded >= {required}x unsharded", passed,
              f"{speedup:.2f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="smaller phantom (CI smoke)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("-o", "--output", default=str(DEFAULT_BENCH))
    args = parser.parse_args(argv)

    run(pathlib.Path(args.output), 32 if args.fast else 48, args.shards)
    if FAILURES:
        print(f"{len(FAILURES)} gate check(s) failed: {FAILURES}")
        return 1
    print("all enforced gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
