"""Micro-benchmarks of the kernels the paper's performance rests on.

These are conventional pytest-benchmark measurements (multiple rounds):

* Bowyer-Watson insertion throughput;
* vertex removal throughput (the operation no other parallel Delaunay
  refiner supports);
* the EDT pre-processing step, sequential vs thread-parallel;
* the try-lock primitive (the paper's Section 4.2 atomic-builtin note).

``test_bench_insertion_json_artifact`` additionally runs the insertion
workload through both kernel paths (pure Python and the C accelerator)
via :mod:`benchmarks.kernel_bench` and publishes the before/after
numbers as ``benchmarks/results/BENCH_kernels.json`` — the artifact the
CI bench job uploads and gates on.
"""

import json
import random

import numpy as np
import pytest

from repro.delaunay import Triangulation3D
from repro.imaging import sphere_phantom
from repro.imaging.edt import (
    euclidean_feature_transform,
    euclidean_feature_transform_parallel,
)


@pytest.mark.benchmark(group="kernel-insert")
def test_bench_insertion_throughput(benchmark):
    rng = random.Random(7)
    points = [
        tuple(rng.uniform(0.02, 0.98) for _ in range(3)) for _ in range(400)
    ]

    def insert_all():
        tri = Triangulation3D((0, 0, 0), (1, 1, 1))
        hint = None
        for p in points:
            _, ntets, _ = tri.insert_point(p, hint)
            hint = ntets[0]
        return tri.n_tets

    n_tets = benchmark(insert_all)
    assert n_tets > 1000


def test_bench_insertion_json_artifact(results_dir):
    """Before/after insertion throughput as a machine-readable artifact."""
    from benchmarks import kernel_bench

    out = results_dir / "BENCH_kernels.json"
    assert kernel_bench.run(fast=True, output=out) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == 1
    assert doc["python_path"]["inserts_per_second"] > 0
    if doc["accel_path"]["available"]:
        assert doc["accel_path"]["inserts_per_second"] > \
            doc["python_path"]["inserts_per_second"]


@pytest.mark.benchmark(group="kernel-remove")
def test_bench_removal_throughput(benchmark):
    rng = random.Random(13)
    points = [
        tuple(rng.uniform(0.02, 0.98) for _ in range(3)) for _ in range(300)
    ]

    def setup():
        tri = Triangulation3D((0, 0, 0), (1, 1, 1))
        verts = []
        hint = None
        for p in points:
            v, ntets, _ = tri.insert_point(p, hint)
            verts.append(v)
            hint = ntets[0]
        order = list(verts)
        rng2 = random.Random(5)
        rng2.shuffle(order)
        return (tri, order[:100]), {}

    def remove_some(tri, victims):
        for v in victims:
            tri.remove_vertex(v)
        return tri.n_tets

    n_tets = benchmark.pedantic(remove_some, setup=setup, rounds=5)
    assert n_tets > 0


@pytest.mark.benchmark(group="kernel-edt")
def test_bench_edt_sequential(benchmark):
    img = sphere_phantom(48)
    from repro.imaging.isosurface import surface_voxel_mask

    mask = surface_voxel_mask(img)
    res = benchmark(euclidean_feature_transform, mask, img.spacing)
    assert np.isfinite(res.dist2).all()


@pytest.mark.benchmark(group="kernel-edt")
def test_bench_edt_parallel(benchmark):
    img = sphere_phantom(48)
    from repro.imaging.isosurface import surface_voxel_mask

    mask = surface_voxel_mask(img)
    res = benchmark(
        euclidean_feature_transform_parallel, mask, img.spacing, 4
    )
    assert np.isfinite(res.dist2).all()


@pytest.mark.benchmark(group="kernel-locks")
def test_bench_trylock_primitive(benchmark):
    """The dict.setdefault try-lock (role of GCC atomics, Section 4.2)."""
    table = {}

    def lock_unlock_cycle():
        for vid in range(2000):
            owner = table.setdefault(vid, 1)
            if owner == 1:
                del table[vid]
        return True

    assert benchmark(lock_unlock_cycle)
