"""Table 6 — single-threaded PI2M vs CGAL-like vs TetGen-like.

Paper: on the knee and head-neck atlases, reports tets/second, time,
element count, max radius-edge ratio, smallest boundary planar angle,
dihedral range and Hausdorff distance for the three meshers, with
TetGen consuming the isosurface triangulation PI2M recovered.

Expected shape: PI2M's rate beats the CGAL-like baseline on both
inputs; PI2M/CGAL quality is comparable; the TetGen-like baseline's
dihedral angles are worse (no boundary planar-angle control).
Wall-clock times are real (this bench does not use the simulator).
"""

import time

import pytest

from benchmarks.conftest import publish
from repro.baselines import CGALLikeMesher, TetGenLikeMesher
from repro.core import _mesh_image as mesh_image
from repro.imaging.isosurface import SurfaceOracle
from repro.metrics import hausdorff_distance, quality_report
from repro.reporting import Table


def run_one_input(image, label):
    oracle = SurfaceOracle(image)
    delta = 2.0 * image.min_spacing
    rows = {}

    t0 = time.perf_counter()
    pi2m = mesh_image(image, delta=delta)
    t_pi2m = time.perf_counter() - t0  # includes the EDT, like the paper
    rows["PI2M"] = (pi2m.mesh, t_pi2m,
                    hausdorff_distance(pi2m.mesh, image, oracle))

    # The paper sets the baselines' sizing "to values that produced
    # meshes of similar size to ours, since generally, meshes with more
    # elements exhibit better quality and fidelity."  Calibrate the
    # CGAL-like parameters the same way: one probe run, then rescale.
    probe = CGALLikeMesher(
        image,
        facet_distance=0.8 * image.min_spacing,
        cell_size=3.5 * image.min_spacing,
    ).refine()
    ratio = (probe.n_tets / max(1, pi2m.mesh.n_tets)) ** (1.0 / 3.0)
    t0 = time.perf_counter()
    cgal = CGALLikeMesher(
        image,
        facet_distance=0.8 * image.min_spacing * ratio,
        cell_size=3.5 * image.min_spacing * ratio,
    ).refine()
    t_cgal = time.perf_counter() - t0
    rows["CGAL-like"] = (cgal, t_cgal,
                         hausdorff_distance(cgal, image, oracle))

    lo, hi = image.foreground_bounds()
    seeds = [(tuple(0.5 * (lo[i] + hi[i]) for i in range(3)), 1)]
    t0 = time.perf_counter()
    tg = TetGenLikeMesher(
        pi2m.mesh.vertices, pi2m.mesh.boundary_faces, seeds
    ).refine()
    t_tg = time.perf_counter() - t0
    rows["TetGen-like"] = (tg, t_tg, None)  # PLC input: no Hausdorff row
    return rows


def render(rows, label):
    table = Table(
        f"Table 6 ({label}) — single-threaded comparison",
        ["metric", "PI2M", "CGAL-like", "TetGen-like"],
    )
    names = ("PI2M", "CGAL-like", "TetGen-like")
    reports = {n: quality_report(rows[n][0]) for n in names}
    table.add_row(["#tets / second"] + [
        int(rows[n][0].n_tets / rows[n][1]) for n in names
    ])
    table.add_row(["time (s)"] + [round(rows[n][1], 2) for n in names])
    table.add_row(["#tetrahedra"] + [rows[n][0].n_tets for n in names])
    table.add_row(["max radius-edge ratio"] + [
        round(reports[n].max_radius_edge, 2) for n in names
    ])
    table.add_row(["smallest boundary planar angle"] + [
        round(reports[n].min_boundary_planar_angle_deg, 1) for n in names
    ])
    table.add_row(["(min, max) dihedral angles"] + [
        f"({reports[n].min_dihedral_deg:.1f}, "
        f"{reports[n].max_dihedral_deg:.1f})"
        for n in names
    ])
    table.add_row(["Hausdorff distance"] + [
        round(rows[n][2], 2) if rows[n][2] is not None else "n/a"
        for n in names
    ])
    return table.render(), reports


@pytest.mark.benchmark(group="table6")
def test_table6_knee(benchmark, knee, results_dir):
    rows = benchmark.pedantic(run_one_input, args=(knee, "knee"),
                              rounds=1, iterations=1)
    text, reports = render(rows, "knee phantom")
    publish(results_dir, "table6_knee.txt", text)
    _assert_shape(rows, reports)


@pytest.mark.benchmark(group="table6")
def test_table6_head_neck(benchmark, head_neck, results_dir):
    rows = benchmark.pedantic(run_one_input, args=(head_neck, "head-neck"),
                              rounds=1, iterations=1)
    text, reports = render(rows, "head-neck phantom")
    publish(results_dir, "table6_head_neck.txt", text)
    _assert_shape(rows, reports)


def _assert_shape(rows, reports):
    pi2m_rate = rows["PI2M"][0].n_tets / rows["PI2M"][1]
    cgal_rate = rows["CGAL-like"][0].n_tets / rows["CGAL-like"][1]
    # Paper: PI2M's rate beats CGAL's by 40%+ at similar mesh sizes.
    # On an otherwise idle machine PI2M wins here too (knee: +14% in
    # our reference runs); the assertion allows for two scale effects —
    # PI2M's time includes the EDT, which dominates tiny meshes (the
    # paper's own knee-atlas observation), and wall-clock noise from
    # background load.  The printed table carries the exact rates.
    assert pi2m_rate > 0.75 * cgal_rate
    # Both quality-controlled meshers respect the radius-edge bound.
    assert reports["PI2M"].max_radius_edge <= 2.0 + 1e-6
    assert reports["CGAL-like"].max_radius_edge <= 2.0 + 1e-6
    # Fidelity of both isosurface meshers is bounded by a few voxels.
    assert rows["PI2M"][2] < 8.0
    assert rows["CGAL-like"][2] < 8.0
