"""Table 5 — hyper-threaded weak scaling (2 hardware threads per core).

Paper: rerunning Table 4a with HT doubles the thread count per core;
speedup relative to the non-HT run is ~1.4-1.5x up to 64 cores, then
collapses (more senders/receivers pressuring the switches), while the
modeled core-sharing counters (TLB, LLC, stalls) *improve* per thread.

Counters here are modeled, not measured (see repro.simnuma.counters).
"""

import pytest

from benchmarks.bench_util import delta_for_elements, oracle_for
from benchmarks.conftest import THREAD_STEPS, WEAK_TARGET, publish
from repro.core.domain import RefineDomain
from repro.reporting import Table, format_si
from repro.simnuma import _simulate_parallel_refinement as simulate_parallel_refinement
from repro.simnuma.counters import HTCounterModel

CORES = tuple(c for c in THREAD_STEPS)


def run_table5(image):
    out = {}
    for cores in CORES:
        delta = delta_for_elements(image, WEAK_TARGET * cores)
        base_domain = RefineDomain(image, delta=delta, oracle=oracle_for(image))
        base = simulate_parallel_refinement(
            image, cores, delta=delta, domain=base_domain,
        )
        ht_domain = RefineDomain(image, delta=delta, oracle=oracle_for(image))
        ht = simulate_parallel_refinement(
            image, 2 * cores, delta=delta, hyperthreading=True,
            domain=ht_domain,
        )
        out[cores] = (base, ht)
    return out


@pytest.mark.benchmark(group="table5")
def test_table5_hyperthreading(benchmark, abdominal, results_dir):
    results = benchmark.pedantic(run_table5, args=(abdominal,),
                                 rounds=1, iterations=1)
    counters = HTCounterModel()

    table = Table(
        "Table 5 — hyper-threaded execution of the Table 4a study "
        "(speedup relative to non-HT on the same cores; counters modeled)",
        ["#Cores", "#Elements", "HT time (s)", "Elements/s",
         "Speedup vs non-HT", "Overhead s/thread",
         "TLB misses/thread", "LLC misses/thread", "Stall cycles/thread"],
    )
    speedups = {}
    for cores in CORES:
        base, ht = results[cores]
        sp = base.virtual_time / ht.virtual_time
        speedups[cores] = sp
        tlb, llc, stalls = counters.deltas(ht, base)
        table.add_row([
            cores,
            format_si(ht.n_elements),
            round(ht.virtual_time, 4),
            format_si(ht.elements_per_second),
            round(sp, 2),
            round(ht.overhead_per_thread, 5),
            f"{tlb * 100:+.1f}%",
            f"{llc * 100:+.1f}%",
            f"{stalls * 100:+.1f}%",
        ])
    publish(results_dir, "table5_hyperthreading.txt", table.render())

    # ---- shape assertions ----
    # The paper's >64-core collapse: the top-core HT speedup falls
    # clearly below the mid-range peak.  (The paper's absolute 1.4-1.5x
    # HT gain below 64 cores does NOT reproduce at this scale — with
    # ~10^2 elements per thread, doubling the thread count only adds
    # contention; EXPERIMENTS.md discusses this at length.)
    mid = [speedups[c] for c in CORES if 1 <= c <= 64]
    assert speedups[CORES[-1]] < max(mid)
    # Modeled counters always improve per thread (negative deltas) —
    # Table 5's surprising observation.
    base, ht = results[64]
    tlb, llc, stalls = counters.deltas(ht, base)
    assert tlb < 0 and llc < 0 and stalls < 0
