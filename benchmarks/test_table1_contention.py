"""Table 1 — contention manager comparison at two high core counts.

Paper: 128 and 256 Blacklight cores on the abdominal atlas; reports
time, rollbacks, the three overhead categories, speedup and whether the
run livelocked.  Here: the abdominal phantom on the simulated machine
at the same two thread counts (scaled-down mesh, DESIGN.md section 6).

Expected shape: Aggressive livelocks; Random is slowest / may livelock
at 256; Global and Local always terminate with Local ahead on total
overhead.
"""

import pytest

from benchmarks.bench_util import delta_for_elements, oracle_for
from benchmarks.conftest import WEAK_TARGET, publish
from repro.core.domain import RefineDomain
from repro.reporting import Table
from repro.simnuma import _simulate_parallel_refinement as simulate_parallel_refinement

THREAD_COUNTS = (128, 256)
CMS = ("aggressive", "random", "global", "local")


def run_table1(image):
    delta = delta_for_elements(image, 250 * WEAK_TARGET)
    baseline = simulate_parallel_refinement(
        image, 1, delta=delta,
        domain=RefineDomain(image, delta=delta, oracle=oracle_for(image)),
    )
    out = {}
    for threads in THREAD_COUNTS:
        for cm in CMS:
            domain = RefineDomain(image, delta=delta, oracle=oracle_for(image))
            r = simulate_parallel_refinement(
                image, threads, delta=delta, cm=cm, domain=domain,
                livelock_horizon=1.0, livelock_event_horizon=60_000,
            )
            out[(threads, cm)] = r
    return baseline, out


@pytest.mark.benchmark(group="table1")
def test_table1_contention_managers(benchmark, abdominal, results_dir):
    baseline, results = benchmark.pedantic(
        run_table1, args=(abdominal,), rounds=1, iterations=1
    )

    blocks = []
    for threads in THREAD_COUNTS:
        table = Table(
            f"Table 1 ({threads} simulated cores) — "
            f"single-thread time {baseline.virtual_time:.3f}s, "
            f"{baseline.n_elements} elements",
            ["metric"] + [cm for cm in CMS],
        )
        rows = {
            "time (s)": [],
            "rollbacks": [],
            "contention overhead (s)": [],
            "load balance overhead (s)": [],
            "rollback overhead (s)": [],
            "total overhead (s)": [],
            "speedup": [],
            "livelock": [],
        }
        for cm in CMS:
            r = results[(threads, cm)]
            na = r.livelock
            rows["time (s)"].append("n/a" if na else round(r.virtual_time, 4))
            rows["rollbacks"].append(r.rollbacks)
            rows["contention overhead (s)"].append(
                round(r.totals["contention_overhead"], 4))
            rows["load balance overhead (s)"].append(
                round(r.totals["load_balance_overhead"], 4))
            rows["rollback overhead (s)"].append(
                round(r.totals["rollback_overhead"], 4))
            rows["total overhead (s)"].append(
                round(r.totals["total_overhead"], 4))
            rows["speedup"].append(
                "n/a" if na else round(baseline.virtual_time / r.virtual_time, 2))
            rows["livelock"].append("yes" if na else "no")
        for metric, values in rows.items():
            table.add_row([metric] + values)
        blocks.append(table.render())
    publish(results_dir, "table1_contention.txt", "\n\n".join(blocks))

    # ---- shape assertions (the paper's qualitative claims) ----
    for threads in THREAD_COUNTS:
        agg = results[(threads, "aggressive")]
        glob = results[(threads, "global")]
        loc = results[(threads, "local")]
        rand = results[(threads, "random")]
        # Global and Local provably terminate (Section 5.3 / 5.4).
        assert not glob.livelock
        assert not loc.livelock
        # Aggressive must have livelocked or been dramatically worse.
        assert agg.livelock or agg.virtual_time > 2 * loc.virtual_time
        # Rollback ordering: the blocking managers keep rollbacks far
        # below Random's (Table 1's most robust relationship), with
        # Local at or near the bottom.
        assert loc.rollbacks < rand.rollbacks
        assert glob.rollbacks < rand.rollbacks
        assert loc.rollbacks <= 1.25 * glob.rollbacks
        # End-to-end times are NOT asserted: at ~10^2 elements per thread
        # the schedule is chaotic and Local's parking can dominate a run
        # (at the paper's scale Local wins outright) — the printed table
        # and EXPERIMENTS.md carry the timing discussion.
