"""Figure 5 — strong scaling: Random Work Stealing vs Hierarchical WS.

Paper: fixed problem (124M elements), 16..176 cores; (a) speedup of RWS
vs HWS, (b) inter-blade accesses reduced by HWS, (c) per-thread overhead
breakdown for HWS.

Expected shape: HWS >= RWS beyond one blade, with visibly fewer
inter-blade (remote) steals; the overhead per thread stays bounded.
"""

import pytest

from benchmarks.bench_util import delta_for_elements, oracle_for
from benchmarks.conftest import WEAK_TARGET, publish
from repro.core.domain import RefineDomain
from repro.reporting import Table
from repro.simnuma import _simulate_parallel_refinement as simulate_parallel_refinement

THREADS = (16, 32, 64, 128, 176)


def run_fig5(image):
    delta = delta_for_elements(image, 120 * WEAK_TARGET)
    base = simulate_parallel_refinement(
        image, 1, delta=delta,
        domain=RefineDomain(image, delta=delta, oracle=oracle_for(image)),
    )
    out = {"base": base}
    for lb in ("rws", "hws"):
        for threads in THREADS:
            domain = RefineDomain(image, delta=delta, oracle=oracle_for(image))
            out[(lb, threads)] = simulate_parallel_refinement(
                image, threads, delta=delta, lb=lb, domain=domain,
            )
    return out


@pytest.mark.benchmark(group="fig5")
def test_fig5_strong_scaling(benchmark, abdominal, results_dir):
    results = benchmark.pedantic(run_fig5, args=(abdominal,),
                                 rounds=1, iterations=1)
    base = results["base"]

    blocks = []
    t_a = Table(
        "Figure 5a — strong-scaling speedup (fixed problem, "
        f"{base.n_elements} elements single-threaded)",
        ["#Threads", "RWS time (s)", "RWS speedup",
         "HWS time (s)", "HWS speedup"],
    )
    for threads in THREADS:
        r_rws = results[("rws", threads)]
        r_hws = results[("hws", threads)]
        t_a.add_row([
            threads,
            round(r_rws.virtual_time, 4),
            round(base.virtual_time / r_rws.virtual_time, 2),
            round(r_hws.virtual_time, 4),
            round(base.virtual_time / r_hws.virtual_time, 2),
        ])
    blocks.append(t_a.render())

    t_b = Table(
        "Figure 5b — inter-blade work steals (remote accesses proxy)",
        ["#Threads", "RWS inter-blade", "HWS inter-blade", "reduction %"],
    )
    for threads in THREADS:
        rws_remote = results[("rws", threads)].totals["remote_steals"]
        hws_remote = results[("hws", threads)].totals["remote_steals"]
        red = 100.0 * (1.0 - hws_remote / rws_remote) if rws_remote else 0.0
        t_b.add_row([threads, int(rws_remote), int(hws_remote),
                     round(red, 1)])
    blocks.append(t_b.render())

    t_c = Table(
        "Figure 5c — HWS overhead breakdown per thread (seconds)",
        ["#Threads", "contention", "load balance", "rollback", "total"],
    )
    for threads in THREADS:
        tot = results[("hws", threads)].totals
        t_c.add_row([
            threads,
            round(tot["contention_overhead"] / threads, 5),
            round(tot["load_balance_overhead"] / threads, 5),
            round(tot["rollback_overhead"] / threads, 5),
            round(tot["total_overhead"] / threads, 5),
        ])
    blocks.append(t_c.render())
    publish(results_dir, "fig5_strong_scaling.txt", "\n\n".join(blocks))

    # ---- shape assertions ----
    # Speedup is real at moderate counts (scale-limited; see the
    # scale-sensitivity ablation for how it grows with per-thread work).
    assert base.virtual_time / results[("hws", 64)].virtual_time > 2
    # HWS reduces inter-blade steals once several blades are involved.
    multi_blade = [t for t in THREADS if t > 32]
    rws_remote = sum(results[("rws", t)].totals["remote_steals"]
                     for t in multi_blade)
    hws_remote = sum(results[("hws", t)].totals["remote_steals"]
                     for t in multi_blade)
    assert hws_remote < rws_remote
    # HWS is not slower overall at the top count.
    assert (results[("hws", 176)].virtual_time
            <= 1.25 * results[("rws", 176)].virtual_time)
