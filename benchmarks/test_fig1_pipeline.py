"""Figure 1 — the virtual-box carving pipeline.

Paper: (a) the virtual bounding volume is triangulated, (b) refinement
gradually carves the mesh, (c) the tetrahedra whose circumcenter lies
inside the object form the final mesh.

The bench reports element counts at the three stages plus the carving
ratio, and checks the extracted mesh is the in-object subset.
"""

import pytest

from benchmarks.conftest import publish
from repro.core import extract_mesh
from repro.core.domain import RefineDomain
from repro.core.refiner import SequentialRefiner
from repro.imaging import sphere_phantom
from repro.reporting import Table


def run_pipeline():
    image = sphere_phantom(24)
    domain = RefineDomain(image, delta=2.0)
    stage_a = domain.tri.n_tets  # virtual bounding volume triangulated
    stats = SequentialRefiner(domain, max_operations=500_000).refine()
    stage_b = domain.tri.n_tets  # fully refined triangulation
    mesh = extract_mesh(domain)  # carved final mesh
    return image, domain, stats, stage_a, stage_b, mesh


@pytest.mark.benchmark(group="fig1")
def test_fig1_pipeline(benchmark, results_dir):
    image, domain, stats, stage_a, stage_b, mesh = benchmark.pedantic(
        run_pipeline, rounds=1, iterations=1
    )
    table = Table(
        "Figure 1 — image-to-mesh pipeline stages (ball phantom, delta=2)",
        ["stage", "tetrahedra", "note"],
    )
    table.add_row(["(a) virtual volume", stage_a,
                   "the only sequential step"])
    table.add_row(["(b) refined triangulation", stage_b,
                   f"{stats.n_operations} operations, "
                   f"{stats.n_removals} removals"])
    table.add_row(["(c) extracted mesh M", mesh.n_tets,
                   "circumcenter inside O"])
    publish(results_dir, "fig1_pipeline.txt", table.render())

    assert stage_a == 1           # enclosing simplex
    assert stage_b > 100 * stage_a
    assert 0 < mesh.n_tets < stage_b
    # Every extracted element's circumcenter is inside the object.
    for i in range(mesh.n_tets):
        from repro.geometry.predicates import circumcenter_tet

        cc = circumcenter_tet(*mesh.tet_points(i))
        assert image.label_at(cc) != 0
