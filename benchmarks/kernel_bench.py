"""Insertion hot-path micro-benchmark with a JSON artifact and a
regression gate.

Runs the canonical seeded insertion workload (the same one
``test_micro_kernels.py::test_bench_insertion_throughput`` and the
``tests/data/kernel_parity.json`` goldens use) through both kernel
paths:

* ``python``  — the pure-Python filtered-predicate kernel
  (accelerator disabled for the measurement);
* ``accel``   — the C insertion accelerator, when it compiled.

and writes ``BENCH_kernels.json`` (default:
``benchmarks/results/BENCH_kernels.json``) holding both throughputs,
the committed pre-overhaul baseline, and the accel/python speedup.

``--check-regression`` turns the run into a CI gate.  Absolute
throughput is machine-dependent, so the gate is ratio-based: the
accel/python speedup measured *on this machine* must stay above 80% of
the committed reference speedup (a >20% relative throughput drop of the
fast path fails the job).  On machines without a C compiler the gate
degrades to checking the pure-Python path against its own floor.

Usage::

    PYTHONPATH=src python benchmarks/kernel_bench.py [--fast]
        [--check-regression] [-o PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

from repro import _accel
from repro.delaunay import Triangulation3D

# Throughput of the pre-overhaul pure-Python kernel on the reference
# machine (committed with the kernel overhaul PR; the "before" column
# of the README table).
PRE_OVERHAUL_INSERTS_PER_SECOND = 1688.1
# Accel/python speedup measured on the reference machine when the C
# kernel landed.  The regression gate allows a 20% drop from this.
REFERENCE_SPEEDUP = 8.0
GATE_FRACTION = 0.8
# Floor for the pure-Python path relative to itself: it must complete
# the workload at all and not collapse (compiler-less CI fallback).
PYTHON_FLOOR_INSERTS_PER_SECOND = 300.0

N_POINTS = 400
SEED = 7

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).parent / "results" / "BENCH_kernels.json"
)


def _workload():
    rng = random.Random(SEED)
    return [
        tuple(rng.uniform(0.02, 0.98) for _ in range(3))
        for _ in range(N_POINTS)
    ]


def _insert_all(points):
    tri = Triangulation3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    hint = None
    for p in points:
        _, ntets, _ = tri.insert_point(p, hint)
        hint = ntets[0]
    return tri


def _measure(points, repeats):
    """Best-of-``repeats`` insertion throughput (inserts per second)."""
    best = float("inf")
    tri = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        tri = _insert_all(points)
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return len(points) / best, tri


def run(fast=False, check_regression=False, output=DEFAULT_OUTPUT):
    repeats = 3 if fast else 7
    points = _workload()
    saved = _accel.bw_insert

    _accel.bw_insert = None
    try:
        py_ips, py_tri = _measure(points, repeats)
    finally:
        _accel.bw_insert = saved

    accel_available = saved is not None
    if accel_available:
        accel_ips, accel_tri = _measure(points, repeats)
        c = accel_tri.counters
        accel_detail = {
            "inserts_per_second": round(accel_ips, 1),
            "accel_inserts": c.accel_inserts,
            "accel_retries": c.accel_retries,
            "mean_walk_length": round(c.mean_walk_length, 3),
        }
        speedup = accel_ips / py_ips
    else:
        accel_ips = None
        accel_detail = {"inserts_per_second": None}
        speedup = None

    doc = {
        "schema": 1,
        "workload": {
            "name": "insert-uniform-box",
            "seed": SEED,
            "n_points": N_POINTS,
            "repeats": repeats,
            "n_tets": py_tri.n_tets,
        },
        "pre_overhaul_baseline": {
            "inserts_per_second": PRE_OVERHAUL_INSERTS_PER_SECOND,
            "note": "pure-Python kernel before the hot-path overhaul, "
                    "reference machine",
        },
        "python_path": {"inserts_per_second": round(py_ips, 1)},
        "accel_path": {"available": accel_available, **accel_detail},
        "speedup_accel_over_python": (
            round(speedup, 2) if speedup is not None else None
        ),
        "reference_speedup": REFERENCE_SPEEDUP,
    }

    output = pathlib.Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(doc, indent=2) + "\n")

    print(f"python path : {py_ips:>10,.1f} inserts/s")
    if accel_available:
        print(f"accel path  : {accel_ips:>10,.1f} inserts/s "
              f"(speedup {speedup:.2f}x, retries "
              f"{accel_detail['accel_retries']})")
    else:
        print("accel path  : unavailable (no C compiler or REPRO_NO_ACCEL)")
    print(f"wrote {output}")

    if not check_regression:
        return 0
    if accel_available:
        floor = GATE_FRACTION * REFERENCE_SPEEDUP
        if speedup < floor:
            print(f"REGRESSION: accel/python speedup {speedup:.2f}x is "
                  f"below the gate {floor:.2f}x "
                  f"(80% of reference {REFERENCE_SPEEDUP}x)",
                  file=sys.stderr)
            return 1
        print(f"regression gate OK: speedup {speedup:.2f}x >= {floor:.2f}x")
    else:
        if py_ips < PYTHON_FLOOR_INSERTS_PER_SECOND:
            print(f"REGRESSION: python path {py_ips:.1f} inserts/s is "
                  f"below the floor {PYTHON_FLOOR_INSERTS_PER_SECOND}",
                  file=sys.stderr)
            return 1
        print("regression gate OK (python path only: accel unavailable)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="3 repeats instead of 7 (CI setting)")
    parser.add_argument("--check-regression", action="store_true",
                        help="exit 1 on a >20% relative throughput drop")
    parser.add_argument("-o", "--output", default=str(DEFAULT_OUTPUT),
                        help="where to write BENCH_kernels.json")
    args = parser.parse_args(argv)
    return run(fast=args.fast, check_regression=args.check_regression,
               output=args.output)


if __name__ == "__main__":
    sys.exit(main())
