"""Kernel hot-path micro-benchmarks with a JSON artifact and a
regression gate.

Runs three canonical seeded workloads (the same family the
``tests/data/kernel_parity.json`` goldens pin) through both kernel
paths:

* ``insert``  — scalar hint-chained insertion, pure-Python vs the C
  accelerator;
* ``removal`` — vertex removal (build a triangulation, remove interior
  vertices), pure-Python hole filling vs the C removal kernel;
* ``batch``   — ``insert_many`` batched insertion vs the scalar accel
  loop (amortised ctypes crossings).

and writes ``BENCH_kernels.json`` (default:
``benchmarks/results/BENCH_kernels.json``, schema 2) holding the
throughputs, the committed pre-overhaul baseline, and the
accel/python speedups for every workload.

``--check-regression`` turns the run into a CI gate.  Absolute
throughput is machine-dependent, so the gate is ratio-based: the
accel/python speedup measured *on this machine* must stay above 80% of
the committed reference speedup (a >20% relative throughput drop of the
fast path fails the job).  On machines without a C compiler the gate
degrades to checking the pure-Python path against its own floor.

Usage::

    PYTHONPATH=src python benchmarks/kernel_bench.py [--fast]
        [--check-regression] [-o PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import sys
import time
from contextlib import contextmanager

from repro import _accel
from repro.delaunay import RemovalError, Triangulation3D
from repro.imaging import ball_grid_phantom
from repro.parallel.threaded import _parallel_mesh_image

# Every ctypes entry point the kernel dispatches on.  Disabling the
# accelerator for a measurement must null ALL of them — each call site
# checks its own handle, so nulling only ``bw_insert`` would leave the
# removal/batch/commit paths accelerated.
_HANDLE_NAMES = ("bw_insert", "bw_commit", "bw_insert_many", "bw_remove")


@contextmanager
def _accel_disabled():
    saved = {name: getattr(_accel, name) for name in _HANDLE_NAMES}
    for name in _HANDLE_NAMES:
        setattr(_accel, name, None)
    try:
        yield
    finally:
        for name, handle in saved.items():
            setattr(_accel, name, handle)

# Throughput of the pre-overhaul pure-Python kernel on the reference
# machine (committed with the kernel overhaul PR; the "before" column
# of the README table).
PRE_OVERHAUL_INSERTS_PER_SECOND = 1688.1
# Accel/python speedup measured on the reference machine when the C
# kernel landed.  The regression gate allows a 20% drop from this.
REFERENCE_SPEEDUP = 8.0
GATE_FRACTION = 0.8
# Floor for the pure-Python path relative to itself: it must complete
# the workload at all and not collapse (compiler-less CI fallback).
PYTHON_FLOOR_INSERTS_PER_SECOND = 300.0
# Accel/python vertex-removal speedup on the reference machine when the
# C removal kernel landed (acceptance floor was 3x; gate allows a 20%
# drop from the committed reference).
REMOVAL_REFERENCE_SPEEDUP = 3.0
# Batched insert_many vs the scalar accel loop on the reference machine.
BATCH_REFERENCE_SPEEDUP = 1.2
# Thread-scaling workload (per-thread commit arenas).  The scaling gate
# is CPU-scaled: 4 refinement threads must reach 1.5x the single-thread
# throughput, but only on machines with >= 4 CPUs — below that the GIL
# plus the core count make the ratio meaningless, so the check runs
# advisory (reported, never failing).
THREAD_COUNTS = (1, 2, 4, 8)
THREAD_SCALING_MIN_SPEEDUP_4 = 1.5
# The commit-wait comparison is measured, not committed: the same
# 4-thread workload runs once more with commits re-serialized on the
# legacy global lock, and the arena run's wait share must not exceed
# that same-machine baseline by more than this slack.
WAIT_SHARE_SLACK = 0.05
THREAD_DELTA = 1.5
THREAD_SEED = 1

N_POINTS = 400
SEED = 7

# Removal workload: the insert_remove golden's shape (build, then strip
# interior vertices).
REMOVE_SEED = 21
REMOVE_N_POINTS = 250
REMOVE_COUNT = 80
REMOVE_SHUFFLE_SEED = 5

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).parent / "results" / "BENCH_kernels.json"
)


def _workload():
    rng = random.Random(SEED)
    return [
        tuple(rng.uniform(0.02, 0.98) for _ in range(3))
        for _ in range(N_POINTS)
    ]


def _insert_all(points):
    tri = Triangulation3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    hint = None
    for p in points:
        _, ntets, _ = tri.insert_point(p, hint)
        hint = ntets[0]
    return tri


def _insert_batched(points):
    tri = Triangulation3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    tri.insert_many(points)
    return tri


def _measure(points, repeats, fn=_insert_all):
    """Best-of-``repeats`` insertion throughput (inserts per second)."""
    best = float("inf")
    tri = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        tri = fn(points)
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return len(points) / best, tri


def _removal_workload():
    rng = random.Random(REMOVE_SEED)
    return [
        tuple(rng.uniform(0.05, 0.95) for _ in range(3))
        for _ in range(REMOVE_N_POINTS)
    ]


def _build_removal_tri():
    """Fresh triangulation + deterministic victim order for one repeat.

    The build always runs with whatever accelerator is loaded — only
    the removal loop itself is timed (and, for the python measurement,
    de-accelerated)."""
    tri = Triangulation3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    inserted = tri.insert_many(_removal_workload())
    verts = [v for v in inserted if v is not None]
    random.Random(REMOVE_SHUFFLE_SEED).shuffle(verts)
    return tri, verts


def _remove_loop(tri, verts):
    t0 = time.perf_counter()
    n = 0
    for v in verts:
        try:
            tri.remove_vertex(v)
        except RemovalError:
            continue
        n += 1
        if n >= REMOVE_COUNT:
            break
    return n, time.perf_counter() - t0


def _measure_removals(repeats, use_accel):
    """Best-of-``repeats`` vertex-removal throughput (removals/second)."""
    best = float("inf")
    tri = None
    n_removed = 0
    for _ in range(repeats):
        tri, verts = _build_removal_tri()
        if use_accel:
            n, dt = _remove_loop(tri, verts)
        else:
            with _accel_disabled():
                n, dt = _remove_loop(tri, verts)
        best = min(best, dt)
        n_removed = n
    return n_removed / best, tri


@contextmanager
def _global_lock_commits():
    """Re-serialize two-phase commits on the legacy global commit lock.

    Bypasses the per-thread arenas (the allocator flag is cleared right
    after they are built, so every commit falls back to the
    ``_commit_lock`` path) to measure the pre-arena baseline on this
    machine instead of trusting a committed reference number.
    """
    from repro.delaunay.mesh import MeshArrays

    orig = MeshArrays.begin_thread_arenas

    def patched(self, n):
        arenas = orig(self, n)
        self._arenas_on = False
        return arenas

    MeshArrays.begin_thread_arenas = patched
    try:
        yield
    finally:
        MeshArrays.begin_thread_arenas = orig


def _measure_threaded(img, n_threads, repeats, global_lock=False):
    """Best-of-``repeats`` threaded refinement of the ball-grid image."""
    best = None
    for _ in range(repeats):
        if global_lock:
            with _global_lock_commits():
                res = _parallel_mesh_image(
                    img, n_threads=n_threads, delta=THREAD_DELTA,
                    seed=THREAD_SEED, timeout=240.0)
        else:
            res = _parallel_mesh_image(
                img, n_threads=n_threads, delta=THREAD_DELTA,
                seed=THREAD_SEED, timeout=240.0)
        if best is None or res.wall_time < best.wall_time:
            best = res
    c = best.domain.tri.counters
    wait = c.commit_wait_seconds
    work = c.commit_work_seconds
    share = wait / (wait + work) if (wait + work) > 0 else 0.0
    return {
        "operations_per_second": round(
            best.totals["operations"] / best.wall_time, 1),
        "tets_per_second": round(best.mesh.n_tets / best.wall_time, 1),
        "wall_seconds": round(best.wall_time, 3),
        "commits": c.commits,
        "commit_wait_share": round(share, 4),
        "rollbacks": int(best.totals["rollbacks"]),
    }


def _thread_scaling_section(fast):
    img = ball_grid_phantom(20, side=2)
    repeats = 1 if fast else 2
    threads = {}
    for n in THREAD_COUNTS:
        threads[str(n)] = _measure_threaded(img, n, repeats)
    baseline4 = _measure_threaded(img, 4, repeats, global_lock=True)
    t1 = threads["1"]["operations_per_second"]
    t4 = threads["4"]["operations_per_second"]
    n_cpus = os.cpu_count() or 1
    return {
        "workload": {"name": "ball-grid-2x2x2", "n": 20,
                     "delta": THREAD_DELTA, "seed": THREAD_SEED,
                     "repeats": repeats},
        "cpus": n_cpus,
        "threads": threads,
        "global_lock_baseline_4": baseline4,
        "speedup_4_over_1": round(t4 / t1, 2) if t1 else None,
        "commit_wait_share_4": threads["4"]["commit_wait_share"],
        "commit_wait_share_4_global_lock": baseline4["commit_wait_share"],
        "min_speedup_4_over_1": THREAD_SCALING_MIN_SPEEDUP_4,
        "gate_enforced": n_cpus >= 4,
    }


def run(fast=False, check_regression=False, output=DEFAULT_OUTPUT):
    repeats = 3 if fast else 7
    points = _workload()
    accel_available = _accel.bw_insert is not None

    with _accel_disabled():
        py_ips, py_tri = _measure(points, repeats)

    if accel_available:
        accel_ips, accel_tri = _measure(points, repeats)
        c = accel_tri.counters
        accel_detail = {
            "inserts_per_second": round(accel_ips, 1),
            "accel_inserts": c.accel_inserts,
            "accel_retries": c.accel_retries,
            "mean_walk_length": round(c.mean_walk_length, 3),
        }
        speedup = accel_ips / py_ips
    else:
        accel_ips = None
        accel_detail = {"inserts_per_second": None}
        speedup = None

    # --- vertex-removal workload -------------------------------------
    rm_repeats = max(2, repeats // 2)  # each repeat rebuilds the mesh
    py_rps, _ = _measure_removals(rm_repeats, use_accel=False)
    if accel_available:
        accel_rps, rm_tri = _measure_removals(rm_repeats, use_accel=True)
        rm_c = rm_tri.counters
        rm_speedup = accel_rps / py_rps
        removal = {
            "python_removals_per_second": round(py_rps, 1),
            "accel_removals_per_second": round(accel_rps, 1),
            "accel_removals": rm_c.accel_removals,
            "accel_remove_retries": rm_c.accel_remove_retries,
            "speedup": round(rm_speedup, 2),
            "reference_speedup": REMOVAL_REFERENCE_SPEEDUP,
        }
    else:
        accel_rps = None
        rm_speedup = None
        removal = {
            "python_removals_per_second": round(py_rps, 1),
            "accel_removals_per_second": None,
            "speedup": None,
            "reference_speedup": REMOVAL_REFERENCE_SPEEDUP,
        }

    # --- batched insertion workload ----------------------------------
    if accel_available:
        batch_ips, batch_tri = _measure(points, repeats, fn=_insert_batched)
        bc = batch_tri.counters
        batch_speedup = batch_ips / accel_ips
        batch = {
            "scalar_inserts_per_second": round(accel_ips, 1),
            "batched_inserts_per_second": round(batch_ips, 1),
            "batch_inserts": bc.accel_batch_inserts,
            "ctypes_crossings": bc.accel_batch_calls,
            "speedup": round(batch_speedup, 2),
            "reference_speedup": BATCH_REFERENCE_SPEEDUP,
        }
    else:
        batch_speedup = None
        batch = {
            "scalar_inserts_per_second": None,
            "batched_inserts_per_second": None,
            "speedup": None,
            "reference_speedup": BATCH_REFERENCE_SPEEDUP,
        }

    # --- thread-scaling workload (per-thread commit arenas) ----------
    thread_scaling = _thread_scaling_section(fast)

    doc = {
        "schema": 3,
        "workload": {
            "name": "insert-uniform-box",
            "seed": SEED,
            "n_points": N_POINTS,
            "repeats": repeats,
            "n_tets": py_tri.n_tets,
            "removal": {
                "seed": REMOVE_SEED,
                "n_points": REMOVE_N_POINTS,
                "n_removed": REMOVE_COUNT,
                "repeats": rm_repeats,
            },
        },
        "pre_overhaul_baseline": {
            "inserts_per_second": PRE_OVERHAUL_INSERTS_PER_SECOND,
            "note": "pure-Python kernel before the hot-path overhaul, "
                    "reference machine",
        },
        "python_path": {"inserts_per_second": round(py_ips, 1)},
        "accel_path": {"available": accel_available, **accel_detail},
        "speedup_accel_over_python": (
            round(speedup, 2) if speedup is not None else None
        ),
        "reference_speedup": REFERENCE_SPEEDUP,
        "removal": removal,
        "batch": batch,
        "thread_scaling": thread_scaling,
    }

    output = pathlib.Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(doc, indent=2) + "\n")

    print(f"python path : {py_ips:>10,.1f} inserts/s")
    if accel_available:
        print(f"accel path  : {accel_ips:>10,.1f} inserts/s "
              f"(speedup {speedup:.2f}x, retries "
              f"{accel_detail['accel_retries']})")
        print(f"removal     : {accel_rps:>10,.1f} removals/s vs "
              f"{py_rps:,.1f} python ({rm_speedup:.2f}x, retries "
              f"{removal['accel_remove_retries']})")
        print(f"batched     : {batch['batched_inserts_per_second']:>10,.1f}"
              f" inserts/s vs scalar accel ({batch_speedup:.2f}x, "
              f"{batch['ctypes_crossings']} crossings)")
    else:
        print("accel path  : unavailable (no C compiler or REPRO_NO_ACCEL)")
        print(f"removal     : {py_rps:>10,.1f} removals/s (python only)")
    ts = thread_scaling
    row = "  ".join(
        f"{n}t {ts['threads'][str(n)]['operations_per_second']:,.0f} op/s"
        for n in THREAD_COUNTS
    )
    print(f"threads     : {row}")
    print(f"  4t speedup {ts['speedup_4_over_1']}x over 1t "
          f"(gate {'enforced' if ts['gate_enforced'] else 'advisory'}, "
          f"{ts['cpus']} cpus); commit-wait share "
          f"{ts['commit_wait_share_4']:.3f} arenas vs "
          f"{ts['commit_wait_share_4_global_lock']:.3f} global-lock")
    print(f"wrote {output}")

    if not check_regression:
        return 0

    # --- thread-scaling gate (CPU-scaled; advisory below 4 CPUs) -----
    scaling_failed = False
    sp4 = ts["speedup_4_over_1"] or 0.0
    if sp4 < THREAD_SCALING_MIN_SPEEDUP_4:
        msg = (f"thread scaling: 4-thread speedup {sp4:.2f}x is below "
               f"{THREAD_SCALING_MIN_SPEEDUP_4}x")
        if ts["gate_enforced"]:
            print(f"REGRESSION: {msg}", file=sys.stderr)
            scaling_failed = True
        else:
            print(f"advisory ({ts['cpus']} cpus): {msg}")
    wait4 = ts["commit_wait_share_4"]
    wait_base = ts["commit_wait_share_4_global_lock"]
    if wait4 > wait_base + WAIT_SHARE_SLACK:
        msg = (f"commit-wait share {wait4:.3f} with arenas exceeds the "
               f"global-lock baseline {wait_base:.3f} (+{WAIT_SHARE_SLACK} "
               f"slack)")
        if ts["gate_enforced"]:
            print(f"REGRESSION: {msg}", file=sys.stderr)
            scaling_failed = True
        else:
            print(f"advisory ({ts['cpus']} cpus): {msg}")
    if scaling_failed:
        return 1
    if accel_available:
        failed = False
        floor = GATE_FRACTION * REFERENCE_SPEEDUP
        if speedup < floor:
            print(f"REGRESSION: accel/python speedup {speedup:.2f}x is "
                  f"below the gate {floor:.2f}x "
                  f"(80% of reference {REFERENCE_SPEEDUP}x)",
                  file=sys.stderr)
            failed = True
        rm_floor = GATE_FRACTION * REMOVAL_REFERENCE_SPEEDUP
        if rm_speedup < rm_floor:
            print(f"REGRESSION: removal speedup {rm_speedup:.2f}x is "
                  f"below the gate {rm_floor:.2f}x "
                  f"(80% of reference {REMOVAL_REFERENCE_SPEEDUP}x)",
                  file=sys.stderr)
            failed = True
        batch_floor = GATE_FRACTION * BATCH_REFERENCE_SPEEDUP
        if batch_speedup < batch_floor:
            print(f"REGRESSION: batched-insert speedup {batch_speedup:.2f}x "
                  f"is below the gate {batch_floor:.2f}x "
                  f"(80% of reference {BATCH_REFERENCE_SPEEDUP}x)",
                  file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f"regression gate OK: insert {speedup:.2f}x >= {floor:.2f}x, "
              f"removal {rm_speedup:.2f}x >= {rm_floor:.2f}x, "
              f"batch {batch_speedup:.2f}x >= {batch_floor:.2f}x")
    else:
        if py_ips < PYTHON_FLOOR_INSERTS_PER_SECOND:
            print(f"REGRESSION: python path {py_ips:.1f} inserts/s is "
                  f"below the floor {PYTHON_FLOOR_INSERTS_PER_SECOND}",
                  file=sys.stderr)
            return 1
        print("regression gate OK (python path only: accel unavailable)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="3 repeats instead of 7 (CI setting)")
    parser.add_argument("--check-regression", action="store_true",
                        help="exit 1 on a >20% relative throughput drop")
    parser.add_argument("-o", "--output", default=str(DEFAULT_OUTPUT),
                        help="where to write BENCH_kernels.json")
    args = parser.parse_args(argv)
    return run(fast=args.fast, check_regression=args.check_regression,
               output=args.output)


if __name__ == "__main__":
    sys.exit(main())
