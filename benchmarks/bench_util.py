"""Workload helpers shared by the benchmark harnesses."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.domain import RefineDomain
from repro.core.refiner import SequentialRefiner
from repro.imaging.image import SegmentedImage
from repro.imaging.isosurface import SurfaceOracle

_calibration_cache: Dict[Tuple[int, float], Tuple[float, int]] = {}
_oracle_cache: Dict[int, SurfaceOracle] = {}


def oracle_for(image: SegmentedImage) -> SurfaceOracle:
    """One shared surface oracle per image (EDT is the pricey part)."""
    key = id(image)
    if key not in _oracle_cache:
        _oracle_cache[key] = SurfaceOracle(image)
    return _oracle_cache[key]


def elements_at_delta(image: SegmentedImage, delta: float) -> int:
    """Measure how many elements a sequential run yields at ``delta``."""
    key = (id(image), round(delta, 6))
    if key not in _calibration_cache:
        domain = RefineDomain(image, delta=delta, oracle=oracle_for(image))
        SequentialRefiner(domain, max_operations=2_000_000).refine()
        _calibration_cache[key] = (delta, domain.tri.n_tets)
    return _calibration_cache[key][1]


def delta_for_elements(image: SegmentedImage, target_elements: int,
                       delta_ref: float = None) -> float:
    """Pick delta so a run produces roughly ``target_elements`` elements.

    Volume scaling: halving delta multiplies the element count by ~8
    (the paper's own x -> x^3 argument in Section 6.3), so one coarse
    calibration run pins the constant.
    """
    if delta_ref is None:
        delta_ref = 3.0 * image.min_spacing
    floor = 1.0 * image.min_spacing
    e_ref = elements_at_delta(image, delta_ref)
    delta = delta_ref * (e_ref / max(1, target_elements)) ** (1.0 / 3.0)
    delta = max(delta, floor)
    # One secant refinement: the pure volume law ignores the surface
    # sampling term, which matters at small mesh sizes.
    e_1 = elements_at_delta(image, delta)
    delta = max(floor, delta * (e_1 / max(1, target_elements)) ** (1.0 / 3.0))
    return delta
