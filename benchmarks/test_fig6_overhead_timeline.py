"""Figure 6 — cumulative overhead vs wall time at the top thread count.

Paper: for the 176-core weak-scaling run, plots the cumulative seconds
of useless work (rollback + contention + load balance) against the wall
clock; the first seconds (Phase 1) show intense contention because the
mesh starts from a handful of elements, and the curve flattens once
enough parallelism exists.

The bench prints the (wall time, cumulative overhead) series in coarse
buckets and checks the phase structure: the overhead accumulation RATE
during the first phase exceeds the steady-state rate.
"""

import pytest

from benchmarks.bench_util import delta_for_elements, oracle_for
from benchmarks.conftest import WEAK_TARGET, publish
from repro.core.domain import RefineDomain
from repro.reporting import Table
from repro.simnuma import _simulate_parallel_refinement as simulate_parallel_refinement

THREADS = 176
BUCKETS = 12


def run_fig6(image):
    delta = delta_for_elements(image, WEAK_TARGET * THREADS)
    domain = RefineDomain(image, delta=delta, oracle=oracle_for(image))
    return simulate_parallel_refinement(
        image, THREADS, delta=delta, domain=domain,
    )


@pytest.mark.benchmark(group="fig6")
def test_fig6_overhead_timeline(benchmark, abdominal, results_dir):
    result = benchmark.pedantic(run_fig6, args=(abdominal,),
                                rounds=1, iterations=1)
    assert not result.livelock

    # Merge all threads' overhead into wall buckets.  A wait of length d
    # charged at time t accrued over [t - d, t] (busy-wait rate is one
    # overhead-second per second), so distribute it across the buckets it
    # spans rather than impulse-charging its end point.
    total_time = result.virtual_time
    bucket_w = total_time / BUCKETS
    accrual = [0.0] * BUCKETS
    for st in result.thread_stats:
        prev = 0.0
        for t, cum in st.overhead_timeline:
            delta = cum - prev
            prev = cum
            if delta <= 0:
                continue
            start = max(0.0, t - delta)
            b0 = min(BUCKETS - 1, int(start / bucket_w))
            b1 = min(BUCKETS - 1, int(min(t, total_time) / bucket_w))
            span = max(1, b1 - b0 + 1)
            for b in range(b0, b1 + 1):
                accrual[b] += delta / span
    series = []
    cum = 0.0
    for b in range(BUCKETS):
        cum += accrual[b]
        series.append(((b + 1) * bucket_w, cum))

    table = Table(
        f"Figure 6 — cumulative useless work, {THREADS} simulated threads "
        f"({result.n_elements} elements, total {total_time:.4f}s)",
        ["wall time (s)", "cumulative overhead (s)", "overhead rate"],
    )
    prev_edge, prev_cum = 0.0, 0.0
    rates = []
    for edge, cum_v in series:
        rate = (cum_v - prev_cum) / (edge - prev_edge)
        rates.append(rate)
        table.add_row([round(edge, 4), round(cum_v, 4), round(rate, 2)])
        prev_edge, prev_cum = edge, cum_v
    publish(results_dir, "fig6_overhead_timeline.txt", table.render())

    # ---- shape assertions ----
    # Phase 1: the startup (first quarter) accumulates overhead at least
    # as fast as the typical steady-state bucket — the mesh starts from
    # one element, so most threads idle or contend early (Figure 6's
    # story).  The final bucket absorbs the termination drain and is
    # excluded from the steady-state reference.
    steady = sorted(rates[BUCKETS // 4:-1])
    median_steady = steady[len(steady) // 2]
    assert max(rates[:BUCKETS // 4]) >= 0.8 * median_steady
    # Overhead is monotone cumulative and positive.
    assert series[-1][1] > 0
