"""CI workload replay and executor benchmark for the meshing service.

Two halves, both one-line CI gates:

* **Workload replay** (default): boots a real
  :class:`~repro.service.MeshingService`, replays a mixed workload —
  cache hits, cache misses, a poisoned request, an over-capacity
  burst — and asserts on the resulting ``service.*`` metrics.  The
  executor comes from ``ServiceConfig`` resolution, so CI runs the
  same replay under ``REPRO_EXECUTOR=thread`` and ``=process``.
* **Executor comparison** (``--executor-bench``): meshes the same
  CPU-bound batch of cache misses through a thread-executor service
  and a process-executor service (separate cache dirs — no
  cross-pollination) and writes ``BENCH_service.json`` with both
  throughputs.  The ≥1.5x process-over-thread gate is only *enforced*
  when the machine has ≥2 usable CPUs — on a single-CPU runner the
  comparison is recorded but advisory (process workers cannot beat
  threads without parallelism; the GIL is the thing being escaped).
* **HTTP gateway + coalescing** (``--http-bench``): a duplicate-burst
  gate plus a zipfian request mix driven through a real
  :class:`~repro.service.MeshHTTPServer` with concurrent
  :class:`~repro.service.HttpClient` workers, written to
  ``BENCH_http.json``.  The burst gate counts *mesh runs*, not wall
  time: K identical cold requests must collapse to one run with
  coalescing on and fan out to K independent runs with it off, an
  amplification of K ≥ 5x.  Run counting makes the gate deterministic
  on any machine, so it is always enforced.

Exit code 0 iff every assertion (and any enforced gate) holds::

    PYTHONPATH=src python benchmarks/service_workload.py
    PYTHONPATH=src python benchmarks/service_workload.py --executor-bench
    PYTHONPATH=src python benchmarks/service_workload.py --http-bench

Keep the replay fast (< ~1 min on a laptop): it is a smoke gate on
service semantics under concurrency, not a throughput benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import random
import sys
import tempfile
import threading
import time

from repro.api import MeshRequest
from repro.imaging import sphere_phantom
from repro.service import (
    JobState,
    MeshHTTPServer,
    MeshingService,
    ServiceConfig,
    TransientMeshError,
    connect,
    process_support_available,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
DEFAULT_BENCH = RESULTS_DIR / "BENCH_service.json"
DEFAULT_HTTP_BENCH = RESULTS_DIR / "BENCH_http.json"

#: required process-over-thread throughput on a multi-core machine.
GATE_SPEEDUP = 1.5

#: required duplicate-burst work amplification (independent mesh runs
#: over coalesced mesh runs).  Counted in runs, not seconds, so it is
#: deterministic and enforced everywhere.
GATE_COALESCE = 5.0

FAILURES = []


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {name}" + (f"  ({detail})" if detail else ""))
    if not cond:
        FAILURES.append(name)


class FlakyOnce:
    """Transient failure on the first call, then delegates."""

    name = "flaky"

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def mesh(self, request):
        self.calls += 1
        if self.calls == 1:
            raise TransientMeshError("injected transient fault")
        return self.inner.mesh(request)


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def replay() -> None:
    image = sphere_phantom(12)
    tmp = tempfile.mkdtemp(prefix="repro-service-workload-")
    cfg = ServiceConfig(n_workers=4, queue_capacity=8,
                        cache_dir=tmp, max_retries=2, retry_backoff=0.01)
    service = MeshingService(cfg).start()
    print(f"executor: {service.executor}"
          + (" (fell back from process)" if service.executor_fallback
             else ""))
    from repro.api import get_mesher
    service.register_mesher("flaky", FlakyOnce(get_mesher("sequential")))

    print("phase 1: cold misses (two param sets, one image)")
    r1 = service.mesh(MeshRequest(image=image, delta=3.0,
                                  mesher="sequential"))
    r2 = service.mesh(MeshRequest(image=image, delta=4.0,
                                  mesher="sequential"))
    check("cold runs produce meshes", r1.n_tets > 0 and r2.n_tets > 0)

    print("phase 2: warm hits")
    w1 = service.mesh(MeshRequest(image=image, delta=3.0,
                                  mesher="sequential"))
    check("warm mesh topology-identical",
          w1.n_tets == r1.n_tets and w1.n_vertices == r1.n_vertices)

    print("phase 3: poisoned request (unknown mesher)")
    try:
        service.mesh(MeshRequest(image=image, delta=3.0, mesher="no-such"))
        poisoned_rejected = False
    except Exception:
        poisoned_rejected = True
    check("poisoned request rejected, service alive", poisoned_rejected)

    print("phase 4: transient fault recovered by retry")
    rf = service.mesh(MeshRequest(image=image, delta=5.0, mesher="flaky"))
    check("flaky mesher recovered", rf.n_tets > 0)

    print("phase 5: over-capacity burst")
    jobs = [service.submit(MeshRequest(image=image, delta=3.0 + 0.1 * i,
                                       mesher="sequential"))
            for i in range(20)]
    for job in jobs:
        ok = job.wait(120.0)
        check(f"{job.id} terminal", ok and job.done, job.state.value)
    states = {j.state for j in jobs}
    check("burst states are DONE/REJECTED only",
          states <= {JobState.DONE, JobState.REJECTED}, str(states))
    n_rejected = sum(j.state is JobState.REJECTED for j in jobs)
    check("burst overflowed the 8-slot queue", n_rejected >= 1,
          f"{n_rejected} rejected")

    print("phase 6: metrics audit")
    snap = service.metrics_snapshot()
    c, g = snap["counters"], snap["gauges"]
    check("service.cache.hit >= 1", c.get("service.cache.hit", 0) >= 1,
          str(c.get("service.cache.hit")))
    check("service.cache.miss >= 2", c.get("service.cache.miss", 0) >= 2,
          str(c.get("service.cache.miss")))
    check("service.jobs.retries == 1", c.get("service.jobs.retries") == 1,
          str(c.get("service.jobs.retries")))
    check("service.jobs.rejected == burst rejections",
          c.get("service.jobs.rejected", 0) == n_rejected,
          str(c.get("service.jobs.rejected")))
    check("poisoned request is the only failure",
          c.get("service.jobs.failed") == 1,
          str(c.get("service.jobs.failed")))
    check("no worker crashed the pool", g.get("service.workers.alive") == 4,
          str(g.get("service.workers.alive")))
    if service.executor == "process":
        # Remote jobs compute the EDT in worker processes; the parent
        # only computes when a job runs inline (overlay mesher) and the
        # shared disk cache misses.
        check("parent-side EDT computes <= 1",
              (g.get("edt.cache.computes") or 0) <= 1,
              str(g.get("edt.cache.computes")))
        check("jobs ran remotely", c.get("service.jobs.remote", 0) >= 1,
              str(c.get("service.jobs.remote")))
        check("no worker process crashed",
              c.get("service.worker.crashes", 0) == 0,
              str(c.get("service.worker.crashes")))
    else:
        check("EDT computed once per image",
              g.get("edt.cache.computes") == 1,
              str(g.get("edt.cache.computes")))
    books = (c.get("service.jobs.completed", 0)
             + c.get("service.jobs.failed", 0)
             + c.get("service.jobs.rejected", 0)
             + c.get("service.jobs.cancelled", 0)
             + c.get("service.jobs.timed_out", 0))
    check("every submitted job accounted for",
          books == c.get("service.jobs.submitted"),
          f"{books} vs {c.get('service.jobs.submitted')}")

    service.shutdown()
    check("workers drained on shutdown", service.pool.alive_workers == 0)


def _timed_batch(executor: str, n_workers: int, n_jobs: int,
                 phantom_n: int, delta0: float) -> dict:
    """Mesh ``n_jobs`` distinct cache misses; returns timing + config."""
    image = sphere_phantom(phantom_n)
    tmp = tempfile.mkdtemp(prefix=f"repro-execbench-{executor}-")
    service = MeshingService(ServiceConfig(
        n_workers=n_workers, queue_capacity=n_jobs + 4,
        cache_dir=tmp, executor=executor)).start()
    try:
        # Warmup: spawn workers / prime imports off the clock.
        service.mesh(MeshRequest(image=image, delta=delta0 + 9.0,
                                 mesher="sequential"))
        t0 = time.perf_counter()
        jobs = [service.submit(MeshRequest(image=image,
                                           delta=delta0 + 0.003 * i,
                                           mesher="sequential"))
                for i in range(n_jobs)]
        for job in jobs:
            job.wait(600.0)
        seconds = time.perf_counter() - t0
        done = sum(j.state is JobState.DONE for j in jobs)
        return {
            "executor": service.executor,
            "requested_executor": executor,
            "fallback": service.executor_fallback,
            "n_workers": n_workers,
            "jobs": n_jobs,
            "jobs_done": done,
            "seconds": seconds,
            "jobs_per_second": done / seconds if seconds > 0 else 0.0,
        }
    finally:
        service.shutdown()


def executor_bench(out_path: pathlib.Path, n_jobs: int,
                   phantom_n: int) -> None:
    cpus = usable_cpus()
    enforced = cpus >= 2 and process_support_available()
    print(f"executor bench: {n_jobs} CPU-bound misses, 4 workers, "
          f"{cpus} usable CPU(s), gate "
          f"{'ENFORCED' if enforced else 'advisory'}")

    thread = _timed_batch("thread", 4, n_jobs, phantom_n, 1.0)
    print(f"  thread : {thread['seconds']:.2f}s "
          f"({thread['jobs_per_second']:.2f} jobs/s)")
    process = _timed_batch("process", 4, n_jobs, phantom_n, 1.0)
    print(f"  process: {process['seconds']:.2f}s "
          f"({process['jobs_per_second']:.2f} jobs/s)"
          + (" [fell back to threads]" if process["fallback"] else ""))

    speedup = (process["jobs_per_second"] / thread["jobs_per_second"]
               if thread["jobs_per_second"] > 0 else 0.0)
    passed = speedup >= GATE_SPEEDUP
    doc = {
        "schema": 1,
        "workload": {"jobs": n_jobs, "phantom_n": phantom_n,
                     "n_workers": 4, "mesher": "sequential"},
        "cpus": cpus,
        "thread": thread,
        "process": process,
        "speedup_process_over_thread": speedup,
        "gate": {"required": GATE_SPEEDUP, "enforced": enforced,
                 "passed": passed},
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  speedup: {speedup:.2f}x (required {GATE_SPEEDUP}x, "
          f"{'enforced' if enforced else 'advisory'}) -> {out_path}")

    check("all thread-executor jobs done",
          thread["jobs_done"] == n_jobs, str(thread["jobs_done"]))
    check("all process-executor jobs done",
          process["jobs_done"] == n_jobs, str(process["jobs_done"]))
    if enforced:
        check(f"process >= {GATE_SPEEDUP}x thread", passed,
              f"{speedup:.2f}x")


class TemplateMesher:
    """Returns a canned result; counts calls, optional gate/delay.

    A canned mesh keeps the benchmark about *service* mechanics —
    coalescing, cache tiers, the HTTP transport — rather than meshing
    speed, and the gate makes in-flight overlap deterministic.
    """

    name = "canned"

    def __init__(self, result, gate=None, delay=0.0):
        self.result = result
        self.gate = gate
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def mesh(self, request):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            self.gate.wait(30.0)
        if self.delay:
            time.sleep(self.delay)
        return self.result


def _duplicate_burst(template, image, k: int, coalesce: bool) -> dict:
    """Submit ``k`` identical cold requests; return the run count."""
    gate = threading.Event()
    mesher = TemplateMesher(template, gate=gate)
    tmp = tempfile.mkdtemp(prefix="repro-httpbench-burst-")
    service = MeshingService(ServiceConfig(
        n_workers=k, queue_capacity=k + 2, cache_dir=tmp,
        coalesce=coalesce)).start()
    service.register_mesher("canned", mesher)
    try:
        jobs = [service.submit(MeshRequest(image=image, delta=3.0,
                                           mesher="canned"))
                for _ in range(k)]
        # Hold the gate until every run that is going to happen has
        # claimed a worker — one with coalescing, k without.  Nothing
        # can finish early and turn a duplicate into a cache hit, so
        # the run count (the thing the gate measures) is exact.
        expected = 1 if coalesce else k
        end = time.monotonic() + 30.0
        while mesher.calls < expected and time.monotonic() < end:
            time.sleep(0.005)
        gate.set()
        for job in jobs:
            job.wait(120.0)
        counters = service.metrics_snapshot()["counters"]
        return {
            "k": k,
            "coalesce": coalesce,
            "mesh_runs": mesher.calls,
            "jobs_done": sum(j.state is JobState.DONE for j in jobs),
            "followers": counters.get("service.coalesce.followers", 0),
        }
    finally:
        gate.set()
        service.shutdown()


def _zipf_sequence(n_requests: int, n_ranks: int) -> list:
    """Deterministic zipfian rank sequence (weight 1/(rank+1))."""
    weights = [1.0 / (r + 1) for r in range(n_ranks)]
    total = sum(weights)
    counts = [max(1, round(n_requests * w / total)) for w in weights]
    seq = [r for r, c in enumerate(counts) for _ in range(c)]
    seq = seq[:n_requests] + [0] * (n_requests - len(seq))
    random.Random(20260808).shuffle(seq)
    return seq


def _rank_request(image, rank: int) -> MeshRequest:
    return MeshRequest(image=image, delta=2.5 + 0.25 * rank,
                       mesher="canned")


def _http_zipfian(template, image, cache_dir: str, n_requests: int,
                  n_ranks: int, n_clients: int) -> dict:
    """Drive a zipfian mix through the HTTP gateway; return metrics."""
    mesher = TemplateMesher(template, delay=0.05)
    service = MeshingService(ServiceConfig(
        n_workers=4, queue_capacity=n_requests + 4,
        cache_dir=cache_dir)).start()
    service.register_mesher("canned", mesher)
    server = MeshHTTPServer(service).start()
    work = _zipf_sequence(n_requests, n_ranks)
    lock = threading.Lock()
    errors = []

    def drain():
        client = connect(server.url, timeout=60.0)
        try:
            while True:
                with lock:
                    if not work:
                        return
                    rank = work.pop()
                try:
                    result = client.mesh(_rank_request(image, rank),
                                         timeout=120.0)
                    if result.n_tets <= 0:
                        errors.append(f"rank {rank}: empty mesh")
                except Exception as exc:  # collected, not raised
                    errors.append(f"rank {rank}: {exc!r}")
        finally:
            client.close()

    threads = [threading.Thread(target=drain, name=f"http-client-{i}")
               for i in range(n_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    snap = service.metrics_snapshot()
    images = server.gateway.images.stats_snapshot()
    server.close()
    service.shutdown()
    slo = snap["slo"]
    fanout = snap["histograms"].get("service.coalesce.fanout", {})
    return {
        "requests": n_requests,
        "distinct": n_ranks,
        "clients": n_clients,
        "seconds": seconds,
        "errors": errors,
        "mesh_runs": mesher.calls,
        "executor": service.executor,
        "hit_rate": slo["hit_rate"],
        "tiers": slo["tiers"],
        "coalesce_fanout": {"count": fanout.get("count", 0),
                            "sum": fanout.get("sum", 0)},
        "image_store": images,
    }


def _http_disk_pass(template, image, cache_dir: str,
                    n_ranks: int) -> dict:
    """Fresh service over the warmed cache dir: every key a disk hit."""
    mesher = TemplateMesher(template)
    service = MeshingService(ServiceConfig(
        n_workers=2, queue_capacity=n_ranks + 2,
        cache_dir=cache_dir)).start()
    service.register_mesher("canned", mesher)
    server = MeshHTTPServer(service).start()
    errors = []
    client = connect(server.url, timeout=60.0)
    try:
        for rank in range(n_ranks):
            try:
                client.mesh(_rank_request(image, rank), timeout=120.0)
            except Exception as exc:
                errors.append(f"rank {rank}: {exc!r}")
    finally:
        client.close()
        snap = service.metrics_snapshot()
        server.close()
        service.shutdown()
    slo = snap["slo"]
    return {
        "requests": n_ranks,
        "errors": errors,
        "mesh_runs": mesher.calls,
        "disk_hits": slo["tiers"]["disk_hit"]["requests"],
        "p99_seconds": slo["tiers"]["disk_hit"]["p99_seconds"],
    }


def http_bench(out_path: pathlib.Path, n_requests: int = 48,
               n_ranks: int = 6, n_clients: int = 6) -> None:
    from repro.api import mesh as api_mesh
    image = sphere_phantom(12)
    template = api_mesh(MeshRequest(image=image, delta=3.0,
                                    mesher="sequential"))

    k = 8
    print(f"http bench 1/3: duplicate burst, {k} identical requests")
    on = _duplicate_burst(template, image, k, coalesce=True)
    off = _duplicate_burst(template, image, k, coalesce=False)
    amplification = (off["mesh_runs"] / on["mesh_runs"]
                     if on["mesh_runs"] else 0.0)
    print(f"  coalesce on : {on['mesh_runs']} mesh run(s), "
          f"{on['followers']} follower(s)")
    print(f"  coalesce off: {off['mesh_runs']} mesh run(s)")
    print(f"  amplification: {amplification:.1f}x "
          f"(required {GATE_COALESCE}x, enforced)")
    check("coalesced burst runs exactly once",
          on["mesh_runs"] == 1 and on["jobs_done"] == k,
          f"{on['mesh_runs']} runs, {on['jobs_done']} done")
    check("coalesced burst counts k-1 followers",
          on["followers"] == k - 1, str(on["followers"]))
    check("disabled coalescing runs k independent jobs",
          off["mesh_runs"] == k and off["followers"] == 0,
          f"{off['mesh_runs']} runs")
    passed = amplification >= GATE_COALESCE
    check(f"duplicate-burst amplification >= {GATE_COALESCE}x", passed,
          f"{amplification:.1f}x")

    print(f"http bench 2/3: zipfian mix over the gateway "
          f"({n_requests} requests, {n_ranks} keys, {n_clients} clients)")
    cache_dir = tempfile.mkdtemp(prefix="repro-httpbench-zipf-")
    zipf = _http_zipfian(template, image, cache_dir, n_requests,
                         n_ranks, n_clients)
    hot = zipf["tiers"]
    print(f"  {zipf['seconds']:.2f}s, hit rate {zipf['hit_rate']:.2f}, "
          f"{zipf['mesh_runs']} mesh runs, "
          f"coalesced {hot['coalesced']['requests']}, "
          f"memory hits {hot['memory_hit']['requests']}")
    check("zipfian requests all succeeded", not zipf["errors"],
          "; ".join(zipf["errors"][:3]))
    check("each distinct key meshed exactly once",
          zipf["mesh_runs"] == n_ranks, str(zipf["mesh_runs"]))
    served = (hot["coalesced"]["requests"]
              + hot["memory_hit"]["requests"])
    check("every duplicate served by coalescing or memory tier",
          served == n_requests - n_ranks,
          f"{served} vs {n_requests - n_ranks}")
    check("zipfian hit rate >= 0.8", zipf["hit_rate"] >= 0.8,
          f"{zipf['hit_rate']:.2f}")

    print("http bench 3/3: disk-tier pass (fresh service, same cache)")
    disk = _http_disk_pass(template, image, cache_dir, n_ranks)
    print(f"  {disk['disk_hits']} disk hit(s), 0 expected mesh runs "
          f"(got {disk['mesh_runs']})")
    check("disk pass requests all succeeded", not disk["errors"],
          "; ".join(disk["errors"][:3]))
    check("warm cache dir serves every key from disk",
          disk["disk_hits"] == n_ranks and disk["mesh_runs"] == 0,
          f"{disk['disk_hits']} hits, {disk['mesh_runs']} runs")

    doc = {
        "schema": 1,
        "cpus": usable_cpus(),
        "executor": zipf["executor"],
        "duplicate_burst": {
            "k": k,
            "runs_coalesced": on["mesh_runs"],
            "runs_independent": off["mesh_runs"],
            "followers": on["followers"],
            "amplification": amplification,
            "gate": {"required": GATE_COALESCE, "enforced": True,
                     "passed": passed},
        },
        "zipfian": zipf,
        "disk": disk,
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  -> {out_path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--executor-bench", action="store_true",
                        help="run the thread-vs-process comparison and "
                             "write BENCH_service.json")
    parser.add_argument("--http-bench", action="store_true",
                        help="run the duplicate-burst + zipfian HTTP "
                             "gateway benchmark and write BENCH_http.json")
    parser.add_argument("--skip-replay", action="store_true",
                        help="with --executor-bench/--http-bench: skip "
                             "the workload replay half")
    parser.add_argument("--bench-out", default=str(DEFAULT_BENCH),
                        help="output path for BENCH_service.json")
    parser.add_argument("--bench-jobs", type=int, default=8,
                        help="cache-miss jobs per executor in the bench")
    parser.add_argument("--bench-phantom", type=int, default=16,
                        help="phantom edge length for the bench jobs")
    parser.add_argument("--http-out", default=str(DEFAULT_HTTP_BENCH),
                        help="output path for BENCH_http.json")
    args = parser.parse_args(argv)

    any_bench = args.executor_bench or args.http_bench
    if not (any_bench and args.skip_replay):
        replay()
    if args.executor_bench:
        executor_bench(pathlib.Path(args.bench_out), args.bench_jobs,
                       args.bench_phantom)
    if args.http_bench:
        http_bench(pathlib.Path(args.http_out))

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {', '.join(FAILURES)}")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
