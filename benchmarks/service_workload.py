"""CI workload replay for the meshing service.

Boots a real :class:`~repro.service.MeshingService`, replays a mixed
workload — cache hits, cache misses, a poisoned request, an
over-capacity burst — and asserts on the resulting ``service.*``
metrics.  Exit code 0 iff every assertion holds; any failure prints
the offending metric and exits 1, so the CI job is a one-line gate::

    PYTHONPATH=src python benchmarks/service_workload.py

Keep this fast (< ~1 min on a laptop): it is a smoke gate on service
semantics under concurrency, not a throughput benchmark.
"""

from __future__ import annotations

import sys
import tempfile

from repro.api import MeshRequest
from repro.imaging import sphere_phantom
from repro.service import (
    JobState,
    MeshingService,
    ServiceConfig,
    TransientMeshError,
)

FAILURES = []


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {name}" + (f"  ({detail})" if detail else ""))
    if not cond:
        FAILURES.append(name)


class FlakyOnce:
    """Transient failure on the first call, then delegates."""

    name = "flaky"

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def mesh(self, request):
        self.calls += 1
        if self.calls == 1:
            raise TransientMeshError("injected transient fault")
        return self.inner.mesh(request)


def main() -> int:
    image = sphere_phantom(12)
    tmp = tempfile.mkdtemp(prefix="repro-service-workload-")
    cfg = ServiceConfig(n_workers=4, queue_capacity=8,
                        cache_dir=tmp, max_retries=2, retry_backoff=0.01)
    service = MeshingService(cfg).start()
    from repro.api import get_mesher
    service.register_mesher("flaky", FlakyOnce(get_mesher("sequential")))

    print("phase 1: cold misses (two param sets, one image)")
    r1 = service.mesh(MeshRequest(image=image, delta=3.0,
                                  mesher="sequential"))
    r2 = service.mesh(MeshRequest(image=image, delta=4.0,
                                  mesher="sequential"))
    check("cold runs produce meshes", r1.n_tets > 0 and r2.n_tets > 0)

    print("phase 2: warm hits")
    w1 = service.mesh(MeshRequest(image=image, delta=3.0,
                                  mesher="sequential"))
    check("warm mesh topology-identical",
          w1.n_tets == r1.n_tets and w1.n_vertices == r1.n_vertices)

    print("phase 3: poisoned request (unknown mesher)")
    try:
        service.mesh(MeshRequest(image=image, delta=3.0, mesher="no-such"))
        poisoned_rejected = False
    except Exception:
        poisoned_rejected = True
    check("poisoned request rejected, service alive", poisoned_rejected)

    print("phase 4: transient fault recovered by retry")
    rf = service.mesh(MeshRequest(image=image, delta=5.0, mesher="flaky"))
    check("flaky mesher recovered", rf.n_tets > 0)

    print("phase 5: over-capacity burst")
    jobs = [service.submit(MeshRequest(image=image, delta=3.0 + 0.1 * i,
                                       mesher="sequential"))
            for i in range(20)]
    for job in jobs:
        ok = job.wait(120.0)
        check(f"{job.id} terminal", ok and job.done, job.state.value)
    states = {j.state for j in jobs}
    check("burst states are DONE/REJECTED only",
          states <= {JobState.DONE, JobState.REJECTED}, str(states))
    n_rejected = sum(j.state is JobState.REJECTED for j in jobs)
    check("burst overflowed the 8-slot queue", n_rejected >= 1,
          f"{n_rejected} rejected")

    print("phase 6: metrics audit")
    snap = service.metrics_snapshot()
    c, g = snap["counters"], snap["gauges"]
    check("service.cache.hit >= 1", c.get("service.cache.hit", 0) >= 1,
          str(c.get("service.cache.hit")))
    check("service.cache.miss >= 2", c.get("service.cache.miss", 0) >= 2,
          str(c.get("service.cache.miss")))
    check("service.jobs.retries == 1", c.get("service.jobs.retries") == 1,
          str(c.get("service.jobs.retries")))
    check("service.jobs.rejected == burst rejections",
          c.get("service.jobs.rejected", 0) == n_rejected,
          str(c.get("service.jobs.rejected")))
    check("poisoned request is the only failure",
          c.get("service.jobs.failed") == 1,
          str(c.get("service.jobs.failed")))
    check("no worker crashed the pool", g.get("service.workers.alive") == 4,
          str(g.get("service.workers.alive")))
    check("EDT computed once per image",
          g.get("edt.cache.computes") == 1,
          str(g.get("edt.cache.computes")))
    books = (c.get("service.jobs.completed", 0)
             + c.get("service.jobs.failed", 0)
             + c.get("service.jobs.rejected", 0)
             + c.get("service.jobs.cancelled", 0)
             + c.get("service.jobs.timed_out", 0))
    check("every submitted job accounted for",
          books == c.get("service.jobs.submitted"),
          f"{books} vs {c.get('service.jobs.submitted')}")

    service.shutdown()
    check("workers drained on shutdown", service.pool.alive_workers == 0)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {', '.join(FAILURES)}")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
