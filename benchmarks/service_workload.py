"""CI workload replay and executor benchmark for the meshing service.

Two halves, both one-line CI gates:

* **Workload replay** (default): boots a real
  :class:`~repro.service.MeshingService`, replays a mixed workload —
  cache hits, cache misses, a poisoned request, an over-capacity
  burst — and asserts on the resulting ``service.*`` metrics.  The
  executor comes from ``ServiceConfig`` resolution, so CI runs the
  same replay under ``REPRO_EXECUTOR=thread`` and ``=process``.
* **Executor comparison** (``--executor-bench``): meshes the same
  CPU-bound batch of cache misses through a thread-executor service
  and a process-executor service (separate cache dirs — no
  cross-pollination) and writes ``BENCH_service.json`` with both
  throughputs.  The ≥1.5x process-over-thread gate is only *enforced*
  when the machine has ≥2 usable CPUs — on a single-CPU runner the
  comparison is recorded but advisory (process workers cannot beat
  threads without parallelism; the GIL is the thing being escaped).

Exit code 0 iff every assertion (and any enforced gate) holds::

    PYTHONPATH=src python benchmarks/service_workload.py
    PYTHONPATH=src python benchmarks/service_workload.py --executor-bench

Keep the replay fast (< ~1 min on a laptop): it is a smoke gate on
service semantics under concurrency, not a throughput benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

from repro.api import MeshRequest
from repro.imaging import sphere_phantom
from repro.service import (
    JobState,
    MeshingService,
    ServiceConfig,
    TransientMeshError,
    process_support_available,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
DEFAULT_BENCH = RESULTS_DIR / "BENCH_service.json"

#: required process-over-thread throughput on a multi-core machine.
GATE_SPEEDUP = 1.5

FAILURES = []


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {name}" + (f"  ({detail})" if detail else ""))
    if not cond:
        FAILURES.append(name)


class FlakyOnce:
    """Transient failure on the first call, then delegates."""

    name = "flaky"

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def mesh(self, request):
        self.calls += 1
        if self.calls == 1:
            raise TransientMeshError("injected transient fault")
        return self.inner.mesh(request)


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def replay() -> None:
    image = sphere_phantom(12)
    tmp = tempfile.mkdtemp(prefix="repro-service-workload-")
    cfg = ServiceConfig(n_workers=4, queue_capacity=8,
                        cache_dir=tmp, max_retries=2, retry_backoff=0.01)
    service = MeshingService(cfg).start()
    print(f"executor: {service.executor}"
          + (" (fell back from process)" if service.executor_fallback
             else ""))
    from repro.api import get_mesher
    service.register_mesher("flaky", FlakyOnce(get_mesher("sequential")))

    print("phase 1: cold misses (two param sets, one image)")
    r1 = service.mesh(MeshRequest(image=image, delta=3.0,
                                  mesher="sequential"))
    r2 = service.mesh(MeshRequest(image=image, delta=4.0,
                                  mesher="sequential"))
    check("cold runs produce meshes", r1.n_tets > 0 and r2.n_tets > 0)

    print("phase 2: warm hits")
    w1 = service.mesh(MeshRequest(image=image, delta=3.0,
                                  mesher="sequential"))
    check("warm mesh topology-identical",
          w1.n_tets == r1.n_tets and w1.n_vertices == r1.n_vertices)

    print("phase 3: poisoned request (unknown mesher)")
    try:
        service.mesh(MeshRequest(image=image, delta=3.0, mesher="no-such"))
        poisoned_rejected = False
    except Exception:
        poisoned_rejected = True
    check("poisoned request rejected, service alive", poisoned_rejected)

    print("phase 4: transient fault recovered by retry")
    rf = service.mesh(MeshRequest(image=image, delta=5.0, mesher="flaky"))
    check("flaky mesher recovered", rf.n_tets > 0)

    print("phase 5: over-capacity burst")
    jobs = [service.submit(MeshRequest(image=image, delta=3.0 + 0.1 * i,
                                       mesher="sequential"))
            for i in range(20)]
    for job in jobs:
        ok = job.wait(120.0)
        check(f"{job.id} terminal", ok and job.done, job.state.value)
    states = {j.state for j in jobs}
    check("burst states are DONE/REJECTED only",
          states <= {JobState.DONE, JobState.REJECTED}, str(states))
    n_rejected = sum(j.state is JobState.REJECTED for j in jobs)
    check("burst overflowed the 8-slot queue", n_rejected >= 1,
          f"{n_rejected} rejected")

    print("phase 6: metrics audit")
    snap = service.metrics_snapshot()
    c, g = snap["counters"], snap["gauges"]
    check("service.cache.hit >= 1", c.get("service.cache.hit", 0) >= 1,
          str(c.get("service.cache.hit")))
    check("service.cache.miss >= 2", c.get("service.cache.miss", 0) >= 2,
          str(c.get("service.cache.miss")))
    check("service.jobs.retries == 1", c.get("service.jobs.retries") == 1,
          str(c.get("service.jobs.retries")))
    check("service.jobs.rejected == burst rejections",
          c.get("service.jobs.rejected", 0) == n_rejected,
          str(c.get("service.jobs.rejected")))
    check("poisoned request is the only failure",
          c.get("service.jobs.failed") == 1,
          str(c.get("service.jobs.failed")))
    check("no worker crashed the pool", g.get("service.workers.alive") == 4,
          str(g.get("service.workers.alive")))
    if service.executor == "process":
        # Remote jobs compute the EDT in worker processes; the parent
        # only computes when a job runs inline (overlay mesher) and the
        # shared disk cache misses.
        check("parent-side EDT computes <= 1",
              (g.get("edt.cache.computes") or 0) <= 1,
              str(g.get("edt.cache.computes")))
        check("jobs ran remotely", c.get("service.jobs.remote", 0) >= 1,
              str(c.get("service.jobs.remote")))
        check("no worker process crashed",
              c.get("service.worker.crashes", 0) == 0,
              str(c.get("service.worker.crashes")))
    else:
        check("EDT computed once per image",
              g.get("edt.cache.computes") == 1,
              str(g.get("edt.cache.computes")))
    books = (c.get("service.jobs.completed", 0)
             + c.get("service.jobs.failed", 0)
             + c.get("service.jobs.rejected", 0)
             + c.get("service.jobs.cancelled", 0)
             + c.get("service.jobs.timed_out", 0))
    check("every submitted job accounted for",
          books == c.get("service.jobs.submitted"),
          f"{books} vs {c.get('service.jobs.submitted')}")

    service.shutdown()
    check("workers drained on shutdown", service.pool.alive_workers == 0)


def _timed_batch(executor: str, n_workers: int, n_jobs: int,
                 phantom_n: int, delta0: float) -> dict:
    """Mesh ``n_jobs`` distinct cache misses; returns timing + config."""
    image = sphere_phantom(phantom_n)
    tmp = tempfile.mkdtemp(prefix=f"repro-execbench-{executor}-")
    service = MeshingService(ServiceConfig(
        n_workers=n_workers, queue_capacity=n_jobs + 4,
        cache_dir=tmp, executor=executor)).start()
    try:
        # Warmup: spawn workers / prime imports off the clock.
        service.mesh(MeshRequest(image=image, delta=delta0 + 9.0,
                                 mesher="sequential"))
        t0 = time.perf_counter()
        jobs = [service.submit(MeshRequest(image=image,
                                           delta=delta0 + 0.003 * i,
                                           mesher="sequential"))
                for i in range(n_jobs)]
        for job in jobs:
            job.wait(600.0)
        seconds = time.perf_counter() - t0
        done = sum(j.state is JobState.DONE for j in jobs)
        return {
            "executor": service.executor,
            "requested_executor": executor,
            "fallback": service.executor_fallback,
            "n_workers": n_workers,
            "jobs": n_jobs,
            "jobs_done": done,
            "seconds": seconds,
            "jobs_per_second": done / seconds if seconds > 0 else 0.0,
        }
    finally:
        service.shutdown()


def executor_bench(out_path: pathlib.Path, n_jobs: int,
                   phantom_n: int) -> None:
    cpus = usable_cpus()
    enforced = cpus >= 2 and process_support_available()
    print(f"executor bench: {n_jobs} CPU-bound misses, 4 workers, "
          f"{cpus} usable CPU(s), gate "
          f"{'ENFORCED' if enforced else 'advisory'}")

    thread = _timed_batch("thread", 4, n_jobs, phantom_n, 1.0)
    print(f"  thread : {thread['seconds']:.2f}s "
          f"({thread['jobs_per_second']:.2f} jobs/s)")
    process = _timed_batch("process", 4, n_jobs, phantom_n, 1.0)
    print(f"  process: {process['seconds']:.2f}s "
          f"({process['jobs_per_second']:.2f} jobs/s)"
          + (" [fell back to threads]" if process["fallback"] else ""))

    speedup = (process["jobs_per_second"] / thread["jobs_per_second"]
               if thread["jobs_per_second"] > 0 else 0.0)
    passed = speedup >= GATE_SPEEDUP
    doc = {
        "schema": 1,
        "workload": {"jobs": n_jobs, "phantom_n": phantom_n,
                     "n_workers": 4, "mesher": "sequential"},
        "cpus": cpus,
        "thread": thread,
        "process": process,
        "speedup_process_over_thread": speedup,
        "gate": {"required": GATE_SPEEDUP, "enforced": enforced,
                 "passed": passed},
    }
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"  speedup: {speedup:.2f}x (required {GATE_SPEEDUP}x, "
          f"{'enforced' if enforced else 'advisory'}) -> {out_path}")

    check("all thread-executor jobs done",
          thread["jobs_done"] == n_jobs, str(thread["jobs_done"]))
    check("all process-executor jobs done",
          process["jobs_done"] == n_jobs, str(process["jobs_done"]))
    if enforced:
        check(f"process >= {GATE_SPEEDUP}x thread", passed,
              f"{speedup:.2f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--executor-bench", action="store_true",
                        help="run the thread-vs-process comparison and "
                             "write BENCH_service.json")
    parser.add_argument("--skip-replay", action="store_true",
                        help="with --executor-bench: skip the workload "
                             "replay half")
    parser.add_argument("--bench-out", default=str(DEFAULT_BENCH),
                        help="output path for BENCH_service.json")
    parser.add_argument("--bench-jobs", type=int, default=8,
                        help="cache-miss jobs per executor in the bench")
    parser.add_argument("--bench-phantom", type=int, default=16,
                        help="phantom edge length for the bench jobs")
    args = parser.parse_args(argv)

    if not (args.executor_bench and args.skip_replay):
        replay()
    if args.executor_bench:
        executor_bench(pathlib.Path(args.bench_out), args.bench_jobs,
                       args.bench_phantom)

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {', '.join(FAILURES)}")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
